"""The public API surface: what a downstream user can rely on.

These tests pin the package's import contract: top-level names exist,
``__all__`` lists are accurate, and the subpackages a README reader
would import are importable under their documented names.
"""

import importlib

import pytest

import repro


class TestTopLevel:
    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_headline_functions_top_level(self):
        for name in ("dtw", "cdtw", "fastdtw", "euclidean"):
            assert callable(getattr(repro, name))


SUBPACKAGES = [
    "repro.advisor",
    "repro.anomaly",
    "repro.batch",
    "repro.classify",
    "repro.cluster",
    "repro.core",
    "repro.datasets",
    "repro.experiments",
    "repro.lowerbounds",
    "repro.motifs",
    "repro.obs",
    "repro.preprocess",
    "repro.search",
    "repro.timing",
    "repro.viz",
]


class TestSubpackages:
    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_importable(self, name):
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} lacks a module docstring"

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_all_lists_resolve(self, name):
        module = importlib.import_module(name)
        exported = getattr(module, "__all__", None)
        if exported is None:
            return
        for item in exported:
            assert hasattr(module, item), f"{name}.{item}"

    def test_documented_imports_work(self):
        # the README's import lines, verbatim
        from repro import cdtw, dtw, fastdtw  # noqa: F401
        from repro.advisor import analyze  # noqa: F401
        from repro.core import Window, approximation_error_percent  # noqa: F401
        from repro.classify import DistanceSpec, OneNearestNeighbor  # noqa: F401
        from repro.cluster import dba, dtw_kmeans, linkage  # noqa: F401
        from repro.anomaly import find_discord  # noqa: F401
        from repro.motifs import find_motif  # noqa: F401
        from repro.search import subsequence_search  # noqa: F401
        from repro.viz import sparkline  # noqa: F401


class TestKernelRegistry:
    """The backend registry is part of the public surface."""

    REGISTRY_NAMES = [
        "KernelSet",
        "available_backends",
        "default_backend",
        "get_kernels",
        "set_default_backend",
        "use_backend",
    ]

    @pytest.mark.parametrize("name", REGISTRY_NAMES)
    def test_exported_top_level(self, name):
        assert name in repro.__all__
        assert getattr(repro, name) is not None

    def test_top_level_is_core_registry(self):
        from repro.core import kernels

        assert repro.get_kernels is kernels.get_kernels
        assert repro.use_backend is kernels.use_backend

    def test_python_backend_always_listed(self):
        assert "python" in repro.available_backends()
        assert repro.default_backend() == "python"


class TestRuntimeSurface:
    """The unified execution context is part of the public surface."""

    RUNTIME_NAMES = [
        "Runtime",
        "default_runtime",
        "set_default_runtime",
        "use_runtime",
    ]

    @pytest.mark.parametrize("name", RUNTIME_NAMES)
    def test_exported_top_level(self, name):
        assert name in repro.__all__
        assert getattr(repro, name) is not None

    def test_top_level_is_runtime_module(self):
        from repro import runtime

        assert repro.Runtime is runtime.Runtime
        assert repro.use_runtime is runtime.use_runtime
        assert repro.default_runtime is runtime.default_runtime

    def test_runtime_module_all_resolves(self):
        from repro import runtime

        for item in runtime.__all__:
            assert hasattr(runtime, item), item


class TestDocstringCoverage:
    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_public_callables_documented(self, name):
        module = importlib.import_module(name)
        exported = getattr(module, "__all__", [])
        for item in exported:
            obj = getattr(module, item)
            if callable(obj):
                assert obj.__doc__, f"{name}.{item} lacks a docstring"
