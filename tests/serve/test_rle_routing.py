"""Serve-layer auto-RLE routing: invisible in answers, visible in work.

The service profiles every collection at registration (run counts,
compression ratio, exactness-grid membership) and routes 1-NN / k-NN
through the compressed-domain measure when the dataset is step-like
enough.  The central property mirrors the rest of the serve suite:
**routing must be invisible in the answers** -- forced on, forced off
and auto-decided paths all return bit-identical results, and forcing
the compressed path on an off-grid dataset is an explicit protocol
error, never a silent drift risk.
"""

import random
from typing import List

import pytest

from repro.core.rle import RleSeries
from repro.runtime import Runtime
from repro.serve import QueryService
from repro.serve.protocol import ProtocolError, parse_request

GRID = 2.0 ** -4


def step_series(seed: int, length: int = 24) -> List[float]:
    """A step-like trace on the dyadic exactness grid."""
    rng = random.Random(seed)
    out: List[float] = []
    while len(out) < length:
        value = rng.randrange(-32, 33) * GRID
        out.extend([value] * rng.randrange(4, 9))
    return out[:length]


STEPS = [step_series(900 + i) for i in range(6)]
def _noise_series(seed: int, length: int = 24) -> List[float]:
    rng = random.Random(seed)
    return [rng.uniform(-1, 1) for _ in range(length)]


OFFGRID = [_noise_series(910 + i) for i in range(4)]
QUERIES = [step_series(920 + i) for i in range(3)]


def _service(**kwargs) -> QueryService:
    service = QueryService(cache_results=False, **kwargs)
    service.register("steps", STEPS)
    service.register("offgrid", OFFGRID)
    return service


class TestRegistryProfile:
    def test_step_dataset_profiles_compressible_and_exact(self):
        with _service() as service:
            entry = service.registry.get("steps")
        assert entry.rle_exact is True
        assert entry.compression_ratio >= 4.0
        assert entry.run_counts == tuple(
            RleSeries.encode(s).run_count for s in STEPS
        )

    def test_offgrid_dataset_profiles_incompressible(self):
        with _service() as service:
            entry = service.registry.get("offgrid")
        assert entry.rle_exact is False
        # uniform noise never repeats: one run per sample
        assert entry.compression_ratio == 1.0
        assert entry.run_counts == tuple(len(s) for s in OFFGRID)

    def test_stream_datasets_are_profiled_too(self):
        with QueryService(cache_results=False) as service:
            service.register_stream("stream", step_series(930, 64))
            entry = service.registry.get("stream")
        assert entry.rle_exact is True
        assert len(entry.run_counts) == 1


class TestRoutingParity:
    """Forced-on, forced-off and auto answers are bit-identical."""

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_1nn_parity(self, backend, workers):
        runtime = Runtime(workers=workers, backend=backend)
        with _service(runtime=runtime) as service:
            for query in QUERIES:
                base = {"op": "1nn", "dataset": "steps", "band": 3,
                        "query": query}
                on = service.execute(
                    {**base, "rle": True, "index": False}
                )
                off = service.execute({**base, "rle": False})
                auto = service.execute(base)
                assert on.ok and off.ok and auto.ok
                assert on.answer == off.answer == auto.answer

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_knn_parity(self, backend):
        runtime = Runtime(workers=1, backend=backend)
        with _service(runtime=runtime) as service:
            base = {"op": "knn", "dataset": "steps", "band": 3,
                    "k": 3, "query": QUERIES[0]}
            on = service.execute({**base, "rle": True})
            off = service.execute({**base, "rle": False})
            assert on.ok and off.ok
            assert on.answer == off.answer

    def test_routed_coalesced_group_matches_serial(self):
        burst = [
            {"op": "1nn", "dataset": "steps", "band": 3, "query": q}
            for q in QUERIES
        ]
        with _service(runtime=Runtime(workers=1)) as service:
            serial = [service.execute(r).answer for r in burst]
        with _service(runtime=Runtime(workers=2)) as service:
            responses = service.execute_batch(burst)
            stats = service.stats()
        assert all(r.ok for r in responses)
        assert [r.answer for r in responses] == serial
        # the routed requests fused into one compressed-domain job:
        # auto-routing supersedes the index fast path
        assert stats.coalesced_requests == len(QUERIES)

    def test_routed_and_unrouted_never_share_a_bucket(self):
        # same dataset, same band -- but one request suppresses RLE,
        # so it must not fuse with the routed pair (one job, one
        # measure)
        burst = [
            {"op": "1nn", "dataset": "steps", "band": 3,
             "query": QUERIES[0]},
            {"op": "1nn", "dataset": "steps", "band": 3,
             "query": QUERIES[1]},
            {"op": "1nn", "dataset": "steps", "band": 3,
             "query": QUERIES[2], "rle": False, "index": False},
        ]
        with _service(runtime=Runtime(workers=2)) as service:
            parsed = [parse_request(r) for r in burst]
            groups = service._coalesce_groups(parsed)
        assert groups == [[0, 1]]


class TestRoutingPolicy:
    def test_forcing_rle_off_grid_is_rejected(self):
        with _service() as service:
            response = service.execute({
                "op": "1nn", "dataset": "offgrid", "band": 3,
                "rle": True, "query": OFFGRID[0],
            })
        assert not response.ok
        assert "exactness grid" in response.error

    def test_auto_routing_skips_offgrid_datasets(self):
        with _service() as service:
            response = service.execute({
                "op": "1nn", "dataset": "offgrid", "band": 3,
                "query": OFFGRID[0],
            })
        assert response.ok

    def test_use_rle_false_disables_auto_routing(self):
        with _service(use_rle=False) as service:
            entry = service.registry.get("steps")
            request = parse_request({
                "op": "1nn", "dataset": "steps", "band": 3,
                "query": QUERIES[0],
            })
            assert service._rle_routed(request, entry) is False
            # the explicit request flag still wins
            forced = parse_request({
                "op": "1nn", "dataset": "steps", "band": 3,
                "rle": True, "query": QUERIES[0],
            })
            assert service._rle_routed(forced, entry) is True

    def test_threshold_gates_auto_routing(self):
        with _service(rle_threshold=1000.0) as service:
            entry = service.registry.get("steps")
            request = parse_request({
                "op": "1nn", "dataset": "steps", "band": 3,
                "query": QUERIES[0],
            })
            assert service._rle_routed(request, entry) is False

    def test_threshold_below_one_is_rejected(self):
        with pytest.raises(ValueError, match="rle_threshold"):
            QueryService(rle_threshold=0.5)


class TestProtocol:
    def test_rle_must_be_a_bool(self):
        with pytest.raises(ProtocolError, match="rle must be a bool"):
            parse_request({
                "op": "1nn", "dataset": "steps", "band": 3,
                "rle": 1, "query": QUERIES[0],
            })

    def test_rle_only_on_nn_ops(self):
        with pytest.raises(ProtocolError, match="rle"):
            parse_request({
                "op": "subsequence", "dataset": "stream", "band": 2,
                "rle": True, "query": QUERIES[0][:10],
            })
