"""AsyncQueryService, the socket server, the self-test, CLI wiring."""

import asyncio
import json

import pytest

from repro.runtime import Runtime
from repro.serve import AsyncQueryService, QueryService
from repro.serve.server import serve
from tests.conftest import make_series

SERIES = [make_series(20, seed=900 + i) for i in range(5)]
STREAM = make_series(50, seed=910)
QUERY = make_series(20, seed=920)


def _run(coro):
    return asyncio.run(coro)


class TestAsyncQueryService:
    def test_gathered_queries_match_sync_execution(self):
        burst = [
            {"op": "1nn", "dataset": "coll", "band": 3, "query": QUERY},
            {"op": "knn", "dataset": "coll", "band": 3, "k": 2,
             "query": QUERY},
            {"op": "discord", "dataset": "s", "window": 10, "band": 2},
        ]

        async def main():
            async with AsyncQueryService(
                window_ms=10, runtime=Runtime(workers=1)
            ) as service:
                service.register("coll", SERIES)
                service.register_stream("s", STREAM)
                return await asyncio.gather(
                    *(service.query(r) for r in burst)
                )

        responses = _run(main())
        with QueryService(runtime=Runtime(workers=1)) as sync:
            sync.register("coll", SERIES)
            sync.register_stream("s", STREAM)
            reference = [sync.execute(r) for r in burst]
        assert [r.answer for r in responses] == [
            r.answer for r in reference
        ]
        assert all(r.telemetry.batched_with >= 1 for r in responses)

    def test_shutdown_ordering_drains_then_closes(self):
        async def main():
            service = AsyncQueryService(
                window_ms=25, runtime=Runtime(workers=1)
            )
            service.register("coll", SERIES)
            pending = asyncio.ensure_future(service.query(
                {"op": "1nn", "dataset": "coll", "band": 3,
                 "query": QUERY}
            ))
            await asyncio.sleep(0)  # the request is in the window
            await service.close()
            # drained before the service closed: the answer arrived
            assert pending.done()
            response = await pending
            assert response.ok
            assert service.service.closed
            with pytest.raises(RuntimeError, match="closed"):
                await service.query(
                    {"op": "1nn", "dataset": "coll", "band": 3,
                     "query": QUERY}
                )

        _run(main())

    def test_service_or_kwargs_not_both(self):
        with QueryService() as inner:
            with pytest.raises(ValueError, match="either"):
                AsyncQueryService(service=inner, use_index=False)


class TestSocketServer:
    def test_json_lines_roundtrip(self):
        async def main():
            async with AsyncQueryService(
                window_ms=5, runtime=Runtime(workers=1)
            ) as service:
                server = await serve(service, host="127.0.0.1", port=0)
                port = server.sockets[0].getsockname()[1]
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )

                async def ask(obj):
                    writer.write(json.dumps(obj).encode() + b"\n")
                    await writer.drain()
                    return json.loads(await reader.readline())

                try:
                    pong = await ask({"admin": "ping"})
                    registered = await ask({
                        "admin": "register", "name": "coll",
                        "series": SERIES,
                    })
                    answer = await ask({
                        "op": "1nn", "dataset": "coll", "band": 3,
                        "query": QUERY, "id": "q1",
                    })
                    bad = await ask({
                        "op": "1nn", "dataset": "nope", "band": 3,
                        "query": QUERY,
                    })
                    garbage = await ask_raw(reader, writer, b"{oops\n")
                    stats = await ask({"admin": "stats"})
                finally:
                    writer.close()
                    await writer.wait_closed()
                    server.close()
                    await server.wait_closed()
                return pong, registered, answer, bad, garbage, stats

        async def ask_raw(reader, writer, payload):
            writer.write(payload)
            await writer.drain()
            return json.loads(await reader.readline())

        pong, registered, answer, bad, garbage, stats = _run(main())
        assert pong == {"ok": True, "pong": True}
        assert registered["ok"] and registered["fingerprint"]
        assert answer["ok"] and answer["id"] == "q1"
        assert {"index", "distance"} <= answer["answer"].keys()
        assert {"latency_ms", "dtw_calls", "dp_cells"} <= (
            answer["telemetry"].keys()
        )
        assert not bad["ok"] and "nope" in bad["error"]
        assert not garbage["ok"] and "json" in garbage["error"]
        assert stats["ok"]
        assert stats["stats"]["requests"] >= 2

    def test_pipelined_queries_share_a_window(self):
        async def main():
            async with AsyncQueryService(
                window_ms=30, runtime=Runtime(workers=1)
            ) as service:
                service.register("coll", SERIES)
                server = await serve(service, host="127.0.0.1", port=0)
                port = server.sockets[0].getsockname()[1]
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                try:
                    for i in range(3):
                        writer.write(json.dumps({
                            "op": "1nn", "dataset": "coll", "band": 3,
                            "query": QUERY, "id": str(i),
                        }).encode() + b"\n")
                    await writer.drain()
                    got = [
                        json.loads(await reader.readline())
                        for _ in range(3)
                    ]
                finally:
                    writer.close()
                    await writer.wait_closed()
                    server.close()
                    await server.wait_closed()
                return got, service.batcher.largest_batch

        responses, largest = _run(main())
        assert all(r["ok"] for r in responses)
        assert {r["id"] for r in responses} == {"0", "1", "2"}
        assert largest >= 2  # they rode one collection window


class TestSelfTest:
    def test_self_test_passes(self, capsys):
        from repro.serve import run_self_test

        assert run_self_test(verbose=True, workers=2) == 0
        out = capsys.readouterr().out
        assert "checks passed" in out
        assert "FAIL" not in out


class TestCli:
    def test_parser_accepts_serve(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--self-test", "--window-ms", "3",
             "--workers", "2"]
        )
        assert args.command == "serve"
        assert args.self_test
        assert args.window_ms == 3.0
        assert args.workers == 2

    def test_serve_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8787
        assert args.window_ms == 5.0
        assert not args.self_test
        assert not args.no_index

    def test_cli_self_test_exit_code(self):
        from repro.cli import main

        assert main(["serve", "--self-test", "--workers", "2"]) == 0
