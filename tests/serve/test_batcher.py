"""MicroBatcher window semantics, ordering, isolation, shutdown."""

import asyncio

import pytest

from repro.serve import MicroBatcher
from repro.serve.protocol import QueryResponse


def _response(tag):
    return QueryResponse(op="1nn", dataset="d", ok=True,
                         answer={"tag": tag})


class Recorder:
    """A runner that records the batches it was handed."""

    def __init__(self, delay: float = 0.0, fail_on=None):
        self.batches = []
        self.delay = delay
        self.fail_on = fail_on

    def __call__(self, requests):
        import time

        if self.delay:
            time.sleep(self.delay)
        self.batches.append(list(requests))
        if self.fail_on is not None and any(
            r.get("tag") == self.fail_on for r in requests
        ):
            raise RuntimeError("runner blew up")
        return [_response(r["tag"]) for r in requests]


def _run(coro):
    return asyncio.run(coro)


class TestCoalescing:
    def test_concurrent_submissions_share_a_batch(self):
        runner = Recorder()
        batcher = MicroBatcher(runner, window_ms=20)

        async def main():
            return await asyncio.gather(
                *(batcher.submit({"tag": i}) for i in range(5))
            )

        responses = _run(main())
        assert [r.answer["tag"] for r in responses] == list(range(5))
        assert len(runner.batches) == 1
        assert len(runner.batches[0]) == 5
        assert batcher.largest_batch == 5

    def test_each_submitter_gets_its_own_response(self):
        runner = Recorder()
        batcher = MicroBatcher(runner, window_ms=5)

        async def main():
            a, b = await asyncio.gather(
                batcher.submit({"tag": "a"}), batcher.submit({"tag": "b"})
            )
            return a, b

        a, b = _run(main())
        assert a.answer["tag"] == "a"
        assert b.answer["tag"] == "b"

    def test_max_batch_overflow_rolls_into_next_window(self):
        runner = Recorder()
        batcher = MicroBatcher(runner, window_ms=5, max_batch=3)

        async def main():
            return await asyncio.gather(
                *(batcher.submit({"tag": i}) for i in range(7))
            )

        responses = _run(main())
        assert len(responses) == 7
        assert [len(b) for b in runner.batches] == [3, 3, 1]

    def test_sequential_awaits_do_not_batch(self):
        runner = Recorder()
        batcher = MicroBatcher(runner, window_ms=1)

        async def main():
            for i in range(3):
                await batcher.submit({"tag": i})

        _run(main())
        assert [len(b) for b in runner.batches] == [1, 1, 1]

    def test_arrivals_during_execution_form_next_batch(self):
        runner = Recorder(delay=0.03)
        batcher = MicroBatcher(runner, window_ms=5)

        async def main():
            first = asyncio.ensure_future(batcher.submit({"tag": 0}))
            await asyncio.sleep(0.02)  # batch 0 is executing now
            second = asyncio.ensure_future(batcher.submit({"tag": 1}))
            return await asyncio.gather(first, second)

        responses = _run(main())
        assert len(responses) == 2
        assert len(runner.batches) == 2


class TestErrorsAndShutdown:
    def test_runner_failure_rejects_only_that_batch(self):
        runner = Recorder(fail_on="bad")
        batcher = MicroBatcher(runner, window_ms=5)

        async def main():
            with pytest.raises(RuntimeError, match="batch execution"):
                await batcher.submit({"tag": "bad"})
            ok = await batcher.submit({"tag": "fine"})
            return ok

        assert _run(main()).answer["tag"] == "fine"

    def test_length_mismatch_is_an_error(self):
        batcher = MicroBatcher(lambda requests: [], window_ms=1)

        async def main():
            with pytest.raises(RuntimeError, match="responses"):
                await batcher.submit({"tag": 0})

        _run(main())

    def test_close_drains_then_refuses(self):
        runner = Recorder()
        batcher = MicroBatcher(runner, window_ms=10)

        async def main():
            pending = asyncio.ensure_future(batcher.submit({"tag": 0}))
            await asyncio.sleep(0)  # let the drainer start
            await batcher.close()
            assert pending.done()
            with pytest.raises(RuntimeError, match="closed"):
                await batcher.submit({"tag": 1})
            return await pending

        assert _run(main()).answer["tag"] == 0
        assert batcher.closed

    def test_validation(self):
        with pytest.raises(ValueError, match="window_ms"):
            MicroBatcher(lambda r: [], window_ms=-1)
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatcher(lambda r: [], max_batch=0)
