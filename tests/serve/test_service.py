"""QueryService: determinism, coalescing, telemetry, lifecycle.

The central property: **the execution configuration is invisible in
the answers**.  One canonical reference (serial, pure python, no
index, one request at a time) pins every (workers x backend x index)
configuration of the micro-batched path -- all answers must be
bit-identical, per the engine/cascade invariants the service builds
on.
"""

import os

import pytest

from repro.runtime import Runtime
from repro.serve import QueryService
from tests.conftest import make_series

SERIES = [make_series(20, seed=800 + i) for i in range(6)]
STREAM = make_series(60, seed=810)
QUERIES = [make_series(20, seed=820 + i) for i in range(3)]


def _burst():
    return [
        {"op": "1nn", "dataset": "coll", "band": 3,
         "query": QUERIES[0]},
        {"op": "1nn", "dataset": "coll", "band": 3,
         "query": QUERIES[1], "index": False},
        {"op": "1nn", "dataset": "coll", "band": 3,
         "query": QUERIES[2], "index": False},
        {"op": "knn", "dataset": "coll", "band": 3, "k": 3,
         "query": QUERIES[0]},
        {"op": "subsequence", "dataset": "stream", "band": 2,
         "query": QUERIES[1][:10]},
        {"op": "subsequence", "dataset": "stream", "band": 2, "k": 2,
         "query": QUERIES[1][:10]},
        {"op": "discord", "dataset": "stream", "window": 10, "band": 2},
        {"op": "motif", "dataset": "stream", "window": 10, "band": 2},
    ]


def _service(**kwargs) -> QueryService:
    service = QueryService(**kwargs)
    service.register("coll", SERIES)
    service.register_stream("stream", STREAM)
    return service


@pytest.fixture(scope="module")
def canonical():
    """Serial / python-backend / index-free / one-at-a-time answers."""
    with _service(
        runtime=Runtime(workers=1, backend="python"), use_index=False,
        cache_results=False,
    ) as service:
        return [service.execute(r).answer for r in _burst()]


class TestDeterminism:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("backend", ["python", "numpy"])
    @pytest.mark.parametrize("use_index", [True, False])
    def test_batched_bit_identical_to_canonical(
        self, canonical, workers, backend, use_index
    ):
        with _service(
            runtime=Runtime(workers=workers, backend=backend),
            use_index=use_index,
        ) as service:
            responses = service.execute_batch(_burst())
        assert all(r.ok for r in responses), [
            r.error for r in responses if not r.ok
        ]
        assert [r.answer for r in responses] == canonical

    def test_batched_equals_one_at_a_time_same_service(self, canonical):
        with _service(
            runtime=Runtime(workers=2), cache_results=False
        ) as service:
            singles = [service.execute(r).answer for r in _burst()]
            batched = [
                r.answer for r in service.execute_batch(_burst())
            ]
        assert singles == batched == canonical

    def test_result_cache_answers_identical(self, canonical):
        with _service(runtime=Runtime(workers=2)) as service:
            cold = [r.answer for r in service.execute_batch(_burst())]
            warm = [r.answer for r in service.execute_batch(_burst())]
        assert cold == warm == canonical


class TestCoalescing:
    def test_same_dataset_1nn_requests_fuse(self, canonical):
        burst = [
            {"op": "1nn", "dataset": "coll", "band": 3,
             "query": q, "index": False}
            for q in QUERIES
        ]
        with _service(
            runtime=Runtime(workers=2), cache_results=False
        ) as service:
            responses = service.execute_batch(burst)
            stats = service.stats()
        assert stats.coalesced_requests == len(QUERIES)
        assert [r.answer for r in responses] == [
            canonical[0], canonical[1], canonical[2]
        ]
        for r in responses:
            assert r.telemetry.batched_with == len(QUERIES)
            assert r.telemetry.dtw_calls == len(SERIES)

    def test_serial_runtime_never_coalesces(self):
        burst = [
            {"op": "1nn", "dataset": "coll", "band": 3,
             "query": q, "index": False}
            for q in QUERIES
        ]
        with _service(
            runtime=Runtime(workers=1, backend="python"),
            cache_results=False,
        ) as service:
            service.execute_batch(burst)
            assert service.stats().coalesced_requests == 0

    def test_mixed_bands_fuse_separately(self):
        burst = [
            {"op": "1nn", "dataset": "coll", "band": 3,
             "query": QUERIES[0], "index": False},
            {"op": "1nn", "dataset": "coll", "band": 3,
             "query": QUERIES[1], "index": False},
            {"op": "1nn", "dataset": "coll", "band": 4,
             "query": QUERIES[2], "index": False},
        ]
        with _service(
            runtime=Runtime(workers=2), cache_results=False
        ) as service:
            responses = service.execute_batch(burst)
            # only the band-3 pair fuses; band-4 runs alone
            assert service.stats().coalesced_requests == 2
        assert all(r.ok for r in responses)

    def test_error_isolated_from_batch_mates(self, canonical):
        burst = [
            {"op": "1nn", "dataset": "coll", "band": 3,
             "query": QUERIES[0]},
            {"op": "1nn", "dataset": "missing", "band": 3,
             "query": QUERIES[0]},
            {"op": "nonsense", "dataset": "coll"},
            {"op": "1nn", "dataset": "coll", "band": 3,
             "query": QUERIES[0][:5]},  # wrong length
            {"op": "discord", "dataset": "stream", "window": 10,
             "band": 2},
        ]
        with _service(runtime=Runtime(workers=2)) as service:
            responses = service.execute_batch(burst)
            stats = service.stats()
        assert responses[0].ok and responses[0].answer == canonical[0]
        assert not responses[1].ok and "missing" in responses[1].error
        assert not responses[2].ok and "op" in responses[2].error
        assert not responses[3].ok and "length" in responses[3].error
        assert responses[4].ok and responses[4].answer == canonical[6]
        assert stats.errors == 3


class TestTelemetry:
    def test_per_request_counters_reconcile(self):
        with _service(runtime=Runtime(workers=2)) as service:
            responses = service.execute_batch(_burst())
            responses += service.execute_batch(_burst())  # cached round
            stats = service.stats()
        calls = sum(r.telemetry.dtw_calls for r in responses if r.ok)
        cells = sum(r.telemetry.dp_cells for r in responses if r.ok)
        assert calls == stats.dtw_calls
        assert cells == stats.dp_cells

    def test_cached_repeat_is_free_and_flagged(self):
        with _service(runtime=Runtime(workers=1)) as service:
            first = service.execute(_burst()[0])
            again = service.execute(_burst()[0])
        assert not first.telemetry.cached
        assert again.telemetry.cached
        assert again.telemetry.dtw_calls == 0
        assert again.answer == first.answer

    def test_index_builds_amortised(self):
        with _service(
            runtime=Runtime(workers=1), cache_results=False
        ) as service:
            first = service.execute(_burst()[0])
            warm = service.execute({
                "op": "1nn", "dataset": "coll", "band": 3,
                "query": QUERIES[1],
            })
        assert first.telemetry.index_builds == 1
        assert warm.telemetry.index_builds == 0

    def test_latency_percentiles_populated(self):
        with _service(runtime=Runtime(workers=1)) as service:
            service.execute_batch(_burst())
            stats = service.stats()
        assert stats.p99_latency_ms >= stats.p50_latency_ms > 0.0
        payload = stats.to_dict()
        assert {"p50_latency_ms", "p99_latency_ms"} <= payload.keys()


class TestLifecycle:
    def test_close_is_idempotent_and_final(self):
        service = _service(runtime=Runtime(workers=2))
        service.execute(_burst()[0])
        service.close()
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.execute(_burst()[0])
        with pytest.raises(RuntimeError, match="closed"):
            service.register("x", SERIES)

    def test_owned_executor_shm_reclaimed(self):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this platform")
        before = set(os.listdir("/dev/shm"))
        service = _service(runtime=Runtime(workers=2))
        service.execute_batch([
            {"op": "1nn", "dataset": "coll", "band": 3,
             "query": q, "index": False}
            for q in QUERIES
        ])
        service.close()
        assert not (set(os.listdir("/dev/shm")) - before)

    def test_reregistration_invalidates_by_fingerprint(self):
        with _service(runtime=Runtime(workers=1)) as service:
            service.execute(_burst()[0])
            assert service.artifacts.stats.index_builds == 1
            mutated = [list(s) for s in SERIES]
            mutated[0][0] += 1.0
            service.register("coll", mutated)
            response = service.execute(_burst()[0])
            # new content: index rebuilt, result recomputed
            assert service.artifacts.stats.index_builds == 2
            assert not response.telemetry.cached

    def test_identical_reregistration_keeps_artifacts(self):
        with _service(runtime=Runtime(workers=1)) as service:
            service.execute(_burst()[0])
            service.register("coll", [list(s) for s in SERIES])
            warm = service.execute({
                "op": "1nn", "dataset": "coll", "band": 3,
                "query": QUERIES[1],
            })
            assert service.artifacts.stats.index_builds == 1
            assert warm.telemetry.index_builds == 0

    def test_explicit_executor_not_shut_down(self):
        from repro.batch import BatchExecutor

        with BatchExecutor(workers=2, cap=None) as exe:
            service = _service(runtime=Runtime(executor=exe))
            service.execute(_burst()[1])
            service.close()
            assert not exe.closed
