"""Multivariate datasets through the serve front door.

``repro.serve`` accepts ``(length, dims)`` collections and streams
with the same guarantees as the scalar path: 1nn/knn answers equal
the brute-force dependent scan, the coalesced parallel route is
bit-identical to serial execution, telemetry still reconciles, and
the scalar-only RLE fast path refuses multivariate data loudly
instead of silently mangling it.
"""

import random

import pytest

from repro.core.multivariate import cdtw_nd
from repro.runtime import Runtime
from repro.serve.protocol import ProtocolError, _as_series, parse_request
from repro.serve.service import QueryService
from tests.conftest import make_vectors


def _nd_stream(n=60, dims=2, seed=0):
    rng = random.Random(seed)
    out = []
    values = [0.0] * dims
    for _ in range(n):
        values = [v + rng.uniform(-1.0, 1.0) for v in values]
        out.append(tuple(values))
    return out


@pytest.fixture
def collection():
    return [make_vectors(14, 3, s) for s in range(5)]


@pytest.fixture
def service():
    with QueryService() as svc:
        yield svc


def _brute(query, candidates, band):
    d = [cdtw_nd(query, c, band=band).distance for c in candidates]
    best = min(range(len(d)), key=lambda i: (d[i], i))
    return best, d[best]


class TestQueryParsing:
    def test_nested_query_becomes_vector_samples(self):
        got = _as_series([[0, 1.5], (2, 3)])
        assert got == ((0.0, 1.5), (2.0, 3.0))

    def test_ragged_samples_refused(self):
        with pytest.raises(ProtocolError, match="equal-"):
            _as_series([(0.0, 1.0), (2.0,)])

    def test_mixed_flat_and_vector_refused(self):
        with pytest.raises(ProtocolError, match="equal-"):
            _as_series([(0.0, 1.0), 2.0])

    def test_empty_sample_refused(self):
        with pytest.raises(ProtocolError, match="must not be empty"):
            _as_series([()])

    def test_non_numeric_component_refused(self):
        with pytest.raises(ProtocolError, match="only numbers"):
            _as_series([(0.0, "x")])

    def test_parse_request_carries_nd_query(self):
        req = parse_request({
            "op": "1nn", "dataset": "d",
            "query": [[0, 1], [2, 3]], "band": 2,
        })
        assert req.query == ((0.0, 1.0), (2.0, 3.0))


class TestRegistration:
    def test_nd_collection_records_dims(self, service, collection):
        service.register("gestures", collection)
        entry = service.registry.get("gestures")
        assert entry.dims == 3
        assert entry.kind == "collection"

    def test_nd_skips_rle_profile(self, service, collection):
        """The compressed-domain engine is scalar, so nd datasets get
        an inert RLE profile and never auto-route."""
        service.register("gestures", collection)
        entry = service.registry.get("gestures")
        assert entry.run_counts == ()
        assert entry.compression_ratio == 1.0
        assert entry.rle_exact is False

    def test_nd_stream_records_dims(self, service):
        service.register_stream("walk", _nd_stream(n=40, dims=2, seed=1))
        assert service.registry.get("walk").dims == 2

    def test_mixed_dataset_refused(self, service):
        with pytest.raises(ProtocolError, match="all-scalar or all"):
            service.register(
                "bad", [[0.0, 1.0, 2.0], [(0.0, 1.0), (2.0, 3.0)]]
            )


class Test1nnAndKnn:
    def test_1nn_matches_brute_force(self, service, collection):
        service.register("gestures", collection)
        query = make_vectors(14, 3, 99)
        resp = service.execute({
            "op": "1nn", "dataset": "gestures",
            "query": query, "band": 3,
        })
        assert resp.ok, resp.error
        best, dist = _brute(query, collection, 3)
        assert resp.answer == {"index": best, "distance": dist}
        assert resp.telemetry.dtw_calls > 0

    def test_knn_matches_brute_ranking(self, service, collection):
        service.register("gestures", collection)
        query = make_vectors(14, 3, 42)
        resp = service.execute({
            "op": "knn", "dataset": "gestures",
            "query": query, "band": 3, "k": 3,
        })
        assert resp.ok, resp.error
        d = [cdtw_nd(query, c, band=3).distance for c in collection]
        want = sorted(range(len(d)), key=lambda j: (d[j], j))[:3]
        assert [n["index"] for n in resp.answer["neighbors"]] == want
        assert [n["distance"] for n in resp.answer["neighbors"]] == [
            d[j] for j in want
        ]

    def test_coalesced_parallel_matches_serial(self, collection):
        queries = [make_vectors(14, 3, 100 + s) for s in range(3)]
        requests = [
            {
                "op": "1nn", "dataset": "gestures", "query": q,
                "band": 3, "index": False,
            }
            for q in queries
        ]
        with QueryService() as serial_svc:
            serial_svc.register("gestures", collection)
            serial = [serial_svc.execute(r).answer for r in requests]
        with QueryService(
            runtime=Runtime(workers=2), cache_results=False
        ) as par_svc:
            par_svc.register("gestures", collection)
            responses = par_svc.execute_batch(requests)
            assert all(r.ok for r in responses)
            assert [r.answer for r in responses] == serial
            assert par_svc.stats().coalesced_requests == 3

    def test_query_dims_mismatch_refused(self, service, collection):
        service.register("gestures", collection)
        resp = service.execute({
            "op": "1nn", "dataset": "gestures",
            "query": make_vectors(14, 2, 1), "band": 3,
        })
        assert not resp.ok
        assert "channel" in resp.error

    def test_scalar_query_on_nd_dataset_refused(self, service, collection):
        service.register("gestures", collection)
        resp = service.execute({
            "op": "1nn", "dataset": "gestures",
            "query": [0.0] * 14, "band": 3,
        })
        assert not resp.ok
        assert "channel" in resp.error

    def test_rle_forced_on_nd_dataset_refused(self, service, collection):
        service.register("gestures", collection)
        resp = service.execute({
            "op": "1nn", "dataset": "gestures",
            "query": make_vectors(14, 3, 7),
            "band": 3, "rle": True,
        })
        assert not resp.ok
        assert "multivariate" in resp.error
        assert "univariate" in resp.error


class TestStreamOps:
    def test_discord_motif_subsequence_run_on_nd_stream(self, service):
        stream = _nd_stream(n=56, dims=2, seed=5)
        service.register_stream("walk", stream)
        discord = service.execute({
            "op": "discord", "dataset": "walk",
            "window": 12, "band": 2, "step": 2,
        })
        assert discord.ok, discord.error
        assert set(discord.answer) == {"start", "score", "neighbor_start"}
        motif = service.execute({
            "op": "motif", "dataset": "walk",
            "window": 10, "band": 2, "step": 2,
        })
        assert motif.ok, motif.error
        assert set(motif.answer) == {"start_a", "start_b", "distance"}
        sub = service.execute({
            "op": "subsequence", "dataset": "walk",
            "query": [list(v) for v in stream[20:32]],
            "band": 2,
        })
        assert sub.ok, sub.error
        assert sub.answer["start"] == 20

    def test_indexed_route_matches_index_free(self, collection):
        query = make_vectors(14, 3, 55)
        request = {
            "op": "1nn", "dataset": "gestures", "query": query,
            "band": 3,
        }
        answers = {}
        for use_index in (True, False):
            with QueryService(use_index=use_index) as svc:
                svc.register("gestures", collection)
                resp = svc.execute(request)
                assert resp.ok, resp.error
                answers[use_index] = resp.answer
        assert answers[True] == answers[False]
