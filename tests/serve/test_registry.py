"""DatasetRegistry naming + ArtifactCache fingerprint semantics."""

import pytest

from repro.serve import ArtifactCache, DatasetRegistry, ProtocolError
from tests.conftest import make_series

SERIES = [make_series(16, seed=700 + i) for i in range(4)]
STREAM = make_series(48, seed=710)


class TestRegistry:
    def test_register_and_get(self):
        reg = DatasetRegistry()
        entry = reg.register("a", SERIES)
        assert entry.kind == "collection"
        assert reg.get("a") is entry
        assert reg.names() == ("a",)

    def test_same_content_same_fingerprint(self):
        reg = DatasetRegistry()
        first = reg.register("a", SERIES)
        again = reg.register("a", [list(s) for s in SERIES])
        assert first.fingerprint == again.fingerprint

    def test_changed_content_changes_fingerprint(self):
        reg = DatasetRegistry()
        first = reg.register("a", SERIES)
        mutated = [list(s) for s in SERIES]
        mutated[0][0] += 1.0
        assert reg.register("a", mutated).fingerprint != first.fingerprint

    def test_stream_kind(self):
        reg = DatasetRegistry()
        entry = reg.register_stream("s", STREAM)
        assert entry.kind == "stream"
        assert entry.stream == tuple(STREAM)

    def test_unknown_name_names_registered(self):
        reg = DatasetRegistry()
        reg.register("known", SERIES)
        with pytest.raises(ProtocolError, match="known"):
            reg.get("missing")

    def test_rejects_bad_series(self):
        reg = DatasetRegistry()
        with pytest.raises(ProtocolError, match="no series"):
            reg.register("empty", [])
        with pytest.raises(ValueError):
            reg.register("nan", [[1.0, float("nan")]])

    def test_drop(self):
        reg = DatasetRegistry()
        reg.register("a", SERIES)
        reg.drop("a")
        assert reg.names() == ()


class TestArtifactCache:
    def _entry(self, reg=None):
        reg = reg or DatasetRegistry()
        return reg.register("a", SERIES)

    def test_index_built_once_then_hit(self):
        cache = ArtifactCache()
        entry = self._entry()
        first = cache.index_for(entry, band=2)
        again = cache.index_for(entry, band=2)
        assert again is first
        assert cache.stats.index_builds == 1
        assert cache.stats.index_hits == 1

    def test_different_band_is_a_different_index(self):
        cache = ArtifactCache()
        entry = self._entry()
        assert cache.index_for(entry, band=2) is not cache.index_for(
            entry, band=3
        )
        assert cache.stats.index_builds == 2

    def test_stream_index_keyed_by_window_step_normalize(self):
        cache = ArtifactCache()
        reg = DatasetRegistry()
        entry = reg.register_stream("s", STREAM)
        a = cache.index_for(entry, band=2, window=12, step=1)
        b = cache.index_for(entry, band=2, window=12, step=2)
        c = cache.index_for(entry, band=2, window=12, step=1)
        assert a is not b
        assert c is a
        assert cache.stats.index_builds == 2

    def test_retain_only_sweeps_stale_fingerprints(self):
        cache = ArtifactCache()
        reg = DatasetRegistry()
        entry = reg.register("a", SERIES)
        cache.index_for(entry, band=2)
        cache.put_result((entry.fingerprint, "1nn", (), (1.0,)), {"x": 1})
        # re-register with new content: the old fingerprint vanishes
        mutated = [list(s) for s in SERIES]
        mutated[0][0] += 1.0
        reg.register("a", mutated)
        dropped = cache.retain_only(reg.fingerprints())
        assert dropped == 2
        assert cache.index_for(entry, band=2) is not None  # rebuilt
        assert cache.stats.index_builds == 2

    def test_result_lru_bound(self):
        cache = ArtifactCache(max_results=2)
        for i in range(4):
            cache.put_result(("fp", "op", (), (float(i),)), i)
        assert cache.stats.result_entries == 2
        assert cache.get_result(("fp", "op", (), (0.0,))) is None
        assert cache.get_result(("fp", "op", (), (3.0,))) == 3

    def test_index_lru_bound(self):
        cache = ArtifactCache(max_indexes=1)
        reg = DatasetRegistry()
        entry = reg.register("a", SERIES)
        cache.index_for(entry, band=2)
        cache.index_for(entry, band=3)  # evicts band=2
        cache.index_for(entry, band=2)  # rebuild
        assert cache.stats.index_builds == 3
        assert cache.stats.evictions >= 1

    def test_peek_does_not_count(self):
        cache = ArtifactCache()
        cache.put_result(("fp", "op", (), None), {"v": 1})
        assert cache.peek_result(("fp", "op", (), None))
        assert not cache.peek_result(("fp", "other", (), None))
        assert cache.stats.result_hits == 0
