"""parse_request: the single validation gate for every entry path."""

import pytest

from repro.serve import ProtocolError, parse_request
from repro.serve.protocol import OPS


def _ok_1nn(**over):
    base = {"op": "1nn", "dataset": "d", "band": 3,
            "query": [0.0, 1.0, 2.0]}
    base.update(over)
    return base


class TestValidRequests:
    def test_minimal_1nn(self):
        req = parse_request(_ok_1nn())
        assert req.op == "1nn"
        assert req.dataset == "d"
        assert req.query == (0.0, 1.0, 2.0)
        assert req.param("band") == 3

    def test_query_coerced_to_float_tuple(self):
        req = parse_request(_ok_1nn(query=[1, 2, 3]))
        assert req.query == (1.0, 2.0, 3.0)
        assert all(isinstance(v, float) for v in req.query)

    def test_id_passes_through(self):
        assert parse_request(_ok_1nn(id="abc")).id == "abc"
        assert parse_request(_ok_1nn(id=7)).id == "7"
        assert parse_request(_ok_1nn()).id is None

    def test_discord_takes_no_query(self):
        req = parse_request(
            {"op": "discord", "dataset": "s", "window": 8, "band": 2}
        )
        assert req.query is None
        assert req.param("window") == 8

    def test_subsequence_full_params(self):
        req = parse_request({
            "op": "subsequence", "dataset": "s", "band": 2, "k": 3,
            "step": 2, "normalize": False, "query": [1.0, 2.0],
        })
        assert req.param("k") == 3
        assert req.param("step") == 2
        assert req.param("normalize") is False


class TestRejections:
    @pytest.mark.parametrize("op", ["nope", "", None, 7])
    def test_unknown_op(self, op):
        with pytest.raises(ProtocolError, match="op"):
            parse_request({"op": op, "dataset": "d"})

    def test_missing_dataset(self):
        with pytest.raises(ProtocolError, match="dataset"):
            parse_request({"op": "1nn", "band": 3, "query": [1.0]})

    def test_missing_band(self):
        with pytest.raises(ProtocolError, match="band"):
            parse_request(
                {"op": "1nn", "dataset": "d", "query": [1.0]}
            )

    def test_missing_query(self):
        with pytest.raises(ProtocolError, match="query"):
            parse_request({"op": "1nn", "dataset": "d", "band": 3})

    def test_query_on_queryless_op(self):
        with pytest.raises(ProtocolError, match="query"):
            parse_request({
                "op": "motif", "dataset": "s", "window": 8, "band": 2,
                "query": [1.0],
            })

    def test_unknown_parameter(self):
        with pytest.raises(ProtocolError, match="parameter"):
            parse_request(_ok_1nn(radius=2))

    @pytest.mark.parametrize("band", [0, -1, 1.5, True, "3"])
    def test_bad_band(self, band):
        with pytest.raises(ProtocolError, match="band"):
            parse_request(_ok_1nn(band=band))

    def test_empty_query(self):
        with pytest.raises(ProtocolError, match="empty"):
            parse_request(_ok_1nn(query=[]))

    def test_non_numeric_query(self):
        with pytest.raises(ProtocolError, match="numbers"):
            parse_request(_ok_1nn(query=["a", "b"]))

    def test_discord_needs_window(self):
        with pytest.raises(ProtocolError, match="window"):
            parse_request({"op": "discord", "dataset": "s", "band": 2})

    def test_non_bool_index_flag(self):
        with pytest.raises(ProtocolError, match="index"):
            parse_request(_ok_1nn(index=1))

    def test_non_mapping(self):
        with pytest.raises(ProtocolError, match="mapping"):
            parse_request([1, 2, 3])


class TestOpsTable:
    def test_every_op_parses(self):
        samples = {
            "1nn": _ok_1nn(),
            "knn": {"op": "knn", "dataset": "d", "band": 3, "k": 2,
                    "query": [1.0, 2.0]},
            "subsequence": {"op": "subsequence", "dataset": "s",
                            "band": 2, "query": [1.0, 2.0]},
            "discord": {"op": "discord", "dataset": "s", "window": 4,
                        "band": 2},
            "motif": {"op": "motif", "dataset": "s", "window": 4,
                      "band": 2},
        }
        assert set(samples) == set(OPS)
        for op, raw in samples.items():
            assert parse_request(raw).op == op
