"""Legacy execution kwargs: one warning each, bit-identical results.

Every public entry point that grew `workers=` / `backend=` /
`executor=` across PRs 1-4 now funnels them through
`repro.runtime._resolve_legacy`.  The contract, per entry point and
per kwarg: exactly ONE DeprecationWarning naming the replacement, and
a result bit-identical to the `runtime=`-style call.  The batch
engine's own `batch_distances(..., workers=)` keyword is native and
must stay silent.
"""

from __future__ import annotations

import warnings

import pytest

from repro.batch import BatchExecutor, batch_distances
from repro.classify.knn import (
    DistanceSpec,
    KNearestNeighbors,
    OneNearestNeighbor,
)
from repro.classify.loocv import best_window_search, loocv_error
from repro.cluster.dba import dba
from repro.cluster.kmeans import dtw_kmeans
from repro.cluster.linkage import linkage_from_series
from repro.core.matrix import distance_matrix
from repro.lowerbounds.cascade import LowerBoundCascade
from repro.runtime import Runtime
from repro.search.cumulative import cdtw_cumulative_abandon
from repro.search.nn_search import nearest_neighbor
from tests.conftest import make_series

SERIES = [make_series(16, seed) for seed in range(6)]
LABELS = ["a", "b", "a", "b", "a", "b"]
QUERY = make_series(16, 99)
SPEC = DistanceSpec("cdtw", window=0.2)


def run_matrix(**kw):
    m = distance_matrix(SERIES, measure="cdtw", band=2, **kw)
    return (m.values, m.cells)


def run_nn(**kw):
    r = nearest_neighbor(QUERY, SERIES, strategy="cdtw", band=2, **kw)
    return (r.index, r.distance, r.cells)


def run_one_nn(**kw):
    clf = OneNearestNeighbor(SPEC, **kw).fit(SERIES, LABELS)
    return tuple(clf.predict([QUERY, SERIES[2]]))


def run_knn(**kw):
    clf = KNearestNeighbors(SPEC, k=3, **kw).fit(SERIES, LABELS)
    return tuple(clf.predict([QUERY, SERIES[2]]))


def run_loocv(**kw):
    return loocv_error(SERIES, LABELS, SPEC, **kw)


def run_window_search(**kw):
    return best_window_search(
        SERIES, LABELS, windows=(0.0, 0.2), **kw
    )


def run_linkage(**kw):
    return linkage_from_series(SERIES, measure="cdtw", band=2, **kw)


def run_dba(**kw):
    return dba(SERIES, band=2, max_iterations=2, **kw)


def run_kmeans(**kw):
    return dtw_kmeans(SERIES, 2, band=2, max_iterations=2, **kw)


def run_cascade(**kw):
    cascade = LowerBoundCascade(QUERY, band=2, **kw)
    return cascade.nearest(SERIES)


def run_cumulative(**kw):
    return cdtw_cumulative_abandon(
        SERIES[0], SERIES[1], band=2, threshold=50.0, **kw
    )


# entry point -> (runner, legacy kwargs it accepts)
ENTRY_POINTS = {
    "distance_matrix": (run_matrix, ("workers", "backend", "executor")),
    "nearest_neighbor": (run_nn, ("workers", "backend", "executor")),
    "OneNearestNeighbor": (run_one_nn, ("workers", "executor")),
    "KNearestNeighbors": (run_knn, ("workers", "executor")),
    "loocv_error": (run_loocv, ("workers", "executor")),
    "best_window_search": (run_window_search, ("workers", "executor")),
    "linkage_from_series": (run_linkage, ("workers", "backend", "executor")),
    "dba": (run_dba, ("workers", "backend", "executor")),
    "dtw_kmeans": (run_kmeans, ("workers", "backend", "executor")),
    "LowerBoundCascade": (run_cascade, ("backend",)),
    "cdtw_cumulative_abandon": (run_cumulative, ("backend",)),
}

CASES = [
    (name, kwarg)
    for name, (_, kwargs) in sorted(ENTRY_POINTS.items())
    for kwarg in kwargs
]


@pytest.fixture(scope="module")
def shared_executor():
    with BatchExecutor(workers=2) as exe:
        yield exe


def _kwarg_value(kwarg, shared_executor):
    return {
        "workers": 2,
        "backend": "numpy",
        "executor": shared_executor,
    }[kwarg]


def _deprecations(record):
    return [
        w for w in record if issubclass(w.category, DeprecationWarning)
    ]


@pytest.mark.parametrize("name,kwarg", CASES)
def test_legacy_kwarg_warns_once_and_matches_runtime(
    name, kwarg, shared_executor
):
    runner, _ = ENTRY_POINTS[name]
    value = _kwarg_value(kwarg, shared_executor)

    with warnings.catch_warnings(record=True) as record:
        warnings.simplefilter("always")
        legacy = runner(**{kwarg: value})
    emitted = _deprecations(record)
    assert len(emitted) == 1, (
        f"{name}({kwarg}=...) emitted {len(emitted)} "
        "DeprecationWarnings; the shim promises exactly one per call"
    )
    message = str(emitted[0].message)
    assert name in message
    assert f"{kwarg}=" in message
    assert "runtime=repro.runtime.Runtime" in message

    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        modern = runner(runtime=Runtime(**{kwarg: value}))
    assert legacy == modern


@pytest.mark.parametrize("name,kwarg", CASES)
def test_runtime_style_is_silent(name, kwarg, shared_executor):
    runner, _ = ENTRY_POINTS[name]
    value = _kwarg_value(kwarg, shared_executor)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        runner(runtime=Runtime(**{kwarg: value}))


def test_combined_legacy_kwargs_still_warn_once():
    with warnings.catch_warnings(record=True) as record:
        warnings.simplefilter("always")
        legacy = run_matrix(workers=2, backend="numpy")
    emitted = _deprecations(record)
    assert len(emitted) == 1
    message = str(emitted[0].message)
    assert "backend=" in message and "workers=" in message
    modern = run_matrix(runtime=Runtime(workers=2, backend="numpy"))
    assert legacy == modern


def test_engine_workers_kwarg_is_native_not_deprecated():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        result = batch_distances(
            SERIES, measure="cdtw", band=2, workers=2
        )
    serial = batch_distances(SERIES, measure="cdtw", band=2)
    assert result.distances == serial.distances


def test_spec_backend_is_spec_level_not_deprecated():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        spec = DistanceSpec("cdtw", window=0.2, backend="numpy")
        clf = OneNearestNeighbor(spec).fit(SERIES, LABELS)
        assert tuple(clf.predict([QUERY])) == run_one_nn()[:1]
