"""Tests for the unified execution context (repro.runtime)."""
