"""No consumer module resolves an execution knob on its own.

The refactor's invariant: backend, worker-count and executor
resolution live in exactly one place (`repro.runtime`, with the batch
engine and the kernel registry as the substrates underneath it).  A
consumer that calls `resolve_backend` / `get_kernels` /
`default_executor`, counts CPUs, or re-derives "am I parallel?" from
`workers > 1` has grown a private knob again.  This scan tokenises
each consumer module and fails on any such code token -- strings and
comments are exempt, so docs may still *explain* the machinery.
"""

from __future__ import annotations

import io
import tokenize
from pathlib import Path

import pytest

import repro

SRC = Path(repro.__file__).resolve().parent

# every module refactored onto Runtime; engine/kernels/executor are
# the substrates and repro.runtime is the resolver -- all deliberately
# absent from this list
CONSUMER_MODULES = (
    "core/matrix.py",
    "lowerbounds/cascade.py",
    "search/cumulative.py",
    "search/nn_search.py",
    "search/subsequence.py",
    "classify/knn.py",
    "classify/loocv.py",
    "classify/learned_band.py",
    "cluster/linkage.py",
    "cluster/dba.py",
    "cluster/kmeans.py",
    "anomaly/discord.py",
    "motifs/discovery.py",
    "index/dataset_index.py",
    "index/search.py",
    "index/bench.py",
)

# modules that accept an ahead-of-time index as an opaque ``index=``
# argument; they may only *call its methods*, never construct or load
# index internals themselves -- otherwise the fingerprint-verification
# gate could be bypassed by a consumer building its own stale copy
INDEX_CONSUMER_MODULES = (
    "search/nn_search.py",
    "search/subsequence.py",
    "classify/knn.py",
    "classify/loocv.py",
    "anomaly/discord.py",
    "motifs/discovery.py",
)

FORBIDDEN_INDEX_NAMES = frozenset(
    {
        "DatasetIndex",
        "IndexSearcher",
        "IndexScan",
        "CascadeBatch",
        "build_index",
        "build_stream_index",
        "load_index",
        "save_index",
    }
)

# single-name tokens a consumer must never use in code
FORBIDDEN_NAMES = frozenset(
    {
        "resolve_backend",
        "resolve_executor",
        "get_kernels",
        "default_executor",
        "cpu_count",
    }
)

# multi-token knob re-derivations (normalised to single spaces)
FORBIDDEN_PHRASES = (
    "workers > 1",
    "executor is not None",
)

SKIP_TYPES = {
    tokenize.STRING,
    tokenize.COMMENT,
    tokenize.NL,
    tokenize.NEWLINE,
    tokenize.INDENT,
    tokenize.DEDENT,
    tokenize.ENCODING,
}


def _code_tokens(path: Path):
    with open(path, "rb") as handle:
        for tok in tokenize.tokenize(handle.readline):
            if tok.type not in SKIP_TYPES:
                yield tok


@pytest.mark.parametrize("module", CONSUMER_MODULES)
def test_module_exists(module):
    assert (SRC / module).is_file(), f"consumer list is stale: {module}"


@pytest.mark.parametrize("module", CONSUMER_MODULES)
def test_no_private_knob_resolution(module):
    offending = [
        (tok.start[0], tok.string)
        for tok in _code_tokens(SRC / module)
        if tok.type == tokenize.NAME and tok.string in FORBIDDEN_NAMES
    ]
    assert not offending, (
        f"{module} resolves an execution knob itself {offending}; "
        "route it through repro.runtime.Runtime instead"
    )


@pytest.mark.parametrize("module", CONSUMER_MODULES)
def test_no_rederived_parallel_checks(module):
    code = " ".join(t.string for t in _code_tokens(SRC / module))
    hits = [p for p in FORBIDDEN_PHRASES if p in code]
    assert not hits, (
        f"{module} re-derives the execution mode {hits}; "
        "use Runtime.parallel"
    )


@pytest.mark.parametrize("module", INDEX_CONSUMER_MODULES)
def test_index_consumers_stay_duck_typed(module):
    offending = [
        (tok.start[0], tok.string)
        for tok in _code_tokens(SRC / module)
        if tok.type == tokenize.NAME
        and tok.string in FORBIDDEN_INDEX_NAMES
    ]
    assert not offending, (
        f"{module} constructs index internals itself {offending}; "
        "consumers drive the opaque index= object's methods only"
    )


def test_the_scan_itself_catches_violations(tmp_path):
    victim = tmp_path / "mod.py"
    victim.write_text(
        '"""docstring saying resolve_backend is fine."""\n'
        "# comment: workers > 1 is fine too\n"
        "parallel = workers > 1\n"
    )
    code = " ".join(t.string for t in _code_tokens(victim))
    assert "workers > 1" in code
    assert "resolve_backend" not in code
