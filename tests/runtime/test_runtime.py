"""The Runtime value itself: validation, precedence, scoping, env.

The whole point of `repro.runtime` is that there is exactly one
resolution order -- per-call > context manager > process default >
environment > built-in -- and that an explicit per-call Runtime is a
*complete* statement that never merges with ambient state.  These
tests pin that contract.
"""

from __future__ import annotations

import pytest

from repro.core.kernels import use_backend
from repro.runtime import (
    Runtime,
    default_runtime,
    set_default_runtime,
    use_runtime,
)


@pytest.fixture(autouse=True)
def _clean_default():
    """Never leak an explicit process default across tests."""
    previous = set_default_runtime(None)
    try:
        yield
    finally:
        set_default_runtime(previous)


class TestConstruction:
    def test_builtin_default_is_serial_pure_python(self):
        rt = Runtime()
        assert rt.workers == 1
        assert rt.backend is None
        assert rt.executor is None
        assert rt.chunksize is None
        assert not rt.parallel

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Runtime().workers = 4  # type: ignore[misc]

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="workers must be >= 1"):
            Runtime(workers=0)

    def test_workers_must_be_an_int(self):
        with pytest.raises(ValueError, match="int >= 1"):
            Runtime(workers="2")  # type: ignore[arg-type]
        with pytest.raises(ValueError, match="int >= 1"):
            Runtime(workers=True)  # type: ignore[arg-type]

    def test_backend_validated_at_construction(self):
        with pytest.raises(ValueError):
            Runtime(backend="no-such-backend")

    def test_chunksize_validated(self):
        Runtime(chunksize="auto")
        Runtime(chunksize="legacy")
        Runtime(chunksize=7)
        with pytest.raises(ValueError, match="chunksize"):
            Runtime(chunksize=0)
        with pytest.raises(ValueError, match="chunksize"):
            Runtime(chunksize="eager")

    def test_executor_validated(self):
        Runtime(executor="default")
        with pytest.raises(TypeError, match="executor"):
            Runtime(executor=42)


class TestDerivedViews:
    def test_parallel_via_workers_or_executor(self):
        assert not Runtime().parallel
        assert Runtime(workers=2).parallel
        assert Runtime(executor="default").parallel

    def test_backend_name_resolves_registry_default_at_call_time(self):
        rt = Runtime()
        assert rt.backend_name == "python"
        with use_backend("numpy"):
            assert rt.backend_name == "numpy"
        assert rt.backend_name == "python"

    def test_pinned_backend_ignores_registry_scoping(self):
        rt = Runtime(backend="python")
        with use_backend("numpy"):
            assert rt.backend_name == "python"

    def test_with_backend(self):
        rt = Runtime(workers=3)
        assert rt.with_backend(None) is rt
        assert rt.with_backend("numpy").backend == "numpy"
        assert rt.with_backend("numpy").workers == 3

    def test_serial_strips_fanout_only(self):
        rt = Runtime(workers=4, backend="numpy", executor="default")
        s = rt.serial()
        assert s.workers == 1
        assert s.executor is None
        assert s.backend == "numpy"
        plain = Runtime(backend="numpy")
        assert plain.serial() is plain

    def test_replace_revalidates(self):
        with pytest.raises(ValueError):
            Runtime().replace(workers=-1)

    def test_describe_is_json_ready(self):
        import json

        d = Runtime(workers=2, backend="numpy").describe()
        assert d["backend"] == "numpy"
        assert d["backend_resolved"] == "numpy"
        assert d["workers"] == 2
        assert d["executor"] is None
        assert d["chunksize"] == "auto"
        assert d["parallel"] is True
        assert d["traced"] is False
        json.dumps(d)


class TestResolvePrecedence:
    def test_explicit_runtime_never_merges_with_process_default(self):
        # the paper-harness pin: Runtime() means serial pure python,
        # no matter what the surrounding process configured
        with use_runtime(Runtime(workers=8, backend="numpy")):
            rt = Runtime.resolve(Runtime())
            assert rt.workers == 1
            assert rt.backend is None

    def test_no_args_resolves_the_process_default(self):
        with use_runtime(Runtime(workers=8)):
            assert Runtime.resolve().workers == 8
        assert Runtime.resolve().workers == 1

    def test_overrides_replace_individual_fields(self):
        base = Runtime(workers=4, backend="numpy")
        rt = Runtime.resolve(base, workers=2)
        assert rt.workers == 2
        assert rt.backend == "numpy"

    def test_overrides_apply_to_the_default_base(self):
        with use_runtime(Runtime(backend="numpy")):
            rt = Runtime.resolve(workers=3)
            assert rt.workers == 3
            assert rt.backend == "numpy"

    def test_resolve_rejects_non_runtime(self):
        with pytest.raises(TypeError, match="runtime must be"):
            Runtime.resolve("numpy")  # type: ignore[arg-type]


class TestProcessDefault:
    def test_set_default_runtime_returns_previous(self):
        a, b = Runtime(workers=2), Runtime(workers=3)
        assert set_default_runtime(a) is None
        assert set_default_runtime(b) is a
        assert default_runtime() is b
        set_default_runtime(None)
        assert default_runtime().workers == 1

    def test_set_default_runtime_rejects_non_runtime(self):
        with pytest.raises(TypeError):
            set_default_runtime("numpy")  # type: ignore[arg-type]

    def test_use_runtime_scopes_and_restores(self):
        outer = Runtime(workers=2)
        with use_runtime(outer):
            assert default_runtime() is outer
            with use_runtime(Runtime(workers=5)):
                assert default_runtime().workers == 5
            assert default_runtime() is outer
        assert default_runtime().workers == 1

    def test_use_runtime_field_shorthand_derives_from_default(self):
        with use_runtime(Runtime(workers=4)):
            with use_runtime(backend="numpy") as rt:
                assert rt.workers == 4
                assert rt.backend == "numpy"

    def test_use_runtime_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_runtime(Runtime(workers=2)):
                raise RuntimeError("boom")
        assert default_runtime().workers == 1

    def test_activate_installs_the_default(self):
        rt = Runtime(workers=2)
        with rt.activate():
            assert default_runtime() is rt
        assert default_runtime().workers == 1


class TestEnvironmentSeeding:
    def test_env_seeds_the_baseline(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        monkeypatch.setenv("REPRO_WORKERS", "3")
        monkeypatch.setenv("REPRO_CHUNKSIZE", "legacy")
        rt = default_runtime()
        assert rt.backend == "numpy"
        assert rt.workers == 3
        assert rt.chunksize == "legacy"

    def test_env_is_reread_each_call(self, monkeypatch):
        assert default_runtime().workers == 1
        monkeypatch.setenv("REPRO_WORKERS", "2")
        assert default_runtime().workers == 2

    def test_explicit_default_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        with use_runtime(Runtime(workers=2)):
            assert default_runtime().workers == 2

    def test_int_chunksize_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNKSIZE", "16")
        assert default_runtime().chunksize == 16

    def test_invalid_env_values_raise(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            default_runtime()
        monkeypatch.delenv("REPRO_WORKERS")
        monkeypatch.setenv("REPRO_EXECUTOR", "warm")
        with pytest.raises(ValueError, match="REPRO_EXECUTOR"):
            default_runtime()
        monkeypatch.delenv("REPRO_EXECUTOR")
        monkeypatch.setenv("REPRO_CHUNKSIZE", "fast")
        with pytest.raises(ValueError, match="REPRO_CHUNKSIZE"):
            default_runtime()
