"""The README's code snippets execute exactly as printed.

Documentation drift is a bug; these tests run the README's Python
blocks verbatim (modulo prints) and assert their claims.
"""

def test_quickstart_block():
    from repro import cdtw, dtw, fastdtw

    x = [0.0, 1.0, 2.0, 1.0, 0.0]
    y = [0.0, 0.0, 1.0, 2.0, 1.0]

    exact = cdtw(x, y, window=0.2, return_path=True)
    assert exact.distance >= 0
    assert exact.path.max_band_deviation() >= 0
    assert exact.cells > 0

    approx = fastdtw(x, y, radius=1)
    assert approx.distance >= dtw(x, y).distance


def test_advisor_block():
    from repro.advisor import analyze

    text = analyze(n=945, warping=0.04).describe()
    assert "Case A" in text
    assert "cDTW" in text


def test_batch_engine_block():
    from repro.batch import batch_distances
    from repro.datasets.random_walk import random_walks

    series = random_walks(12, 128, seed=0)
    result = batch_distances(
        series, measure="cdtw", window=0.1, workers=4
    )
    assert len(result.distances) == 12 * 11 // 2
    assert result.cells > 0
    # the README's determinism claim: workers never change results
    serial = batch_distances(series, measure="cdtw", window=0.1)
    assert result.distances == serial.distances
    assert result.cells == serial.cells


def test_package_docstring_example():
    # the example in repro/__init__.py's module docstring
    from repro import dtw, fastdtw

    x = [0.0, 1.0, 2.0, 1.0, 0.0]
    y = [0.0, 0.0, 1.0, 2.0, 1.0]
    exact = dtw(x, y)
    approx = fastdtw(x, y, radius=1)
    assert exact.distance <= approx.distance


def test_execution_model_block():
    from repro import Runtime, use_runtime
    from repro.core import distance_matrix
    from repro.datasets.random_walk import random_walks

    series = random_walks(6, 64, seed=1)
    rt = Runtime(workers=2, backend="numpy")

    m = distance_matrix(series, measure="cdtw", window=0.1, runtime=rt)
    with use_runtime(rt):
        m2 = distance_matrix(series, measure="cdtw", window=0.1)
    assert m.values == m2.values
    assert m.cells == m2.cells


def test_kernel_backend_block():
    from repro import Runtime, use_runtime
    from repro.core import distance_matrix
    from repro.datasets.random_walk import random_walks

    series = random_walks(6, 64, seed=1)
    per_call = distance_matrix(
        series, measure="cdtw", window=0.1, runtime=Runtime(backend="numpy")
    )
    with use_runtime(Runtime(backend="numpy")):
        scoped = distance_matrix(series, measure="cdtw", window=0.1)
    # the README's bit-identity claim, against the pure engine
    pure = distance_matrix(series, measure="cdtw", window=0.1)
    assert per_call.values == scoped.values == pure.values
    assert per_call.cells == scoped.cells == pure.cells


def test_index_block(tmp_path):
    from repro import build_index, load_index, save_index
    from repro.datasets.random_walk import random_walks
    from repro.search.nn_search import nearest_neighbor

    walks = random_walks(7, 48, seed=3)
    candidates, query = walks[:-1], walks[-1]

    idx = build_index(candidates, band=4)
    save_index(idx, tmp_path / "dataset.idx")

    idx = load_index(tmp_path / "dataset.idx")  # payload hash rechecked
    hit = nearest_neighbor(query, candidates, band=4, index=idx)

    # the README's losslessness claim: bit-identical to the index-free
    # scan, and a stale index fails loudly instead of silently
    plain = nearest_neighbor(query, candidates, band=4)
    assert (hit.index, hit.distance) == (plain.index, plain.distance)

    import pytest

    from repro import IndexMismatchError

    stale = list(candidates)
    stale[0] = [v + 1e-9 for v in stale[0]]
    with pytest.raises(IndexMismatchError):
        nearest_neighbor(query, stale, band=4, index=idx)


def test_readme_pinned_harness_claim():
    import pytest

    from repro.datasets.random_walk import random_walks
    from repro.timing import batch_pairwise_experiment

    series = random_walks(4, 32, seed=2)
    with pytest.raises(ValueError):
        batch_pairwise_experiment(series, band=2, backend="numpy")


def test_serving_block():
    from repro import Runtime
    from repro.datasets.random_walk import random_walks
    from repro.serve import QueryService

    walks = random_walks(7, 48, seed=4)
    candidates, query = walks[:-1], walks[-1]

    service = QueryService(runtime=Runtime(workers=2))
    service.register("walks", candidates)

    response = service.execute(
        {"op": "1nn", "dataset": "walks", "band": 4, "query": query}
    )
    assert response.ok
    assert response.telemetry.dtw_calls >= 1
    service.close()

    # the README's parity claim: the service answer is bit-identical
    # to calling the consumer directly, serial and index-free
    from repro.search.nn_search import nearest_neighbor

    plain = nearest_neighbor(query, candidates, band=4)
    assert response.answer["index"] == plain.index
    assert response.answer["distance"] == plain.distance


def test_rle_block():
    from repro import RleSeries, rle_dtw
    from repro.core import dtw

    x = [0.0] * 40 + [1.5] * 40 + [0.25] * 40
    y = [0.0] * 30 + [1.5] * 55 + [0.25] * 35

    compressed = RleSeries.encode(x)            # 3 runs, lossless
    assert compressed.decode() == x
    assert compressed.compression_ratio == 40.0

    fast = rle_dtw(x, y)
    assert fast.distance == dtw(x, y).distance  # bit-identical
    assert fast.cells < dtw(x, y).cells         # far fewer cells

    # the README's routing claim: auto-routed serve answers are
    # identical to the dense path
    from repro.serve import QueryService

    with QueryService(cache_results=False) as service:
        service.register("steps", [x, y])
        entry = service.registry.get("steps")
        assert entry.rle_exact and entry.compression_ratio >= 4.0
        routed = service.execute(
            {"op": "1nn", "dataset": "steps", "band": 6, "query": x}
        )
        dense = service.execute(
            {"op": "1nn", "dataset": "steps", "band": 6, "query": x,
             "rle": False}
        )
    assert routed.ok and dense.ok
    assert routed.answer == dense.answer


def test_multivariate_block():
    from repro.batch import batch_distances
    from repro.core.multivariate import cdtw_i, cdtw_nd, interleave
    from repro.datasets.gestures import multivariate_gestures

    series, labels = multivariate_gestures(
        n_classes=3, per_class=4, length=64, axes=3, seed=0
    )

    dep = cdtw_nd(series[0], series[4], band=6)     # one shared path
    ind = cdtw_i(series[0], series[4], band=6)      # per-channel paths
    assert ind.distance <= dep.distance

    result = batch_distances(series, measure="cdtw_d", band=6, workers=2)
    assert len(result.distances) == 12 * 11 // 2
    serial = batch_distances(series, measure="cdtw_d", band=6)
    assert result.distances == serial.distances     # workers change nothing

    xs, ys = [0.0, 1.0, 2.0], [5.0, 6.0, 7.0]
    assert interleave(xs, ys) == [(0.0, 5.0), (1.0, 6.0), (2.0, 7.0)]
