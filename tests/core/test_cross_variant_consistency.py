"""Cross-variant consistency: all implementations tell one story.

The package ships several routes to (approximately) the same quantity:
the pure engine, the NumPy backend, the naive reference, two FastDTWs,
the multivariate lift and the downsampling baseline.  These tests pin
the relationships between them on shared inputs, under both cost
conventions -- the safety net that lets any one implementation be
refactored against the others.
"""

import math

import pytest

from repro.core.cdtw import cdtw
from repro.core.downsample_dtw import downsampled_dtw
from repro.core.dtw import dtw
from repro.core.euclidean import euclidean
from repro.core.fastdtw import fastdtw
from repro.core.fastdtw_reference import fastdtw_reference
from repro.core.multivariate import cdtw_nd, dtw_nd
from repro.core.naive import naive_dtw
from repro.core.numpy_backend import dtw_numpy
from tests.conftest import make_series

COSTS = ["squared", "abs"]
SEEDS = list(range(6))


@pytest.fixture(scope="module")
def pairs():
    return [
        (make_series(24, s), make_series(24, s + 3000)) for s in SEEDS
    ]


class TestExactRoutesAgree:
    @pytest.mark.parametrize("cost", COSTS)
    def test_engine_vs_naive_vs_numpy(self, pairs, cost):
        import numpy as np

        for x, y in pairs:
            a = dtw(x, y, cost=cost).distance
            b = naive_dtw(x, y, cost=cost)
            c = dtw_numpy(np.array(x), np.array(y), cost=cost).distance
            assert a == pytest.approx(b, abs=1e-9)
            assert a == pytest.approx(c, abs=1e-9)

    @pytest.mark.parametrize("cost", COSTS)
    def test_scalar_vs_multivariate_dim1(self, pairs, cost):
        for x, y in pairs:
            vx = [(v,) for v in x]
            vy = [(v,) for v in y]
            assert dtw_nd(vx, vy, cost=cost).distance == pytest.approx(
                dtw(x, y, cost=cost).distance
            )
            assert cdtw_nd(vx, vy, band=3, cost=cost).distance == (
                pytest.approx(cdtw(x, y, band=3, cost=cost).distance)
            )

    @pytest.mark.parametrize("cost", COSTS)
    def test_downsample_factor1_is_exact(self, pairs, cost):
        for x, y in pairs:
            assert downsampled_dtw(
                x, y, factor=1, cost=cost
            ).distance == pytest.approx(dtw(x, y, cost=cost).distance)


class TestApproximateRoutesBounded:
    @pytest.mark.parametrize("cost", COSTS)
    @pytest.mark.parametrize("radius", [0, 2, 5])
    def test_both_fastdtws_upper_bound_exact(self, pairs, cost, radius):
        for x, y in pairs:
            exact = dtw(x, y, cost=cost).distance
            opt = fastdtw(x, y, radius=radius, cost=cost).distance
            ref = fastdtw_reference(x, y, radius=radius,
                                    cost=cost).distance
            assert opt >= exact - 1e-9
            assert ref >= exact - 1e-9

    @pytest.mark.parametrize("cost", COSTS)
    def test_both_fastdtws_converge_together(self, pairs, cost):
        for x, y in pairs:
            exact = dtw(x, y, cost=cost).distance
            big = max(len(x), len(y))
            assert fastdtw(
                x, y, radius=big, cost=cost
            ).distance == pytest.approx(exact)
            assert fastdtw_reference(
                x, y, radius=big, cost=cost
            ).distance == pytest.approx(exact)


class TestOrderings:
    @pytest.mark.parametrize("cost", COSTS)
    def test_distance_hierarchy(self, pairs, cost):
        # full DTW <= any banded <= Euclidean, under both costs
        for x, y in pairs:
            full = dtw(x, y, cost=cost).distance
            ed = euclidean(x, y, cost=cost)
            for band in (0, 2, 6, 24):
                banded = cdtw(x, y, band=band, cost=cost).distance
                assert full - 1e-9 <= banded <= ed + 1e-9

    def test_abs_vs_squared_scale_relationship(self, pairs):
        # no fixed ordering exists between the two conventions, but
        # both must be zero together and positive together
        for x, y in pairs:
            sq = dtw(x, y, cost="squared").distance
            ab = dtw(x, y, cost="abs").distance
            assert (sq == 0.0) == (ab == 0.0)
            assert sq >= 0 and ab >= 0

    def test_identity_across_all_variants(self):
        x = make_series(32, 77)
        vx = [(v,) for v in x]
        assert dtw(x, x).distance == 0.0
        assert cdtw(x, x, band=2).distance == 0.0
        assert fastdtw(x, x, radius=1).distance == 0.0
        assert fastdtw_reference(x, x, radius=1).distance == 0.0
        assert dtw_nd(vx, vx).distance == 0.0
        assert downsampled_dtw(x, x, factor=4).distance == 0.0


class TestCellAccountingConsistency:
    def test_every_variant_reports_cells(self, pairs):
        x, y = pairs[0]
        assert dtw(x, y).cells == 24 * 24
        assert cdtw(x, y, band=2).cells > 0
        assert fastdtw(x, y, radius=2).cells > 0
        assert fastdtw_reference(x, y, radius=2).cells > 0
        assert downsampled_dtw(x, y, factor=2).cells == 12 * 12

    def test_cell_ordering_tracks_window_sizes(self, pairs):
        x, y = pairs[1]
        assert (
            cdtw(x, y, band=0).cells
            < cdtw(x, y, band=4).cells
            < dtw(x, y).cells
        )
