"""Unit tests for local cost functions."""

import pytest

from repro.core.cost import (
    BUILTIN_COSTS,
    absolute_cost,
    cost_name,
    resolve_cost,
    squared_cost,
)


class TestSquaredCost:
    def test_basic(self):
        assert squared_cost(3.0, 1.0) == 4.0

    def test_symmetric(self):
        assert squared_cost(1.5, -2.5) == squared_cost(-2.5, 1.5)

    def test_zero_at_equality(self):
        assert squared_cost(7.25, 7.25) == 0.0

    def test_never_negative(self):
        assert squared_cost(-1e9, 1e9) >= 0.0


class TestAbsoluteCost:
    def test_basic(self):
        assert absolute_cost(3.0, 1.0) == 2.0

    def test_symmetric(self):
        assert absolute_cost(1.5, -2.5) == absolute_cost(-2.5, 1.5)

    def test_zero_at_equality(self):
        assert absolute_cost(-4.0, -4.0) == 0.0


class TestResolveCost:
    def test_resolves_squared(self):
        assert resolve_cost("squared") is squared_cost

    def test_resolves_abs(self):
        assert resolve_cost("abs") is absolute_cost

    def test_passes_callable_through(self):
        fn = lambda a, b: 1.0
        assert resolve_cost(fn) is fn

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown cost"):
            resolve_cost("manhattan")

    def test_non_callable_raises(self):
        with pytest.raises(TypeError):
            resolve_cost(42)

    def test_builtins_all_resolve(self):
        for name in BUILTIN_COSTS:
            assert callable(resolve_cost(name))


class TestCostName:
    def test_string_passthrough(self):
        assert cost_name("squared") == "squared"

    def test_string_validated(self):
        with pytest.raises(ValueError):
            cost_name("nope")

    def test_callable_uses_dunder_name(self):
        def chebyshev(a, b):
            return abs(a - b)

        assert cost_name(chebyshev) == "chebyshev"

    def test_anonymous_callable(self):
        assert cost_name(lambda a, b: 0.0) == "<lambda>"
