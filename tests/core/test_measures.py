"""The canonical measure registry and the agreement of its importers.

Regression guard for the drift this registry was created to end:
``classify/knn.py`` once listed four measures while
``core/matrix.py`` listed five.  Every consumer must now import the
one tuple from :mod:`repro.core.measures`.
"""

from __future__ import annotations

import pytest

import repro.classify.knn as knn
import repro.core.matrix as matrix
from repro.batch.engine import BatchSpec
from repro.classify.knn import DistanceSpec
from repro.core import measures
from repro.core.dtw import dtw
from repro.core.measures import (
    CELL_COUNTED_MEASURES,
    MEASURES,
    measure_fn,
    split_result,
    validate_measure,
)


class TestRegistryAgreement:
    def test_knn_and_matrix_share_the_canonical_tuple(self):
        assert knn.MEASURES is measures.MEASURES
        assert matrix.MEASURES is measures.MEASURES

    def test_every_measure_builds_a_distance_spec(self):
        # the classifier must actually support everything it claims
        for measure in MEASURES:
            kwargs = {}
            if measure in ("cdtw", "rle_cdtw", "cdtw_d", "cdtw_i"):
                kwargs["window"] = 0.1
            elif measure in ("fastdtw", "fastdtw_reference"):
                kwargs["radius"] = 1
            spec = DistanceSpec(measure, **kwargs)
            assert spec.describe()

    def test_every_measure_builds_a_batch_spec(self):
        for measure in MEASURES:
            assert BatchSpec(measure=measure).measure == measure

    def test_cell_counted_subset(self):
        assert set(CELL_COUNTED_MEASURES) < set(MEASURES)
        assert "euclidean" not in CELL_COUNTED_MEASURES


class TestDispatch:
    def test_validate_measure(self):
        validate_measure("dtw")
        with pytest.raises(ValueError, match="unknown measure"):
            validate_measure("emd")

    def test_measure_fn_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown measure"):
            measure_fn("emd")

    @pytest.mark.parametrize("measure", MEASURES)
    def test_measure_fn_runs_every_measure(self, measure):
        from repro.core.measures import ND_MEASURES

        if measure in ND_MEASURES:
            x = [(0.0, 1.0), (1.0, 0.0), (2.0, 2.0), (1.0, 1.0)]
            y = [(0.0, 0.0), (2.0, 1.0), (1.0, 2.0), (1.0, 1.0)]
            kwargs = {"window": 0.5} if measure.startswith("cdtw") else {}
            fn = measure_fn(measure, **kwargs)
        else:
            x = [0.0, 1.0, 2.0, 1.0]
            y = [0.0, 2.0, 1.0, 1.0]
            fn = measure_fn(measure, window=0.5, radius=1)
        distance, cells, _path = split_result(fn(x, y))
        assert distance >= 0.0
        if measure in CELL_COUNTED_MEASURES:
            assert cells > 0
        else:
            assert cells == 0

    def test_split_result_on_rich_result(self):
        r = dtw([0.0, 1.0], [0.0, 1.0], return_path=True)
        distance, cells, path = split_result(r)
        assert distance == r.distance
        assert cells == r.cells
        assert path is r.path

    def test_split_result_on_bare_float(self):
        assert split_result(3.5) == (3.5, 0, None)


class TestDistanceSpecFastdtwReference:
    def test_requires_radius(self):
        with pytest.raises(ValueError, match="radius"):
            DistanceSpec("fastdtw_reference")

    def test_describe(self):
        spec = DistanceSpec("fastdtw_reference", radius=3)
        assert spec.describe() == "FastDTW-ref_3"

    def test_rejects_window(self):
        with pytest.raises(ValueError, match="window"):
            DistanceSpec("fastdtw_reference", window=0.1, radius=1)
