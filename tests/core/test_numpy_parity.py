"""Bit-exact parity: the NumPy kernels against the pure engine.

The registry's contract is stronger than "numerically close": for the
DP kernels, distances, cell counts, recovered paths (including the
diagonal-preference tie-breaking) and early-abandon decisions must be
*bit-identical* to :func:`repro.core.engine.dp_over_window`.  That is
what lets every repeated-use consumer switch backends without its
results moving at all.  These tests fuzz that claim across window
shapes (band 0 / 5% / full / Itakura), both built-in costs, unequal
lengths and degenerate shapes.
"""

import random
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.engine import dp_over_window
from repro.runtime import Runtime
from repro.core.numpy_backend import dtw_numpy, dtw_numpy_batch
from repro.core.window import Window
from repro.lowerbounds.envelope import envelope
from repro.search.cumulative import suffix_gap_bounds

COSTS = ("squared", "abs")
BAND_KINDS = ("zero", "five_percent", "full")


def walk(seed, n):
    rng = random.Random(seed)
    v, out = 0.0, []
    for _ in range(n):
        v += rng.uniform(-1.0, 1.0)
        out.append(v)
    return out


def make_window(n, m, kind):
    if kind == "zero":
        return Window.band(n, m, 0)
    if kind == "five_percent":
        return Window.band(n, m, max(1, round(0.05 * max(n, m))))
    return Window.full(n, m)


SHAPES = [(30, 30), (25, 31), (1, 7), (9, 1), (2, 2), (64, 64)]


class TestDistanceAndCells:
    @pytest.mark.parametrize("cost", COSTS)
    @pytest.mark.parametrize("kind", BAND_KINDS)
    def test_bitwise_equal(self, cost, kind):
        for seed, (n, m) in enumerate(SHAPES):
            x, y = walk(seed, n), walk(seed + 100, m)
            win = make_window(n, m, kind)
            pure = dp_over_window(x, y, win, cost=cost)
            vect = dtw_numpy(x, y, window=win, cost=cost)
            assert vect.distance == pure.distance, (seed, n, m)
            assert vect.cells == pure.cells

    def test_itakura_window(self):
        for seed in range(4):
            n = 40
            x, y = walk(seed, n), walk(seed + 50, n)
            win = Window.itakura(n, n)
            pure = dp_over_window(x, y, win)
            vect = dtw_numpy(x, y, window=win)
            assert vect.distance == pure.distance
            assert vect.cells == pure.cells


class TestPathRecovery:
    @pytest.mark.parametrize("cost", COSTS)
    @pytest.mark.parametrize("kind", BAND_KINDS)
    def test_paths_identical(self, cost, kind):
        for seed, (n, m) in enumerate(SHAPES):
            x, y = walk(seed + 7, n), walk(seed + 200, m)
            win = make_window(n, m, kind)
            pure = dp_over_window(x, y, win, cost=cost, return_path=True)
            vect = dtw_numpy(
                x, y, window=win, cost=cost, return_path=True
            )
            assert vect.path == pure.path
            assert vect.distance == pure.distance

    def test_tie_breaking_on_constant_series(self):
        # every cell costs 0, so every backtrack step is a tie: the
        # diagonal-preference rule alone determines the path
        x = [1.0] * 12
        y = [1.0] * 17
        for kind in BAND_KINDS:
            win = make_window(12, 17, kind)
            pure = dp_over_window(x, y, win, return_path=True)
            vect = dtw_numpy(x, y, window=win, return_path=True)
            assert vect.path == pure.path

    def test_tie_breaking_on_repeating_pattern(self):
        x = [0.0, 1.0] * 8
        y = [1.0, 0.0] * 8
        win = Window.band(16, 16, 3)
        pure = dp_over_window(x, y, win, return_path=True)
        vect = dtw_numpy(x, y, window=win, return_path=True)
        assert vect.path == pure.path


class TestAbandoning:
    @pytest.mark.parametrize("fraction", (0.05, 0.3, 0.8, 1.0, 1.5))
    @pytest.mark.parametrize("kind", BAND_KINDS)
    def test_abandon_decision_and_cells(self, fraction, kind):
        for seed in range(6):
            n = 40
            x, y = walk(seed + 11, n), walk(seed + 300, n)
            win = make_window(n, n, kind)
            true_d = dp_over_window(x, y, win).distance
            threshold = true_d * fraction
            pure = dp_over_window(x, y, win, abandon_above=threshold)
            vect = dtw_numpy(x, y, window=win, abandon_above=threshold)
            assert vect.abandoned == pure.abandoned, (seed, fraction)
            assert vect.distance == pure.distance
            assert vect.cells == pure.cells

    @pytest.mark.parametrize("fraction", (0.1, 0.6, 1.2))
    def test_suffix_bound_parity(self, fraction):
        band = 3
        for seed in range(6):
            n = 36
            x, y = walk(seed + 21, n), walk(seed + 400, n)
            win = Window.band(n, n, band)
            env = envelope(y, band)
            suffix = suffix_gap_bounds(x, env)
            true_d = dp_over_window(x, y, win).distance
            threshold = true_d * fraction
            pure = dp_over_window(
                x, y, win, abandon_above=threshold, suffix_bound=suffix
            )
            vect = dtw_numpy(
                x, y, window=win, abandon_above=threshold,
                suffix_bound=suffix,
            )
            assert vect.abandoned == pure.abandoned
            assert vect.distance == pure.distance
            assert vect.cells == pure.cells


class TestBatchKernel:
    @pytest.mark.parametrize("cost", COSTS)
    def test_batch_equals_engine_per_pair(self, cost):
        n = 50
        xs = [walk(s, n) for s in range(6)]
        ys = [walk(s + 500, n) for s in range(6)]
        win = Window.band(n, n, 4)
        batch = dtw_numpy_batch(
            np.array(xs), np.array(ys), win, cost=cost
        )
        for x, y, d in zip(xs, ys, batch):
            assert float(d) == dp_over_window(x, y, win, cost=cost).distance

    def test_batch_full_window(self):
        n = 30
        xs = [walk(s + 31, n) for s in range(4)]
        ys = [walk(s + 600, n) for s in range(4)]
        win = Window.full(n, n)
        batch = dtw_numpy_batch(np.array(xs), np.array(ys), win)
        for x, y, d in zip(xs, ys, batch):
            assert float(d) == dp_over_window(x, y, win).distance


class TestWindowValidation:
    def test_row0_excluding_origin_raises(self):
        # sparse FastDTW-refinement windows can exclude (0, 0); the
        # pure engine cannot seed row 0 there and neither can we --
        # previously this silently treated (0, lo) as a path start
        bad = SimpleNamespace(
            n=3, m=3, ranges=((1, 2), (1, 2), (2, 2)),
            cell_count=lambda: 6,
        )
        with pytest.raises(ValueError, match=r"\(0, 0\)"):
            dtw_numpy([1.0, 2.0, 3.0], [1.0, 2.0, 3.0], window=bad)

    def test_window_band_mutually_exclusive(self):
        with pytest.raises(ValueError):
            dtw_numpy(
                [1.0, 2.0], [1.0, 2.0],
                window=Window.full(2, 2), band=1,
            )


class TestConsumerEquivalence:
    """Backend switches must not move consumer-level results."""

    def test_knn_labels_and_cells(self):
        from repro.classify.knn import DistanceSpec, OneNearestNeighbor

        series = [walk(s, 24) for s in range(10)]
        labels = [s % 2 for s in range(10)]
        queries = [walk(s + 900, 24) for s in range(4)]
        outcomes = []
        for backend in ("python", "numpy"):
            clf = OneNearestNeighbor(
                DistanceSpec("cdtw", window=0.2, backend=backend)
            ).fit(series, labels)
            outcomes.append((clf.predict(queries), clf.cells_evaluated))
        assert outcomes[0] == outcomes[1]

    def test_nn_search_cascade(self):
        from repro.search.nn_search import nearest_neighbor

        series = [walk(s + 40, 32) for s in range(12)]
        q = walk(999, 32)
        results = [
            nearest_neighbor(
                q, series, strategy="cdtw+lb", window=0.1,
                runtime=Runtime(backend=backend),
            )
            for backend in ("python", "numpy")
        ]
        assert results[0].index == results[1].index
        assert results[0].distance == results[1].distance

    def test_cumulative_abandon(self):
        from repro.search.cumulative import cdtw_cumulative_abandon

        x, y = walk(5, 30), walk(505, 30)
        base = cdtw_cumulative_abandon(x, y, band=3, threshold=1e9)
        for threshold in (base.distance * 0.5, base.distance * 2.0):
            pure = cdtw_cumulative_abandon(x, y, band=3,
                                           threshold=threshold)
            vect = cdtw_cumulative_abandon(
                x, y, band=3, threshold=threshold,
                runtime=Runtime(backend="numpy"),
            )
            assert vect.distance == pure.distance
            assert vect.abandoned == pure.abandoned
            assert vect.cells == pure.cells

    def test_dba_and_kmeans(self):
        from repro.cluster.dba import dba
        from repro.cluster.kmeans import dtw_kmeans

        series = [walk(s + 60, 20) for s in range(6)]
        assert dba(series, band=2, max_iterations=2) == dba(
            series, band=2, max_iterations=2,
            runtime=Runtime(backend="numpy"),
        )
        assert dtw_kmeans(series, 2, band=2, max_iterations=2) == (
            dtw_kmeans(series, 2, band=2, max_iterations=2,
                       runtime=Runtime(backend="numpy"))
        )
