"""Unit tests for the Euclidean (lock-step) distance."""

import math

import pytest

from repro.core.euclidean import euclidean, euclidean_l2
from tests.conftest import make_series


class TestEuclidean:
    def test_known_value(self):
        assert euclidean([0.0, 0.0], [3.0, 4.0]) == 25.0

    def test_l2(self):
        assert euclidean_l2([0.0, 0.0], [3.0, 4.0]) == 5.0

    def test_zero_for_identical(self):
        x = make_series(10, 1)
        assert euclidean(x, x) == 0.0

    def test_symmetry(self):
        x = make_series(10, 2)
        y = make_series(10, 3)
        assert euclidean(x, y) == pytest.approx(euclidean(y, x))

    def test_abs_cost(self):
        assert euclidean([0.0, 0.0], [1.0, -2.0], cost="abs") == 3.0

    def test_custom_cost(self):
        assert euclidean([1.0, 2.0], [0.0, 0.0],
                         cost=lambda a, b: max(a, b)) == 3.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal lengths"):
            euclidean([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            euclidean([], [])

    def test_triangle_inequality_l2(self):
        x = make_series(12, 4)
        y = make_series(12, 5)
        z = make_series(12, 6)
        assert euclidean_l2(x, z) <= (
            euclidean_l2(x, y) + euclidean_l2(y, z) + 1e-9
        )


class TestEarlyAbandoning:
    def test_abandons(self):
        assert euclidean([0.0] * 5, [10.0] * 5,
                         abandon_above=1.0) == math.inf

    def test_no_abandon_when_threshold_big(self):
        x = make_series(10, 7)
        y = make_series(10, 8)
        exact = euclidean(x, y)
        assert euclidean(x, y, abandon_above=exact + 1) == pytest.approx(
            exact
        )

    def test_abandon_threshold_exact_value_kept(self):
        x = make_series(10, 9)
        y = make_series(10, 10)
        exact = euclidean(x, y)
        # running sum only exceeds the threshold strictly
        assert euclidean(x, y, abandon_above=exact) == pytest.approx(exact)

    def test_abandoning_with_abs_cost(self):
        assert euclidean([0.0] * 5, [10.0] * 5, cost="abs",
                         abandon_above=5.0) == math.inf
