"""Unit tests for the reference-layout FastDTW.

The reference variant must satisfy every algorithmic contract the
optimised variant does (it is the same algorithm), while carrying the
published implementation's data-structure cost profile.
"""

import pytest

from repro.core.dtw import dtw
from repro.core.fastdtw import fastdtw
from repro.core.fastdtw_reference import fastdtw_reference
from repro.core.variants import FASTDTW_VARIANTS, resolve_fastdtw
from tests.conftest import make_series


class TestCorrectness:
    def test_identical_series_zero(self):
        x = make_series(64, 1)
        assert fastdtw_reference(x, x, radius=1).distance == 0.0

    @pytest.mark.parametrize("seed", range(8))
    def test_upper_bounds_full_dtw(self, seed):
        x = make_series(40, seed)
        y = make_series(40, seed + 600)
        exact = dtw(x, y).distance
        for radius in (0, 1, 3):
            assert fastdtw_reference(
                x, y, radius=radius
            ).distance >= exact - 1e-9

    def test_huge_radius_is_exact(self):
        x = make_series(30, 11)
        y = make_series(30, 12)
        assert fastdtw_reference(x, y, radius=40).distance == (
            pytest.approx(dtw(x, y).distance)
        )

    def test_path_revaluates_to_distance(self):
        x = make_series(50, 13)
        y = make_series(50, 14)
        r = fastdtw_reference(x, y, radius=2)
        assert r.path.cost(x, y) == pytest.approx(r.distance)

    def test_unequal_lengths(self):
        x = make_series(23, 15)
        y = make_series(41, 16)
        r = fastdtw_reference(x, y, radius=1)
        assert r.path[-1] == (22, 40)

    def test_odd_lengths_radius_zero(self):
        # the case that disconnects naive rasterisation
        x = make_series(37, 17)
        y = make_series(37, 18)
        r = fastdtw_reference(x, y, radius=0)
        assert r.distance >= dtw(x, y).distance - 1e-9

    def test_abs_cost(self):
        x = make_series(25, 19)
        y = make_series(25, 20)
        r = fastdtw_reference(x, y, radius=2, cost="abs")
        assert r.cost == "abs"
        assert r.distance >= dtw(x, y, cost="abs").distance - 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            fastdtw_reference([1.0], [1.0], radius=-1)
        with pytest.raises(ValueError):
            fastdtw_reference([], [1.0])


class TestVariantParity:
    """Both variants implement the same algorithm."""

    @pytest.mark.parametrize("seed", range(6))
    def test_base_case_identical(self, seed):
        # below the base-case size both run exact DTW
        x = make_series(3, seed)
        y = make_series(3, seed + 50)
        assert fastdtw_reference(x, y, radius=1).distance == (
            pytest.approx(fastdtw(x, y, radius=1).distance)
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_distances_close_in_practice(self, seed):
        # window construction orders differ (dilate-then-project vs
        # project-then-dilate) so results can differ slightly; both
        # must stay sane upper bounds of full DTW
        x = make_series(60, seed)
        y = make_series(60, seed + 70)
        exact = dtw(x, y).distance
        a = fastdtw_reference(x, y, radius=4).distance
        b = fastdtw(x, y, radius=4).distance
        assert a >= exact - 1e-9 and b >= exact - 1e-9

    def test_reference_window_is_wider_or_equal(self):
        # dilating before projection doubles the dilation, so the
        # reference variant evaluates at least as many cells
        x = make_series(128, 31)
        y = make_series(128, 32)
        for radius in (1, 3, 7):
            ref = fastdtw_reference(x, y, radius=radius).cells
            opt = fastdtw(x, y, radius=radius).cells
            assert ref >= opt


class TestResolver:
    def test_names(self):
        assert set(FASTDTW_VARIANTS) == {"reference", "optimized"}

    def test_resolution(self):
        assert resolve_fastdtw("reference") is fastdtw_reference
        assert resolve_fastdtw("optimized") is fastdtw

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown FastDTW variant"):
            resolve_fastdtw("turbo")
