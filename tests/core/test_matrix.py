"""Unit tests for the distance-matrix utility."""

import pytest

from repro.core.cdtw import cdtw
from repro.core.dtw import dtw
from repro.core.matrix import MEASURES, distance_matrix
from tests.conftest import make_series, make_vectors


@pytest.fixture(scope="module")
def series():
    return [make_series(16, s) for s in range(5)]


@pytest.fixture(scope="module")
def vector_series():
    return [make_vectors(16, 3, s) for s in range(5)]


class TestDistanceMatrix:
    def test_shape_and_symmetry(self, series):
        m = distance_matrix(series, measure="dtw")
        assert len(m) == 5
        for i in range(5):
            assert m[i, i] == 0.0
            for j in range(5):
                assert m[i, j] == m[j, i]

    def test_entries_match_direct_calls(self, series):
        m = distance_matrix(series, measure="cdtw", band=2)
        for i in range(5):
            for j in range(i + 1, 5):
                assert m[i, j] == pytest.approx(
                    cdtw(series[i], series[j], band=2).distance
                )

    @pytest.mark.parametrize("measure", MEASURES)
    def test_all_measures_run(self, series, vector_series, measure):
        from repro.core.measures import ND_MEASURES

        kwargs = {}
        if measure in ("cdtw", "rle_cdtw", "cdtw_d", "cdtw_i"):
            kwargs["band"] = 2
        if measure.startswith("fastdtw"):
            kwargs["radius"] = 2
        data = vector_series if measure in ND_MEASURES else series
        m = distance_matrix(data, measure=measure, **kwargs)
        assert len(m) == 5

    def test_cells_accumulated(self, series):
        m = distance_matrix(series, measure="dtw")
        pairs = 5 * 4 // 2
        assert m.cells == pairs * dtw(series[0], series[1]).cells

    def test_euclidean_zero_cells(self, series):
        assert distance_matrix(series, measure="euclidean").cells == 0

    def test_nearest_to(self, series):
        near = [v + 0.01 for v in series[0]]
        m = distance_matrix(series + [near], measure="dtw")
        assert m.nearest_to(0) == 5
        assert m.nearest_to(5) == 0

    def test_as_lists_mutable_copy(self, series):
        m = distance_matrix(series, measure="euclidean")
        lists = m.as_lists()
        lists[0][1] = -1.0
        assert m[0, 1] != -1.0

    def test_feeds_linkage(self, series):
        from repro.cluster.linkage import linkage

        m = distance_matrix(series, measure="cdtw", window=0.2)
        merges = linkage(m.as_lists())
        assert len(merges) == 4

    def test_unknown_measure_rejected(self, series):
        with pytest.raises(ValueError, match="unknown measure"):
            distance_matrix(series, measure="edr")

    def test_needs_two_series(self):
        with pytest.raises(ValueError, match="two series"):
            distance_matrix([make_series(5, 0)])
