"""Unit tests for Window construction and feasibility."""

import pytest

from repro.core.path import WarpingPath, diagonal_path
from repro.core.window import Window


class TestFull:
    def test_covers_everything(self):
        w = Window.full(3, 4)
        assert w.cell_count() == 12
        assert w.coverage() == 1.0

    def test_contains_all_cells(self):
        w = Window.full(2, 2)
        assert all((i, j) in w for i in range(2) for j in range(2))


class TestBand:
    def test_zero_band_square_is_diagonal(self):
        w = Window.band(5, 5, 0)
        assert w.cell_count() == 5
        assert all(w.row(i) == (i, i) for i in range(5))

    def test_band_one(self):
        w = Window.band(4, 4, 1)
        assert w.row(0) == (0, 1)
        assert w.row(1) == (0, 2)
        assert w.row(3) == (2, 3)

    def test_band_covers_lattice_when_wide(self):
        w = Window.band(4, 4, 10)
        assert w.cell_count() == 16

    def test_unequal_lengths_feasible(self):
        # band narrower than the length difference must still admit a path
        w = Window.band(3, 10, 0)
        assert w.ranges[0][0] == 0
        assert w.ranges[-1][1] == 9

    def test_band_zero_square_contains_diagonal(self):
        w = Window.band(5, 5, 0)
        for i, j in diagonal_path(5, 5):
            assert w.contains(i, j)

    def test_band_zero_unequal_admits_a_path(self):
        # for unequal lengths the band-0 window is a staircase along
        # the slope-corrected diagonal; it must still admit some valid
        # warping path (a finite DP result proves it)
        import math

        from repro.core.engine import dp_over_window

        for n, m in ((4, 9), (9, 4), (2, 13)):
            w = Window.band(n, m, 0)
            r = dp_over_window([0.0] * n, [0.0] * m, w)
            assert math.isfinite(r.distance)

    def test_negative_band_rejected(self):
        with pytest.raises(ValueError):
            Window.band(3, 3, -1)

    def test_cell_count_grows_with_band(self):
        counts = [Window.band(20, 20, b).cell_count() for b in range(0, 10)]
        assert counts == sorted(counts)
        assert counts[0] < counts[-1]


class TestFromFraction:
    def test_zero_fraction(self):
        w = Window.from_fraction(10, 10, 0.0)
        assert w.cell_count() == 10

    def test_full_fraction(self):
        w = Window.from_fraction(10, 10, 1.0)
        assert w.cell_count() == 100

    def test_rounding_up(self):
        # 0.05 * 10 = 0.5 -> band 1
        w = Window.from_fraction(10, 10, 0.05)
        assert w.row(0) == (0, 1)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Window.from_fraction(10, 10, 1.5)


class TestFromCells:
    def test_exact_cover(self):
        cells = [(0, 0), (0, 1), (1, 1), (2, 2)]
        w = Window.from_cells(3, 3, cells)
        for c in cells:
            assert c in w

    def test_missing_rows_interpolated(self):
        w = Window.from_cells(4, 4, [(0, 0), (3, 3)])
        # all rows must be present and connected
        assert w.cell_count() >= 4

    def test_out_of_bounds_cells_ignored(self):
        w = Window.from_cells(3, 3, [(0, 0), (5, 5), (2, 2)])
        assert w.n == 3

    def test_always_feasible(self):
        w = Window.from_cells(5, 5, [(0, 4), (4, 0)])  # incoherent input
        # constructing a Window validates feasibility in __post_init__
        assert w.ranges[0][0] == 0
        assert w.ranges[-1][1] == 4


class TestExpandPath:
    def test_radius_zero_is_projection(self):
        p = WarpingPath([(0, 0), (1, 1)])
        w = Window.expand_path(p, 4, 4, 0)
        assert (0, 0) in w and (3, 3) in w
        assert w.cell_count() <= 16

    def test_radius_widens(self):
        p = diagonal_path(8, 8)
        small = Window.expand_path(p, 16, 16, 1)
        large = Window.expand_path(p, 16, 16, 4)
        assert small.cell_count() < large.cell_count()

    def test_radius_contains_projection(self):
        p = diagonal_path(8, 8)
        base = Window.expand_path(p, 16, 16, 0)
        wide = Window.expand_path(p, 16, 16, 3)
        for i in range(16):
            blo, bhi = base.row(i)
            wlo, whi = wide.row(i)
            assert wlo <= blo and whi >= bhi

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            Window.expand_path(diagonal_path(4, 4), 8, 8, -1)

    def test_odd_target_lengths(self):
        p = diagonal_path(4, 4)
        w = Window.expand_path(p, 9, 9, 2)
        assert w.n == 9 and w.m == 9
        assert (8, 8) in w


class TestValidation:
    def test_requires_corner_start(self):
        with pytest.raises(ValueError):
            Window(2, 2, ((1, 1), (1, 1)))

    def test_requires_corner_end(self):
        with pytest.raises(ValueError):
            Window(2, 2, ((0, 0), (0, 0)))

    def test_rejects_non_monotone(self):
        with pytest.raises(ValueError):
            Window(3, 3, ((0, 2), (0, 1), (0, 2)))

    def test_rejects_unreachable_rows(self):
        with pytest.raises(ValueError):
            Window(3, 4, ((0, 0), (2, 3), (2, 3)))

    def test_rejects_wrong_row_count(self):
        with pytest.raises(ValueError):
            Window(3, 3, ((0, 2), (0, 2)))


class TestQueries:
    def test_union(self):
        a = Window.band(6, 6, 0)
        b = Window.band(6, 6, 2)
        u = a.union(b)
        assert u.cell_count() == b.cell_count()

    def test_union_dimension_mismatch(self):
        with pytest.raises(ValueError):
            Window.full(3, 3).union(Window.full(4, 4))

    def test_cells_iterates_in_order(self):
        w = Window.band(3, 3, 1)
        cells = list(w.cells())
        assert cells == sorted(cells)
        assert len(cells) == w.cell_count()

    def test_contains_rejects_out_of_lattice(self):
        w = Window.full(3, 3)
        assert not w.contains(-1, 0)
        assert not w.contains(3, 0)
