"""Unit tests for WarpingPath."""

import pytest

from repro.core.path import InvalidPathError, WarpingPath, diagonal_path


class TestValidation:
    def test_accepts_single_cell(self):
        p = WarpingPath([(0, 0)])
        assert len(p) == 1

    def test_accepts_diagonal(self):
        p = WarpingPath([(0, 0), (1, 1), (2, 2)])
        assert p.n == 3 and p.m == 3

    def test_accepts_expansion_and_contraction(self):
        WarpingPath([(0, 0), (0, 1), (1, 1), (2, 1), (2, 2)])

    def test_rejects_empty(self):
        with pytest.raises(InvalidPathError, match="at least one"):
            WarpingPath([])

    def test_rejects_bad_start(self):
        with pytest.raises(InvalidPathError, match="start at"):
            WarpingPath([(1, 0), (2, 1)])

    def test_rejects_backwards_move(self):
        with pytest.raises(InvalidPathError, match="backwards"):
            WarpingPath([(0, 0), (1, 1), (0, 1)])

    def test_rejects_skips(self):
        with pytest.raises(InvalidPathError, match="skips"):
            WarpingPath([(0, 0), (2, 1)])

    def test_rejects_repeats(self):
        with pytest.raises(InvalidPathError, match="repeats"):
            WarpingPath([(0, 0), (0, 0)])

    def test_immutable(self):
        p = WarpingPath([(0, 0), (1, 1)])
        with pytest.raises(AttributeError):
            p.cells = ()


class TestShape:
    def test_n_m_from_last_cell(self):
        p = WarpingPath([(0, 0), (1, 0), (1, 1), (2, 2)])
        assert (p.n, p.m) == (3, 3)

    def test_iteration_and_indexing(self):
        cells = [(0, 0), (1, 1), (1, 2)]
        p = WarpingPath(cells)
        assert list(p) == cells
        assert p[1] == (1, 1)
        assert p.to_pairs() == tuple(cells)


class TestCost:
    def test_cost_on_identical_series(self):
        p = WarpingPath([(0, 0), (1, 1), (2, 2)])
        x = [1.0, 2.0, 3.0]
        assert p.cost(x, x) == 0.0

    def test_cost_squared(self):
        p = WarpingPath([(0, 0), (1, 1)])
        assert p.cost([0.0, 0.0], [1.0, 2.0]) == 1.0 + 4.0

    def test_cost_abs(self):
        p = WarpingPath([(0, 0), (1, 1)])
        assert p.cost([0.0, 0.0], [1.0, 2.0], cost="abs") == 3.0

    def test_cost_length_mismatch_raises(self):
        p = WarpingPath([(0, 0), (1, 1)])
        with pytest.raises(ValueError, match="lengths"):
            p.cost([0.0, 1.0, 2.0], [0.0, 1.0])


class TestDeviation:
    def test_diagonal_has_zero_deviation(self):
        p = WarpingPath([(0, 0), (1, 1), (2, 2)])
        assert p.max_band_deviation() == 0

    def test_known_deviation(self):
        p = WarpingPath([(0, 0), (0, 1), (0, 2), (1, 2), (2, 2)])
        assert p.max_band_deviation() == 2

    def test_slope_corrected_for_unequal_lengths(self):
        # path hugging the diagonal of a 3x5 lattice deviates ~0
        p = WarpingPath([(0, 0), (0, 1), (1, 2), (1, 3), (2, 4)])
        assert p.max_band_deviation() <= 1

    def test_warp_fraction(self):
        p = WarpingPath([(0, 0), (0, 1), (0, 2), (1, 2), (2, 2)])
        assert p.warp_fraction() == pytest.approx(2 / 3)

    def test_single_cell(self):
        assert WarpingPath([(0, 0)]).max_band_deviation() == 0


class TestDirection:
    def test_above_diagonal_positive(self):
        p = WarpingPath([(0, 0), (0, 1), (1, 2), (2, 2)])
        assert p.warp_direction() == 1

    def test_below_diagonal_negative(self):
        p = WarpingPath([(0, 0), (1, 0), (2, 1), (2, 2)])
        assert p.warp_direction() == -1

    def test_diagonal_zero(self):
        p = WarpingPath([(0, 0), (1, 1), (2, 2)])
        assert p.warp_direction() == 0


class TestProjectUp:
    def test_doubles_cells(self):
        p = WarpingPath([(0, 0), (1, 1)])
        cells = p.project_up(4, 4)
        assert set(cells) == {
            (0, 0), (0, 1), (1, 0), (1, 1),
            (2, 2), (2, 3), (3, 2), (3, 3),
        }

    def test_clips_odd_lengths(self):
        p = WarpingPath([(0, 0), (1, 1)])
        cells = p.project_up(3, 3)
        assert all(i < 3 and j < 3 for i, j in cells)
        assert (2, 2) in cells

    def test_covers_all_rows_for_even(self):
        p = WarpingPath([(0, 0), (1, 1), (2, 2)])
        rows = {i for i, _ in p.project_up(6, 6)}
        assert rows == set(range(6))


class TestDiagonalPath:
    def test_square(self):
        p = diagonal_path(4, 4)
        assert list(p) == [(0, 0), (1, 1), (2, 2), (3, 3)]

    def test_rectangular_valid(self):
        p = diagonal_path(3, 7)
        assert p[0] == (0, 0) and p[-1] == (2, 6)

    def test_single_row(self):
        p = diagonal_path(1, 5)
        assert list(p) == [(0, j) for j in range(5)]

    def test_single_cell(self):
        assert list(diagonal_path(1, 1)) == [(0, 0)]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            diagonal_path(0, 3)
