"""Unit tests for constrained DTW."""

import pytest

from repro.core.cdtw import band_cells, cdtw
from repro.core.dtw import dtw
from repro.core.euclidean import euclidean
from repro.core.naive import naive_dtw
from tests.conftest import make_series


class TestParameterHandling:
    def test_requires_exactly_one_of_window_band(self):
        x = [1.0, 2.0]
        with pytest.raises(ValueError, match="exactly one"):
            cdtw(x, x)
        with pytest.raises(ValueError, match="exactly one"):
            cdtw(x, x, window=0.1, band=1)

    def test_band_zero_equals_euclidean(self):
        x = make_series(20, 1)
        y = make_series(20, 2)
        assert cdtw(x, y, band=0).distance == pytest.approx(euclidean(x, y))

    def test_window_zero_equals_euclidean(self):
        x = make_series(20, 3)
        y = make_series(20, 4)
        assert cdtw(x, y, window=0.0).distance == pytest.approx(
            euclidean(x, y)
        )

    def test_window_one_equals_full_dtw(self):
        x = make_series(15, 5)
        y = make_series(15, 6)
        assert cdtw(x, y, window=1.0).distance == pytest.approx(
            dtw(x, y).distance
        )

    def test_large_band_equals_full_dtw(self):
        x = make_series(10, 7)
        y = make_series(10, 8)
        assert cdtw(x, y, band=100).distance == pytest.approx(
            dtw(x, y).distance
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cdtw([], [], band=0)


class TestCorrectness:
    @pytest.mark.parametrize("band", [0, 1, 2, 5, 10])
    def test_matches_naive_banded(self, band):
        for seed in range(5):
            x = make_series(12, seed)
            y = make_series(12, seed + 50)
            assert cdtw(x, y, band=band).distance == pytest.approx(
                naive_dtw(x, y, band=band), abs=1e-9
            )

    def test_monotone_decreasing_in_band(self):
        x = make_series(20, 11)
        y = make_series(20, 12)
        distances = [
            cdtw(x, y, band=b).distance for b in range(0, 21, 2)
        ]
        assert all(a >= b - 1e-12 for a, b in zip(distances, distances[1:]))

    def test_sandwiched_by_dtw_and_euclidean(self):
        x = make_series(18, 13)
        y = make_series(18, 14)
        full = dtw(x, y).distance
        ed = euclidean(x, y)
        for band in (0, 2, 5, 9):
            d = cdtw(x, y, band=band).distance
            assert full - 1e-12 <= d <= ed + 1e-12

    def test_symmetry_equal_lengths(self):
        x = make_series(14, 15)
        y = make_series(14, 16)
        assert cdtw(x, y, band=3).distance == pytest.approx(
            cdtw(y, x, band=3).distance
        )

    def test_path_stays_within_band(self):
        x = make_series(25, 17)
        y = make_series(25, 18)
        for band in (1, 3, 7):
            r = cdtw(x, y, band=band, return_path=True)
            assert r.path.max_band_deviation() <= band

    def test_unequal_lengths_supported(self):
        x = make_series(10, 19)
        y = make_series(17, 20)
        d = cdtw(x, y, band=3).distance
        assert d >= dtw(x, y).distance - 1e-12


class TestCellAccounting:
    def test_cells_match_band_cells(self):
        x = make_series(30, 21)
        y = make_series(30, 22)
        for band in (0, 2, 8):
            assert cdtw(x, y, band=band).cells == band_cells(
                30, 30, band=band
            )

    def test_band_cells_equal_lengths_formula(self):
        # interior rows have 2b+1 cells; edges are clipped
        n, b = 50, 3
        expected = sum(
            min(n - 1, i + b) - max(0, i - b) + 1 for i in range(n)
        )
        assert band_cells(n, n, band=b) == expected

    def test_band_cells_requires_one_parameter(self):
        with pytest.raises(ValueError):
            band_cells(10, 10)

    def test_cells_grow_with_window(self):
        counts = [
            band_cells(100, 100, window=w / 100) for w in range(0, 30, 5)
        ]
        assert counts == sorted(counts)
