"""Unit tests for multivariate DTW/cDTW/FastDTW."""

import pytest

from repro.core.cdtw import cdtw
from repro.core.dtw import dtw
from repro.core.multivariate import (
    cdtw_nd,
    dtw_nd,
    fastdtw_nd,
    halve_nd,
    interleave,
    magnitude,
    vector_abs_cost,
    vector_squared_cost,
)
from tests.conftest import make_series


def make_vectors(n: int, dim: int, seed: int):
    return [
        tuple(make_series(dim, seed * 1000 + i))
        for i in range(n)
    ]


class TestVectorCosts:
    def test_squared_euclidean(self):
        assert vector_squared_cost((0.0, 0.0), (3.0, 4.0)) == 25.0

    def test_abs_manhattan(self):
        assert vector_abs_cost((0.0, 0.0), (3.0, -4.0)) == 7.0

    def test_dimension_one_reduces_to_scalar(self):
        assert vector_squared_cost((2.0,), (5.0,)) == 9.0


class TestDtwNd:
    def test_identical_zero(self):
        x = make_vectors(10, 3, 1)
        assert dtw_nd(x, x).distance == 0.0

    def test_dimension_one_matches_scalar_dtw(self):
        xs = make_series(12, 2)
        ys = make_series(14, 3)
        vx = [(v,) for v in xs]
        vy = [(v,) for v in ys]
        assert dtw_nd(vx, vy).distance == pytest.approx(
            dtw(xs, ys).distance
        )

    def test_symmetric(self):
        x = make_vectors(8, 2, 4)
        y = make_vectors(10, 2, 5)
        assert dtw_nd(x, y).distance == pytest.approx(
            dtw_nd(y, x).distance
        )

    def test_time_dilation_free(self):
        x = [(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]
        y = [(0.0, 0.0), (1.0, 1.0), (1.0, 1.0), (2.0, 2.0)]
        assert dtw_nd(x, y).distance == 0.0

    def test_path_recovery(self):
        x = make_vectors(7, 2, 6)
        y = make_vectors(7, 2, 7)
        r = dtw_nd(x, y, return_path=True)
        total = sum(
            vector_squared_cost(x[i], y[j]) for i, j in r.path
        )
        assert total == pytest.approx(r.distance)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError, match="dimension mismatch"):
            dtw_nd([(1.0, 2.0)], [(1.0,)])

    def test_ragged_series_rejected(self):
        with pytest.raises(ValueError, match="inconsistent"):
            dtw_nd([(1.0,), (1.0, 2.0)], [(1.0,)])

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="not finite"):
            dtw_nd([(float("nan"),)], [(1.0,)])

    def test_unknown_cost_rejected(self):
        with pytest.raises(ValueError, match="unknown multivariate cost"):
            dtw_nd([(1.0,)], [(1.0,)], cost="cosine")


class TestCdtwNd:
    def test_dimension_one_matches_scalar_cdtw(self):
        xs = make_series(15, 8)
        ys = make_series(15, 9)
        vx = [(v,) for v in xs]
        vy = [(v,) for v in ys]
        for band in (0, 2, 6):
            assert cdtw_nd(vx, vy, band=band).distance == pytest.approx(
                cdtw(xs, ys, band=band).distance
            )

    def test_monotone_in_band(self):
        x = make_vectors(12, 3, 10)
        y = make_vectors(12, 3, 11)
        prev = float("inf")
        for band in (0, 2, 5, 12):
            d = cdtw_nd(x, y, band=band).distance
            assert d <= prev + 1e-9
            prev = d

    def test_requires_one_parameter(self):
        x = make_vectors(4, 2, 12)
        with pytest.raises(ValueError, match="exactly one"):
            cdtw_nd(x, x)

    def test_window_fraction(self):
        x = make_vectors(10, 2, 13)
        y = make_vectors(10, 2, 14)
        assert cdtw_nd(x, y, window=1.0).distance == pytest.approx(
            dtw_nd(x, y).distance
        )


class TestHalveNd:
    def test_componentwise_means(self):
        assert halve_nd([(0.0, 4.0), (2.0, 0.0)]) == [(1.0, 2.0)]

    def test_odd_drops_last(self):
        assert halve_nd([(0.0,), (2.0,), (9.0,)]) == [(1.0,)]

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            halve_nd([(1.0,)])


class TestFastdtwNd:
    @pytest.mark.parametrize("seed", range(5))
    def test_upper_bounds_full(self, seed):
        x = make_vectors(40, 2, seed)
        y = make_vectors(40, 2, seed + 100)
        exact = dtw_nd(x, y).distance
        for radius in (0, 1, 3):
            assert fastdtw_nd(x, y, radius=radius).distance >= exact - 1e-9

    def test_converges_with_radius(self):
        x = make_vectors(24, 3, 20)
        y = make_vectors(24, 3, 21)
        assert fastdtw_nd(x, y, radius=24).distance == pytest.approx(
            dtw_nd(x, y).distance
        )

    def test_dimension_one_close_to_scalar_fastdtw(self):
        from repro.core.fastdtw import fastdtw

        xs = make_series(48, 22)
        ys = make_series(48, 23)
        vx = [(v,) for v in xs]
        vy = [(v,) for v in ys]
        assert fastdtw_nd(vx, vy, radius=3).distance == pytest.approx(
            fastdtw(xs, ys, radius=3).distance
        )

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            fastdtw_nd([(1.0,)], [(1.0,)], radius=-1)

    def test_path_end_cells(self):
        x = make_vectors(30, 2, 24)
        y = make_vectors(37, 2, 25)
        r = fastdtw_nd(x, y, radius=2)
        assert r.path[0] == (0, 0)
        assert r.path[-1] == (29, 36)


class TestChannels:
    def test_interleave(self):
        assert interleave([1.0, 2.0], [10.0, 20.0]) == [
            (1.0, 10.0), (2.0, 20.0)
        ]

    def test_interleave_rejects_ragged(self):
        with pytest.raises(ValueError, match="lengths differ"):
            interleave([1.0], [1.0, 2.0])

    def test_interleave_rejects_empty(self):
        with pytest.raises(ValueError):
            interleave()

    def test_magnitude(self):
        assert magnitude([(3.0, 4.0), (0.0, 0.0)]) == [5.0, 0.0]

    def test_magnitude_of_interleaved_channels(self):
        xs = make_series(10, 30)
        m = magnitude(interleave(xs, xs))
        assert m == pytest.approx([abs(v) * 2 ** 0.5 for v in xs])


class TestMultivariateGestures:
    def test_generator_shape(self):
        from repro.datasets.gestures import multivariate_gestures

        series, labels = multivariate_gestures(
            n_classes=2, per_class=3, length=32, axes=3, seed=1
        )
        assert len(series) == 6 == len(labels)
        assert all(len(s) == 32 for s in series)
        assert all(len(v) == 3 for s in series for v in s)

    def test_classes_separable_under_multivariate_cdtw(self):
        from repro.datasets.gestures import multivariate_gestures

        series, labels = multivariate_gestures(
            n_classes=2, per_class=3, length=48, axes=2,
            warp_fraction=0.04, seed=2,
        )
        # nearest neighbour of each exemplar shares its class
        for i, s in enumerate(series):
            best, best_d = None, float("inf")
            for j, t in enumerate(series):
                if i == j:
                    continue
                d = cdtw_nd(s, t, window=0.10).distance
                if d < best_d:
                    best, best_d = j, d
            assert labels[best] == labels[i]

    def test_generator_validation(self):
        from repro.datasets.gestures import multivariate_gestures

        with pytest.raises(ValueError):
            multivariate_gestures(axes=0)
        with pytest.raises(ValueError):
            multivariate_gestures(n_classes=1)
