"""The multivariate measure registry entries (DTW_D / DTW_I).

Covers the ``measure_fn`` dispatch of the four nd measures across
backends, the dependent/independent ordering ``DTW_I <= DTW_D``, the
flat-scalar-series refusal, and the ``abandon_above=`` contract of
the fastdtw measures (scalar and nd).
"""

from math import inf

import pytest

from repro.core.cdtw import cdtw
from repro.core.dtw import dtw
from repro.core.fastdtw import fastdtw
from repro.core.measures import (
    MEASURES,
    ND_BANDED_MEASURES,
    ND_MEASURES,
    measure_fn,
    split_result,
)
from repro.core.multivariate import (
    cdtw_i,
    cdtw_nd,
    dtw_i,
    dtw_nd,
    fastdtw_nd,
)
from tests.conftest import make_vectors

BACKENDS = ("python", "numpy")


class TestRegistry:
    def test_nd_measures_are_registered(self):
        for m in ND_MEASURES:
            assert m in MEASURES

    @pytest.mark.parametrize("measure", ND_BANDED_MEASURES)
    def test_banded_measures_require_one_constraint(self, measure):
        with pytest.raises(ValueError, match="exactly one"):
            measure_fn(measure)
        with pytest.raises(ValueError, match="exactly one"):
            measure_fn(measure, window=0.1, band=2)

    @pytest.mark.parametrize("measure", ("dtw_d", "dtw_i"))
    def test_unconstrained_measures_reject_band(self, measure):
        with pytest.raises(ValueError, match="takes no window"):
            measure_fn(measure, band=2)


class TestDispatch:
    """measure_fn(nd measure) equals the direct multivariate API."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_dtw_d(self, backend):
        x, y = make_vectors(20, 3, 1), make_vectors(24, 3, 2)
        fn = measure_fn("dtw_d", backend=backend)
        d, cells, _ = split_result(fn(x, y))
        ref = dtw_nd(x, y)
        assert d == ref.distance and cells == ref.cells

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_cdtw_d(self, backend):
        x, y = make_vectors(20, 3, 3), make_vectors(20, 3, 4)
        fn = measure_fn("cdtw_d", band=4, backend=backend)
        d, cells, _ = split_result(fn(x, y))
        ref = cdtw_nd(x, y, band=4)
        assert d == ref.distance and cells == ref.cells

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_dtw_i(self, backend):
        x, y = make_vectors(18, 2, 5), make_vectors(22, 2, 6)
        fn = measure_fn("dtw_i", backend=backend)
        d, cells, _ = split_result(fn(x, y))
        ref = dtw_i(x, y)
        assert d == ref.distance and cells == ref.cells

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_cdtw_i(self, backend):
        x, y = make_vectors(18, 2, 7), make_vectors(18, 2, 8)
        fn = measure_fn("cdtw_i", band=3, backend=backend)
        d, cells, _ = split_result(fn(x, y))
        ref = cdtw_i(x, y, band=3)
        assert d == ref.distance and cells == ref.cells

    @pytest.mark.parametrize("measure", ("cdtw_d", "cdtw_i"))
    def test_window_fraction_accepted(self, measure):
        x, y = make_vectors(30, 2, 9), make_vectors(30, 2, 10)
        fn = measure_fn(measure, window=0.2)
        d, _, _ = split_result(fn(x, y))
        assert d >= 0.0

    @pytest.mark.parametrize("measure", ND_MEASURES)
    def test_backends_agree_bit_for_bit(self, measure):
        x, y = make_vectors(25, 3, 11), make_vectors(25, 3, 12)
        kwargs = {"band": 5} if measure in ND_BANDED_MEASURES else {}
        py = split_result(
            measure_fn(measure, backend="python", **kwargs)(x, y)
        )
        np_ = split_result(
            measure_fn(measure, backend="numpy", **kwargs)(x, y)
        )
        assert py == np_


class TestOrdering:
    """DTW_I <= DTW_D for the squared cost, banded or not."""

    @pytest.mark.parametrize("seed", range(5))
    def test_independent_below_dependent(self, seed):
        x = make_vectors(30, 3, seed)
        y = make_vectors(30, 3, seed + 100)
        assert dtw_i(x, y).distance <= dtw_nd(x, y).distance + 1e-9
        assert (
            cdtw_i(x, y, band=4).distance
            <= cdtw_nd(x, y, band=4).distance + 1e-9
        )


class TestFlatSeriesRefused:
    """Regression: a flat scalar series must name the fix, not crash
    with an opaque TypeError deep in the cost function."""

    @pytest.mark.parametrize(
        "fn",
        [
            dtw_nd,
            lambda x, y: cdtw_nd(x, y, band=2),
            dtw_i,
            lambda x, y: cdtw_i(x, y, band=2),
            fastdtw_nd,
        ],
        ids=["dtw_nd", "cdtw_nd", "dtw_i", "cdtw_i", "fastdtw_nd"],
    )
    def test_flat_series_raises_value_error(self, fn):
        flat = [0.0, 1.0, 2.0, 3.0]
        vec = make_vectors(4, 2, 0)
        with pytest.raises(ValueError, match="flat scalar series"):
            fn(flat, vec)
        with pytest.raises(ValueError, match="flat scalar series"):
            fn(vec, flat)

    @pytest.mark.parametrize("measure", ND_MEASURES)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_measure_fn_routes_refuse_flat(self, measure, backend):
        kwargs = {"band": 2} if measure in ND_BANDED_MEASURES else {}
        fn = measure_fn(measure, backend=backend, **kwargs)
        with pytest.raises(ValueError, match="flat scalar series"):
            fn([0.0, 1.0, 2.0], make_vectors(3, 2, 1))


class TestFastdtwAbandon:
    """abandon_above= on fastdtw (scalar) and fastdtw_nd."""

    def test_nd_loose_threshold_is_inert(self):
        x, y = make_vectors(40, 3, 1), make_vectors(40, 3, 2)
        plain = fastdtw_nd(x, y, radius=1)
        kept = fastdtw_nd(
            x, y, radius=1, abandon_above=plain.distance + 1.0
        )
        assert not kept.abandoned
        assert kept.distance == plain.distance
        assert kept.path == plain.path

    def test_nd_tight_threshold_abandons(self):
        x, y = make_vectors(40, 3, 3), make_vectors(40, 3, 4)
        plain = fastdtw_nd(x, y, radius=1)
        assert plain.distance > 0
        dropped = fastdtw_nd(
            x, y, radius=1, abandon_above=plain.distance / 2.0
        )
        assert dropped.abandoned
        assert dropped.distance == inf
        assert dropped.path is None

    def test_nd_abandon_saves_cells(self):
        x, y = make_vectors(60, 2, 5), make_vectors(60, 2, 6)
        plain = fastdtw_nd(x, y, radius=1)
        dropped = fastdtw_nd(x, y, radius=1, abandon_above=0.0)
        assert dropped.abandoned
        assert dropped.cells < plain.cells

    def test_scalar_loose_threshold_is_inert(self):
        from tests.conftest import make_series

        x, y = make_series(40, 1), make_series(40, 2)
        plain = fastdtw(x, y, radius=1)
        kept = fastdtw(x, y, radius=1, abandon_above=plain.distance + 1.0)
        assert not kept.abandoned
        assert kept.distance == plain.distance

    def test_scalar_tight_threshold_abandons(self):
        from tests.conftest import make_series

        x, y = make_series(40, 3), make_series(40, 4)
        plain = fastdtw(x, y, radius=1)
        assert plain.distance > 0
        dropped = fastdtw(
            x, y, radius=1, abandon_above=plain.distance / 2.0
        )
        assert dropped.abandoned
        assert dropped.distance == inf


class TestDim1Sanity:
    """Quick dim-1 check here; the exhaustive reduction suite lives in
    tests/core/test_dim1_reduction.py."""

    def test_dim1_equals_scalar(self):
        from tests.conftest import make_series

        xs, ys = make_series(16, 1), make_series(16, 2)
        vx = [(v,) for v in xs]
        vy = [(v,) for v in ys]
        assert dtw_nd(vx, vy).distance == dtw(xs, ys).distance
        assert (
            cdtw_i(vx, vy, band=3).distance
            == cdtw(xs, ys, band=3).distance
        )
