"""Property tests for Window constructors (Hypothesis)."""

import math

from hypothesis import given, settings, strategies as st

from repro.core.engine import dp_over_window
from repro.core.window import Window


@st.composite
def lattice_and_cells(draw):
    n = draw(st.integers(min_value=1, max_value=15))
    m = draw(st.integers(min_value=1, max_value=15))
    count = draw(st.integers(min_value=0, max_value=20))
    cells = [
        (draw(st.integers(min_value=-2, max_value=n + 1)),
         draw(st.integers(min_value=-2, max_value=m + 1)))
        for _ in range(count)
    ]
    return n, m, cells


@settings(deadline=None, max_examples=100)
@given(lattice_and_cells())
def test_from_cells_always_feasible(args):
    n, m, cells = args
    w = Window.from_cells(n, m, cells)  # __post_init__ validates
    assert w.contains(0, 0)
    assert w.contains(n - 1, m - 1)
    r = dp_over_window([0.0] * n, [0.0] * m, w)
    assert math.isfinite(r.distance)


@settings(deadline=None, max_examples=100)
@given(lattice_and_cells())
def test_from_cells_contains_in_bounds_input(args):
    n, m, cells = args
    w = Window.from_cells(n, m, cells)
    for i, j in cells:
        if 0 <= i < n and 0 <= j < m:
            assert w.contains(i, j), (i, j, w.ranges)


@settings(deadline=None, max_examples=100)
@given(
    st.integers(min_value=1, max_value=20),
    st.integers(min_value=1, max_value=20),
    st.floats(min_value=1.0, max_value=5.0, allow_nan=False),
)
def test_itakura_always_feasible(n, m, slope):
    w = Window.itakura(n, m, max_slope=slope)
    assert w.contains(0, 0)
    assert w.contains(n - 1, m - 1)
    r = dp_over_window([0.0] * n, [0.0] * m, w)
    assert math.isfinite(r.distance)


@settings(deadline=None, max_examples=60)
@given(
    st.integers(min_value=2, max_value=20),
    st.integers(min_value=0, max_value=8),
    st.integers(min_value=0, max_value=8),
)
def test_union_contains_both_operands(n, band_a, band_b):
    a = Window.band(n, n, band_a)
    b = Window.band(n, n, band_b)
    u = a.union(b)
    for i in range(n):
        alo, ahi = a.row(i)
        blo, bhi = b.row(i)
        ulo, uhi = u.row(i)
        assert ulo <= min(alo, blo)
        assert uhi >= max(ahi, bhi)
