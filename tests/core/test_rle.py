"""The compressed-domain exact DTW (:mod:`repro.core.rle`).

Three layers of contract:

* **Encoding** -- ``RleSeries`` round-trips float64 bit-exactly
  (signed zeros included), rejects non-finite input with the
  ``validate.py`` wording, and validates its own construction.
* **Exactness** -- on the dyadic grid the block DP's distances and
  cell accounting are ``==``-identical to the dense engine, full and
  banded, on both kernel backends; the python and numpy block kernels
  are bit-identical for *all* float inputs.
* **Cost model** -- cells are exactly ``k*m + l*n`` for the full
  measure, and the adversarial all-runs-length-1 input costs exactly
  twice the dense lattice (the small-constant-overhead guarantee).
"""

from __future__ import annotations

import math
import random

import pytest

from repro.core.cdtw import cdtw
from repro.core.dtw import dtw
from repro.core.rle import (
    RleSeries,
    as_rle,
    rle_block_python,
    rle_cdtw,
    rle_dtw,
)
from repro.core.rle_numpy import rle_block_numpy
from repro.obs import RunTrace

BACKENDS = ("python", "numpy")

#: dyadic value grid where block DP == dense DP is provable
GRID = 2.0 ** -6


def step_series(rng, length, grid=GRID, runs=(1, 7)):
    """A random step function on the dyadic grid."""
    out = []
    while len(out) < length:
        value = rng.randrange(-512, 513) * grid
        out.extend([value] * rng.randrange(*runs))
    return out[:length]


class TestEncodeDecode:
    def test_round_trip_is_bit_exact(self):
        rng = random.Random(0)
        x = [rng.uniform(-100.0, 100.0) for _ in range(64)]
        x[10:20] = [x[10]] * 10
        decoded = RleSeries.encode(x).decode()
        assert decoded == x
        assert all(
            math.copysign(1.0, a) == math.copysign(1.0, b)
            for a, b in zip(decoded, x)
        )

    def test_signed_zeros_are_distinct_runs(self):
        rs = RleSeries.encode([0.0, 0.0, -0.0, 0.0])
        assert rs.run_count == 3
        assert rs.lengths == (2, 1, 1)
        decoded = rs.decode()
        assert math.copysign(1.0, decoded[2]) == -1.0

    def test_run_structure(self):
        rs = RleSeries.encode([1.0, 1.0, 2.0, 2.0, 2.0, 1.0])
        assert rs.values == (1.0, 2.0, 1.0)
        assert rs.lengths == (2, 3, 1)
        assert rs.n == 6
        assert len(rs) == 6
        assert rs.compression_ratio == 2.0

    def test_constant_series_is_one_run(self):
        rs = RleSeries.encode([3.5] * 40)
        assert rs.run_count == 1
        assert rs.compression_ratio == 40.0

    def test_length_one_series(self):
        rs = RleSeries.encode([2.0])
        assert rs.run_count == 1
        assert rs.decode() == [2.0]

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError, match="is empty"):
            RleSeries.encode([], name="x")

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf")])
    def test_non_finite_rejected_like_validate(self, bad):
        # same wording as repro.core.validate.validate_series
        with pytest.raises(ValueError, match="sample 2 is not finite"):
            RleSeries.encode([0.0, 1.0, bad], name="x")

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError, match="tolerance"):
            RleSeries.encode([1.0], tolerance=-0.1)

    def test_positive_tolerance_merges_near_values(self):
        rs = RleSeries.encode([1.0, 1.05, 0.95, 2.0], tolerance=0.1)
        assert rs.run_count == 2
        assert rs.values[0] == 1.0  # the run's anchor value

    def test_as_rle_passes_encoded_through(self):
        rs = RleSeries.encode([1.0, 1.0, 2.0])
        assert as_rle(rs, "x") is rs
        assert as_rle([1.0, 1.0, 2.0], "x").values == rs.values


class TestConstructionValidation:
    def test_mismatched_lengths(self):
        with pytest.raises(ValueError, match="run values but"):
            RleSeries(values=(1.0, 2.0), lengths=(3,))

    def test_empty(self):
        with pytest.raises(ValueError, match="is empty"):
            RleSeries(values=(), lengths=())

    def test_non_positive_run_length(self):
        with pytest.raises(ValueError, match="positive"):
            RleSeries(values=(1.0,), lengths=(0,))

    def test_bool_run_length_rejected(self):
        with pytest.raises(ValueError, match="int"):
            RleSeries(values=(1.0,), lengths=(True,))

    def test_non_finite_value(self):
        with pytest.raises(ValueError, match="finite"):
            RleSeries(values=(float("inf"),), lengths=(2,))


class TestExactnessGrid:
    def test_dyadic_values_pass(self):
        rs = RleSeries.encode([k * GRID for k in (-64, 0, 511)])
        assert rs.exactness_grid()

    def test_off_grid_values_fail(self):
        assert not RleSeries.encode([math.pi]).exactness_grid()

    def test_magnitude_bound(self):
        assert not RleSeries.encode([128.0]).exactness_grid(
            magnitude=64.0
        )


class TestBitExactAgainstDense:
    """On the dyadic grid: ``==`` on distances and cells, never close."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_full_dtw_agrees(self, backend, seed):
        rng = random.Random(seed)
        x = step_series(rng, 40 + seed * 7)
        y = step_series(rng, 35 + seed * 5)
        dense = dtw(x, y)
        rle = rle_dtw(x, y, backend=backend)
        assert rle.distance == dense.distance

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("cost", ["squared", "abs"])
    def test_costs_agree(self, backend, cost):
        rng = random.Random(11)
        x = step_series(rng, 30)
        y = step_series(rng, 30)
        assert (
            rle_dtw(x, y, cost=cost, backend=backend).distance
            == dtw(x, y, cost=cost).distance
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_banded_agrees(self, backend, seed):
        rng = random.Random(100 + seed)
        x = step_series(rng, 36)
        y = step_series(rng, 36)
        for kwargs in ({"window": 0.2}, {"band": 4}):
            dense = cdtw(x, y, **kwargs)
            rle = rle_cdtw(x, y, backend=backend, **kwargs)
            assert rle.distance == dense.distance

    def test_constant_vs_constant(self):
        assert rle_dtw([2.0] * 30, [2.0] * 50).distance == 0.0
        dense = dtw([1.0] * 12, [3.0] * 9)
        assert rle_dtw([1.0] * 12, [3.0] * 9).distance == dense.distance

    def test_length_one_inputs(self):
        assert (
            rle_dtw([1.0], [2.0, 2.0, 3.0]).distance
            == dtw([1.0], [2.0, 2.0, 3.0]).distance
        )

    def test_exactly_one_of_window_band(self):
        x = [1.0] * 8
        with pytest.raises(ValueError, match="exactly one"):
            rle_cdtw(x, x)
        with pytest.raises(ValueError, match="exactly one"):
            rle_cdtw(x, x, window=0.1, band=2)


class TestCellAccounting:
    def test_full_cells_are_km_plus_ln(self):
        rng = random.Random(5)
        x = step_series(rng, 48)
        y = step_series(rng, 31)
        rx, ry = RleSeries.encode(x), RleSeries.encode(y)
        result = rle_dtw(x, y)
        assert result.cells == (
            rx.run_count * ry.n + ry.run_count * rx.n
        )

    def test_all_runs_length_one_costs_twice_dense(self):
        # the adversarial input: no run longer than 1 sample.  The
        # block DP must degrade to a small constant over dense, never
        # blow up -- here exactly 2 * n * m boundary cells.
        n = 24
        x = [float(i % 2) + i * GRID for i in range(n)]
        y = [float((i + 1) % 2) + i * GRID for i in range(n)]
        assert RleSeries.encode(x).run_count == n
        dense = dtw(x, y)
        rle = rle_dtw(x, y)
        assert rle.distance == dense.distance
        assert rle.cells == 2 * dense.cells

    def test_banded_cells_never_exceed_full(self):
        rng = random.Random(9)
        x = step_series(rng, 40)
        y = step_series(rng, 40)
        assert (
            rle_cdtw(x, y, band=5).cells <= rle_dtw(x, y).cells
        )


class TestPaths:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_path_is_valid_and_optimal(self, seed):
        rng = random.Random(40 + seed)
        x = step_series(rng, 28)
        y = step_series(rng, 22)
        result = rle_dtw(x, y, return_path=True)
        # WarpingPath construction already validates monotonicity and
        # endpoints; the DP cross-check is cost-sum == distance
        assert result.path.cost(x, y) == result.distance

    def test_unique_path_matches_dense(self):
        # a staircase with one clearly optimal alignment
        x = [0.0] * 4 + [4.0] * 4 + [8.0] * 4
        y = [0.0] * 2 + [4.0] * 6 + [8.0] * 4
        dense = dtw(x, y, return_path=True)
        rle = rle_dtw(x, y, return_path=True)
        assert rle.distance == dense.distance
        assert rle.path.cost(x, y) == dense.path.cost(x, y)

    def test_banded_path_delegates_to_dense(self):
        rng = random.Random(77)
        x = step_series(rng, 30)
        y = step_series(rng, 30)
        dense = cdtw(x, y, band=4, return_path=True)
        rle = rle_cdtw(x, y, band=4, return_path=True)
        assert rle.path.cells == dense.path.cells
        assert rle.distance == dense.distance


class TestBackendParity:
    """python and numpy are bit-identical for ALL floats, not just
    the exactness grid -- both evaluate the same expressions."""

    @pytest.mark.parametrize("seed", range(8))
    def test_block_kernels_identical(self, seed):
        rng = random.Random(seed)
        h, w = rng.randrange(1, 9), rng.randrange(1, 9)
        corner = rng.uniform(-10, 10)
        T = [corner] + [rng.uniform(-1e3, 1e3) for _ in range(w)]
        L = [corner] + [rng.uniform(-1e3, 1e3) for _ in range(h)]
        c = rng.uniform(0.0, 5.0)
        assert rle_block_python(T, L, c, h, w) == rle_block_numpy(
            T, L, c, h, w
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_measures_identical_on_arbitrary_floats(self, seed):
        rng = random.Random(200 + seed)

        def rough_steps(length):
            out = []
            while len(out) < length:
                out.extend(
                    [rng.uniform(-5, 5)] * rng.randrange(1, 6)
                )
            return out[:length]

        x, y = rough_steps(33), rough_steps(29)
        py = rle_dtw(x, y, backend="python")
        np_ = rle_dtw(x, y, backend="numpy")
        assert py.distance == np_.distance
        assert py.cells == np_.cells
        y2 = rough_steps(33)
        assert (
            rle_cdtw(x, y2, band=6, backend="python").distance
            == rle_cdtw(x, y2, band=6, backend="numpy").distance
        )

    def test_kernel_outputs_are_plain_floats(self):
        # serve answers are JSON-serialised; np.float64 must never
        # leak out of the numpy kernel
        B, R = rle_block_numpy([0.0, 1.0, 2.0], [0.0, 3.0], 1.0, 1, 2)
        for v in B + R:
            assert type(v) is float


class TestPoisonedScratch:
    """Mirror of the chunk kernels' ``count=`` padding contract: the
    block kernel must read only the declared ``w+1``/``h+1`` boundary
    entries, never scratch beyond them."""

    @pytest.mark.parametrize("kernel", [rle_block_python,
                                        rle_block_numpy],
                             ids=["python", "numpy"])
    @pytest.mark.parametrize("poison", [float("nan"), 1e308, -1e308])
    def test_trailing_poison_never_read(self, kernel, poison):
        rng = random.Random(31)
        h, w = 4, 6
        corner = rng.uniform(-5, 5)
        T = [corner] + [rng.uniform(-5, 5) for _ in range(w)]
        L = [corner] + [rng.uniform(-5, 5) for _ in range(h)]
        clean = kernel(list(T), list(L), 2.5, h, w)
        # hand the kernel views sliced out of poisoned buffers: any
        # out-of-bounds read would drag NaN/1e308 into a min
        pt = T + [poison] * 8
        pl = L + [poison] * 8
        poisoned = kernel(pt[:w + 1], pl[:h + 1], 2.5, h, w)
        assert poisoned == clean


class TestObsCounters:
    def test_rle_counters_recorded(self):
        rng = random.Random(3)
        x = step_series(rng, 30)
        y = step_series(rng, 25)
        rx, ry = RleSeries.encode(x), RleSeries.encode(y)
        with RunTrace() as trace:
            result = rle_dtw(x, y)
        assert trace.counter("dp.calls") == 1
        assert trace.counter("dp.cells") == result.cells
        assert trace.counter("rle.runs") == (
            rx.run_count + ry.run_count
        )
        assert trace.counter("rle.block_cells") == result.cells

    def test_untraced_calls_have_no_overhead_path(self):
        assert rle_dtw([1.0, 1.0], [1.0]).distance == 0.0


class TestCostValidation:
    def test_negative_local_cost_rejected(self):
        # negative block costs break the staircase optimality proof
        with pytest.raises(ValueError, match="non-negative"):
            rle_dtw([0.0, 1.0], [1.0], cost=lambda a, b: a - b - 5.0)
