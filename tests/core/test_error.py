"""Unit tests for the approximation-error metric."""

import math

import pytest

from repro.core.error import approximation_error, approximation_error_percent


class TestApproximationError:
    def test_exact_approximation_zero(self):
        assert approximation_error(5.0, 5.0) == 0.0

    def test_double_is_one(self):
        assert approximation_error(10.0, 5.0) == 1.0

    def test_percent(self):
        assert approximation_error_percent(10.0, 5.0) == 100.0

    def test_paper_headline_number(self):
        # Table 2: FastDTW_20 = 31.24 vs Full DTW = 0.020
        assert approximation_error_percent(31.24, 0.020) == pytest.approx(
            156_100, rel=1e-3
        )

    def test_both_zero(self):
        assert approximation_error(0.0, 0.0) == 0.0

    def test_exact_zero_approx_positive_is_inf(self):
        assert approximation_error(1.0, 0.0) == math.inf

    def test_underestimate_is_negative(self):
        # lower bounds produce negative "error"
        assert approximation_error(4.0, 5.0) == pytest.approx(-0.2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            approximation_error(-1.0, 2.0)
        with pytest.raises(ValueError, match="negative"):
            approximation_error(1.0, -2.0)

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            approximation_error(float("nan"), 1.0)
