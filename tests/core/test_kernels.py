"""The kernel backend registry: resolution, defaults and contracts."""

import pytest

from repro.core import kernels
from repro.core.engine import dp_over_window
from repro.core.kernels import (
    KernelSet,
    available_backends,
    banded_window,
    default_backend,
    fraction_window,
    full_window,
    get_kernels,
    resolve_backend,
    set_default_backend,
    use_backend,
)
from repro.core.window import Window
from tests.conftest import make_series


class TestResolution:
    def test_python_always_available(self):
        assert "python" in available_backends()

    def test_numpy_available_here(self):
        # the test environment has numpy; elsewhere the registry may
        # legitimately omit it, which the availability hook handles
        assert "numpy" in available_backends()

    def test_none_resolves_to_default(self):
        assert resolve_backend(None) == default_backend()

    def test_default_is_python(self):
        assert default_backend() == "python"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("fortran")

    def test_get_kernels_returns_kernelset(self):
        for name in available_backends():
            ks = get_kernels(name)
            assert isinstance(ks, KernelSet)
            assert ks.name == name

    def test_kernelsets_are_cached(self):
        assert get_kernels("python") is get_kernels("python")

    def test_python_dtw_is_the_engine(self):
        assert get_kernels("python").dtw is dp_over_window


class TestDefaultSwitching:
    def test_set_default_backend_round_trip(self):
        previous = set_default_backend("numpy")
        try:
            assert previous == "python"
            assert default_backend() == "numpy"
            assert resolve_backend(None) == "numpy"
        finally:
            set_default_backend(previous)
        assert default_backend() == "python"

    def test_use_backend_scopes_and_restores(self):
        with use_backend("numpy"):
            assert default_backend() == "numpy"
        assert default_backend() == "python"

    def test_use_backend_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_backend("numpy"):
                raise RuntimeError("boom")
        assert default_backend() == "python"

    def test_default_switch_changes_consumer_backend(self):
        # a consumer passing backend=None follows the process default
        from repro.core.matrix import distance_matrix

        series = [make_series(12, s) for s in range(3)]
        plain = distance_matrix(series, measure="cdtw", window=0.2)
        with use_backend("numpy"):
            switched = distance_matrix(series, measure="cdtw", window=0.2)
        assert plain.values == switched.values
        assert plain.cells == switched.cells


class TestWindowMemoisation:
    def test_full_window_cached(self):
        assert full_window(7, 9) is full_window(7, 9)
        assert full_window(7, 9) == Window.full(7, 9)

    def test_banded_window_cached(self):
        assert banded_window(8, 8, 2) is banded_window(8, 8, 2)
        assert banded_window(8, 8, 2) == Window.band(8, 8, 2)

    def test_fraction_window_cached(self):
        assert fraction_window(10, 10, 0.1) is fraction_window(10, 10, 0.1)
        assert fraction_window(10, 10, 0.1) == Window.from_fraction(
            10, 10, 0.1
        )


class TestKernelContracts:
    @pytest.mark.parametrize("name", ["python", "numpy"])
    def test_dtw_contract(self, name):
        ks = get_kernels(name)
        x, y = make_series(12, 1), make_series(12, 2)
        win = banded_window(12, 12, 3)
        r = ks.dtw(x, y, win, cost="squared", return_path=True)
        assert r.distance >= 0
        assert r.cells == win.cell_count()
        assert r.path[0] == (0, 0) and r.path[-1] == (11, 11)

    @pytest.mark.parametrize("name", ["python", "numpy"])
    def test_lower_bound_contracts(self, name):
        ks = get_kernels(name)
        x, y = make_series(16, 3), make_series(16, 4)
        env = ks.envelope(x, 2)
        assert len(env.upper) == len(env.lower) == 16
        kim = ks.lb_kim(x, (y,), cost="squared")
        keogh = ks.lb_keogh(env, (y,))
        rev = ks.lb_keogh_reversed(x, (y,), 2)
        assert len(kim) == len(keogh) == len(rev) == 1
        from repro.core.cdtw import cdtw

        true_d = cdtw(x, y, band=2).distance
        for bound in (kim[0], keogh[0], rev[0]):
            assert bound <= true_d + 1e-9

    @pytest.mark.parametrize("name", ["python", "numpy"])
    def test_suffix_gap_bounds_contract(self, name):
        ks = get_kernels(name)
        x, y = make_series(14, 5), make_series(14, 6)
        env = ks.envelope(y, 3)
        suffix = ks.suffix_gap_bounds(x, env)
        assert len(suffix) == 14
        assert suffix[-1] == 0.0
        assert all(
            suffix[i] >= suffix[i + 1] for i in range(len(suffix) - 1)
        )

    def test_suffix_bounds_bitwise_equal_across_backends(self):
        py = get_kernels("python")
        np_ = get_kernels("numpy")
        x, y = make_series(30, 7), make_series(30, 8)
        env = py.envelope(y, 4)
        assert py.suffix_gap_bounds(x, env) == np_.suffix_gap_bounds(
            x, env
        )

    def test_envelopes_equal_across_backends(self):
        py = get_kernels("python")
        np_ = get_kernels("numpy")
        x = make_series(40, 9)
        for band in (0, 1, 5, 39, 60):
            assert py.envelope(x, band) == np_.envelope(x, band)
