"""Seeded property tests for :class:`DistanceMatrix` invariants.

Whatever the measure, an all-pairs matrix must be symmetric with a
zero diagonal, ``nearest_to`` must never return the query itself and
must break ties deterministically towards the smallest index.  These
are the invariants the clustering and 1-NN consumers rely on.
"""

from __future__ import annotations

import random

import pytest

from repro.core.matrix import MEASURES, distance_matrix
from repro.core.measures import ND_MEASURES

MEASURE_KWARGS = {
    "dtw": {},
    "cdtw": {"window": 0.25},
    "fastdtw": {"radius": 1},
    "fastdtw_reference": {"radius": 1},
    "euclidean": {},
    "rle_dtw": {},
    "rle_cdtw": {"window": 0.25},
    "dtw_d": {},
    "cdtw_d": {"window": 0.25},
    "dtw_i": {},
    "cdtw_i": {"window": 0.25},
}


def random_series_set(seed: int, count: int, length: int):
    rng = random.Random(seed)
    return [
        [rng.uniform(-3.0, 3.0) for _ in range(length)]
        for _ in range(count)
    ]


def random_vector_series_set(seed: int, count: int, length: int,
                             dims: int = 2):
    rng = random.Random(seed)
    return [
        [
            tuple(rng.uniform(-3.0, 3.0) for _ in range(dims))
            for _ in range(length)
        ]
        for _ in range(count)
    ]


@pytest.mark.parametrize("measure", MEASURES)
@pytest.mark.parametrize("seed", [0, 7, 42])
class TestMatrixInvariants:
    def build(self, measure, seed):
        if measure in ND_MEASURES:
            series = random_vector_series_set(seed, count=5, length=18)
        else:
            series = random_series_set(seed, count=5, length=18)
        return distance_matrix(
            series, measure=measure, **MEASURE_KWARGS[measure]
        )

    def test_symmetric_with_zero_diagonal(self, measure, seed):
        matrix = self.build(measure, seed)
        k = len(matrix)
        for i in range(k):
            assert matrix[i, i] == 0.0
            for j in range(k):
                assert matrix[i, j] == matrix[j, i]

    def test_distances_non_negative(self, measure, seed):
        matrix = self.build(measure, seed)
        k = len(matrix)
        assert all(
            matrix[i, j] >= 0.0 for i in range(k) for j in range(k)
        )

    def test_nearest_to_never_self(self, measure, seed):
        matrix = self.build(measure, seed)
        for i in range(len(matrix)):
            j = matrix.nearest_to(i)
            assert j != i
            assert 0 <= j < len(matrix)

    def test_nearest_to_is_a_row_minimum(self, measure, seed):
        matrix = self.build(measure, seed)
        for i in range(len(matrix)):
            j = matrix.nearest_to(i)
            row_min = min(
                matrix[i, m] for m in range(len(matrix)) if m != i
            )
            assert matrix[i, j] == row_min


class TestDeterministicTieBreaking:
    @pytest.mark.parametrize("measure", MEASURES)
    def test_duplicate_series_tie_towards_smallest_index(self, measure):
        rng = random.Random(13)
        if measure in ND_MEASURES:
            a = [tuple(rng.uniform(-2, 2) for _ in range(2))
                 for _ in range(16)]
            b = [tuple(rng.uniform(-2, 2) for _ in range(2))
                 for _ in range(16)]
            far = [tuple(c + 10.0 for c in v) for v in a]
        else:
            a = [rng.uniform(-2, 2) for _ in range(16)]
            b = [rng.uniform(-2, 2) for _ in range(16)]
            far = [v + 10.0 for v in a]
        # series 1 and 3 are identical copies of b: from 0's point of
        # view they tie exactly, and nearest_to must pick the smaller
        series = [a, list(b), far, list(b)]
        matrix = distance_matrix(
            series, measure=measure, **MEASURE_KWARGS[measure]
        )
        assert matrix[0, 1] == matrix[0, 3]
        if matrix[0, 1] <= matrix[0, 2]:
            assert matrix.nearest_to(0) == 1

    def test_all_identical_series(self):
        base = [float(v) for v in range(12)]
        series = [list(base) for _ in range(4)]
        matrix = distance_matrix(series, measure="dtw")
        # every off-diagonal distance ties at zero: nearest_to(i) is
        # the smallest index other than i, for every i
        assert [matrix.nearest_to(i) for i in range(4)] == [1, 0, 0, 0]

    def test_rebuild_is_bit_identical(self):
        series = random_series_set(99, count=4, length=20)
        first = distance_matrix(series, measure="cdtw", window=0.2)
        second = distance_matrix(series, measure="cdtw", window=0.2)
        assert first == second
