"""Unit tests for PAA and halving."""

import pytest

from repro.core.paa import halve, paa, paa_factor
from tests.conftest import make_series


class TestHalve:
    def test_even_length(self):
        assert halve([0.0, 2.0, 4.0, 6.0]) == [1.0, 5.0]

    def test_odd_length_drops_last(self):
        assert halve([0.0, 2.0, 99.0]) == [1.0]

    def test_length_halves(self):
        for n in (2, 3, 8, 9, 100, 101):
            assert len(halve(list(range(n)))) == n // 2

    def test_preserves_mean_even(self):
        x = make_series(20, 1)
        h = halve(x)
        assert sum(h) / len(h) == pytest.approx(sum(x) / len(x))

    def test_zero_mean_doublet_vanishes(self):
        # the adversarial construction's key property
        x = [0.0, 0.0, 3.0, -3.0, 0.0, 0.0]
        assert halve(x) == [0.0, 0.0, 0.0]

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            halve([1.0])


class TestPaa:
    def test_identity_when_segments_equal_length(self):
        x = [1.0, 2.0, 3.0]
        assert paa(x, 3) == x

    def test_exact_blocks(self):
        assert paa([1.0, 1.0, 3.0, 3.0], 2) == [1.0, 3.0]

    def test_fractional_blocks_weighted(self):
        # 3 samples into 2 segments: [x0, x1/2] and [x1/2, x2]
        result = paa([0.0, 6.0, 0.0], 2)
        assert result == pytest.approx([2.0, 2.0])

    def test_single_segment_is_mean(self):
        x = make_series(10, 2)
        assert paa(x, 1) == [pytest.approx(sum(x) / len(x))]

    def test_preserves_global_mean(self):
        x = make_series(30, 3)
        for segments in (1, 2, 5, 6, 15):
            r = paa(x, segments)
            assert sum(r) / len(r) == pytest.approx(sum(x) / len(x))

    def test_too_many_segments_rejected(self):
        with pytest.raises(ValueError):
            paa([1.0, 2.0], 3)

    def test_zero_segments_rejected(self):
        with pytest.raises(ValueError):
            paa([1.0], 0)


class TestPaaFactor:
    def test_factor_two_even_matches_halve(self):
        x = make_series(16, 4)
        assert paa_factor(x, 2) == pytest.approx(halve(x))

    def test_factor_eight_length(self):
        assert len(paa_factor(list(range(256)), 8)) == 32

    def test_partial_trailing_block(self):
        # 5 samples, factor 2: blocks (0,1), (2,3), (4,)
        assert paa_factor([0.0, 2.0, 4.0, 6.0, 9.0], 2) == [1.0, 5.0, 9.0]

    def test_factor_one_identity(self):
        x = make_series(7, 5)
        assert paa_factor(x, 1) == pytest.approx(x)

    def test_bad_factor_rejected(self):
        with pytest.raises(ValueError):
            paa_factor([1.0], 0)
