"""Schema smoke test for the RLE compression-vs-speedup benchmark.

``python -m repro rle bench`` writes ``BENCH_rle.json`` from
:func:`repro.core.rle_bench.rle_benchmark`; the CI gate and the README
table read specific keys, so the shape is a contract.  The tiny
workload here makes the timings meaningless -- only the schema, the
exact-agreement flag and the cell arithmetic matter -- while the
checked-in ``BENCH_rle.json`` carries the acceptance claim itself:
bit-exact distances at every level and a wall-clock win at the
highest compression.
"""

import json
import pathlib

import pytest

import repro
from repro.core.rle_bench import SCHEMA, format_rle_report, rle_benchmark

LEVEL_KEYS = (
    "quantize", "compression_ratio", "on_exactness_grid", "variants",
)

VARIANT_KEYS = (
    "dense_seconds", "rle_seconds", "speedup",
    "dense_cells", "rle_cells", "agree",
)


@pytest.fixture(scope="module")
def report():
    # two levels spanning the crossover: a fine grid where RLE loses
    # and a coarse grid where it wins -- timings are noise at this
    # size, so only shape and agreement are asserted below
    return rle_benchmark(
        length=60, n_pairs=1,
        quantize_steps=(2.0 ** -6, 2.0 ** -2), repeats=1,
    )


class TestReportSchema:
    def test_top_level_keys(self, report):
        assert report["benchmark"] == SCHEMA
        for key in ("note", "workload", "levels", "agree",
                    "compressed_wins_at_high_compression", "passed"):
            assert key in report

    def test_level_rows(self, report):
        assert len(report["levels"]) == 2
        for level in report["levels"]:
            assert set(level) == set(LEVEL_KEYS)
            assert set(level["variants"]) == {"full", "banded"}
            for row in level["variants"].values():
                assert set(row) == set(VARIANT_KEYS)

    def test_quantized_levels_sit_on_the_exactness_grid(self, report):
        for level in report["levels"]:
            assert level["on_exactness_grid"] is True
            assert level["compression_ratio"] >= 1.0

    def test_distances_agree_exactly(self, report):
        assert report["agree"] is True
        for level in report["levels"]:
            for row in level["variants"].values():
                assert row["agree"] is True

    def test_cell_arithmetic(self, report):
        # the compressed DP never admits more cells than the dense
        # lattice it replaces, and both engines count something
        for level in report["levels"]:
            for row in level["variants"].values():
                assert 0 < row["rle_cells"] <= 2 * row["dense_cells"]
            full = level["variants"]["full"]
            banded = level["variants"]["banded"]
            assert banded["dense_cells"] <= full["dense_cells"]

    def test_passed_is_the_conjunction(self, report):
        assert report["passed"] == (
            report["agree"]
            and report["compressed_wins_at_high_compression"]
        )

    def test_json_round_trips(self, report):
        rebuilt = json.loads(json.dumps(report))
        assert rebuilt["levels"] == report["levels"]

    def test_format_report_lines(self, report):
        text = "\n".join(format_rle_report(report))
        assert "ratio=" in text
        assert "bit-identical to dense" in text
        assert "highest compression" in text

    def test_note_pins_the_harness_out(self, report):
        assert "never routes through RLE" in report["note"]

    def test_rejects_empty_sweep(self):
        with pytest.raises(ValueError, match="quantization step"):
            rle_benchmark(quantize_steps=())


class TestCheckedInReport:
    """The repo-root ``BENCH_rle.json`` carries the acceptance
    numbers: exact agreement everywhere, and a real wall-clock win at
    the highest compression level."""

    @pytest.fixture(scope="class")
    def checked_in(self):
        path = (
            pathlib.Path(repro.__file__).resolve().parents[2]
            / "BENCH_rle.json"
        )
        if not path.is_file():
            pytest.skip("BENCH_rle.json not present")
        return json.loads(path.read_text())

    def test_schema_and_agreement(self, checked_in):
        assert checked_in["benchmark"] == SCHEMA
        assert checked_in["agree"] is True
        assert checked_in["passed"] is True

    def test_compressed_wins_at_high_compression(self, checked_in):
        assert checked_in["compressed_wins_at_high_compression"] is True
        top = max(
            checked_in["levels"],
            key=lambda level: level["compression_ratio"],
        )
        assert top["variants"]["full"]["speedup"] > 1.0

    def test_crossover_curve_recorded(self, checked_in):
        # the sweep must include a low-compression level too: the
        # report documents where RLE loses, not just where it wins
        ratios = [
            level["compression_ratio"] for level in checked_in["levels"]
        ]
        assert max(ratios) > 2.0 * min(ratios)
