"""Cross-validation of the NumPy backend against the pure engine."""

import numpy as np
import pytest

from repro.core.cdtw import cdtw
from repro.core.dtw import dtw
from repro.core.numpy_backend import dtw_numpy, pairwise_matrix_numpy
from tests.conftest import make_series


class TestDtwNumpy:
    @pytest.mark.parametrize("seed", range(8))
    def test_full_matches_engine(self, seed):
        x = make_series(15, seed)
        y = make_series(13, seed + 300)
        assert dtw_numpy(np.array(x), np.array(y)) == pytest.approx(
            dtw(x, y).distance, abs=1e-9
        )

    @pytest.mark.parametrize("band", [0, 1, 3, 8])
    def test_banded_matches_engine(self, band):
        for seed in range(5):
            x = make_series(16, seed)
            y = make_series(16, seed + 400)
            assert dtw_numpy(
                np.array(x), np.array(y), band=band
            ) == pytest.approx(cdtw(x, y, band=band).distance, abs=1e-9)

    def test_abs_cost(self):
        x = make_series(12, 9)
        y = make_series(12, 10)
        assert dtw_numpy(
            np.array(x), np.array(y), squared=False
        ) == pytest.approx(dtw(x, y, cost="abs").distance, abs=1e-9)

    def test_unequal_banded(self):
        x = make_series(10, 11)
        y = make_series(20, 12)
        assert dtw_numpy(
            np.array(x), np.array(y), band=4
        ) == pytest.approx(cdtw(x, y, band=4).distance, abs=1e-9)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            dtw_numpy(np.zeros((2, 2)), np.zeros(3))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            dtw_numpy(np.array([]), np.array([1.0]))


class TestPairwiseMatrix:
    def test_symmetric_zero_diagonal(self):
        series = [make_series(10, s) for s in range(4)]
        m = pairwise_matrix_numpy(series, band=2)
        assert np.allclose(m, m.T)
        assert np.allclose(np.diag(m), 0.0)

    def test_entries_match_single_calls(self):
        series = [make_series(10, s) for s in range(3)]
        m = pairwise_matrix_numpy(series)
        for i in range(3):
            for j in range(3):
                if i != j:
                    assert m[i, j] == pytest.approx(
                        dtw(series[i], series[j]).distance
                    )
