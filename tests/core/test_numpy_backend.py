"""Cross-validation of the NumPy backend against the pure engine.

Spot checks with hand-picked shapes; the exhaustive fuzzing (paths,
cells, abandoning, tie-breaking) lives in ``test_numpy_parity.py``.
"""

import numpy as np
import pytest

from repro.core.cdtw import cdtw
from repro.core.dtw import dtw
from repro.core.numpy_backend import dtw_numpy, pairwise_matrix_numpy
from tests.conftest import make_series


class TestDtwNumpy:
    @pytest.mark.parametrize("seed", range(8))
    def test_full_matches_engine(self, seed):
        x = make_series(15, seed)
        y = make_series(13, seed + 300)
        assert dtw_numpy(np.array(x), np.array(y)).distance == (
            dtw(x, y).distance
        )

    @pytest.mark.parametrize("band", [0, 1, 3, 8])
    def test_banded_matches_engine(self, band):
        for seed in range(5):
            x = make_series(16, seed)
            y = make_series(16, seed + 400)
            result = dtw_numpy(np.array(x), np.array(y), band=band)
            expected = cdtw(x, y, band=band)
            assert result.distance == expected.distance
            assert result.cells == expected.cells

    def test_abs_cost(self):
        x = make_series(12, 9)
        y = make_series(12, 10)
        assert dtw_numpy(
            np.array(x), np.array(y), cost="abs"
        ).distance == dtw(x, y, cost="abs").distance

    def test_unequal_banded(self):
        x = make_series(10, 11)
        y = make_series(20, 12)
        assert dtw_numpy(
            np.array(x), np.array(y), band=4
        ).distance == cdtw(x, y, band=4).distance

    def test_callable_cost_rejected(self):
        with pytest.raises(ValueError, match="backend='python'"):
            dtw_numpy(
                np.ones(4), np.ones(4), cost=lambda a, b: abs(a - b)
            )

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            dtw_numpy(np.zeros((2, 2)), np.zeros(3))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            dtw_numpy(np.array([]), np.array([1.0]))


class TestPairwiseMatrix:
    def test_symmetric_zero_diagonal_with_cells(self):
        series = [make_series(10, s) for s in range(4)]
        m = pairwise_matrix_numpy(series, band=2)
        assert m.measure == "cdtw"
        k = len(series)
        for i in range(k):
            assert m[i, i] == 0.0
            for j in range(k):
                assert m[i, j] == m[j, i]
        expected_cells = sum(
            cdtw(series[i], series[j], band=2).cells
            for i in range(k) for j in range(i + 1, k)
        )
        assert m.cells == expected_cells

    def test_entries_match_single_calls(self):
        series = [make_series(10, s) for s in range(3)]
        m = pairwise_matrix_numpy(series)
        assert m.measure == "dtw"
        for i in range(3):
            for j in range(3):
                if i != j:
                    assert m[i, j] == dtw(series[i], series[j]).distance

    def test_matches_distance_matrix(self):
        from repro.core.matrix import distance_matrix

        series = [make_series(12, s + 50) for s in range(4)]
        mine = pairwise_matrix_numpy(series, window=0.25)
        reference = distance_matrix(series, measure="cdtw", window=0.25)
        assert mine.values == reference.values
        assert mine.cells == reference.cells

    def test_rejects_window_and_band(self):
        series = [make_series(8, s) for s in range(3)]
        with pytest.raises(ValueError):
            pairwise_matrix_numpy(series, window=0.1, band=2)

    def test_rejects_ragged(self):
        with pytest.raises(ValueError, match="distance_matrix"):
            pairwise_matrix_numpy([[0.0, 1.0], [0.0, 1.0, 2.0]])
