"""Unit tests for public-API input validation."""

import math

import pytest

from repro.core.cdtw import cdtw
from repro.core.dtw import dtw
from repro.core.fastdtw import fastdtw
from repro.core.fastdtw_reference import fastdtw_reference
from repro.core.validate import validate_pair, validate_series


class TestValidateSeries:
    def test_accepts_finite(self):
        validate_series([1.0, -2.5, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            validate_series([])

    def test_rejects_nan_with_index(self):
        with pytest.raises(ValueError, match="sample 2"):
            validate_series([1.0, 2.0, float("nan")])

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="not finite"):
            validate_series([math.inf])

    def test_rejects_negative_inf(self):
        with pytest.raises(ValueError, match="not finite"):
            validate_series([-math.inf])

    def test_name_in_message(self):
        with pytest.raises(ValueError, match="series y"):
            validate_series([float("nan")], name="series y")

    def test_multivariate_samples_checked_componentwise(self):
        validate_series([(1.0, 2.0), (3.0, 4.0)])
        with pytest.raises(ValueError, match="component 1"):
            validate_series([(1.0, float("nan"))])


class TestPublicApisReject:
    NAN_SERIES = [1.0, float("nan"), 2.0]
    OK = [1.0, 2.0, 3.0]

    def test_dtw(self):
        with pytest.raises(ValueError, match="not finite"):
            dtw(self.NAN_SERIES, self.OK)

    def test_cdtw(self):
        with pytest.raises(ValueError, match="not finite"):
            cdtw(self.OK, self.NAN_SERIES, band=1)

    def test_fastdtw(self):
        with pytest.raises(ValueError, match="not finite"):
            fastdtw(self.NAN_SERIES, self.OK, radius=1)

    def test_fastdtw_reference(self):
        with pytest.raises(ValueError, match="not finite"):
            fastdtw_reference(self.OK, self.NAN_SERIES, radius=1)

    def test_validate_pair_names_operand(self):
        with pytest.raises(ValueError, match="series x"):
            validate_pair(self.NAN_SERIES, self.OK)
        with pytest.raises(ValueError, match="series y"):
            validate_pair(self.OK, self.NAN_SERIES)
