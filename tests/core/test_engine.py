"""Unit tests for the shared DP engine."""

import math

import pytest

from repro.core.engine import dp_over_window
from repro.core.naive import naive_dtw
from repro.core.window import Window
from tests.conftest import make_series


class TestBasics:
    def test_identical_series_zero(self):
        x = [1.0, 2.0, 3.0]
        r = dp_over_window(x, x, Window.full(3, 3))
        assert r.distance == 0.0

    def test_single_elements(self):
        r = dp_over_window([2.0], [5.0], Window.full(1, 1))
        assert r.distance == 9.0

    def test_known_small_case(self, small_pair):
        x, y = small_pair  # [0,1,2] vs [0,2,2]
        r = dp_over_window(x, y, Window.full(3, 3))
        # optimal: (0,0)=0, (1,1)=1, (2,1)=0, (2,2)=0  -> 1.0
        assert r.distance == 1.0

    def test_abs_cost(self, small_pair):
        x, y = small_pair
        r = dp_over_window(x, y, Window.full(3, 3), cost="abs")
        assert r.distance == 1.0

    def test_custom_cost_callable(self):
        r = dp_over_window(
            [0.0, 1.0], [0.0, 1.0], Window.full(2, 2),
            cost=lambda a, b: 1.0,
        )
        # every path cell costs 1; shortest path has 2 cells
        assert r.distance == 2.0
        assert r.cost == "<lambda>"

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            dp_over_window([], [1.0], Window.full(1, 1))

    def test_window_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="window"):
            dp_over_window([1.0, 2.0], [1.0], Window.full(2, 2))


class TestAgainstNaive:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("shape", [(1, 1), (1, 7), (7, 1), (5, 5),
                                       (8, 3), (3, 8)])
    def test_full_matches_naive(self, seed, shape):
        n, m = shape
        x = make_series(n, seed)
        y = make_series(m, seed + 1000)
        r = dp_over_window(x, y, Window.full(n, m))
        assert r.distance == pytest.approx(naive_dtw(x, y), abs=1e-9)

    @pytest.mark.parametrize("cost", ["squared", "abs"])
    def test_costs_match_naive(self, cost):
        x = make_series(6, 42)
        y = make_series(6, 43)
        r = dp_over_window(x, y, Window.full(6, 6), cost=cost)
        assert r.distance == pytest.approx(
            naive_dtw(x, y, cost=cost), abs=1e-9
        )


class TestCells:
    def test_cells_equal_window_size(self):
        w = Window.band(10, 10, 2)
        x = make_series(10, 0)
        y = make_series(10, 1)
        r = dp_over_window(x, y, w)
        assert r.cells == w.cell_count()

    def test_abandoned_counts_partial_cells(self):
        x = [0.0] * 10
        y = [10.0] * 10
        w = Window.full(10, 10)
        r = dp_over_window(x, y, w, abandon_above=1.0)
        assert r.abandoned
        assert 0 < r.cells < w.cell_count()


class TestPath:
    def test_path_cost_equals_distance(self):
        x = make_series(9, 5)
        y = make_series(7, 6)
        r = dp_over_window(x, y, Window.full(9, 7), return_path=True)
        assert r.path.cost(x, y) == pytest.approx(r.distance, abs=1e-9)

    def test_path_respects_window(self):
        x = make_series(10, 7)
        y = make_series(10, 8)
        w = Window.band(10, 10, 2)
        r = dp_over_window(x, y, w, return_path=True)
        assert all(cell in w for cell in r.path)

    def test_no_path_by_default(self):
        r = dp_over_window([1.0], [1.0], Window.full(1, 1))
        assert r.path is None

    def test_banded_path_optimal_within_band(self):
        # any other admitted path must cost at least as much
        x = make_series(6, 9)
        y = make_series(6, 10)
        w = Window.band(6, 6, 1)
        r = dp_over_window(x, y, w, return_path=True)
        from repro.core.path import diagonal_path

        diag = diagonal_path(6, 6)
        assert r.distance <= diag.cost(x, y) + 1e-12


class TestEarlyAbandoning:
    def test_abandons_when_threshold_tiny(self):
        x = [0.0, 0.0, 0.0]
        y = [5.0, 5.0, 5.0]
        r = dp_over_window(x, y, Window.full(3, 3), abandon_above=0.1)
        assert r.abandoned
        assert r.distance == math.inf
        assert r.path is None

    def test_does_not_abandon_below_threshold(self):
        x = make_series(8, 11)
        y = make_series(8, 12)
        exact = dp_over_window(x, y, Window.full(8, 8)).distance
        r = dp_over_window(
            x, y, Window.full(8, 8), abandon_above=exact + 1.0
        )
        assert not r.abandoned
        assert r.distance == pytest.approx(exact)

    def test_threshold_equal_to_distance_keeps_result(self):
        x = make_series(8, 13)
        y = make_series(8, 14)
        exact = dp_over_window(x, y, Window.full(8, 8)).distance
        r = dp_over_window(x, y, Window.full(8, 8), abandon_above=exact)
        assert not r.abandoned

    def test_abandonment_is_sound(self):
        # whenever the engine abandons, the true distance does exceed
        # the threshold
        for seed in range(20):
            x = make_series(10, seed)
            y = make_series(10, seed + 500)
            exact = dp_over_window(x, y, Window.full(10, 10)).distance
            r = dp_over_window(
                x, y, Window.full(10, 10), abandon_above=exact / 2
            )
            if r.abandoned:
                assert exact > exact / 2


class TestRoot:
    def test_root_is_sqrt(self):
        r = dp_over_window([0.0], [3.0], Window.full(1, 1))
        assert r.root() == 3.0
