"""Engine-level tests for the suffix-bound abandoning hook."""

import math

import pytest

from repro.core.engine import dp_over_window
from repro.core.window import Window
from tests.conftest import make_series


class TestSuffixBoundHook:
    def test_zero_suffix_equals_plain(self):
        x = make_series(15, 1)
        y = make_series(15, 2)
        w = Window.band(15, 15, 3)
        exact = dp_over_window(x, y, w).distance
        r = dp_over_window(
            x, y, w, abandon_above=exact + 1,
            suffix_bound=[0.0] * 15,
        )
        assert not r.abandoned
        assert r.distance == pytest.approx(exact)

    def test_suffix_triggers_earlier_abandon(self):
        x = make_series(20, 3)
        y = make_series(20, 4)
        w = Window.band(20, 20, 2)
        exact = dp_over_window(x, y, w).distance
        threshold = exact * 0.5
        plain = dp_over_window(x, y, w, abandon_above=threshold)
        # a (valid-by-construction) aggressive suffix: remaining rows
        # cost at least 40% of the exact distance early on
        suffix = [
            exact * 0.4 if i < 10 else 0.0 for i in range(20)
        ]
        boosted = dp_over_window(
            x, y, w, abandon_above=threshold, suffix_bound=suffix
        )
        if plain.abandoned:
            assert boosted.abandoned
            assert boosted.cells <= plain.cells

    def test_suffix_ignored_without_threshold(self):
        x = make_series(10, 5)
        y = make_series(10, 6)
        w = Window.full(10, 10)
        r = dp_over_window(x, y, w, suffix_bound=[1e9] * 10)
        assert not r.abandoned
        assert math.isfinite(r.distance)

    def test_huge_suffix_abandons_immediately(self):
        x = make_series(10, 7)
        y = make_series(10, 8)
        w = Window.full(10, 10)
        r = dp_over_window(
            x, y, w, abandon_above=1.0, suffix_bound=[1e9] * 10
        )
        assert r.abandoned
        assert r.cells <= 10  # only the first row was evaluated
