"""Bit-identity contract of the multivariate (nd) kernels.

Every registered backend must produce the *same bits* as the pure
engine for the dependent-DTW wavefront (``dtw_nd``), the stacked
chunk kernel (``dtw_nd_chunk``) with its ``count=`` padding-poisoning
contract, and value-identical per-channel envelopes and summed
LB_Keogh bounds.
"""

import math

import pytest

from repro.core.kernels import available_backends, get_kernels
from repro.core.multivariate import cdtw_nd, dtw_nd
from repro.core.window import Window
from repro.lowerbounds.nd import envelopes_nd, lb_keogh_nd
from tests.conftest import make_vectors

np = pytest.importorskip("numpy")

BACKENDS = tuple(available_backends())


def _windows(n, m):
    return [
        ("full", Window.full(n, m)),
        ("band2", Window.band(n, m, 2)),
        ("band5", Window.band(n, m, 5)),
    ]


class TestDtwNdKernel:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("dims", (1, 2, 3))
    def test_distance_cells_match_engine(self, backend, dims):
        x, y = make_vectors(24, dims, 1), make_vectors(24, dims, 2)
        kernels = get_kernels(backend)
        for label, win in _windows(24, 24):
            got = kernels.dtw_nd(x, y, win)
            ref = (
                dtw_nd(x, y)
                if label == "full"
                else cdtw_nd(x, y, band=int(label[4:]))
            )
            assert got.distance == ref.distance, (backend, label)
            assert got.cells == ref.cells, (backend, label)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_path_matches_engine(self, backend):
        x, y = make_vectors(16, 2, 3), make_vectors(20, 2, 4)
        win = Window.band(16, 20, 6)
        kernels = get_kernels(backend)
        got = kernels.dtw_nd(x, y, win, return_path=True)
        ref = cdtw_nd(x, y, band=6, return_path=True)
        assert got.path == ref.path
        assert got.distance == ref.distance

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_abandon_decision_matches_engine(self, backend):
        x, y = make_vectors(20, 2, 5), make_vectors(20, 2, 6)
        win = Window.band(20, 20, 3)
        kernels = get_kernels(backend)
        exact = cdtw_nd(x, y, band=3)
        kept = kernels.dtw_nd(
            x, y, win, abandon_above=exact.distance + 1.0
        )
        assert not kept.abandoned
        assert kept.distance == exact.distance
        dropped = kernels.dtw_nd(
            x, y, win, abandon_above=exact.distance / 4.0
        )
        assert dropped.abandoned
        assert dropped.distance == math.inf


class TestDtwNdChunk:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_rows_match_single_pair_kernel(self, backend):
        kernels = get_kernels(backend)
        n, dims, chunk = 18, 3, 5
        xs = [make_vectors(n, dims, s) for s in range(chunk)]
        ys = [make_vectors(n, dims, 100 + s) for s in range(chunk)]
        win = Window.band(n, n, 4)
        distances = kernels.dtw_nd_chunk(xs, ys, win)
        assert len(distances) == chunk
        for t in range(chunk):
            assert (
                float(distances[t])
                == cdtw_nd(xs[t], ys[t], band=4).distance
            )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_count_padding_is_poison_proof(self, backend):
        """Rows at index >= count may be NaN/inf garbage."""
        kernels = get_kernels(backend)
        n, dims, real = 12, 2, 3
        xs = [make_vectors(n, dims, s) for s in range(real)]
        ys = [make_vectors(n, dims, 50 + s) for s in range(real)]
        poison = [[(float("nan"), float("inf"))] * n for _ in range(2)]
        win = Window.band(n, n, 3)
        clean = kernels.dtw_nd_chunk(xs, ys, win)
        padded = kernels.dtw_nd_chunk(
            xs + poison, ys + poison, win, count=real
        )
        assert len(padded) == real
        assert [float(v) for v in padded] == [float(v) for v in clean]

    def test_real_nonfinite_rows_still_rejected(self):
        # the stacked numpy kernel validates its real rows (the python
        # fallback relies on the batch engine's upstream validation,
        # as with the scalar chunk kernel)
        kernels = get_kernels("numpy")
        n = 8
        xs = [make_vectors(n, 2, 1), [(float("nan"), 0.0)] * n]
        ys = [make_vectors(n, 2, 2), make_vectors(n, 2, 3)]
        with pytest.raises(ValueError, match="finite"):
            kernels.dtw_nd_chunk(xs, ys, Window.band(n, n, 2), count=2)

    def test_backends_agree_bit_for_bit(self):
        n, dims, chunk = 20, 3, 4
        xs = [make_vectors(n, dims, s) for s in range(chunk)]
        ys = [make_vectors(n, dims, 30 + s) for s in range(chunk)]
        win = Window.band(n, n, 5)
        rows = {
            backend: [
                float(v)
                for v in get_kernels(backend).dtw_nd_chunk(xs, ys, win)
            ]
            for backend in BACKENDS
        }
        reference = rows["python"]
        for backend, got in rows.items():
            assert got == reference, backend


class TestEnvelopeNdChunk:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matches_per_channel_envelopes(self, backend):
        kernels = get_kernels(backend)
        n, dims, chunk, band = 15, 3, 4, 3
        series = [make_vectors(n, dims, s) for s in range(chunk)]
        upper, lower = kernels.envelope_nd_chunk(series, band)
        for t, s in enumerate(series):
            envs = envelopes_nd(s, band)
            for k, env in enumerate(envs):
                got_up = [float(upper[t][i][k]) for i in range(n)]
                got_lo = [float(lower[t][i][k]) for i in range(n)]
                assert got_up == list(env.upper)
                assert got_lo == list(env.lower)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_count_padding_ignored(self, backend):
        kernels = get_kernels(backend)
        n, dims, band = 10, 2, 2
        series = [make_vectors(n, dims, s) for s in range(3)]
        poison = [[(float("nan"),) * dims] * n]
        up1, lo1 = kernels.envelope_nd_chunk(series, band)
        up2, lo2 = kernels.envelope_nd_chunk(
            series + poison, band, count=3
        )
        assert np.asarray(up2).shape[0] == 3
        assert np.array_equal(np.asarray(up1), np.asarray(up2))
        assert np.array_equal(np.asarray(lo1), np.asarray(lo2))


class TestLbKeoghNdChunk:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matches_summed_python_bound(self, backend):
        kernels = get_kernels(backend)
        n, dims, chunk, band = 16, 3, 5, 3
        query = make_vectors(n, dims, 99)
        candidates = [make_vectors(n, dims, s) for s in range(chunk)]
        envs = envelopes_nd(query, band)
        upper = [[env.upper[i] for env in envs] for i in range(n)]
        lower = [[env.lower[i] for env in envs] for i in range(n)]
        bounds = kernels.lb_keogh_nd_chunk(upper, lower, candidates)
        assert len(bounds) == chunk
        for t, c in enumerate(candidates):
            assert float(bounds[t]) == lb_keogh_nd(envs, c)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_abandon_threshold_matches(self, backend):
        kernels = get_kernels(backend)
        n, dims, band = 16, 2, 2
        query = make_vectors(n, dims, 7)
        candidates = [make_vectors(n, dims, s) for s in range(4)]
        envs = envelopes_nd(query, band)
        upper = [[env.upper[i] for env in envs] for i in range(n)]
        lower = [[env.lower[i] for env in envs] for i in range(n)]
        plain = [
            lb_keogh_nd(envs, c) for c in candidates
        ]
        threshold = sorted(plain)[1]
        got = kernels.lb_keogh_nd_chunk(
            upper, lower, candidates, abandon_above=threshold
        )
        want = [
            lb_keogh_nd(envs, c, abandon_above=threshold)
            for c in candidates
        ]
        assert [float(v) for v in got] == want
