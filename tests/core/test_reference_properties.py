"""Property tests for the reference-layout FastDTW.

Same contracts as the optimised variant, checked independently:
upper-bounds Full DTW, converges with the radius, and produces valid
paths -- so the two implementations can be swapped in any experiment
without changing correctness, only constants.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.core.dtw import dtw
from repro.core.fastdtw_reference import fastdtw_reference

finite = st.floats(
    min_value=-20, max_value=20, allow_nan=False, allow_infinity=False
)
series = st.lists(finite, min_size=1, max_size=20)


@settings(deadline=None, max_examples=50)
@given(series, series, st.integers(min_value=0, max_value=5))
def test_reference_upper_bounds_full(x, y, radius):
    assert fastdtw_reference(x, y, radius=radius).distance >= (
        dtw(x, y).distance - 1e-9
    )


@settings(deadline=None, max_examples=50)
@given(series, series)
def test_reference_converges_at_large_radius(x, y):
    radius = max(len(x), len(y))
    assert math.isclose(
        fastdtw_reference(x, y, radius=radius).distance,
        dtw(x, y).distance,
        rel_tol=1e-9,
        abs_tol=1e-9,
    )


@settings(deadline=None, max_examples=50)
@given(series, series, st.integers(min_value=0, max_value=5))
def test_reference_path_valid_and_consistent(x, y, radius):
    r = fastdtw_reference(x, y, radius=radius)
    assert r.path[0] == (0, 0)
    assert r.path[-1] == (len(x) - 1, len(y) - 1)
    assert math.isclose(
        r.path.cost(x, y), r.distance, rel_tol=1e-9, abs_tol=1e-9
    )


@settings(deadline=None, max_examples=50)
@given(series, st.integers(min_value=0, max_value=5))
def test_reference_identity(x, radius):
    assert fastdtw_reference(x, x, radius=radius).distance == 0.0
