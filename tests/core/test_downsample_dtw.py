"""Unit tests for the downsample-then-DTW approximation."""

import pytest

from repro.core.cdtw import cdtw
from repro.core.downsample_dtw import downsampled_dtw
from repro.core.dtw import dtw
from repro.datasets.gestures import gesture_dataset
from repro.datasets.random_walk import random_walk
from tests.conftest import make_series


class TestDownsampledDtw:
    def test_factor_one_full_is_plain_dtw(self):
        x = make_series(20, 1)
        y = make_series(20, 2)
        r = downsampled_dtw(x, y, factor=1)
        assert r.distance == pytest.approx(dtw(x, y).distance)
        assert r.coarse_length == 20

    def test_factor_one_banded_is_plain_cdtw(self):
        x = make_series(20, 3)
        y = make_series(20, 4)
        r = downsampled_dtw(x, y, factor=1, band=2)
        assert r.distance == pytest.approx(
            cdtw(x, y, band=2).distance
        )

    def test_coarse_length(self):
        x = make_series(64, 5)
        r = downsampled_dtw(x, x, factor=8)
        assert r.coarse_length == 8

    def test_identical_series_zero(self):
        x = make_series(64, 6)
        assert downsampled_dtw(x, x, factor=4).distance == 0.0

    def test_cells_shrink_quadratically(self):
        x = make_series(128, 7)
        y = make_series(128, 8)
        fine = downsampled_dtw(x, y, factor=1)
        coarse = downsampled_dtw(x, y, factor=4)
        assert coarse.cells * 10 < fine.cells

    def test_distance_scaled_by_factor(self):
        # constant offset: DTW distance is n * offset^2; PAA preserves
        # the offset, so scaling by the factor recovers the total
        x = [0.0] * 32
        y = [2.0] * 32
        exact = dtw(x, y).distance  # 32 * 4
        approx = downsampled_dtw(x, y, factor=8).distance
        assert approx == pytest.approx(exact)

    def test_reasonable_error_on_smooth_data(self):
        # the paper's claim: modest downsampling barely changes
        # distances on real-shaped (smooth) series
        data = gesture_dataset(
            n_classes=2, per_class=2, length=128, noise_sigma=0.02,
            seed=9,
        )
        x, y = list(data.series[0]), list(data.series[1])
        exact = dtw(x, y).distance
        approx = downsampled_dtw(x, y, factor=4).distance
        if exact > 1.0:
            assert abs(approx - exact) / exact < 0.5

    def test_validation(self):
        x = make_series(10, 10)
        with pytest.raises(ValueError, match="factor"):
            downsampled_dtw(x, x, factor=0)
        with pytest.raises(ValueError, match="shorter"):
            downsampled_dtw(x, x, factor=20)
        with pytest.raises(ValueError, match="not finite"):
            downsampled_dtw([float("nan")] * 8, x[:8], factor=2)

    def test_unequal_lengths(self):
        x = random_walk(60, seed=11)
        y = random_walk(90, seed=12)
        r = downsampled_dtw(x, y, factor=3)
        assert r.distance >= 0
        assert r.coarse_length == 20
