"""Unit tests for the FastDTW implementation."""

import pytest

from repro.core.dtw import dtw
from repro.core.fastdtw import fastdtw, fastdtw_cell_estimate
from tests.conftest import make_series


class TestBasics:
    def test_identical_series_zero(self):
        x = make_series(64, 1)
        assert fastdtw(x, x, radius=1).distance == 0.0

    def test_small_series_is_exact(self):
        # below the base-case size FastDTW runs Full DTW directly
        x = make_series(3, 2)
        y = make_series(3, 3)
        assert fastdtw(x, y, radius=1).distance == pytest.approx(
            dtw(x, y).distance
        )

    def test_path_always_present(self):
        r = fastdtw(make_series(40, 4), make_series(40, 5), radius=2)
        assert r.path is not None

    def test_path_cost_matches_distance(self):
        x = make_series(50, 6)
        y = make_series(50, 7)
        r = fastdtw(x, y, radius=3)
        assert r.path.cost(x, y) == pytest.approx(r.distance)

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            fastdtw([1.0, 2.0], [1.0, 2.0], radius=-1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fastdtw([], [1.0])

    def test_abs_cost_supported(self):
        x = make_series(30, 8)
        y = make_series(30, 9)
        r = fastdtw(x, y, radius=2, cost="abs")
        assert r.distance >= dtw(x, y, cost="abs").distance - 1e-9
        assert r.cost == "abs"

    def test_unequal_lengths(self):
        x = make_series(33, 10)
        y = make_series(57, 11)
        r = fastdtw(x, y, radius=2)
        assert r.path[-1] == (32, 56)


class TestApproximationProperties:
    @pytest.mark.parametrize("seed", range(10))
    def test_upper_bounds_full_dtw(self, seed):
        x = make_series(48, seed)
        y = make_series(48, seed + 200)
        exact = dtw(x, y).distance
        for radius in (0, 1, 3, 7):
            assert fastdtw(x, y, radius=radius).distance >= exact - 1e-9

    def test_huge_radius_is_exact(self):
        x = make_series(32, 20)
        y = make_series(32, 21)
        assert fastdtw(x, y, radius=40).distance == pytest.approx(
            dtw(x, y).distance
        )

    def test_radius_improves_or_maintains_on_average(self):
        # individual cases may fluctuate; the mean error must not grow
        totals = {}
        for radius in (0, 4, 12):
            total = 0.0
            for seed in range(10):
                x = make_series(64, seed)
                y = make_series(64, seed + 99)
                total += fastdtw(x, y, radius=radius).distance
            totals[radius] = total
        assert totals[12] <= totals[0] + 1e-9


class TestCost:
    def test_cells_grow_with_radius(self):
        x = make_series(128, 30)
        y = make_series(128, 31)
        cells = [fastdtw(x, y, radius=r).cells for r in (0, 2, 6, 14)]
        assert cells == sorted(cells)

    def test_cells_roughly_linear_in_n(self):
        # doubling N should roughly double cells (not quadruple)
        a = fastdtw(make_series(128, 32), make_series(128, 33),
                    radius=4).cells
        b = fastdtw(make_series(256, 34), make_series(256, 35),
                    radius=4).cells
        assert b / a < 3.0

    def test_cell_estimate_model(self):
        assert fastdtw_cell_estimate(100, 10) == 100 * 94

    def test_cell_estimate_rejects_bad_input(self):
        with pytest.raises(ValueError):
            fastdtw_cell_estimate(0, 1)

    def test_fastdtw_more_cells_than_small_band_cdtw(self):
        # the paper's Case A inequality at the cell level
        from repro.core.cdtw import cdtw

        x = make_series(256, 36)
        y = make_series(256, 37)
        fast = fastdtw(x, y, radius=10).cells
        banded = cdtw(x, y, window=0.04).cells
        assert banded < fast


class TestLevels:
    def test_levels_none_by_default(self):
        r = fastdtw(make_series(40, 40), make_series(40, 41), radius=1)
        assert r.levels is None

    def test_levels_coarsest_first(self):
        r = fastdtw(
            make_series(64, 42), make_series(64, 43),
            radius=1, keep_levels=True,
        )
        sizes = [lvl.n for lvl in r.levels]
        assert sizes == sorted(sizes)
        assert sizes[-1] == 64

    def test_level_count_logarithmic(self):
        r = fastdtw(
            make_series(128, 44), make_series(128, 45),
            radius=1, keep_levels=True,
        )
        # base case at <= radius+2 = 3: 128,64,32,16,8,4 -> ~6 levels
        assert 4 <= len(r.levels) <= 8

    def test_level_cells_sum_to_total(self):
        r = fastdtw(
            make_series(96, 46), make_series(96, 47),
            radius=2, keep_levels=True,
        )
        assert sum(lvl.window_cells for lvl in r.levels) == r.cells

    def test_base_case_respects_min_size(self):
        r = fastdtw(
            make_series(200, 48), make_series(200, 49),
            radius=5, keep_levels=True,
        )
        base = r.levels[0]
        # the base is the first level NOT larger than radius+2... the
        # recursion stops once n <= radius + 2
        assert base.n <= 2 * (5 + 2)


class TestRoot:
    def test_root(self):
        r = fastdtw([0.0, 0.0], [2.0, 2.0], radius=1)
        assert r.root() == pytest.approx(r.distance ** 0.5)
