"""Chunk-kernel parity and padding property suite.

The chunk kernels (``dtw_chunk``, ``envelope_chunk``,
``lb_keogh_chunk``) carry the batch engine's stacked fast path, so
their contract is the strongest one in the registry: every real row's
result must be **bit-identical** to the per-pair kernel on the same
inputs, and rows at index ``count`` and beyond are padding that must
never influence results, warnings or validation -- these tests poison
them with NaN/inf on purpose.  The grid fuzzes band fractions
0 / 0.05 / 0.1 / 1.0 and chunk sizes 1 / 2 / 7 / 64, same-length and
ragged collections, and both backends' KernelSet entries.
"""

import math
import random

import numpy as np
import pytest

from repro.batch.schedule import chunk_band, group_chunk
from repro.core.engine import dp_over_window
from repro.core.kernels import get_kernels
from repro.core.numpy_backend import (
    dtw_chunk,
    envelope_chunk,
    lb_keogh_chunk,
)
from repro.core.window import Window
from repro.lowerbounds.envelope import envelope
from repro.lowerbounds.lb_keogh import lb_keogh
from repro.obs import RunTrace
from tests.conftest import make_series

BAND_FRACTIONS = (0.0, 0.05, 0.1, 1.0)
CHUNK_SIZES = (1, 2, 7, 64)


def window_for(n, m, fraction):
    band = math.ceil(fraction * max(n, m))
    return Window.band(n, m, band)


def stacked_pairs(chunk_size, n, m, seed):
    xs = [make_series(n, seed + 2 * t) for t in range(chunk_size)]
    ys = [make_series(m, seed + 2 * t + 1) for t in range(chunk_size)]
    return xs, ys


def poisoned_stack(rows, pad_rows, width):
    """A scratch stack whose pad rows hold NaN/inf garbage."""
    buf = np.empty((len(rows) + pad_rows, width), dtype=np.float64)
    for t, row in enumerate(rows):
        buf[t] = row
    for t in range(len(rows), buf.shape[0]):
        buf[t] = np.nan if t % 2 else np.inf
    return buf


class TestDtwChunkParity:
    @pytest.mark.parametrize("fraction", BAND_FRACTIONS)
    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_bit_identical_to_per_pair(self, fraction, chunk_size):
        n = 30
        xs, ys = stacked_pairs(chunk_size, n, n, seed=100 * chunk_size)
        win = window_for(n, n, fraction)
        for cost in ("squared", "abs"):
            got = dtw_chunk(xs, ys, win, cost=cost)
            assert got.shape == (chunk_size,)
            for t in range(chunk_size):
                ref = dp_over_window(xs[t], ys[t], win, cost=cost)
                assert float(got[t]) == ref.distance

    @pytest.mark.parametrize("fraction", (0.1, 1.0))
    def test_ragged_series_parity(self, fraction):
        n, m = 26, 19
        xs, ys = stacked_pairs(5, n, m, seed=7)
        win = window_for(n, m, fraction)
        got = dtw_chunk(xs, ys, win)
        for t in range(5):
            ref = dp_over_window(xs[t], ys[t], win)
            assert float(got[t]) == ref.distance

    @pytest.mark.parametrize("pad_rows", (1, 3, 9))
    def test_poisoned_padding_never_leaks(self, pad_rows):
        n = 24
        xs, ys = stacked_pairs(4, n, n, seed=42)
        win = window_for(n, n, 0.1)
        clean = dtw_chunk(xs, ys, win)
        X = poisoned_stack(xs, pad_rows, n)
        Y = poisoned_stack(ys, pad_rows, n)
        padded = dtw_chunk(X, Y, win, count=4)
        assert padded.shape == (4,)
        assert padded.tolist() == clean.tolist()

    def test_degenerate_one_pair_chunk(self):
        n = 18
        x, y = make_series(n, 1), make_series(n, 2)
        win = window_for(n, n, 0.05)
        got = dtw_chunk([x], [y], win)
        assert got.shape == (1,)
        assert float(got[0]) == dp_over_window(x, y, win).distance

    def test_count_zero_returns_empty(self):
        n = 10
        X = np.full((3, n), np.nan)
        got = dtw_chunk(X, X, Window.full(n, n), count=0)
        assert got.shape == (0,)

    def test_count_validation(self):
        n = 10
        xs, ys = stacked_pairs(2, n, n, seed=9)
        win = Window.full(n, n)
        for bad in (-1, 3):
            with pytest.raises(ValueError, match="count"):
                dtw_chunk(xs, ys, win, count=bad)

    def test_real_row_nonfinite_still_rejected(self):
        n = 10
        xs, ys = stacked_pairs(2, n, n, seed=9)
        xs[1][4] = float("nan")
        with pytest.raises(ValueError, match="not finite"):
            dtw_chunk(xs, ys, Window.full(n, n))

    def test_window_shape_mismatch(self):
        xs, ys = stacked_pairs(2, 10, 10, seed=3)
        with pytest.raises(ValueError, match="window"):
            dtw_chunk(xs, ys, Window.full(10, 11))


class TestEnvelopeChunkParity:
    @pytest.mark.parametrize("band", (0, 1, 4, 30))
    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_bit_identical_to_scalar(self, band, chunk_size):
        n = 22
        rows = [make_series(n, 300 + t) for t in range(chunk_size)]
        upper, lower = envelope_chunk(rows, band)
        for t, row in enumerate(rows):
            ref = envelope(row, band)
            assert upper[t].tolist() == list(ref.upper)
            assert lower[t].tolist() == list(ref.lower)

    def test_poisoned_padding_never_leaks(self):
        n = 16
        rows = [make_series(n, 50 + t) for t in range(3)]
        clean_u, clean_l = envelope_chunk(rows, 2)
        stack = poisoned_stack(rows, 5, n)
        upper, lower = envelope_chunk(stack, 2, count=3)
        assert upper.tolist() == clean_u.tolist()
        assert lower.tolist() == clean_l.tolist()

    def test_negative_band_rejected(self):
        with pytest.raises(ValueError, match="band"):
            envelope_chunk([[1.0, 2.0]], -1)


class TestLbKeoghChunkParity:
    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    @pytest.mark.parametrize("squared", (True, False))
    def test_shared_envelope_bit_identical(self, chunk_size, squared):
        n = 28
        query = make_series(n, 1000)
        env = envelope(query, 3)
        cands = [make_series(n, 2000 + t) for t in range(chunk_size)]
        got = lb_keogh_chunk(
            np.asarray(env.upper), np.asarray(env.lower), cands,
            squared=squared,
        )
        for t, c in enumerate(cands):
            assert float(got[t]) == lb_keogh(env, c, squared=squared)

    def test_abandon_decisions_match_scalar(self):
        n = 32
        query = make_series(n, 5)
        env = envelope(query, 2)
        cands = [make_series(n, 60 + t) for t in range(20)]
        full = [lb_keogh(env, c) for c in cands]
        threshold = sorted(full)[len(full) // 2]
        got = lb_keogh_chunk(
            np.asarray(env.upper), np.asarray(env.lower), cands,
            abandon_above=threshold,
        )
        for t, c in enumerate(cands):
            assert float(got[t]) == lb_keogh(
                env, c, abandon_above=threshold
            )

    def test_stacked_envelopes(self):
        n = 20
        queries = [make_series(n, 70 + t) for t in range(4)]
        cands = [make_series(n, 80 + t) for t in range(4)]
        upper, lower = envelope_chunk(queries, 2)
        got = lb_keogh_chunk(upper, lower, cands)
        for t in range(4):
            ref = lb_keogh(envelope(queries[t], 2), cands[t])
            assert float(got[t]) == ref

    def test_poisoned_padding_never_leaks(self):
        n = 14
        query = make_series(n, 8)
        env = envelope(query, 1)
        cands = [make_series(n, 90 + t) for t in range(3)]
        clean = lb_keogh_chunk(
            np.asarray(env.upper), np.asarray(env.lower), cands
        )
        stack = poisoned_stack(cands, 4, n)
        got = lb_keogh_chunk(
            np.asarray(env.upper), np.asarray(env.lower), stack, count=3
        )
        assert got.tolist() == clean.tolist()

    def test_stacked_envelope_padding_sliced_too(self):
        n = 12
        queries = [make_series(n, 30 + t) for t in range(2)]
        cands = [make_series(n, 40 + t) for t in range(2)]
        u, lo = envelope_chunk(queries, 1)
        clean = lb_keogh_chunk(u, lo, cands)
        got = lb_keogh_chunk(
            poisoned_stack(list(u), 2, n),
            poisoned_stack(list(lo), 2, n),
            poisoned_stack(cands, 2, n),
            count=2,
        )
        assert got.tolist() == clean.tolist()

    def test_length_mismatch_rejected(self):
        env = envelope(make_series(10, 1), 1)
        with pytest.raises(ValueError, match="envelope length"):
            lb_keogh_chunk(
                np.asarray(env.upper), np.asarray(env.lower),
                [make_series(9, 2)],
            )


class TestKernelSetContract:
    """Both backends expose the chunk kernels under one contract."""

    @pytest.mark.parametrize("backend", ("python", "numpy"))
    def test_dtw_chunk_parity(self, backend):
        k = get_kernels(backend)
        n = 24
        xs, ys = stacked_pairs(6, n, n, seed=11)
        win = window_for(n, n, 0.1)
        got = k.dtw_chunk(xs, ys, win)
        for t in range(6):
            ref = dp_over_window(xs[t], ys[t], win)
            assert float(got[t]) == ref.distance

    @pytest.mark.parametrize("backend", ("python", "numpy"))
    def test_envelope_chunk_parity(self, backend):
        k = get_kernels(backend)
        rows = [make_series(15, 120 + t) for t in range(3)]
        upper, lower = k.envelope_chunk(rows, 2)
        for t, row in enumerate(rows):
            ref = envelope(row, 2)
            assert [float(v) for v in upper[t]] == list(ref.upper)
            assert [float(v) for v in lower[t]] == list(ref.lower)

    @pytest.mark.parametrize("backend", ("python", "numpy"))
    def test_lb_keogh_chunk_parity(self, backend):
        k = get_kernels(backend)
        n = 21
        query = make_series(n, 500)
        env = envelope(query, 2)
        cands = [make_series(n, 600 + t) for t in range(5)]
        full = [lb_keogh(env, c) for c in cands]
        threshold = sorted(full)[2]
        got = k.lb_keogh_chunk(
            list(env.upper), list(env.lower), cands,
            abandon_above=threshold,
        )
        for t, c in enumerate(cands):
            assert float(got[t]) == lb_keogh(
                env, c, abandon_above=threshold
            )

    @pytest.mark.parametrize("backend", ("python", "numpy"))
    def test_backends_agree_bit_for_bit(self, backend):
        """Cross-check: both KernelSet chunk entries give equal lists."""
        n = 19
        xs, ys = stacked_pairs(4, n, n, seed=77)
        win = window_for(n, n, 0.05)
        results = {
            b: [float(v) for v in get_kernels(b).dtw_chunk(xs, ys, win)]
            for b in ("python", "numpy")
        }
        assert results["python"] == results["numpy"]

    def test_python_fallback_count_validation(self):
        k = get_kernels("python")
        xs, ys = stacked_pairs(2, 8, 8, seed=1)
        with pytest.raises(ValueError, match="count"):
            k.dtw_chunk(xs, ys, Window.full(8, 8), count=5)

    @pytest.mark.parametrize("backend", ("python", "numpy"))
    def test_dtw_chunk_charges_dp_counters(self, backend):
        k = get_kernels(backend)
        n = 16
        xs, ys = stacked_pairs(3, n, n, seed=33)
        win = window_for(n, n, 0.1)
        with RunTrace() as trace:
            k.dtw_chunk(xs, ys, win)
        assert trace.counter("dp.calls") == 3
        assert trace.counter("dp.cells") == 3 * win.cell_count()


class TestRaggedViaGrouping:
    """The engine's route for mixed shapes: group, then chunk-call."""

    def test_grouped_chunk_calls_match_per_pair(self):
        lengths = (24, 24, 17, 17, 24)
        series = [
            make_series(n, 900 + i) for i, n in enumerate(lengths)
        ]
        chunk = [(0, 1), (2, 3), (0, 4), (3, 2), (1, 0)]
        band_for = chunk_band("cdtw", window=0.1)
        out = [None] * len(chunk)
        for group in group_chunk(chunk, lengths, band_for=band_for):
            win = Window.band(group.n, group.m, group.band)
            xs = [series[i] for i, _ in group.pairs]
            ys = [series[j] for _, j in group.pairs]
            distances = dtw_chunk(xs, ys, win)
            for pos, d in zip(group.positions, distances):
                out[pos] = float(d)
        for t, (i, j) in enumerate(chunk):
            win = Window.band(
                len(series[i]), len(series[j]),
                band_for(len(series[i]), len(series[j])),
            )
            ref = dp_over_window(series[i], series[j], win)
            assert out[t] == ref.distance

    def test_random_fuzz_many_shapes(self):
        rng = random.Random(4)
        lengths = [rng.choice((12, 15, 20)) for _ in range(8)]
        series = [
            make_series(n, 7000 + i) for i, n in enumerate(lengths)
        ]
        chunk = [
            (rng.randrange(8), rng.randrange(8)) for _ in range(25)
        ]
        band_for = chunk_band("cdtw", window=0.05)
        out = [None] * len(chunk)
        for group in group_chunk(chunk, lengths, band_for=band_for):
            win = Window.band(group.n, group.m, group.band)
            xs = poisoned_stack(
                [series[i] for i, _ in group.pairs], 2, group.n
            )
            ys = poisoned_stack(
                [series[j] for _, j in group.pairs], 2, group.m
            )
            distances = dtw_chunk(xs, ys, win, count=len(group))
            for pos, d in zip(group.positions, distances):
                out[pos] = float(d)
        for t, (i, j) in enumerate(chunk):
            n, m = lengths[i], lengths[j]
            win = Window.band(n, m, band_for(n, m))
            ref = dp_over_window(series[i], series[j], win)
            assert out[t] == ref.distance
