"""Dimension-1 multivariate series reduce bit-exactly to the scalar engine.

A ``(length, 1)`` series wraps each sample in a 1-tuple; the vector
squared-Euclidean cost then *is* the scalar squared cost, so every nd
measure must reproduce the scalar measure's distance, DP cell count
and warping path to the bit -- on both backends, and through the
bounds and envelopes too.  This is the anchor that makes the
multivariate stack an extension rather than a fork.
"""

import pytest

from repro.core.cdtw import cdtw
from repro.core.dtw import dtw
from repro.core.fastdtw import fastdtw
from repro.core.kernels import available_backends, get_kernels
from repro.core.measures import measure_fn, split_result
from repro.core.multivariate import (
    cdtw_i,
    cdtw_nd,
    dtw_i,
    dtw_nd,
    fastdtw_nd,
)
from repro.core.window import Window
from repro.lowerbounds.envelope import envelope
from repro.lowerbounds.lb_keogh import lb_keogh
from repro.lowerbounds.lb_kim import lb_kim
from repro.lowerbounds.nd import (
    envelopes_nd,
    lb_improved_nd,
    lb_keogh_nd,
    lb_kim_nd,
)
from repro.lowerbounds.lb_improved import lb_improved
from tests.conftest import make_series

BACKENDS = tuple(available_backends())
SEEDS = (0, 1, 2)


def _wrap(series):
    return [(v,) for v in series]


class TestMeasuresReduce:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_dtw_d_equals_scalar_dtw(self, seed):
        xs, ys = make_series(20, seed), make_series(24, seed + 50)
        got = dtw_nd(_wrap(xs), _wrap(ys), return_path=True)
        ref = dtw(xs, ys, return_path=True)
        assert got.distance == ref.distance
        assert got.cells == ref.cells
        assert got.path == ref.path

    @pytest.mark.parametrize("seed", SEEDS)
    def test_cdtw_d_equals_scalar_cdtw(self, seed):
        xs, ys = make_series(20, seed), make_series(20, seed + 50)
        got = cdtw_nd(_wrap(xs), _wrap(ys), band=4, return_path=True)
        ref = cdtw(xs, ys, band=4, return_path=True)
        assert got.distance == ref.distance
        assert got.cells == ref.cells
        assert got.path == ref.path

    @pytest.mark.parametrize("seed", SEEDS)
    def test_dtw_i_equals_scalar_dtw(self, seed):
        xs, ys = make_series(20, seed), make_series(24, seed + 50)
        got = dtw_i(_wrap(xs), _wrap(ys), return_path=True)
        ref = dtw(xs, ys, return_path=True)
        assert got.distance == ref.distance
        assert got.cells == ref.cells
        # DTW_I paths come back as a per-channel tuple
        assert got.path == (ref.path,)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_cdtw_i_equals_scalar_cdtw(self, seed):
        xs, ys = make_series(20, seed), make_series(20, seed + 50)
        got = cdtw_i(_wrap(xs), _wrap(ys), band=4, return_path=True)
        ref = cdtw(xs, ys, band=4, return_path=True)
        assert got.distance == ref.distance
        assert got.cells == ref.cells
        assert got.path == (ref.path,)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_fastdtw_nd_equals_scalar_fastdtw(self, seed):
        xs, ys = make_series(40, seed), make_series(40, seed + 50)
        got = fastdtw_nd(_wrap(xs), _wrap(ys), radius=1)
        ref = fastdtw(xs, ys, radius=1)
        assert got.distance == ref.distance
        assert got.cells == ref.cells
        assert got.path == ref.path

    def test_dependent_equals_independent_at_dim1(self):
        xs, ys = make_series(24, 9), make_series(24, 10)
        assert (
            dtw_nd(_wrap(xs), _wrap(ys)).distance
            == dtw_i(_wrap(xs), _wrap(ys)).distance
        )


class TestMeasureFnReduces:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize(
        "nd_measure,scalar_measure,kwargs",
        [
            ("dtw_d", "dtw", {}),
            ("cdtw_d", "cdtw", {"band": 4}),
            ("dtw_i", "dtw", {}),
            ("cdtw_i", "cdtw", {"band": 4}),
        ],
    )
    def test_registry_dim1_equals_scalar(
        self, backend, nd_measure, scalar_measure, kwargs
    ):
        xs, ys = make_series(22, 3), make_series(22, 4)
        nd_fn = measure_fn(nd_measure, backend=backend, **kwargs)
        sc_fn = measure_fn(scalar_measure, backend=backend, **kwargs)
        d_nd, cells_nd, _ = split_result(nd_fn(_wrap(xs), _wrap(ys)))
        d_sc, cells_sc, _ = split_result(sc_fn(xs, ys))
        assert d_nd == d_sc
        assert cells_nd == cells_sc


class TestKernelsReduce:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_dtw_nd_kernel_equals_scalar_kernel(self, backend):
        xs, ys = make_series(18, 5), make_series(18, 6)
        kernels = get_kernels(backend)
        win = Window.band(18, 18, 3)
        got = kernels.dtw_nd(_wrap(xs), _wrap(ys), win)
        ref = kernels.dtw(xs, ys, win)
        assert got.distance == ref.distance
        assert got.cells == ref.cells

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_chunk_kernel_equals_scalar_chunk(self, backend):
        kernels = get_kernels(backend)
        n, chunk = 14, 4
        xs = [make_series(n, s) for s in range(chunk)]
        ys = [make_series(n, 20 + s) for s in range(chunk)]
        win = Window.band(n, n, 3)
        nd = kernels.dtw_nd_chunk(
            [_wrap(x) for x in xs], [_wrap(y) for y in ys], win
        )
        sc = kernels.dtw_chunk(xs, ys, win)
        assert [float(v) for v in nd] == [float(v) for v in sc]


class TestBoundsReduce:
    def test_envelopes_nd_dim1(self):
        xs = make_series(16, 7)
        (env_nd,) = envelopes_nd(_wrap(xs), 3)
        env = envelope(xs, 3)
        assert list(env_nd.upper) == list(env.upper)
        assert list(env_nd.lower) == list(env.lower)

    def test_lb_kim_nd_dim1(self):
        xs, ys = make_series(16, 1), make_series(16, 2)
        assert lb_kim_nd(_wrap(xs), _wrap(ys)) == lb_kim(xs, ys)

    def test_lb_keogh_nd_dim1(self):
        xs, ys = make_series(16, 3), make_series(16, 4)
        envs = envelopes_nd(_wrap(xs), 3)
        assert lb_keogh_nd(envs, _wrap(ys)) == lb_keogh(
            envelope(xs, 3), ys
        )

    def test_lb_improved_nd_dim1(self):
        xs, ys = make_series(16, 5), make_series(16, 6)
        assert lb_improved_nd(_wrap(xs), _wrap(ys), 3) == lb_improved(
            xs, ys, 3
        )
