"""Unit tests for the Itakura parallelogram window."""

import math

import pytest

from repro.core.dtw import dtw, windowed_dtw
from repro.core.engine import dp_over_window
from repro.core.window import Window
from tests.conftest import make_series


class TestItakuraGeometry:
    def test_corners_included(self):
        for n, m in ((8, 8), (10, 15), (15, 10)):
            w = Window.itakura(n, m)
            assert w.contains(0, 0)
            assert w.contains(n - 1, m - 1)

    def test_pinches_at_corners_bulges_in_middle(self):
        w = Window.itakura(20, 20, max_slope=2.0)
        def width(i):
            lo, hi = w.row(i)
            return hi - lo + 1
        assert width(0) < width(10)
        assert width(19) <= width(10)

    def test_subset_of_full_lattice(self):
        w = Window.itakura(12, 12)
        assert w.cell_count() <= 144

    def test_larger_slope_admits_more(self):
        tight = Window.itakura(20, 20, max_slope=1.2)
        loose = Window.itakura(20, 20, max_slope=3.0)
        assert tight.cell_count() <= loose.cell_count()

    def test_slope_below_one_rejected(self):
        with pytest.raises(ValueError, match="at least 1"):
            Window.itakura(5, 5, max_slope=0.5)

    def test_always_feasible(self):
        # constructing Window validates feasibility; also run the DP
        for n, m in ((2, 2), (3, 9), (9, 3), (17, 17), (16, 24)):
            w = Window.itakura(n, m, max_slope=2.0)
            r = dp_over_window([0.0] * n, [0.0] * m, w)
            assert math.isfinite(r.distance)


class TestItakuraDtw:
    def test_upper_bounds_full_dtw(self):
        x = make_series(24, 1)
        y = make_series(24, 2)
        w = Window.itakura(24, 24)
        assert windowed_dtw(x, y, w).distance >= dtw(x, y).distance - 1e-9

    def test_converges_with_slope(self):
        x = make_series(16, 3)
        y = make_series(16, 4)
        full = dtw(x, y).distance
        loose = windowed_dtw(x, y, Window.itakura(16, 16, 8.0)).distance
        tight = windowed_dtw(x, y, Window.itakura(16, 16, 1.5)).distance
        assert full - 1e-9 <= loose <= tight + 1e-9

    def test_slope_constraint_respected_mid_path(self):
        # a path inside the parallelogram cannot dwell forever: check
        # the recovered path's global slope bounds
        x = make_series(30, 5)
        y = make_series(30, 6)
        w = Window.itakura(30, 30, max_slope=2.0)
        path = windowed_dtw(x, y, w, return_path=True).path
        for i, j in path:
            if 2 <= i <= 27:  # away from corner slack
                assert j <= 2 * i + 2
                assert j >= i / 2 - 2
