"""Unit tests for full DTW and windowed DTW."""

import pytest

from repro.core.dtw import dtw, windowed_dtw
from repro.core.naive import naive_dtw, naive_path
from repro.core.window import Window
from tests.conftest import make_series


class TestDtw:
    def test_zero_for_identical(self):
        x = make_series(20, 1)
        assert dtw(x, x).distance == 0.0

    def test_zero_for_warped_identical_content(self):
        # classic DTW property: time dilation costs nothing
        x = [0.0, 1.0, 2.0, 3.0]
        y = [0.0, 1.0, 1.0, 1.0, 2.0, 3.0, 3.0]
        assert dtw(x, y).distance == 0.0

    def test_symmetry(self):
        x = make_series(12, 2)
        y = make_series(15, 3)
        assert dtw(x, y).distance == pytest.approx(dtw(y, x).distance)

    def test_matches_naive(self):
        for seed in range(8):
            x = make_series(10, seed)
            y = make_series(11, seed + 100)
            assert dtw(x, y).distance == pytest.approx(
                naive_dtw(x, y), abs=1e-9
            )

    def test_path_matches_naive_distance(self):
        x = make_series(8, 21)
        y = make_series(8, 22)
        d, cells = naive_path(x, y)
        r = dtw(x, y, return_path=True)
        assert r.distance == pytest.approx(d)
        assert r.path.cost(x, y) == pytest.approx(d)

    def test_cells_is_full_lattice(self):
        r = dtw(make_series(7, 1), make_series(9, 2))
        assert r.cells == 63

    def test_lower_than_euclidean(self):
        from repro.core.euclidean import euclidean

        x = make_series(15, 31)
        y = make_series(15, 32)
        assert dtw(x, y).distance <= euclidean(x, y) + 1e-12

    def test_nonnegative(self):
        x = make_series(10, 41)
        y = make_series(10, 42)
        assert dtw(x, y).distance >= 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            dtw([], [1.0])


class TestWindowedDtw:
    def test_full_window_equals_dtw(self):
        x = make_series(9, 51)
        y = make_series(9, 52)
        w = Window.full(9, 9)
        assert windowed_dtw(x, y, w).distance == pytest.approx(
            dtw(x, y).distance
        )

    def test_narrower_window_never_cheaper(self):
        x = make_series(12, 61)
        y = make_series(12, 62)
        full = dtw(x, y).distance
        for band in (0, 1, 3, 6):
            w = Window.band(12, 12, band)
            assert windowed_dtw(x, y, w).distance >= full - 1e-12

    def test_window_monotone_in_band(self):
        x = make_series(12, 71)
        y = make_series(12, 72)
        prev = float("inf")
        for band in (0, 1, 2, 4, 8, 12):
            d = windowed_dtw(x, y, Window.band(12, 12, band)).distance
            assert d <= prev + 1e-12
            prev = d

    def test_mismatched_window_rejected(self):
        with pytest.raises(ValueError):
            windowed_dtw([1.0, 2.0], [1.0, 2.0], Window.full(3, 3))
