"""Fuzz: the engine agrees with a naive DP over arbitrary windows.

The banded case is cross-checked against ``naive_dtw`` elsewhere; this
file closes the remaining gap -- *irregular* windows (the kind FastDTW
builds) -- by re-implementing the windowed DP as an obvious
dictionary-based recursion and comparing on Hypothesis-generated
series and windows.
"""

import math
from math import inf

from hypothesis import given, settings, strategies as st

from repro.core.engine import dp_over_window
from repro.core.window import Window

finite = st.floats(
    min_value=-10, max_value=10, allow_nan=False, allow_infinity=False
)


def naive_windowed_dtw(x, y, window: Window) -> float:
    """Dictionary DP over exactly the window's cells."""
    D = {}
    for i, j in window.cells():
        local = (x[i] - y[j]) ** 2
        if (i, j) == (0, 0):
            D[i, j] = local
            continue
        best = min(
            D.get((i - 1, j - 1), inf),
            D.get((i - 1, j), inf),
            D.get((i, j - 1), inf),
        )
        D[i, j] = local + best
    return D[window.n - 1, window.m - 1]


@st.composite
def series_and_window(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    m = draw(st.integers(min_value=1, max_value=12))
    x = draw(st.lists(finite, min_size=n, max_size=n))
    y = draw(st.lists(finite, min_size=m, max_size=m))
    kind = draw(st.sampled_from(["full", "band", "cells", "itakura"]))
    if kind == "full":
        w = Window.full(n, m)
    elif kind == "band":
        w = Window.band(n, m, draw(st.integers(min_value=0, max_value=6)))
    elif kind == "itakura":
        w = Window.itakura(
            n, m, draw(st.floats(min_value=1.0, max_value=4.0))
        )
    else:
        count = draw(st.integers(min_value=0, max_value=15))
        cells = [
            (draw(st.integers(min_value=0, max_value=n - 1)),
             draw(st.integers(min_value=0, max_value=m - 1)))
            for _ in range(count)
        ]
        w = Window.from_cells(n, m, cells)
    return x, y, w


@settings(deadline=None, max_examples=150)
@given(series_and_window())
def test_engine_matches_naive_over_any_window(args):
    x, y, window = args
    fast = dp_over_window(x, y, window).distance
    slow = naive_windowed_dtw(x, y, window)
    assert math.isclose(fast, slow, rel_tol=1e-9, abs_tol=1e-9)


@settings(deadline=None, max_examples=100)
@given(series_and_window())
def test_engine_path_within_window_and_optimal(args):
    x, y, window = args
    r = dp_over_window(x, y, window, return_path=True)
    assert all(cell in window for cell in r.path)
    assert math.isclose(
        r.path.cost(x, y), r.distance, rel_tol=1e-9, abs_tol=1e-9
    )
