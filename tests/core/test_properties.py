"""Property-based tests (Hypothesis) for the DTW core invariants.

These encode the mathematical contracts every implementation must
satisfy, checked on arbitrary generated series:

* full DTW == naive reference, is symmetric, non-negative, and zero
  iff a cost-free alignment exists;
* cDTW is monotone non-increasing in the band and sandwiched between
  full DTW and Euclidean;
* FastDTW upper-bounds full DTW for every radius and converges to it;
* recovered paths are valid, respect their windows, and re-evaluate to
  the reported distance;
* the NumPy backend agrees with the pure engine.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.core.cdtw import cdtw
from repro.core.dtw import dtw
from repro.core.euclidean import euclidean
from repro.core.fastdtw import fastdtw
from repro.core.naive import naive_dtw
from repro.core.numpy_backend import dtw_numpy
from repro.core.paa import halve, paa
from repro.core.window import Window

finite = st.floats(
    min_value=-50, max_value=50, allow_nan=False, allow_infinity=False
)
series = st.lists(finite, min_size=1, max_size=24)
series_pair_equal = st.integers(min_value=1, max_value=20).flatmap(
    lambda n: st.tuples(
        st.lists(finite, min_size=n, max_size=n),
        st.lists(finite, min_size=n, max_size=n),
    )
)

DEADLINE = None  # pure-python DP can be slow on CI boxes


@settings(deadline=DEADLINE, max_examples=60)
@given(series, series)
def test_full_dtw_matches_naive(x, y):
    assert math.isclose(
        dtw(x, y).distance, naive_dtw(x, y), rel_tol=1e-9, abs_tol=1e-9
    )


@settings(deadline=DEADLINE, max_examples=60)
@given(series, series)
def test_full_dtw_symmetric(x, y):
    assert math.isclose(
        dtw(x, y).distance, dtw(y, x).distance, rel_tol=1e-9, abs_tol=1e-9
    )


@settings(deadline=DEADLINE, max_examples=60)
@given(series, series)
def test_full_dtw_nonnegative(x, y):
    assert dtw(x, y).distance >= 0.0


@settings(deadline=DEADLINE, max_examples=60)
@given(series)
def test_identity_of_indiscernibles(x):
    assert dtw(x, x).distance == 0.0


@settings(deadline=DEADLINE, max_examples=60)
@given(series, series)
def test_path_revaluates_to_distance(x, y):
    r = dtw(x, y, return_path=True)
    assert math.isclose(
        r.path.cost(x, y), r.distance, rel_tol=1e-9, abs_tol=1e-9
    )
    assert r.path[0] == (0, 0)
    assert r.path[-1] == (len(x) - 1, len(y) - 1)


@settings(deadline=DEADLINE, max_examples=40)
@given(series_pair_equal, st.integers(min_value=0, max_value=10))
def test_cdtw_sandwich(pair, band):
    x, y = pair
    d = cdtw(x, y, band=band).distance
    assert d >= dtw(x, y).distance - 1e-9
    assert d <= euclidean(x, y) + 1e-9


@settings(deadline=DEADLINE, max_examples=40)
@given(series_pair_equal, st.integers(min_value=0, max_value=8))
def test_cdtw_monotone_in_band(pair, band):
    x, y = pair
    assert (
        cdtw(x, y, band=band + 1).distance
        <= cdtw(x, y, band=band).distance + 1e-9
    )


@settings(deadline=DEADLINE, max_examples=40)
@given(series_pair_equal, st.integers(min_value=0, max_value=8))
def test_cdtw_path_respects_band(pair, band):
    x, y = pair
    r = cdtw(x, y, band=band, return_path=True)
    assert r.path.max_band_deviation() <= band


@settings(deadline=DEADLINE, max_examples=40)
@given(series, series, st.integers(min_value=0, max_value=6))
def test_fastdtw_upper_bounds_full(x, y, radius):
    assert fastdtw(x, y, radius=radius).distance >= (
        dtw(x, y).distance - 1e-9
    )


@settings(deadline=DEADLINE, max_examples=40)
@given(series, series)
def test_fastdtw_converges_at_large_radius(x, y):
    radius = max(len(x), len(y))
    assert math.isclose(
        fastdtw(x, y, radius=radius).distance,
        dtw(x, y).distance,
        rel_tol=1e-9,
        abs_tol=1e-9,
    )


@settings(deadline=DEADLINE, max_examples=40)
@given(series, series, st.integers(min_value=0, max_value=6))
def test_fastdtw_path_is_valid(x, y, radius):
    r = fastdtw(x, y, radius=radius)
    assert r.path[0] == (0, 0)
    assert r.path[-1] == (len(x) - 1, len(y) - 1)
    assert math.isclose(
        r.path.cost(x, y), r.distance, rel_tol=1e-9, abs_tol=1e-9
    )


@settings(deadline=DEADLINE, max_examples=40)
@given(series, series)
def test_numpy_backend_agrees(x, y):
    import numpy as np

    assert dtw_numpy(np.array(x), np.array(y)).distance == (
        dtw(x, y).distance
    )


@settings(deadline=DEADLINE, max_examples=60)
@given(st.lists(finite, min_size=2, max_size=40))
def test_halve_preserves_pair_means(x):
    h = halve(x)
    assert len(h) == len(x) // 2
    for i, v in enumerate(h):
        assert math.isclose(
            v, (x[2 * i] + x[2 * i + 1]) / 2, rel_tol=1e-12, abs_tol=1e-12
        )


@settings(deadline=DEADLINE, max_examples=60)
@given(
    st.lists(finite, min_size=1, max_size=30),
    st.integers(min_value=1, max_value=30),
)
def test_paa_mean_preserved(x, segments):
    if segments > len(x):
        segments = len(x)
    r = paa(x, segments)
    assert len(r) == segments
    assert math.isclose(
        sum(r) / len(r), sum(x) / len(x), rel_tol=1e-6, abs_tol=1e-6
    )


@settings(deadline=DEADLINE, max_examples=60)
@given(
    st.integers(min_value=1, max_value=25),
    st.integers(min_value=1, max_value=25),
    st.integers(min_value=0, max_value=12),
)
def test_band_window_always_feasible(n, m, band):
    w = Window.band(n, m, band)
    # validation in __post_init__ passed; additionally the corners hold
    assert w.contains(0, 0)
    assert w.contains(n - 1, m - 1)
    assert 0 < w.cell_count() <= n * m


@settings(deadline=DEADLINE, max_examples=40)
@given(series_pair_equal)
def test_windowed_result_within_any_band_window(pair):
    x, y = pair
    n = len(x)
    full = dtw(x, y).distance
    for band in (0, max(1, n // 4), n):
        w = Window.band(n, n, band)
        from repro.core.dtw import windowed_dtw

        assert windowed_dtw(x, y, w).distance >= full - 1e-9
