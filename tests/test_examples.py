"""Every example script runs to completion.

Examples are the package's living documentation; each is executed in a
subprocess and must exit cleanly and produce its headline output.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

#: script name -> a fragment its stdout must contain
EXPECTED_OUTPUT = {
    "quickstart.py": "the paper in one line",
    "gesture_classification.py": "LOOCV-optimal window",
    "music_alignment.py": "exact cDTW wins",
    "power_clustering.py": "dendrogram",
    "ecg_monitoring.py": "prune rate",
    "anomaly_detection.py": "discord at offset",
    "gesture_summarization.py": "cluster purity",
    "fastdtw_failure.py": "approximation error",
    "case_advisor.py": "Case D",
}


def test_every_example_has_an_expectation():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTED_OUTPUT), (
        "examples/ and EXPECTED_OUTPUT out of sync"
    )


@pytest.mark.parametrize("script", sorted(EXPECTED_OUTPUT))
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert EXPECTED_OUTPUT[script] in result.stdout
