"""The process-default Runtime reaches cluster *internals*.

PR 3's kwarg drift meant `dtw_kmeans` / `dba` accepted `backend=` but
their private helpers (`_assign`, `_inertia`, `_alignments`) silently
fell back to pure Python.  The Runtime refactor routes every internal
distance through the resolved context, so a `use_runtime` process
default must switch the actual kernels the helpers invoke.  We prove
it by spying on the NumPy kernel entry points: zero calls without the
default, nonzero with it -- and identical results either way.
"""

from __future__ import annotations

import pytest

import repro.core.numpy_backend as nb
from repro.cluster.dba import dba
from repro.cluster.kmeans import dtw_kmeans
from repro.cluster.linkage import linkage_from_series
from repro.runtime import Runtime, use_runtime
from tests.conftest import make_series

SERIES = [make_series(16, seed) for seed in range(6)]


@pytest.fixture
def numpy_kernel_calls(monkeypatch):
    """Count invocations of the NumPy kernel entry points."""
    calls = {"n": 0}
    real_single, real_batch = nb.dtw_numpy, nb.dtw_numpy_batch
    real_chunk = nb.dtw_chunk

    def spy_single(*args, **kwargs):
        calls["n"] += 1
        return real_single(*args, **kwargs)

    def spy_batch(*args, **kwargs):
        calls["n"] += 1
        return real_batch(*args, **kwargs)

    def spy_chunk(*args, **kwargs):
        calls["n"] += 1
        return real_chunk(*args, **kwargs)

    monkeypatch.setattr(nb, "dtw_numpy", spy_single)
    monkeypatch.setattr(nb, "dtw_numpy_batch", spy_batch)
    monkeypatch.setattr(nb, "dtw_chunk", spy_chunk)
    return calls


def _run_kmeans():
    return dtw_kmeans(SERIES, 2, band=2, max_iterations=2)


def _run_dba():
    return dba(SERIES, band=2, max_iterations=2)


def _run_linkage():
    return linkage_from_series(SERIES, measure="cdtw", band=2)


@pytest.mark.parametrize(
    "run", [_run_kmeans, _run_dba, _run_linkage],
    ids=["dtw_kmeans", "dba", "linkage_from_series"],
)
def test_default_runtime_backend_reaches_internals(
    run, numpy_kernel_calls
):
    baseline = run()
    assert numpy_kernel_calls["n"] == 0, (
        "the built-in default must stay pure Python"
    )
    with use_runtime(Runtime(backend="numpy")):
        vectorised = run()
    assert numpy_kernel_calls["n"] > 0, (
        "use_runtime(backend='numpy') never reached the internals"
    )
    assert vectorised == baseline


@pytest.mark.parametrize(
    "run", [_run_kmeans, _run_dba, _run_linkage],
    ids=["dtw_kmeans", "dba", "linkage_from_series"],
)
def test_default_runtime_workers_identical_results(run):
    baseline = run()
    with use_runtime(Runtime(workers=2)):
        assert run() == baseline


def test_explicit_serial_runtime_overrides_the_default(
    numpy_kernel_calls,
):
    # a per-call Runtime is complete: it must not inherit the numpy
    # default installed around it
    with use_runtime(Runtime(backend="numpy")):
        dba(
            SERIES, band=2, max_iterations=2,
            runtime=Runtime(backend="python"),
        )
    assert numpy_kernel_calls["n"] == 0
