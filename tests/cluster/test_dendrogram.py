"""Unit tests for dendrogram trees and rendering."""

import pytest

from repro.cluster.dendrogram import ClusterNode, render_ascii
from repro.cluster.linkage import linkage


@pytest.fixture
def simple_tree():
    # A,B close (1.0); C joins at 5.0
    m = [[0.0, 1.0, 5.0], [1.0, 0.0, 5.0], [5.0, 5.0, 0.0]]
    return ClusterNode.from_merges(linkage(m, method="complete"))


class TestTree:
    def test_leaves(self, simple_tree):
        assert sorted(simple_tree.leaves()) == [0, 1, 2]

    def test_root_height(self, simple_tree):
        assert simple_tree.height == 5.0

    def test_leaf_properties(self):
        leaf = ClusterNode(3)
        assert leaf.is_leaf
        assert leaf.leaves() == [3]

    def test_from_empty_merges_rejected(self):
        with pytest.raises(ValueError):
            ClusterNode.from_merges([])


class TestCophenetic:
    def test_close_pair(self, simple_tree):
        assert simple_tree.cophenetic(0, 1) == 1.0

    def test_far_pair(self, simple_tree):
        assert simple_tree.cophenetic(0, 2) == 5.0
        assert simple_tree.cophenetic(1, 2) == 5.0

    def test_self_distance_zero(self, simple_tree):
        assert simple_tree.cophenetic(1, 1) == 0.0

    def test_symmetric(self, simple_tree):
        assert simple_tree.cophenetic(0, 2) == simple_tree.cophenetic(2, 0)

    def test_missing_leaf_rejected(self, simple_tree):
        with pytest.raises(ValueError):
            simple_tree.cophenetic(0, 9)

    def test_cophenetic_dominates_pairs_within_subtree(self):
        m = [
            [0.0, 1.0, 2.0, 8.0],
            [1.0, 0.0, 2.5, 8.0],
            [2.0, 2.5, 0.0, 8.0],
            [8.0, 8.0, 8.0, 0.0],
        ]
        tree = ClusterNode.from_merges(linkage(m, method="complete"))
        inner = max(
            tree.cophenetic(a, b) for a in (0, 1, 2) for b in (0, 1, 2)
        )
        assert inner < tree.cophenetic(0, 3)


class TestRender:
    def test_contains_all_labels(self, simple_tree):
        art = render_ascii(simple_tree, labels=["A", "B", "C"])
        for label in ("A", "B", "C"):
            assert label in art

    def test_default_labels(self, simple_tree):
        art = render_ascii(simple_tree)
        for label in ("0", "1", "2"):
            assert label in art

    def test_one_line_per_leaf(self, simple_tree):
        art = render_ascii(simple_tree, labels=["A", "B", "C"])
        assert len(art.splitlines()) == 3

    def test_close_pair_has_shorter_bars(self, simple_tree):
        art = render_ascii(simple_tree, labels=["A", "B", "C"])
        lines = {l.split()[0]: l for l in art.splitlines()}
        # C merges only at the top: its bar must be the longest
        assert len(lines["C"].rstrip()) >= len(lines["B"].rstrip())
