"""Unit tests for DTW barycenter averaging."""

import random

import pytest

from repro.cluster.dba import dba
from repro.core.dtw import dtw
from repro.datasets.warping import warp_series
from tests.conftest import make_series


@pytest.fixture(scope="module")
def warped_family():
    """Time-shifted renditions of one underlying shape."""
    base = [0.0] * 10 + [1.0, 2.0, 3.0, 2.0, 1.0] + [0.0] * 15
    rng = random.Random(4)
    return [warp_series(base, 3.0, rng) for _ in range(5)], base


class TestDba:
    def test_single_series_is_its_own_barycenter(self):
        x = make_series(20, 1)
        result = dba([x])
        assert list(result.barycenter) == pytest.approx(x)
        assert result.inertia == pytest.approx(0.0)

    def test_identical_series(self):
        x = make_series(15, 2)
        result = dba([x, x, x])
        assert list(result.barycenter) == pytest.approx(x)

    def test_inertia_not_worse_than_medoid(self, warped_family):
        family, _base = warped_family
        medoid_inertia = min(
            sum(dtw(c, s).distance for s in family) for c in family
        )
        result = dba(family)
        assert result.inertia <= medoid_inertia + 1e-9

    def test_inertia_beats_arithmetic_mean(self, warped_family):
        # the whole point of DBA: averaging under alignment beats
        # averaging sample-by-sample on warped families
        family, _base = warped_family
        n = len(family[0])
        mean = [
            sum(s[i] for s in family) / len(family) for i in range(n)
        ]
        mean_inertia = sum(dtw(mean, s).distance for s in family)
        result = dba(family)
        assert result.inertia <= mean_inertia + 1e-9

    def test_barycenter_close_to_generating_shape(self, warped_family):
        family, base = warped_family
        result = dba(family, max_iterations=15)
        assert dtw(list(result.barycenter), base).distance < 1.0

    def test_banded_variant(self, warped_family):
        family, _ = warped_family
        result = dba(family, band=5)
        assert result.inertia >= 0
        assert len(result.barycenter) == len(family[0])

    def test_initial_barycenter_accepted(self, warped_family):
        family, base = warped_family
        result = dba(family, initial=base)
        assert result.inertia <= sum(
            dtw(base, s).distance for s in family
        ) + 1e-9

    def test_zero_iterations_returns_initialisation(self, warped_family):
        family, _ = warped_family
        result = dba(family, max_iterations=0)
        assert result.iterations == 0
        assert not result.converged

    def test_converges_on_easy_input(self):
        x = make_series(12, 3)
        result = dba([x, x], max_iterations=10)
        assert result.converged

    def test_validation(self, warped_family):
        family, _ = warped_family
        with pytest.raises(ValueError, match="at least one"):
            dba([])
        with pytest.raises(ValueError, match="lengths differ"):
            dba([[1.0, 2.0], [1.0]])
        with pytest.raises(ValueError, match="wrong length"):
            dba(family, initial=[0.0])
        with pytest.raises(ValueError, match="not finite"):
            dba([[1.0, float("nan")]])
