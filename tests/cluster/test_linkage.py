"""Unit tests for agglomerative linkage, cross-checked against scipy."""

import numpy as np
import pytest
import scipy.cluster.hierarchy as sch
import scipy.spatial.distance as ssd

from repro.cluster.linkage import LINKAGES, Merge, linkage, merge_order_signature
from tests.conftest import make_series


def random_matrix(k: int, seed: int):
    import random

    rng = random.Random(seed)
    m = [[0.0] * k for _ in range(k)]
    for i in range(k):
        for j in range(i + 1, k):
            d = rng.uniform(0.1, 10.0)
            m[i][j] = m[j][i] = d
    return m


class TestLinkageBasics:
    def test_two_items(self):
        merges = linkage([[0.0, 3.0], [3.0, 0.0]])
        assert merges == [Merge(0, 1, 3.0, 2)]

    def test_merge_count(self):
        m = random_matrix(7, 1)
        assert len(linkage(m)) == 6

    def test_single_picks_minimum_first(self):
        m = [[0.0, 1.0, 9.0], [1.0, 0.0, 9.0], [9.0, 9.0, 0.0]]
        merges = linkage(m, method="single")
        assert {merges[0].left, merges[0].right} == {0, 1}
        assert merges[0].distance == 1.0

    def test_sizes_accumulate(self):
        m = random_matrix(5, 2)
        merges = linkage(m)
        assert merges[-1].size == 5

    def test_deterministic(self):
        m = random_matrix(6, 3)
        assert linkage(m) == linkage(m)


class TestValidation:
    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            linkage([[0.0, 1.0], [1.0, 0.0], [2.0, 2.0]])

    def test_rejects_nonzero_diagonal(self):
        with pytest.raises(ValueError, match="diagonal"):
            linkage([[1.0, 2.0], [2.0, 0.0]])

    def test_rejects_asymmetric(self):
        with pytest.raises(ValueError, match="symmetric"):
            linkage([[0.0, 1.0], [2.0, 0.0]])

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            linkage([[0.0, -1.0], [-1.0, 0.0]])

    def test_rejects_single_item(self):
        with pytest.raises(ValueError):
            linkage([[0.0]])

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError, match="unknown linkage"):
            linkage(random_matrix(3, 0), method="ward")


class TestAgainstScipy:
    @pytest.mark.parametrize("method", LINKAGES)
    @pytest.mark.parametrize("seed", range(5))
    def test_heights_match_scipy(self, method, seed):
        k = 8
        m = random_matrix(k, seed)
        ours = linkage(m, method=method)
        condensed = ssd.squareform(np.array(m), checks=False)
        theirs = sch.linkage(condensed, method=method)
        assert [round(x.distance, 9) for x in ours] == pytest.approx(
            [round(float(h), 9) for h in theirs[:, 2]]
        )

    @pytest.mark.parametrize("method", LINKAGES)
    def test_merged_leaf_sets_match_scipy(self, method):
        k = 7
        m = random_matrix(k, 11)
        ours_sig = merge_order_signature(linkage(m, method=method))
        condensed = ssd.squareform(np.array(m), checks=False)
        Z = sch.linkage(condensed, method=method)
        members = {i: frozenset([i]) for i in range(k)}
        scipy_sig = []
        for step, (a, b, _h, _s) in enumerate(Z):
            merged = members[int(a)] | members[int(b)]
            members[k + step] = merged
            scipy_sig.append(merged)
        assert list(ours_sig) == scipy_sig


class TestSignature:
    def test_signature_final_set_is_everything(self):
        m = random_matrix(5, 21)
        sig = merge_order_signature(linkage(m))
        assert sig[-1] == frozenset(range(5))

    def test_signature_distinguishes_topologies(self):
        close_ab = [[0.0, 1.0, 9.0], [1.0, 0.0, 9.0], [9.0, 9.0, 0.0]]
        close_ac = [[0.0, 9.0, 1.0], [9.0, 0.0, 9.0], [1.0, 9.0, 0.0]]
        sig1 = merge_order_signature(linkage(close_ab))
        sig2 = merge_order_signature(linkage(close_ac))
        assert sig1[0] != sig2[0]
