"""Deeper dendrogram coverage: 5+ leaves, nested subtrees."""

import pytest

from repro.cluster.dendrogram import ClusterNode, render_ascii
from repro.cluster.linkage import linkage


@pytest.fixture
def five_leaf_tree():
    # two tight pairs (0,1) and (2,3), then 4, then everything
    m = [
        [0.0, 1.0, 6.0, 6.0, 9.0],
        [1.0, 0.0, 6.0, 6.0, 9.0],
        [6.0, 6.0, 0.0, 2.0, 9.0],
        [6.0, 6.0, 2.0, 0.0, 9.0],
        [9.0, 9.0, 9.0, 9.0, 0.0],
    ]
    return ClusterNode.from_merges(linkage(m, method="complete"))


class TestDeepTree:
    def test_all_leaves_present(self, five_leaf_tree):
        assert sorted(five_leaf_tree.leaves()) == [0, 1, 2, 3, 4]

    def test_pairs_fuse_below_cross_heights(self, five_leaf_tree):
        t = five_leaf_tree
        assert t.cophenetic(0, 1) == 1.0
        assert t.cophenetic(2, 3) == 2.0
        assert t.cophenetic(0, 2) == 6.0
        assert t.cophenetic(0, 4) == 9.0

    def test_cophenetic_is_ultrametric(self, five_leaf_tree):
        # max(d(a,c), d(b,c)) >= d(a,b) for all triples
        t = five_leaf_tree
        leaves = t.leaves()
        for a in leaves:
            for b in leaves:
                for c in leaves:
                    assert (
                        max(t.cophenetic(a, c), t.cophenetic(b, c))
                        >= t.cophenetic(a, b) - 1e-12
                    )

    def test_render_five_lines(self, five_leaf_tree):
        art = render_ascii(
            five_leaf_tree, labels=["a", "b", "c", "d", "e"]
        )
        assert len(art.splitlines()) == 5
        for label in "abcde":
            assert label in art

    def test_outlier_bar_longest(self, five_leaf_tree):
        art = render_ascii(
            five_leaf_tree, labels=["a", "b", "c", "d", "e"]
        )
        lines = {l.strip().split()[0]: l for l in art.splitlines()}
        # 'e' joins last, at the max height: its bar reaches furthest
        assert len(lines["e"].rstrip("+| ")) >= max(
            len(lines[k].rstrip("+| ")) for k in "ab"
        )

    def test_root_height_is_last_merge(self, five_leaf_tree):
        assert five_leaf_tree.height == 9.0
