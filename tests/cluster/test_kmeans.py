"""Unit tests for DTW k-means."""

import random

import pytest

from repro.cluster.kmeans import dtw_kmeans
from repro.datasets.warping import gaussian_bump, warp_series
from tests.conftest import make_series


@pytest.fixture(scope="module")
def two_shapes():
    """Two clearly distinct shape families, each internally warped."""
    rng = random.Random(5)
    early = [v for v in gaussian_bump(40, 10.0, 4.0, 3.0)]
    late = [v for v in gaussian_bump(40, 30.0, 4.0, 3.0)]
    series = []
    truth = []
    for base, label in ((early, 0), (late, 1)):
        for _ in range(4):
            series.append(warp_series(base, 2.0, rng))
            truth.append(label)
    return series, truth


class TestDtwKmeans:
    def test_recovers_two_families(self, two_shapes):
        series, truth = two_shapes
        result = dtw_kmeans(series, k=2, band=4, seed=1)
        # assignments must be consistent with the ground truth up to
        # label permutation
        groups = {}
        for assigned, true in zip(result.assignments, truth):
            groups.setdefault(assigned, set()).add(true)
        assert all(len(g) == 1 for g in groups.values())

    def test_k1_centroid_is_barycenter(self, two_shapes):
        series, _ = two_shapes
        result = dtw_kmeans(series, k=1, band=4)
        assert len(result.centroids) == 1
        assert result.assignments == tuple([0] * len(series))

    def test_inertia_consistent_with_assignments(self, two_shapes):
        from repro.core.cdtw import cdtw

        series, _ = two_shapes
        result = dtw_kmeans(series, k=2, band=4, seed=2)
        recomputed = sum(
            cdtw(
                list(result.centroids[result.assignments[i]]), s, band=4
            ).distance
            for i, s in enumerate(series)
        )
        assert result.inertia == pytest.approx(recomputed)

    def test_deterministic_for_seed(self, two_shapes):
        series, _ = two_shapes
        a = dtw_kmeans(series, k=2, band=4, seed=7)
        b = dtw_kmeans(series, k=2, band=4, seed=7)
        assert a.assignments == b.assignments

    def test_converges_on_easy_data(self, two_shapes):
        series, _ = two_shapes
        result = dtw_kmeans(series, k=2, band=4, seed=1,
                            max_iterations=10)
        assert result.converged

    def test_identical_series_handled(self):
        x = make_series(16, 9)
        result = dtw_kmeans([x, x, x], k=2, seed=0)
        assert result.inertia == pytest.approx(0.0)

    def test_validation(self, two_shapes):
        series, _ = two_shapes
        with pytest.raises(ValueError, match="k must be positive"):
            dtw_kmeans(series, k=0)
        with pytest.raises(ValueError, match="at least k"):
            dtw_kmeans(series[:1], k=2)
        with pytest.raises(ValueError, match="one length"):
            dtw_kmeans([[1.0, 2.0], [1.0]], k=1)
        with pytest.raises(ValueError, match="not finite"):
            dtw_kmeans([[float("nan")] * 4, [1.0] * 4], k=1)
