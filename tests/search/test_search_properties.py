"""Property tests for subsequence search (Hypothesis).

Exactness of the pruned search against a brute-force scan, for
arbitrary streams, queries, bands and strides.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.core.cdtw import cdtw
from repro.preprocess.normalize import znorm
from repro.preprocess.sliding import sliding_windows
from repro.search.subsequence import (
    subsequence_search,
    subsequence_search_topk,
)

finite = st.floats(
    min_value=-10, max_value=10, allow_nan=False, allow_infinity=False
)


@st.composite
def search_tasks(draw):
    m = draw(st.integers(min_value=2, max_value=8))
    extra = draw(st.integers(min_value=1, max_value=25))
    stream = draw(
        st.lists(finite, min_size=m + extra, max_size=m + extra)
    )
    query = draw(st.lists(finite, min_size=m, max_size=m))
    band = draw(st.integers(min_value=0, max_value=3))
    step = draw(st.integers(min_value=1, max_value=3))
    return query, stream, band, step


@settings(deadline=None, max_examples=40)
@given(search_tasks())
def test_search_matches_brute_force(task):
    query, stream, band, step = task
    match = subsequence_search(query, stream, band=band, step=step)
    q = znorm(query)
    best = math.inf
    best_start = None
    for start, w in sliding_windows(stream, len(query), step):
        d = cdtw(q, znorm(w), band=band).distance
        if d < best:
            best, best_start = d, start
    assert math.isclose(match.distance, best, rel_tol=1e-9, abs_tol=1e-9)
    assert match.start == best_start


@settings(deadline=None, max_examples=30)
@given(search_tasks())
def test_topk_first_equals_single_best(task):
    query, stream, band, step = task
    single = subsequence_search(query, stream, band=band, step=step)
    top = subsequence_search_topk(
        query, stream, band=band, k=2, step=step
    )
    assert top, "top-k returned nothing"
    assert top[0].start == single.start
    assert math.isclose(
        top[0].distance, single.distance, rel_tol=1e-9, abs_tol=1e-9
    )


@settings(deadline=None, max_examples=30)
@given(search_tasks(), st.integers(min_value=1, max_value=4))
def test_topk_sorted_and_disjoint(task, k):
    query, stream, band, step = task
    matches = subsequence_search_topk(
        query, stream, band=band, k=k, step=step
    )
    distances = [m.distance for m in matches]
    assert distances == sorted(distances)
    starts = [m.start for m in matches]
    m_len = len(query)
    for i, a in enumerate(starts):
        for b in starts[i + 1:]:
            assert abs(a - b) >= m_len
