"""Unit tests for 1-NN search strategies."""

import pytest

from repro.core.cdtw import cdtw
from repro.core.euclidean import euclidean
from repro.core.fastdtw import fastdtw
from repro.search.nn_search import STRATEGIES, nearest_neighbor
from tests.conftest import make_series


@pytest.fixture
def workload():
    query = make_series(20, 0)
    candidates = [make_series(20, s + 10) for s in range(10)]
    # plant an obvious nearest neighbour
    candidates[4] = [v + 0.001 for v in query]
    return query, candidates


class TestStrategiesAgree:
    def test_exact_strategies_identical(self, workload):
        query, candidates = workload
        plain = nearest_neighbor(query, candidates, "cdtw", band=3)
        cascaded = nearest_neighbor(query, candidates, "cdtw+lb", band=3)
        assert plain.index == cascaded.index
        assert plain.distance == pytest.approx(cascaded.distance)

    def test_all_strategies_find_planted_neighbor(self, workload):
        query, candidates = workload
        for strategy in STRATEGIES:
            kwargs = {}
            if strategy.startswith("cdtw"):
                kwargs["band"] = 3
            if strategy == "fastdtw":
                kwargs["radius"] = 3
            res = nearest_neighbor(query, candidates, strategy, **kwargs)
            assert res.index == 4, strategy


class TestCorrectness:
    def test_cdtw_matches_brute_force(self, workload):
        query, candidates = workload
        res = nearest_neighbor(query, candidates, "cdtw", band=2)
        brute = min(
            range(len(candidates)),
            key=lambda i: cdtw(query, candidates[i], band=2).distance,
        )
        assert res.index == brute

    def test_euclidean_matches_brute_force(self, workload):
        query, candidates = workload
        res = nearest_neighbor(query, candidates, "euclidean")
        brute = min(
            range(len(candidates)),
            key=lambda i: euclidean(query, candidates[i]),
        )
        assert res.index == brute

    def test_fastdtw_matches_its_own_brute_force(self, workload):
        query, candidates = workload
        res = nearest_neighbor(query, candidates, "fastdtw", radius=2)
        brute = min(
            range(len(candidates)),
            key=lambda i: fastdtw(query, candidates[i], radius=2).distance,
        )
        assert res.index == brute


class TestWork:
    def test_cascade_does_less_cell_work(self, workload):
        query, candidates = workload
        plain = nearest_neighbor(query, candidates, "cdtw", band=3)
        cascaded = nearest_neighbor(query, candidates, "cdtw+lb", band=3)
        assert cascaded.cells <= plain.cells

    def test_cascade_reports_stats(self, workload):
        query, candidates = workload
        res = nearest_neighbor(query, candidates, "cdtw+lb", band=3)
        assert res.stats is not None
        assert res.stats.candidates == len(candidates)

    def test_euclidean_reports_zero_cells(self, workload):
        query, candidates = workload
        assert nearest_neighbor(query, candidates, "euclidean").cells == 0


class TestValidation:
    def test_unknown_strategy(self, workload):
        query, candidates = workload
        with pytest.raises(ValueError, match="unknown strategy"):
            nearest_neighbor(query, candidates, "magic")

    def test_empty_candidates(self):
        with pytest.raises(ValueError, match="no candidates"):
            nearest_neighbor([1.0], [], "euclidean")

    def test_cdtw_requires_band_or_window(self, workload):
        query, candidates = workload
        with pytest.raises(ValueError, match="exactly one"):
            nearest_neighbor(query, candidates, "cdtw")

    def test_window_out_of_range(self, workload):
        query, candidates = workload
        with pytest.raises(ValueError):
            nearest_neighbor(query, candidates, "cdtw", window=2.0)
