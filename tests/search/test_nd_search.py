"""Multivariate search consumers: 1-NN, discord, motif, subsequence.

The multivariate contract is the same losslessness the scalar stack
promises: every execution route (serial cascade, parallel batch,
ahead-of-time index, either backend) of the same nd search returns
bit-identical answers, and they all equal the brute-force dependent
measure (``cdtw_d``) scan.
"""

import random

import pytest

from repro.anomaly import find_discord
from repro.core.multivariate import cdtw_nd
from repro.index import build_index, build_stream_index
from repro.motifs import find_motif
from repro.preprocess.normalize import znorm_nd
from repro.runtime import Runtime
from repro.search import (
    nearest_neighbor,
    subsequence_search,
    subsequence_search_topk,
)
from tests.conftest import make_vectors


def _nd_stream(n=60, dims=2, seed=0):
    rng = random.Random(seed)
    out = []
    values = [0.0] * dims
    for _ in range(n):
        values = [v + rng.uniform(-1.0, 1.0) for v in values]
        out.append(tuple(values))
    return out


class TestNearestNeighbor:
    @pytest.fixture
    def problem(self):
        query = make_vectors(16, 3, 99)
        candidates = [make_vectors(16, 3, s) for s in range(6)]
        return query, candidates

    def _brute(self, query, candidates, band):
        d = [cdtw_nd(query, c, band=band).distance for c in candidates]
        best = min(range(len(d)), key=lambda i: (d[i], i))
        return best, d[best]

    @pytest.mark.parametrize("strategy", ("cdtw", "cdtw+lb"))
    def test_serial_matches_brute_force(self, problem, strategy):
        query, candidates = problem
        res = nearest_neighbor(
            query, candidates, strategy=strategy, band=3
        )
        best, dist = self._brute(query, candidates, 3)
        assert res.index == best
        assert res.distance == dist

    @pytest.mark.parametrize("backend", ("python", "numpy"))
    @pytest.mark.parametrize("workers", (1, 2))
    def test_runtime_grid_bit_identical(self, problem, backend, workers):
        query, candidates = problem
        serial = nearest_neighbor(
            query, candidates, strategy="cdtw", band=3
        )
        routed = nearest_neighbor(
            query, candidates, strategy="cdtw", band=3,
            runtime=Runtime(backend=backend, workers=workers),
        )
        assert routed.index == serial.index
        assert routed.distance == serial.distance

    def test_indexed_matches_index_free(self, problem):
        query, candidates = problem
        index = build_index(list(candidates), band=3)
        plain = nearest_neighbor(
            query, candidates, strategy="cdtw+lb", band=3
        )
        indexed = nearest_neighbor(
            query, candidates, strategy="cdtw+lb", band=3, index=index
        )
        assert indexed.index == plain.index
        assert indexed.distance == plain.distance

    def test_fastdtw_strategy_runs_serial_and_parallel(self, problem):
        query, candidates = problem
        serial = nearest_neighbor(
            query, candidates, strategy="fastdtw", radius=1
        )
        parallel = nearest_neighbor(
            query, candidates, strategy="fastdtw", radius=1,
            runtime=Runtime(workers=2),
        )
        assert parallel.index == serial.index
        assert parallel.distance == serial.distance

    def test_euclidean_strategy_refused_on_nd(self, problem):
        query, candidates = problem
        with pytest.raises(ValueError, match="univariate"):
            nearest_neighbor(query, candidates, strategy="euclidean")


class TestDiscordAndMotif:
    def test_discord_serial_parallel_indexed_agree(self):
        stream = _nd_stream(n=56, dims=2, seed=3)
        kwargs = dict(window=12, band=2, step=2)
        serial = find_discord(stream, **kwargs)
        parallel = find_discord(
            stream, runtime=Runtime(workers=2), **kwargs
        )
        index = build_stream_index(
            stream, window=12, band=2, step=2, normalize=True
        )
        indexed = find_discord(stream, index=index, **kwargs)
        for got in (parallel, indexed):
            assert got.start == serial.start
            assert got.score == serial.score
            assert got.neighbor_start == serial.neighbor_start

    def test_motif_serial_parallel_agree(self):
        stream = _nd_stream(n=56, dims=3, seed=4)
        kwargs = dict(window=10, band=2, step=2)
        serial = find_motif(stream, **kwargs)
        parallel = find_motif(
            stream, runtime=Runtime(workers=2), **kwargs
        )
        assert (parallel.start_a, parallel.start_b) == (
            serial.start_a, serial.start_b,
        )
        assert parallel.distance == serial.distance


class TestSubsequence:
    def test_finds_planted_match(self):
        rng = random.Random(5)
        stream = _nd_stream(n=80, dims=2, seed=5)
        query = [
            tuple(c + rng.uniform(-1e-6, 1e-6) for c in v)
            for v in stream[30:42]
        ]
        hit = subsequence_search(query, stream, band=2)
        assert hit.start == 30

    def test_mixed_query_stream_refused(self):
        stream = _nd_stream(n=30, dims=2, seed=6)
        with pytest.raises(ValueError, match="univariate or both multivariate"):
            subsequence_search([0.0, 1.0, 2.0], stream, band=2)
        with pytest.raises(ValueError, match="univariate or both multivariate"):
            subsequence_search(
                make_vectors(5, 2, 1), [0.0] * 30, band=2
            )

    def test_serial_parallel_indexed_agree(self):
        stream = _nd_stream(n=60, dims=2, seed=7)
        query = make_vectors(12, 2, 8)
        serial = subsequence_search(query, stream, band=2)
        parallel = subsequence_search(
            query, stream, band=2, runtime=Runtime(workers=2)
        )
        index = build_stream_index(stream, window=12, band=2)
        indexed = subsequence_search(query, stream, band=2, index=index)
        for got in (parallel, indexed):
            assert got.start == serial.start
            assert got.distance == serial.distance

    def test_topk_routes_agree(self):
        stream = _nd_stream(n=60, dims=2, seed=9)
        query = make_vectors(10, 2, 10)
        serial = subsequence_search_topk(query, stream, band=2, k=3)
        parallel = subsequence_search_topk(
            query, stream, band=2, k=3, runtime=Runtime(workers=2)
        )
        index = build_stream_index(stream, window=10, band=2)
        indexed = subsequence_search_topk(
            query, stream, band=2, k=3, index=index
        )
        want = [(m.start, m.distance) for m in serial]
        assert [(m.start, m.distance) for m in parallel] == want
        assert [(m.start, m.distance) for m in indexed] == want

    def test_matches_brute_force_distance(self):
        stream = _nd_stream(n=40, dims=2, seed=11)
        query = make_vectors(8, 2, 12)
        hit = subsequence_search(query, stream, band=2)
        q = znorm_nd(query)
        brute = [
            cdtw_nd(q, znorm_nd(stream[s:s + 8]), band=2).distance
            for s in range(len(stream) - 8 + 1)
        ]
        best = min(range(len(brute)), key=lambda i: (brute[i], i))
        assert hit.start == best
        assert hit.distance == brute[best]
