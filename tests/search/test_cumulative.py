"""Unit tests for cumulative-suffix-bound early abandoning."""

import math

import pytest

from repro.core.cdtw import cdtw
from repro.lowerbounds.envelope import envelope
from repro.search.cumulative import (
    cdtw_cumulative_abandon,
    suffix_gap_bounds,
)
from tests.conftest import make_series


class TestSuffixGapBounds:
    def test_last_entry_zero(self):
        x = make_series(10, 1)
        env = envelope(make_series(10, 2), 2)
        assert suffix_gap_bounds(x, env)[-1] == 0.0

    def test_non_increasing(self):
        x = make_series(20, 3)
        env = envelope(make_series(20, 4), 2)
        suffix = suffix_gap_bounds(x, env)
        assert all(a >= b - 1e-12 for a, b in zip(suffix, suffix[1:]))

    def test_zero_when_inside_envelope(self):
        y = make_series(15, 5)
        env = envelope(y, 3)
        assert suffix_gap_bounds(list(y), env) == [0.0] * 15

    def test_first_entry_is_lb_keogh_minus_own_gap(self):
        from repro.lowerbounds.lb_keogh import lb_keogh

        x = make_series(12, 6)
        y = make_series(12, 7)
        env = envelope(y, 1)
        suffix = suffix_gap_bounds(x, env)
        total = lb_keogh(env, x)
        # suffix[0] excludes x[0]'s own gap
        assert suffix[0] <= total + 1e-12

    def test_length_mismatch_rejected(self):
        env = envelope([1.0, 2.0], 1)
        with pytest.raises(ValueError):
            suffix_gap_bounds([1.0], env)


class TestCumulativeAbandon:
    def test_exact_when_completing(self):
        x = make_series(20, 8)
        y = make_series(20, 9)
        exact = cdtw(x, y, band=3).distance
        r = cdtw_cumulative_abandon(x, y, band=3, threshold=exact + 1)
        assert not r.abandoned
        assert r.distance == pytest.approx(exact)

    def test_abandons_far_pair(self):
        r = cdtw_cumulative_abandon(
            [0.0] * 20, [9.0] * 20, band=2, threshold=1.0
        )
        assert r.abandoned
        assert r.distance == math.inf

    def test_abandons_no_later_than_plain(self):
        # the suffix bound only ever tightens the abandon test
        for seed in range(10):
            x = make_series(30, seed)
            y = make_series(30, seed + 400)
            exact = cdtw(x, y, band=3).distance
            threshold = exact * 0.5
            plain = cdtw(x, y, band=3, abandon_above=threshold)
            cumulative = cdtw_cumulative_abandon(
                x, y, band=3, threshold=threshold
            )
            assert cumulative.cells <= plain.cells

    def test_soundness(self):
        # whenever it abandons, the true distance really exceeds the
        # threshold
        for seed in range(20):
            x = make_series(25, seed)
            y = make_series(25, seed + 800)
            exact = cdtw(x, y, band=2).distance
            r = cdtw_cumulative_abandon(
                x, y, band=2, threshold=exact * 0.8
            )
            if r.abandoned:
                assert exact > exact * 0.8 or exact == 0.0

    def test_precomputed_envelope_accepted(self):
        x = make_series(15, 10)
        y = make_series(15, 11)
        env = envelope(y, 2)
        exact = cdtw(x, y, band=2).distance
        r = cdtw_cumulative_abandon(
            x, y, band=2, threshold=exact + 1, y_envelope=env
        )
        assert r.distance == pytest.approx(exact)

    def test_narrow_envelope_rejected(self):
        x = make_series(10, 12)
        y = make_series(10, 13)
        env = envelope(y, 1)
        with pytest.raises(ValueError, match="narrower"):
            cdtw_cumulative_abandon(
                x, y, band=3, threshold=1.0, y_envelope=env
            )

    def test_wider_envelope_allowed(self):
        x = make_series(10, 14)
        y = make_series(10, 15)
        env = envelope(y, 5)
        exact = cdtw(x, y, band=2).distance
        r = cdtw_cumulative_abandon(
            x, y, band=2, threshold=exact + 1, y_envelope=env
        )
        assert r.distance == pytest.approx(exact)

    def test_unequal_lengths_rejected(self):
        with pytest.raises(ValueError, match="equal lengths"):
            cdtw_cumulative_abandon(
                [1.0, 2.0], [1.0, 2.0, 3.0], band=1, threshold=1.0
            )


class TestCascadeWithCumulative:
    def test_nearest_unchanged_by_cumulative_stage(self):
        from repro.lowerbounds.cascade import LowerBoundCascade

        query = make_series(24, 16)
        candidates = [make_series(24, s + 900) for s in range(12)]
        with_cum = LowerBoundCascade(query, band=3, use_cumulative=True)
        without = LowerBoundCascade(query, band=3, use_cumulative=False)
        assert with_cum.nearest(candidates) == pytest.approx(
            without.nearest(candidates)
        )

    def test_cumulative_stage_comparable_cell_work(self):
        # per-call the suffix bound abandons no later in the *same*
        # orientation (tested above); at cascade level the orientations
        # differ (the cumulative stage scans candidate rows against the
        # precomputed query envelope), so only comparable totals are
        # guaranteed
        from repro.lowerbounds.cascade import LowerBoundCascade

        query = make_series(24, 17)
        candidates = [make_series(24, s + 950) for s in range(15)]
        with_cum = LowerBoundCascade(query, band=3, use_cumulative=True)
        without = LowerBoundCascade(query, band=3, use_cumulative=False)
        with_cum.nearest(candidates)
        without.nearest(candidates)
        assert with_cum.stats.cells <= without.stats.cells * 1.5
        assert with_cum.stats.pruned_total() >= 1
