"""Unit tests for subsequence search."""

import pytest

from repro.core.cdtw import cdtw
from repro.datasets.ecg import ecg_stream, heartbeat
from repro.preprocess.normalize import znorm
from repro.search.subsequence import subsequence_search
from tests.conftest import make_series


class TestSubsequenceSearch:
    def test_finds_planted_exact_match(self):
        stream = make_series(200, 1)
        query = stream[73:103]
        match = subsequence_search(query, stream, band=2, normalize=False)
        assert match.start == 73
        assert match.distance == pytest.approx(0.0, abs=1e-9)

    def test_finds_planted_match_with_normalization(self):
        stream = make_series(150, 2)
        # scaled+shifted copy: invisible without z-normalisation
        query = [3.0 * v + 10.0 for v in stream[40:70]]
        match = subsequence_search(query, stream, band=2, normalize=True)
        assert match.start == 40
        assert match.distance == pytest.approx(0.0, abs=1e-9)

    def test_matches_brute_force(self):
        stream = make_series(80, 3)
        query = make_series(20, 4)
        match = subsequence_search(query, stream, band=2)
        q = znorm(query)
        brute = min(
            range(len(stream) - 20 + 1),
            key=lambda s: cdtw(
                q, znorm(stream[s:s + 20]), band=2
            ).distance,
        )
        assert match.start == brute

    def test_window_count(self):
        stream = make_series(50, 5)
        query = make_series(10, 6)
        match = subsequence_search(query, stream, band=1)
        assert match.windows == 41

    def test_step_reduces_windows(self):
        stream = make_series(50, 7)
        query = make_series(10, 8)
        m1 = subsequence_search(query, stream, band=1, step=1)
        m5 = subsequence_search(query, stream, band=1, step=5)
        assert m5.windows < m1.windows

    def test_finds_heartbeat_in_ecg(self):
        # the motivating workload: locate one beat in a stream
        stream = ecg_stream(8, mean_beat_samples=60, seed=9)
        query = stream[180:240]
        match = subsequence_search(query, stream, band=3)
        assert abs(match.start - 180) <= 2

    def test_pruning_happens(self):
        stream = ecg_stream(6, mean_beat_samples=50, seed=10)
        query = stream[100:150]
        match = subsequence_search(query, stream, band=2)
        assert match.stats.pruned_total() > 0

    def test_query_longer_than_stream_rejected(self):
        with pytest.raises(ValueError, match="shorter"):
            subsequence_search(make_series(10, 0), make_series(5, 1), band=1)

    def test_empty_query_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            subsequence_search([], make_series(5, 1), band=1)

    def test_bad_step_rejected(self):
        with pytest.raises(ValueError, match="step"):
            subsequence_search(
                make_series(3, 0), make_series(9, 1), band=1, step=0
            )
