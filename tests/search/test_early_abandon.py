"""Unit tests for early-abandoning distances."""

import math

import pytest

from repro.core.cdtw import cdtw
from repro.search.early_abandon import (
    early_abandoning_cdtw,
    early_abandoning_euclidean,
)
from tests.conftest import make_series


class TestEarlyAbandoningEuclidean:
    def test_abandons_far_pair(self):
        assert early_abandoning_euclidean(
            [0.0] * 10, [9.0] * 10, threshold=1.0
        ) == math.inf

    def test_exact_for_near_pair(self):
        x = make_series(10, 1)
        y = [v + 0.01 for v in x]
        d = early_abandoning_euclidean(x, y, threshold=1.0)
        assert d == pytest.approx(10 * 0.01 ** 2)


class TestEarlyAbandoningCdtw:
    def test_abandons_far_pair(self):
        r = early_abandoning_cdtw(
            [0.0] * 10, [9.0] * 10, threshold=1.0, band=2
        )
        assert r.abandoned
        assert r.distance == math.inf

    def test_exact_when_threshold_large(self):
        x = make_series(12, 2)
        y = make_series(12, 3)
        exact = cdtw(x, y, band=2).distance
        r = early_abandoning_cdtw(x, y, threshold=exact * 2, band=2)
        assert not r.abandoned
        assert r.distance == pytest.approx(exact)

    def test_saves_cells_when_abandoning(self):
        x = [0.0] * 30
        y = [9.0] * 30
        full = cdtw(x, y, band=5)
        cut = early_abandoning_cdtw(x, y, threshold=1.0, band=5)
        assert cut.cells < full.cells

    def test_window_fraction_parameter(self):
        x = make_series(10, 4)
        y = make_series(10, 5)
        r = early_abandoning_cdtw(x, y, threshold=1e9, window=0.2)
        assert r.distance == pytest.approx(
            cdtw(x, y, window=0.2).distance
        )
