"""Unit tests for top-k subsequence search."""

import math

import pytest

from repro.core.cdtw import cdtw
from repro.datasets.ecg import ecg_stream
from repro.preprocess.normalize import znorm
from repro.preprocess.sliding import sliding_windows
from repro.search.subsequence import (
    subsequence_search,
    subsequence_search_topk,
)
from tests.conftest import make_series


def _brute_force_topk(query, stream, band, k, step=1, exclusion=None):
    m = len(query)
    exclusion = m if exclusion is None else exclusion
    q = znorm(query)
    scored = sorted(
        (cdtw(q, znorm(w), band=band).distance, s)
        for s, w in sliding_windows(stream, m, step)
    )
    chosen = []
    for d, s in scored:
        if len(chosen) >= k:
            break
        if any(abs(s - t) < exclusion for _d, t in chosen):
            continue
        chosen.append((d, s))
    return chosen


@pytest.fixture(scope="module")
def beat_stream():
    return ecg_stream(10, mean_beat_samples=40, seed=17)


class TestTopK:
    def test_k1_matches_single_search(self, beat_stream):
        query = beat_stream[120:160]
        single = subsequence_search(query, beat_stream, band=3)
        (top,) = subsequence_search_topk(
            query, beat_stream, band=3, k=1
        )
        assert top.start == single.start
        assert top.distance == pytest.approx(single.distance)

    def test_matches_brute_force(self, beat_stream):
        query = beat_stream[120:160]
        ours = subsequence_search_topk(
            query, beat_stream, band=3, k=3, step=4
        )
        brute = _brute_force_topk(query, beat_stream, 3, 3, step=4)
        assert [(m.start) for m in ours] == [s for _d, s in brute]
        for m, (d, _s) in zip(ours, brute):
            assert m.distance == pytest.approx(d)

    def test_results_sorted_best_first(self, beat_stream):
        query = beat_stream[120:160]
        matches = subsequence_search_topk(
            query, beat_stream, band=3, k=4, step=4
        )
        distances = [m.distance for m in matches]
        assert distances == sorted(distances)

    def test_non_overlapping(self, beat_stream):
        query = beat_stream[120:160]
        matches = subsequence_search_topk(
            query, beat_stream, band=3, k=4, step=4
        )
        starts = [m.start for m in matches]
        for a in starts:
            for b in starts:
                if a != b:
                    assert abs(a - b) >= 40

    def test_finds_recurring_beats(self, beat_stream):
        # the query beat recurs ~10 times; top-3 should all be close
        query = beat_stream[120:160]
        matches = subsequence_search_topk(
            query, beat_stream, band=3, k=3, step=2
        )
        assert len(matches) == 3
        assert all(m.distance < 20.0 for m in matches)

    def test_fewer_than_k_when_stream_small(self):
        stream = make_series(30, 1)
        query = stream[5:15]
        matches = subsequence_search_topk(
            query, stream, band=2, k=10
        )
        assert 1 <= len(matches) <= 3  # only ~2 non-overlapping slots

    def test_validation(self, beat_stream):
        query = beat_stream[0:40]
        with pytest.raises(ValueError, match="k must be positive"):
            subsequence_search_topk(query, beat_stream, band=2, k=0)
        with pytest.raises(ValueError, match="empty query"):
            subsequence_search_topk([], beat_stream, band=2, k=1)
        with pytest.raises(ValueError, match="exclusion"):
            subsequence_search_topk(
                query, beat_stream, band=2, k=1, exclusion=0
            )
        with pytest.raises(ValueError, match="not finite"):
            subsequence_search_topk(
                [math.nan] * 10, beat_stream, band=2, k=1
            )
