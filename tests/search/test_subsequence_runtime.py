"""Subsequence search under a Runtime: same match, any context.

The serial scan threads a best-so-far through the LB cascade; a
parallel runtime z-normalises every window up front and batches the
exact cDTW distances, then takes the serial argmin (first index wins
ties).  Pruning is lossless, so start offset, distance and window
count are bit-identical.  Cascade *pruning counters* are not
compared: the batched path computes every window by construction.
"""

from __future__ import annotations

import pytest

from repro.runtime import Runtime
from repro.search.subsequence import (
    subsequence_search,
    subsequence_search_topk,
)
from tests.conftest import make_series

STREAM = make_series(96, seed=3)
QUERY = make_series(12, seed=4)


@pytest.mark.parametrize("workers", [1, 2, 4])
@pytest.mark.parametrize("backend", ["python", "numpy"])
def test_best_match_bit_identical(workers, backend):
    serial = subsequence_search(QUERY, STREAM, band=2)
    rt = Runtime(workers=workers, backend=backend)
    parallel = subsequence_search(QUERY, STREAM, band=2, runtime=rt)
    assert parallel.start == serial.start
    assert parallel.distance == serial.distance
    assert parallel.windows == serial.windows


@pytest.mark.parametrize("workers", [1, 2, 4])
@pytest.mark.parametrize("backend", ["python", "numpy"])
def test_topk_bit_identical(workers, backend):
    serial = subsequence_search_topk(QUERY, STREAM, band=2, k=3)
    rt = Runtime(workers=workers, backend=backend)
    parallel = subsequence_search_topk(
        QUERY, STREAM, band=2, k=3, runtime=rt
    )
    assert [(m.start, m.distance) for m in parallel] == [
        (m.start, m.distance) for m in serial
    ]


def test_serial_runtime_reproduces_the_default_exactly():
    rt = Runtime(workers=1, backend="python")
    assert subsequence_search(QUERY, STREAM, band=2, runtime=rt) == (
        subsequence_search(QUERY, STREAM, band=2)
    )


def test_acceptance_context_with_default_executor():
    rt = Runtime(workers=4, backend="numpy", executor="default")
    serial = subsequence_search(QUERY, STREAM, band=2)
    parallel = subsequence_search(QUERY, STREAM, band=2, runtime=rt)
    assert (parallel.start, parallel.distance) == (
        serial.start, serial.distance
    )


@pytest.mark.parametrize("step", [1, 4])
@pytest.mark.parametrize("normalize", [True, False])
def test_step_and_normalize_respected_in_parallel(step, normalize):
    serial = subsequence_search(
        QUERY, STREAM, band=2, step=step, normalize=normalize
    )
    parallel = subsequence_search(
        QUERY, STREAM, band=2, step=step, normalize=normalize,
        runtime=Runtime(workers=2),
    )
    assert parallel.start == serial.start
    assert parallel.distance == serial.distance
    assert parallel.windows == serial.windows


def test_parallel_stats_account_full_compute():
    rt = Runtime(workers=2)
    result = subsequence_search(QUERY, STREAM, band=2, runtime=rt)
    assert result.stats.candidates == result.windows
    assert result.stats.full_dtw == result.windows
