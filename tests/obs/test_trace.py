"""Unit tests for the observability core (RunTrace, spans, counters)."""

import json
import pickle
import threading
import time

import pytest

from repro.obs import (
    RunTrace,
    SpanStat,
    TraceSnapshot,
    active_trace,
    incr,
    record_dp,
    span,
)
from repro.obs.trace import SCHEMA


class TestActivation:
    def test_inactive_by_default(self):
        assert active_trace() is None

    def test_context_activates_and_restores(self):
        with RunTrace() as t:
            assert active_trace() is t
        assert active_trace() is None

    def test_nested_traces_stack(self):
        with RunTrace() as outer:
            with RunTrace() as inner:
                assert active_trace() is inner
                incr("x")
            assert active_trace() is outer
            incr("x")
        assert inner.counter("x") == 1
        assert outer.counter("x") == 1

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with RunTrace():
                raise RuntimeError("boom")
        assert active_trace() is None

    def test_elapsed_seconds_recorded(self):
        with RunTrace() as t:
            time.sleep(0.01)
        assert t.seconds >= 0.01


class TestCounters:
    def test_incr_accumulates(self):
        with RunTrace() as t:
            incr("a")
            incr("a", 4)
            t.incr("b", 2)
        assert t.counter("a") == 5
        assert t.counter("b") == 2
        assert t.counter("missing") == 0
        assert t.counter("missing", default=-1) == -1

    def test_incr_without_trace_is_noop(self):
        incr("orphan", 100)  # must not raise, must not leak anywhere
        with RunTrace() as t:
            pass
        assert t.counter("orphan") == 0

    def test_counters_sorted_copy(self):
        with RunTrace() as t:
            incr("zeta")
            incr("alpha")
        names = list(t.counters())
        assert names == sorted(names)

    def test_record_dp(self):
        class Result:
            cells = 7
            abandoned = True

        t = RunTrace()
        record_dp(t, Result())
        assert t.counter("dp.calls") == 1
        assert t.counter("dp.cells") == 7
        assert t.counter("dp.abandons") == 1

    def test_thread_safety(self):
        with RunTrace() as t:
            def work():
                for _ in range(1000):
                    incr("n")

            threads = [threading.Thread(target=work) for _ in range(4)]
            for th in threads:
                th.start()
            for th in threads:
                th.join()
        assert t.counter("n") == 4000


class TestSpans:
    def test_span_records_count_and_seconds(self):
        with RunTrace() as t:
            with span("phase"):
                time.sleep(0.005)
            with span("phase"):
                pass
        stat = t.span_stat("phase")
        assert stat.count == 2
        assert stat.seconds >= 0.005
        assert t.span_count("phase") == 2
        assert t.span_seconds("phase") == stat.seconds

    def test_nested_spans_join_paths(self):
        with RunTrace() as t:
            with span("outer"):
                with span("inner"):
                    pass
        assert t.span_count("outer") == 1
        assert t.span_count("outer/inner") == 1
        assert t.span_count("inner") == 0

    def test_absent_span_is_zero(self):
        t = RunTrace()
        assert t.span_stat("nope") == SpanStat()
        assert t.span_seconds("nope") == 0.0

    def test_span_without_trace_is_shared_noop(self):
        a = span("anything")
        b = span("else")
        assert a is b  # the zero-allocation disabled path
        with a:
            pass

    def test_span_stack_isolated_per_trace(self):
        # a trace entered inside an open span must not inherit the
        # outer naming stack
        with RunTrace() as outer:
            with span("outer_phase"):
                with RunTrace() as inner:
                    with span("p"):
                        pass
        assert inner.span_count("p") == 1
        assert inner.span_count("outer_phase/p") == 0
        assert outer.span_count("outer_phase") == 1


class TestSnapshotMerge:
    def test_snapshot_is_picklable(self):
        with RunTrace() as t:
            incr("c", 3)
            with span("s"):
                pass
        snap = t.snapshot()
        clone = pickle.loads(pickle.dumps(snap))
        assert clone.counters == {"c": 3}
        assert clone.spans["s"][0] == 1

    def test_merge_adds(self):
        with RunTrace() as t:
            incr("c", 1)
            with span("s"):
                pass
        parent = RunTrace()
        parent.incr("c", 10)
        parent.merge(t.snapshot())
        parent.merge(t.snapshot())
        assert parent.counter("c") == 12
        assert parent.span_count("s") == 2

    def test_empty_snapshot_falsy(self):
        assert not RunTrace().snapshot()
        t = RunTrace()
        t.incr("x")
        assert t.snapshot()


class TestSerialisation:
    def test_to_dict_schema(self):
        with RunTrace(label="demo") as t:
            incr("k", 2)
            with span("s"):
                pass
        doc = t.to_dict()
        assert doc["schema"] == SCHEMA
        assert doc["label"] == "demo"
        assert doc["seconds"] > 0
        assert doc["counters"] == {"k": 2}
        assert doc["spans"]["s"]["count"] == 1

    def test_to_json_round_trips(self):
        with RunTrace() as t:
            incr("k")
        parsed = json.loads(t.to_json())
        assert parsed["counters"] == {"k": 1}

    def test_snapshot_round_trips_as_trace_state(self):
        assert isinstance(TraceSnapshot(), TraceSnapshot)
