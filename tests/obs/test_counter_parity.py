"""The counter-parity contract: traces agree with result provenance.

The ``dp.*`` counters are only trustworthy if they reconcile *exactly*
-- bit-exactly, not approximately -- with the cell counts the results
themselves carry, for every backend and worker count the engine
supports.  These are the property tests the ISSUE acceptance names.
"""

import pytest

from repro.batch.engine import batch_distances, batch_lb_keogh
from repro.core.cdtw import cdtw
from repro.core.fastdtw import fastdtw
from repro.core.fastdtw_reference import fastdtw_reference
from repro.lowerbounds.cascade import LowerBoundCascade
from repro.obs import RunTrace, active_trace
from repro.search.nn_search import nearest_neighbor
from tests.conftest import make_series

BACKENDS = ("python", "numpy")
WORKER_COUNTS = (1, 2, 4)


def _numpy_or_skip(backend):
    if backend == "numpy":
        pytest.importorskip("numpy")


class TestBatchCounterParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("measure", ["dtw", "cdtw"])
    def test_dp_cells_match_batch_result(self, backend, workers, measure):
        _numpy_or_skip(backend)
        series = [make_series(24, s) for s in range(6)]
        kwargs = {"measure": measure, "backend": backend}
        if measure == "cdtw":
            kwargs["band"] = 3
        with RunTrace() as trace:
            result = batch_distances(series, workers=workers, **kwargs)
        assert trace.counter("dp.cells") == result.cells
        assert trace.counter("dp.calls") == len(result.pairs)
        assert trace.counter("batch.pairs") == len(result.pairs)
        assert trace.counter("batch.jobs") == 1
        if workers > 1:
            assert trace.counter("pool.chunks") > 0

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_fastdtw_measure_parity(self, workers):
        series = [make_series(32, s + 10) for s in range(5)]
        with RunTrace() as trace:
            result = batch_distances(
                series, measure="fastdtw", radius=1, workers=workers
            )
        assert trace.counter("dp.cells") == result.cells

    @pytest.mark.parametrize("workers", (1, 2))
    def test_fastdtw_reference_measure_parity(self, workers):
        series = [make_series(32, s + 20) for s in range(4)]
        with RunTrace() as trace:
            result = batch_distances(
                series, measure="fastdtw_reference", radius=1,
                workers=workers,
            )
        assert trace.counter("dp.cells") == result.cells

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_counters_backend_invariant(self, backend):
        # the numpy kernels must report the same dp.* numbers as the
        # pure engine (distances/cells are already bit-identical)
        _numpy_or_skip(backend)
        series = [make_series(24, s) for s in range(5)]
        with RunTrace() as trace:
            batch_distances(series, measure="cdtw", band=3,
                            backend=backend)
        with RunTrace() as reference:
            batch_distances(series, measure="cdtw", band=3,
                            backend="python")
        assert (
            trace.counter("dp.cells") == reference.counter("dp.cells")
        )
        assert (
            trace.counter("dp.calls") == reference.counter("dp.calls")
        )


class TestExecutorCounterParity:
    """The warm-pool path reconciles exactly like the one-shot path."""

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_cold_and_warm_parity(self, start_method):
        import multiprocessing

        from repro.batch import BatchExecutor

        if start_method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"{start_method} unavailable")
        series = [make_series(24, s) for s in range(6)]
        with BatchExecutor(workers=2, cap=None,
                           start_method=start_method) as exe:
            for call in ("cold", "warm"):
                with RunTrace() as trace:
                    result = batch_distances(
                        series, measure="cdtw", band=3, executor=exe
                    )
                assert trace.counter("dp.cells") == result.cells, call
                assert trace.counter("dp.calls") == len(result.pairs)
                # the executor's scheduling counters mirror the pool's
                assert (
                    trace.counter("sched.chunks")
                    == trace.counter("pool.chunks")
                )
            assert trace.counter("pool.reused") == 1
            assert trace.counter("shm.datasets") == 0  # shipped cold

    def test_shipping_counters_recorded(self):
        from repro.batch import BatchExecutor

        series = [make_series(24, s) for s in range(5)]
        with RunTrace() as trace:
            with BatchExecutor(workers=2, cap=None) as exe:
                batch_distances(series, measure="cdtw", band=3,
                                executor=exe)
        assert trace.counter("pool.created") == 1
        if exe.use_shm:
            assert trace.counter("shm.datasets") == 1
            assert trace.counter("shm.bytes") == exe.stats.bytes_shipped
        assert trace.counter("sched.chunks") == exe.stats.chunks
        assert trace.counter("sched.steals") == exe.stats.steals

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_executor_backend_parity(self, backend):
        _numpy_or_skip(backend)
        from repro.batch import BatchExecutor

        series = [make_series(24, s) for s in range(6)]
        with BatchExecutor(workers=2, cap=None) as exe:
            with RunTrace() as trace:
                result = batch_distances(
                    series, measure="cdtw", band=3, backend=backend,
                    executor=exe,
                )
        assert trace.counter("dp.cells") == result.cells


class TestRuntimeCounterParity:
    """The runtime=-constructed column reconciles like every other.

    The unified execution context must be counter-transparent: a
    batch configured through a ``Runtime`` value reports the same
    ``dp.*`` numbers as the engine-native kwargs, and an activated
    runtime's process default reaches traced consumers unchanged.
    """

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_runtime_constructed_batch_parity(self, backend, workers):
        _numpy_or_skip(backend)
        from repro.runtime import Runtime

        series = [make_series(24, s) for s in range(6)]
        rt = Runtime(workers=workers, backend=backend)
        with RunTrace() as trace:
            result = batch_distances(
                series, measure="cdtw", band=3, runtime=rt
            )
        assert trace.counter("dp.cells") == result.cells
        assert trace.counter("dp.calls") == len(result.pairs)
        assert trace.counter("batch.pairs") == len(result.pairs)
        with RunTrace() as native:
            batch_distances(
                series, measure="cdtw", band=3, workers=workers,
                backend=backend,
            )
        assert trace.counter("dp.cells") == native.counter("dp.cells")
        assert trace.counter("dp.calls") == native.counter("dp.calls")

    def test_activated_runtime_default_parity(self):
        from repro.runtime import Runtime, use_runtime

        series = [make_series(24, s) for s in range(6)]
        with use_runtime(Runtime(workers=2)):
            with RunTrace() as trace:
                result = batch_distances(series, measure="cdtw", band=3)
        assert trace.counter("dp.cells") == result.cells
        assert trace.counter("pool.chunks") > 0

    def test_runtime_consumer_parity(self):
        from repro.core.matrix import distance_matrix
        from repro.runtime import Runtime

        series = [make_series(24, s) for s in range(6)]
        with RunTrace() as trace:
            matrix = distance_matrix(
                series, measure="cdtw", band=3,
                runtime=Runtime(workers=2),
            )
        assert trace.counter("dp.cells") == matrix.cells


class TestSingleCallParity:
    def test_fastdtw_cells(self):
        x, y = make_series(128, 1), make_series(128, 2)
        with RunTrace() as trace:
            result = fastdtw(x, y, radius=2, keep_levels=True)
        assert trace.counter("dp.cells") == result.cells
        assert trace.counter("fastdtw.levels") == len(result.levels)
        assert trace.counter("fastdtw.calls") == 1

    def test_fastdtw_reference_cells(self):
        x, y = make_series(64, 3), make_series(64, 4)
        with RunTrace() as trace:
            result = fastdtw_reference(x, y, radius=1)
        assert trace.counter("dp.cells") == result.cells

    def test_cdtw_cells(self):
        x, y = make_series(48, 5), make_series(48, 6)
        with RunTrace() as trace:
            result = cdtw(x, y, band=4)
        assert trace.counter("dp.cells") == result.cells
        assert trace.counter("dp.calls") == 1

    def test_cascade_counters_match_stats(self):
        query = make_series(48, 7)
        candidates = [make_series(48, s + 30) for s in range(8)]
        cascade = LowerBoundCascade(query, band=4)
        with RunTrace() as trace:
            cascade.nearest(candidates)
        stats = cascade.stats
        assert trace.counter("lb.candidates") == stats.candidates
        assert trace.counter("lb.pruned_kim") == stats.pruned_kim
        assert trace.counter("lb.pruned_keogh") == stats.pruned_keogh
        assert (
            trace.counter("lb.pruned_keogh_reversed")
            == stats.pruned_keogh_reversed
        )
        assert trace.counter("lb.abandoned_dtw") == stats.abandoned_dtw
        assert trace.counter("lb.full_dtw") == stats.full_dtw
        assert trace.counter("dp.cells") == stats.cells

    def test_nn_search_cells(self):
        query = make_series(40, 8)
        candidates = [make_series(40, s + 50) for s in range(6)]
        with RunTrace() as trace:
            result = nearest_neighbor(
                query, candidates, strategy="cdtw", band=4
            )
        assert trace.counter("dp.cells") == result.cells
        assert trace.counter("nn.queries") == 1
        assert trace.counter("nn.candidates") == len(candidates)


class TestDisabledTraceUntouched:
    def test_no_trace_no_counters(self):
        # computations outside any RunTrace must leave a subsequently
        # opened trace empty -- nothing buffers or leaks
        x, y = make_series(48, 9), make_series(48, 10)
        fastdtw(x, y, radius=1)
        cdtw(x, y, band=4)
        batch_distances([x, y], measure="cdtw", band=4)
        with RunTrace() as trace:
            pass
        assert trace.counters() == {}
        assert trace.spans() == {}

    def test_results_identical_with_and_without_trace(self):
        x, y = make_series(64, 11), make_series(64, 12)
        plain = fastdtw(x, y, radius=1)
        with RunTrace():
            traced = fastdtw(x, y, radius=1)
        assert plain.distance == traced.distance
        assert plain.cells == traced.cells
        assert plain.path.cells == traced.path.cells

    def test_worker_initializer_clears_inherited_trace(self):
        # fork-started workers inherit the parent's _ACTIVE; the
        # initializer must reset it, and the parent's trace must end
        # up with exactly the merged worker counts (no double counting)
        series = [make_series(24, s) for s in range(6)]
        plain = batch_distances(series, measure="cdtw", band=3, workers=2)
        with RunTrace() as trace:
            traced = batch_distances(
                series, measure="cdtw", band=3, workers=2
            )
        assert traced.distances == plain.distances
        assert trace.counter("dp.cells") == traced.cells
        assert active_trace() is None


class TestChunkCounterParity:
    """The stacked chunk-kernel path: new ``chunk.*`` counters plus
    unchanged ``dp.*`` parity across workers and executor regimes."""

    def ragged(self):
        return [make_series(n, s) for s, n in enumerate(
            (24, 24, 17, 17, 24, 17, 24, 17)
        )]

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_chunk_counters_and_dp_parity(self, workers):
        pytest.importorskip("numpy")
        series = self.ragged()
        with RunTrace() as trace:
            result = batch_distances(
                series, measure="cdtw", window=0.1,
                backend="numpy", workers=workers,
            )
        # every pair passes through exactly one stacked kernel call
        assert trace.counter("chunk.pairs") == len(result.pairs)
        assert trace.counter("chunk.groups") >= 1
        assert trace.counter("chunk.calls") == trace.counter(
            "chunk.groups"
        )
        assert trace.counter("chunk.pad_rows") >= 0
        # dp.* parity is untouched by the chunked route
        assert trace.counter("dp.cells") == result.cells
        assert trace.counter("dp.calls") == len(result.pairs)
        with RunTrace() as py_trace:
            batch_distances(
                series, measure="cdtw", window=0.1, workers=workers
            )
        assert trace.counter("dp.cells") == py_trace.counter("dp.cells")
        assert trace.counter("dp.calls") == py_trace.counter("dp.calls")

    def test_per_pair_python_path_has_no_chunk_counters(self):
        series = self.ragged()
        with RunTrace() as trace:
            batch_distances(series, measure="cdtw", window=0.1)
        assert trace.counter("chunk.calls") == 0
        assert trace.counter("chunk.groups") == 0

    @pytest.mark.parametrize("workers", (1, 2))
    def test_executor_chunk_counters(self, workers):
        pytest.importorskip("numpy")
        from repro.batch.executor import BatchExecutor

        series = self.ragged()
        exe = BatchExecutor(workers=workers, cap=None)
        try:
            batch_distances(
                series, measure="cdtw", window=0.1,
                backend="numpy", executor=exe,
            )  # untimed warm-up: attach dataset, build contexts
            with RunTrace() as trace:
                result = batch_distances(
                    series, measure="cdtw", window=0.1,
                    backend="numpy", executor=exe,
                )
        finally:
            exe.shutdown()
        assert trace.counter("chunk.pairs") == len(result.pairs)
        assert trace.counter("chunk.groups") >= 1
        assert trace.counter("dp.cells") == result.cells
        assert trace.counter("dp.calls") == len(result.pairs)

    @pytest.mark.parametrize("workers", (1, 2))
    def test_lb_chunk_counters(self, workers):
        pytest.importorskip("numpy")
        series = [make_series(20, s) for s in range(6)]
        with RunTrace() as trace:
            result = batch_lb_keogh(
                series, band=2, backend="numpy", workers=workers
            )
        assert trace.counter("chunk.pairs") == len(result.pairs)
        assert trace.counter("chunk.groups") >= 1
        assert trace.counter("lb.invocations") == len(result.pairs)


class TestCascadeChunkPrefilterParity:
    """The cascade's chunked prefilter replays the scalar decisions."""

    def workload(self):
        query = make_series(40, 70)
        candidates = [make_series(40, s + 71) for s in range(12)]
        return query, candidates

    def test_stats_identical_across_backends(self):
        pytest.importorskip("numpy")
        from repro.runtime import Runtime

        query, candidates = self.workload()
        outcomes = {}
        for backend in BACKENDS:
            cascade = LowerBoundCascade(
                query, band=3, use_reversed=False,
                runtime=Runtime(backend=backend),
            )
            idx, dist = cascade.nearest(candidates)
            outcomes[backend] = (idx, float(dist), cascade.stats)
        assert outcomes["python"] == outcomes["numpy"]

    def test_numpy_trace_reconciles_with_stats(self):
        pytest.importorskip("numpy")
        from repro.runtime import Runtime

        query, candidates = self.workload()
        cascade = LowerBoundCascade(
            query, band=3, use_reversed=False,
            runtime=Runtime(backend="numpy"),
        )
        with RunTrace() as trace:
            cascade.nearest(candidates)
        stats = cascade.stats
        assert trace.counter("lb.candidates") == stats.candidates
        assert trace.counter("lb.pruned_kim") == stats.pruned_kim
        assert trace.counter("lb.pruned_keogh") == stats.pruned_keogh
        assert trace.counter("lb.abandoned_dtw") == stats.abandoned_dtw
        assert trace.counter("lb.full_dtw") == stats.full_dtw
        assert trace.counter("dp.cells") == stats.cells
        # one stacked kernel call each for the kim and keogh bounds
        assert trace.counter("lb.chunk_prefilter") == 2
        # lb.invocations counts logical stage evaluations in replay
        # order: one kim per candidate plus one keogh per kim survivor
        expected = stats.candidates + (
            stats.candidates - stats.pruned_kim
        )
        assert trace.counter("lb.invocations") == expected

    def test_python_prefilter_is_scalar_and_uncounted(self):
        query, candidates = self.workload()
        cascade = LowerBoundCascade(query, band=3, use_reversed=False)
        kims, keoghs = cascade.prefilter_bounds(candidates)
        assert len(kims) == len(keoghs) == len(candidates)
        with RunTrace() as trace:
            cascade.prefilter_bounds(candidates)
        assert trace.counter("lb.chunk_prefilter") == 0
