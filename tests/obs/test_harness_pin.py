"""The paper harness stays un-instrumented.

The paper's timings are the repository's reason to exist; a span timer
or counter increment inside the measured loop would perturb exactly
what is being measured.  The observability layer therefore stops at
the harness boundary: nothing in ``repro.timing`` or
``repro.experiments`` may import or name the :mod:`repro.obs` hooks --
with one clearly labelled exception, ``timing/profile_fastdtw.py``,
whose entire purpose is to observe (it opens a private trace around
the production FastDTW and reads the spans back; the wall-clock
harness never calls it inside a timed region).

This mirrors ``tests/timing/test_backend_pin.py``: the rule is
enforced by scanning the harness sources for the hook tokens, so an
instrumented import cannot sneak in silently.
"""

import pathlib

import pytest

import repro.experiments
import repro.timing

FORBIDDEN_TOKENS = (
    "repro.obs",
    "from ..obs",
    "from .obs",
    "import obs",
    "RunTrace",
    "active_trace",
    "_obs.",
    "record_dp",
)

#: The one module allowed to use the observability layer: the phase
#: profiler is *built on* the span hooks by design and is never called
#: inside a timed region of the wall-clock harness.
EXEMPT = {"profile_fastdtw.py"}


def _sources(package):
    root = pathlib.Path(package.__file__).parent
    return sorted(root.glob("*.py"))


class TestHarnessStaysUninstrumented:
    @pytest.mark.parametrize(
        "package", [repro.experiments, repro.timing],
        ids=["experiments", "timing"],
    )
    def test_no_obs_references(self, package):
        offenders = []
        for path in _sources(package):
            if path.name in EXEMPT:
                continue
            text = path.read_text()
            for token in FORBIDDEN_TOKENS:
                if token in text:
                    offenders.append(f"{path.name}: {token}")
        assert not offenders, offenders

    def test_scan_covers_the_harness_modules(self):
        names = {p.name for p in _sources(repro.timing)}
        assert "runner.py" in names
        assert "profile_fastdtw.py" in names

    def test_exemption_is_minimal(self):
        # the exemption list must not silently grow
        assert EXEMPT == {"profile_fastdtw.py"}


class TestRunnerBehaviourUnderTrace:
    def test_timing_runner_records_nothing(self):
        # belt and braces for the source scan: actually run the
        # harness inside an active trace and assert it stays silent
        # on the instrumentation side... except through the engine it
        # times, which is outside the harness's own sources.  The
        # harness itself must add no counters of its own.
        from repro.obs import RunTrace
        from repro.timing.runner import batch_pairwise_experiment
        from tests.conftest import make_series

        series = [make_series(16, s) for s in range(4)]
        with RunTrace() as trace:
            batch_pairwise_experiment(series, band=2)
        harness_counters = [
            name for name in trace.counters()
            if name.startswith(("timing.", "experiment."))
        ]
        assert harness_counters == []
