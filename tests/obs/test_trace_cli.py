"""Tests for ``python -m repro trace`` (and its --overhead-check mode)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.workload == "fastdtw"
        assert args.length == 256
        assert args.count == 8
        assert args.workers == 1
        assert args.out == "-"
        assert args.overhead_check is False

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "--workload", "sorting"])


class TestTraceCommand:
    def test_fastdtw_document_reconciles(self, capsys):
        assert main([
            "trace", "--workload", "fastdtw", "--length", "64",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.obs/trace/v1"
        assert doc["ok"] is True
        rec = doc["reconciliation"]
        assert rec["dp_cells"]["match"] is True
        assert rec["levels"]["match"] is True
        assert (
            doc["counters"]["dp.cells"] == rec["dp_cells"]["expected"]
        )
        assert "fastdtw/dp" in doc["spans"]

    def test_batch_document_reconciles_parallel(self, capsys):
        assert main([
            "trace", "--workload", "batch", "--length", "32",
            "--count", "5", "--workers", "2",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["counters"]["batch.pairs"] == 10
        assert doc["counters"]["pool.chunks"] > 0

    def test_nn_document_reconciles(self, capsys):
        assert main([
            "trace", "--workload", "nn", "--length", "32",
            "--count", "6",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["counters"]["nn.queries"] == 1

    def test_writes_file(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main([
            "trace", "--workload", "fastdtw", "--length", "32",
            "--out", str(out),
        ]) == 0
        doc = json.loads(out.read_text())
        assert doc["ok"] is True
        assert str(out) in capsys.readouterr().out

    def test_deterministic_given_seed(self, capsys):
        main(["trace", "--length", "64", "--seed", "3"])
        first = json.loads(capsys.readouterr().out)
        main(["trace", "--length", "64", "--seed", "3"])
        second = json.loads(capsys.readouterr().out)
        assert first["counters"] == second["counters"]
        assert first["workload"] == second["workload"]

    def test_bad_length_exits_2(self, capsys):
        assert main(["trace", "--length", "1"]) == 2
        assert "error" in capsys.readouterr().err


class TestOverheadCheck:
    def test_reports_and_passes(self, capsys):
        # the CI guard: hooks must be ~free when no trace is active.
        # Use the same entry point CI calls.
        code = main(["trace", "--overhead-check"])
        out = capsys.readouterr().out
        assert "trace overhead" in out
        assert code in (0, 1)  # timing-dependent; format is the contract

    def test_writes_json(self, tmp_path, capsys):
        out = tmp_path / "overhead.json"
        main(["trace", "--overhead-check", "--out", str(out)])
        doc = json.loads(out.read_text())
        assert doc["check"] == "trace-overhead"
        assert {"baseline_s", "hooked_s", "overhead", "ok"} <= set(doc)
