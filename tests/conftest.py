"""Shared test fixtures and helpers."""

from __future__ import annotations

import random

import pytest


def make_series(n: int, seed: int, lo: float = -3.0, hi: float = 3.0):
    """Deterministic random series for table-driven tests."""
    rng = random.Random(seed)
    return [rng.uniform(lo, hi) for _ in range(n)]


def make_vectors(n: int, dim: int, seed: int,
                 lo: float = -3.0, hi: float = 3.0):
    """Deterministic random multivariate series: n samples of dim."""
    rng = random.Random(seed)
    return [
        tuple(rng.uniform(lo, hi) for _ in range(dim)) for _ in range(n)
    ]


@pytest.fixture
def rng():
    """A fresh deterministic RNG per test."""
    return random.Random(0)


@pytest.fixture
def small_pair():
    """A small fixed pair with known hand-computed DTW distances."""
    x = [0.0, 1.0, 2.0]
    y = [0.0, 2.0, 2.0]
    return x, y
