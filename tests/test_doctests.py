"""Run the executable examples embedded in docstrings.

Public-API docstrings carry usage examples; running them keeps the
documentation honest as the code evolves.  Modules are resolved via
importlib because several package ``__init__`` files re-export
functions whose names shadow their defining submodules.
"""

import doctest
import importlib

import pytest

MODULE_NAMES = [
    "repro.advisor.cases",
    "repro.batch.engine",
    "repro.core.cost",
    "repro.core.error",
    "repro.core.matrix",
    "repro.core.measures",
    "repro.core.multivariate",
    "repro.core.paa",
    "repro.core.variants",
    "repro.datasets.random_walk",
    "repro.datasets.ucr_io",
    "repro.preprocess.normalize",
    "repro.preprocess.sliding",
    "repro.timing.cells",
    "repro.timing.timer",
    "repro.viz.render",
]


@pytest.mark.parametrize("name", MODULE_NAMES)
def test_module_doctests(name):
    module = importlib.import_module(name)
    failures, _tried = doctest.testmod(
        module, verbose=False, raise_on_error=False
    )
    assert failures == 0, f"{failures} doctest failures in {name}"


def test_doctests_actually_present():
    # guard against the suite silently passing because examples vanished
    total = 0
    finder = doctest.DocTestFinder()
    for name in MODULE_NAMES:
        module = importlib.import_module(name)
        total += sum(len(t.examples) for t in finder.find(module))
    assert total >= 15
