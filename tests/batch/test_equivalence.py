"""Serial-vs-parallel equivalence: the batch engine's core contract.

The engine promises that ``workers`` is an execution detail, never a
semantic one: for any series set, any measure and any worker count,
the batch returns *identical* distances (exact ``==``, not
approximate), identical per-pair and total DP-cell counts, and
identical orderings/tie-breaks.  These tests fuzz that contract with
seeded random series sets across all five measures and
``workers in {1, 2, 4}``.
"""

from __future__ import annotations

import random

import pytest

from repro.batch import all_pairs, argmin_first, batch_distances
from repro.core.measures import MEASURES, ND_MEASURES

WORKER_COUNTS = (1, 2, 4)

# Measure name -> engine kwargs, covering every registry entry.
MEASURE_CONFIGS = {
    "dtw": {},
    "cdtw": {"window": 0.2},
    "fastdtw": {"radius": 1},
    "fastdtw_reference": {"radius": 1},
    "euclidean": {},
    "rle_dtw": {},
    "rle_cdtw": {"window": 0.2},
    "dtw_d": {},
    "cdtw_d": {"window": 0.2},
    "dtw_i": {},
    "cdtw_i": {"window": 0.2},
}


def fuzz_series(seed: int, count: int, length: int):
    """Seeded random series set, values in a DTW-typical range."""
    rng = random.Random(seed)
    return [
        [rng.uniform(-3.0, 3.0) for _ in range(length)]
        for _ in range(count)
    ]


def fuzz_vector_series(seed: int, count: int, length: int, dims: int = 3):
    """Seeded random multivariate series set, (length, dims) samples."""
    rng = random.Random(seed)
    return [
        [
            tuple(rng.uniform(-3.0, 3.0) for _ in range(dims))
            for _ in range(length)
        ]
        for _ in range(count)
    ]


def series_for(measure: str, seed: int, count: int, length: int):
    """Fixture data matched to the measure's dimensionality."""
    if measure in ND_MEASURES:
        return fuzz_vector_series(seed, count, length)
    return fuzz_series(seed, count, length)


def test_every_measure_is_configured():
    assert set(MEASURE_CONFIGS) == set(MEASURES)


class TestDistancesAndCells:
    """Identical distances and cell totals for workers in {1, 2, 4}."""

    @pytest.mark.parametrize("measure", MEASURES)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_serial_parallel_identical(self, measure, seed):
        series = series_for(measure, seed, count=7, length=30 + 3 * seed)
        kwargs = MEASURE_CONFIGS[measure]
        results = [
            batch_distances(series, measure=measure, workers=w, **kwargs)
            for w in WORKER_COUNTS
        ]
        serial = results[0]
        assert serial.workers == 1
        assert serial.pairs == tuple(all_pairs(len(series)))
        for result in results[1:]:
            # exact equality -- the parallel path must run the very
            # same per-pair computation, not a float-close variant
            assert result.distances == serial.distances
            assert result.cells_per_pair == serial.cells_per_pair
            assert result.cells == serial.cells
            assert result.pairs == serial.pairs

    @pytest.mark.parametrize("measure", ["cdtw", "fastdtw"])
    def test_chunksize_never_changes_results(self, measure):
        series = fuzz_series(3, count=6, length=24)
        kwargs = MEASURE_CONFIGS[measure]
        serial = batch_distances(series, measure=measure, **kwargs)
        for chunksize in (1, 2, 7, 100):
            result = batch_distances(
                series, measure=measure, workers=2,
                chunksize=chunksize, **kwargs,
            )
            assert result.distances == serial.distances
            assert result.cells == serial.cells

    def test_explicit_pair_order_is_preserved(self):
        series = fuzz_series(4, count=5, length=20)
        # a deliberately scrambled, duplicated pair list
        pairs = [(3, 1), (0, 4), (2, 2), (0, 4), (1, 0)]
        serial = batch_distances(
            series, pairs=pairs, measure="cdtw", window=0.25
        )
        parallel = batch_distances(
            series, pairs=pairs, measure="cdtw", window=0.25,
            workers=4, chunksize=1,
        )
        assert serial.pairs == tuple(pairs) == parallel.pairs
        assert serial.distances == parallel.distances
        assert serial.distances[1] == serial.distances[3]  # duplicate pair
        assert serial.distances[2] == 0.0  # self-pair

    def test_normalized_batches_agree(self):
        series = fuzz_series(5, count=6, length=25)
        serial = batch_distances(
            series, measure="euclidean", normalize=True
        )
        parallel = batch_distances(
            series, measure="euclidean", normalize=True, workers=4
        )
        assert serial.distances == parallel.distances


class TestStartMethodAndExecutorColumns:
    """The same contract across the remaining execution columns.

    ``start_method="spawn"`` (fresh interpreters, everything
    re-pickled) and a warm :class:`~repro.batch.BatchExecutor`
    (persistent pool + shared-memory datasets, cold then warm call)
    are execution details exactly like ``workers``: every column must
    reproduce the serial distances and cell counts bit for bit.
    """

    @pytest.mark.parametrize("measure", MEASURES)
    def test_spawn_column_identical(self, measure):
        series = series_for(measure, 21, count=5, length=24)
        kwargs = MEASURE_CONFIGS[measure]
        serial = batch_distances(series, measure=measure, **kwargs)
        spawned = batch_distances(
            series, measure=measure, workers=2,
            start_method="spawn", **kwargs,
        )
        assert spawned.distances == serial.distances
        assert spawned.cells_per_pair == serial.cells_per_pair
        assert spawned.cells == serial.cells

    @pytest.mark.parametrize("measure", MEASURES)
    def test_executor_cold_and_warm_identical(self, measure):
        from repro.batch import BatchExecutor

        series = series_for(measure, 22, count=6, length=26)
        kwargs = MEASURE_CONFIGS[measure]
        serial = batch_distances(series, measure=measure, **kwargs)
        with BatchExecutor(workers=2, cap=None) as exe:
            cold = batch_distances(series, measure=measure,
                                   executor=exe, **kwargs)
            warm = batch_distances(series, measure=measure,
                                   executor=exe, **kwargs)
        for result in (cold, warm):
            assert result.distances == serial.distances
            assert result.cells_per_pair == serial.cells_per_pair
            assert result.cells == serial.cells

    def test_executor_numpy_column_identical(self):
        pytest.importorskip("numpy")
        from repro.batch import BatchExecutor

        series = fuzz_series(23, count=6, length=26)
        serial = batch_distances(series, measure="cdtw", window=0.2)
        with BatchExecutor(workers=2, cap=None) as exe:
            for _ in range(2):  # cold then warm
                result = batch_distances(
                    series, measure="cdtw", window=0.2,
                    backend="numpy", executor=exe,
                )
                assert result.distances == serial.distances
                assert result.cells == serial.cells


class TestTieBreaking:
    """First-wins tie-breaks survive parallel execution."""

    def tied_series(self, seed: int, nd: bool = False):
        """A query plus candidates containing exact duplicates."""
        rng = random.Random(seed)
        if nd:
            def draw():
                return [
                    tuple(rng.uniform(-2, 2) for _ in range(3))
                    for _ in range(20)
                ]
        else:
            def draw():
                return [rng.uniform(-2, 2) for _ in range(20)]
        query = draw()
        unique = [draw() for _ in range(3)]
        # candidates 1 and 3 are identical, as are 2 and 4: every
        # distance value appears at least twice
        candidates = [
            unique[0], unique[1], unique[0], unique[1], unique[2]
        ]
        return query, candidates

    @pytest.mark.parametrize("measure", MEASURES)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_argmin_prefers_first_duplicate(self, measure, workers):
        query, candidates = self.tied_series(
            seed=11, nd=measure in ND_MEASURES
        )
        kwargs = MEASURE_CONFIGS[measure]
        series = [query] + candidates
        pairs = [(0, i + 1) for i in range(len(candidates))]
        result = batch_distances(
            series, pairs=pairs, measure=measure, workers=workers,
            chunksize=1, **kwargs,
        )
        idx, best = argmin_first(result.distances)
        # ties exist by construction; the winner must be the first
        # index attaining the minimum, exactly like the serial scans
        assert idx == min(
            i for i, d in enumerate(result.distances) if d == best
        )
        if result.distances.count(best) > 1:
            # a duplicated winner must resolve to its first copy
            assert idx in (0, 1)

    def test_identical_series_all_zero(self):
        base = [float(v) for v in range(12)]
        series = [list(base) for _ in range(4)]
        for workers in WORKER_COUNTS:
            result = batch_distances(
                series, measure="dtw", workers=workers
            )
            assert set(result.distances) == {0.0}


class TestDegenerateBatches:
    def test_empty_pair_list(self):
        series = fuzz_series(0, count=3, length=10)
        for workers in WORKER_COUNTS:
            result = batch_distances(series, pairs=[], workers=workers)
            assert result.distances == ()
            assert result.cells == 0
            assert result.workers == 1  # nothing to fan out

    def test_single_pair(self):
        series = fuzz_series(1, count=2, length=15)
        serial = batch_distances(series, measure="dtw")
        parallel = batch_distances(series, measure="dtw", workers=4)
        assert serial.distances == parallel.distances
        assert len(serial) == 1


class TestNumpyBackendColumns:
    """The same contract with ``backend="numpy"`` in the grid.

    The numpy backend adds a second execution detail that must stay
    semantics-free: distances and cells match the python backend
    exactly (not approximately), for every worker count, with and
    without the chunk-level vectorised path.
    """

    @pytest.mark.parametrize("measure", ["dtw", "cdtw"])
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_matches_python_backend(self, measure, workers):
        series = fuzz_series(11, count=7, length=32)
        kwargs = MEASURE_CONFIGS[measure]
        reference = batch_distances(series, measure=measure, **kwargs)
        result = batch_distances(
            series, measure=measure, workers=workers,
            backend="numpy", **kwargs,
        )
        assert result.distances == reference.distances
        assert result.cells_per_pair == reference.cells_per_pair
        assert result.cells == reference.cells

    def test_ragged_series_group_by_shape(self):
        # unequal lengths force the vectorised path to group pairs by
        # shape; order and values must still match the python backend
        rng = random.Random(12)
        series = [
            [rng.uniform(-3.0, 3.0) for _ in range(length)]
            for length in (20, 28, 20, 24, 28, 20)
        ]
        reference = batch_distances(series, measure="dtw")
        result = batch_distances(series, measure="dtw", backend="numpy")
        assert result.distances == reference.distances
        assert result.cells_per_pair == reference.cells_per_pair

    def test_return_paths_identical(self):
        # paths disable the chunk vectorisation; the per-pair numpy
        # kernel must still recover bit-identical paths
        series = fuzz_series(13, count=5, length=26)
        reference = batch_distances(
            series, measure="cdtw", window=0.2, return_paths=True
        )
        result = batch_distances(
            series, measure="cdtw", window=0.2, return_paths=True,
            backend="numpy",
        )
        assert result.distances == reference.distances
        assert result.paths == reference.paths

    def test_normalized_batches_agree(self):
        series = fuzz_series(14, count=6, length=25)
        reference = batch_distances(
            series, measure="cdtw", window=0.3, normalize=True
        )
        result = batch_distances(
            series, measure="cdtw", window=0.3, normalize=True,
            backend="numpy",
        )
        assert result.distances == reference.distances
        assert result.cells == reference.cells

    def test_callable_cost_rejected_with_guidance(self):
        series = fuzz_series(15, count=3, length=12)
        with pytest.raises(ValueError, match="backend='python'"):
            batch_distances(
                series, measure="dtw", backend="numpy",
                cost=lambda a, b: abs(a - b),
            )

    def test_unknown_backend_rejected(self):
        series = fuzz_series(16, count=3, length=12)
        with pytest.raises(ValueError, match="unknown backend"):
            batch_distances(series, measure="dtw", backend="rust")

    def test_lb_keogh_backend_bounds_valid_and_worker_invariant(self):
        from repro.batch import batch_lb_keogh
        from repro.core.cdtw import cdtw

        series = fuzz_series(17, count=6, length=30)
        band = 3
        python = batch_lb_keogh(series, band=band)
        serial = batch_lb_keogh(series, band=band, backend="numpy")
        pooled = batch_lb_keogh(
            series, band=band, backend="numpy", workers=2
        )
        # worker-invariance is exact within the backend
        assert serial.distances == pooled.distances
        # the chunk kernel folds gap costs in the scalar order, so the
        # numpy bounds are bit-identical to the scalar path -- and of
        # course remain valid lower bounds of the true distance
        assert serial.distances == python.distances
        for (i, j), np_bound in zip(serial.pairs, serial.distances):
            true_d = cdtw(series[i], series[j], band=band).distance
            assert np_bound <= true_d + 1e-9


class TestChunkKernelPath:
    """The stacked chunk-kernel route vs per-pair python dispatch.

    ``backend="numpy"`` distance batches collapse chunks into
    ``dtw_chunk`` calls grouped by ``(n, m, band)``; everything --
    distances, per-pair cells, order -- must stay bit-identical to the
    per-pair python path for every worker count and executor regime.
    """

    def ragged_series(self, seed):
        rng = random.Random(seed)
        lengths = [rng.choice((18, 24, 31)) for _ in range(8)]
        return [
            [rng.uniform(-3.0, 3.0) for _ in range(n)] for n in lengths
        ]

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("measure,kwargs", [
        ("dtw", {}),
        ("cdtw", {"window": 0.1}),
        ("cdtw", {"band": 4}),
    ])
    def test_ragged_chunked_matches_python(self, workers, measure,
                                           kwargs):
        series = self.ragged_series(21)
        reference = batch_distances(series, measure=measure, **kwargs)
        chunked = batch_distances(
            series, measure=measure, backend="numpy", workers=workers,
            **kwargs,
        )
        assert chunked.distances == reference.distances
        assert chunked.cells_per_pair == reference.cells_per_pair

    @pytest.mark.parametrize("workers", (1, 2))
    def test_executor_chunked_matches_python(self, workers):
        from repro.batch.executor import BatchExecutor

        series = self.ragged_series(22)
        reference = batch_distances(series, measure="cdtw", window=0.1)
        exe = BatchExecutor(workers=workers, cap=None)
        try:
            # twice: the second call hits the warm dataset + contexts
            for _ in range(2):
                chunked = batch_distances(
                    series, measure="cdtw", window=0.1,
                    backend="numpy", executor=exe,
                )
                assert chunked.distances == reference.distances
                assert (
                    chunked.cells_per_pair == reference.cells_per_pair
                )
        finally:
            exe.shutdown()

    @pytest.mark.parametrize("workers", (1, 2))
    def test_normalized_chunked_matches_python(self, workers):
        series = self.ragged_series(23)
        reference = batch_distances(
            series, measure="cdtw", window=0.2, normalize=True
        )
        chunked = batch_distances(
            series, measure="cdtw", window=0.2, normalize=True,
            backend="numpy", workers=workers,
        )
        assert chunked.distances == reference.distances
        assert chunked.cells == reference.cells

    @pytest.mark.parametrize("workers", (1, 2))
    def test_lb_chunked_bit_equal_to_scalar(self, workers):
        from repro.batch import batch_lb_keogh
        from repro.lowerbounds.envelope import envelope
        from repro.lowerbounds.lb_keogh import lb_keogh

        series = fuzz_series(24, count=6, length=26)
        band = 2
        result = batch_lb_keogh(
            series, band=band, backend="numpy", workers=workers
        )
        for (i, j), bound in zip(result.pairs, result.distances):
            assert bound == lb_keogh(
                envelope(series[i], band), series[j]
            )
