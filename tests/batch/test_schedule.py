"""Cost-model chunk planning: the scheduler prices pairs correctly.

The planner's promise is twofold: (1) its per-pair cost predictions
for the exact measures are the *same* cell counts the DP ends up
reporting, and (2) regrouping pairs into cost-balanced chunks never
reorders them -- the flattened plan is always the input pair order.
Satellite regression: both ``chunksize="auto"`` (cost-model) and
``chunksize="legacy"`` (the old ~4-chunks-per-worker heuristic) stay
reachable and produce identical results.
"""

import pytest

from repro.batch import batch_distances
from repro.batch.engine import _resolve_chunks, default_chunksize
from repro.batch.schedule import (
    chunk_band,
    chunk_cost_summary,
    distance_pair_cost,
    group_chunk,
    lb_pair_cost,
    plan_chunks,
)
from tests.conftest import make_series


class TestDistancePairCost:
    def test_cdtw_cost_equals_reported_cells(self):
        # the planner's prediction and the engine's provenance must be
        # the same number, cell for cell -- same Window geometry
        series = [make_series(n, s) for s, n in enumerate((20, 31, 27))]
        lengths = tuple(len(s) for s in series)
        result = batch_distances(series, measure="cdtw", band=4)
        cost = distance_pair_cost(lengths, "cdtw", band=4)
        for (i, j), cells in zip(result.pairs, result.cells_per_pair):
            assert cost(i, j) == cells

    def test_cdtw_window_fraction_cost_matches(self):
        series = [make_series(n, s) for s, n in enumerate((24, 24, 36))]
        lengths = tuple(len(s) for s in series)
        result = batch_distances(series, measure="cdtw", window=0.15)
        cost = distance_pair_cost(lengths, "cdtw", window=0.15)
        for (i, j), cells in zip(result.pairs, result.cells_per_pair):
            assert cost(i, j) == cells

    def test_dtw_cost_equals_reported_cells(self):
        series = [make_series(n, s) for s, n in enumerate((18, 25, 22))]
        lengths = tuple(len(s) for s in series)
        result = batch_distances(series, measure="dtw")
        cost = distance_pair_cost(lengths, "dtw")
        for (i, j), cells in zip(result.pairs, result.cells_per_pair):
            assert cost(i, j) == cells

    def test_fastdtw_cost_uses_salvador_chan_model(self):
        from repro.timing.cells import fastdtw_cell_model

        lengths = (100, 200)
        cost = distance_pair_cost(lengths, "fastdtw", radius=2)
        assert cost(0, 1) == fastdtw_cell_model(200, 2)

    def test_euclidean_cost_is_linear(self):
        cost = distance_pair_cost((10, 30), "euclidean")
        assert cost(0, 1) == 10  # min(n, m)

    def test_costs_are_positive(self):
        cost = distance_pair_cost((1, 1), "euclidean")
        assert cost(0, 1) >= 1

    def test_lb_cost_is_candidate_length(self):
        cost = lb_pair_cost((10, 25, 40))
        assert cost(0, 2) == 40
        assert cost(2, 0) == 10


class TestRegistryCostModel:
    """The planner prices from the measure registry (no fallback)."""

    def test_unknown_measure_raises(self):
        # the old hardcoded branch silently fell back to a wrong
        # model; unknown measures must now fail loudly
        with pytest.raises(ValueError, match="unknown measure"):
            distance_pair_cost((10, 10), "edr")

    def test_rle_requires_run_counts(self):
        with pytest.raises(ValueError, match="run_counts"):
            distance_pair_cost((10, 10), "rle_dtw")

    def test_rle_cost_is_boundary_cells(self):
        cost = distance_pair_cost(
            (100, 80), "rle_dtw", run_counts=(5, 4)
        )
        assert cost(0, 1) == 5 * 80 + 4 * 100

    def test_rle_cost_equals_reported_cells(self):
        from repro.core.rle import RleSeries

        series = [
            [0.0] * 6 + [1.0] * 8 + [2.0] * 4,
            [1.0] * 9 + [0.5] * 9,
            [0.0] * 3 + [2.0] * 3 + [0.0] * 12,
        ]
        lengths = tuple(len(s) for s in series)
        run_counts = tuple(
            RleSeries.encode(s).run_count for s in series
        )
        result = batch_distances(series, measure="rle_dtw")
        cost = distance_pair_cost(
            lengths, "rle_dtw", run_counts=run_counts
        )
        for (i, j), cells in zip(result.pairs, result.cells_per_pair):
            assert cost(i, j) == cells


class TestPlanChunks:
    def test_flatten_preserves_input_order(self):
        pairs = [(i, j) for i in range(8) for j in range(i + 1, 8)]
        chunks = plan_chunks(pairs, lambda i, j: (i + j) ** 2, workers=3)
        assert [p for c in chunks for p in c] == pairs
        assert all(chunks)  # no empty chunks

    def test_expensive_pair_gets_small_chunk(self):
        # one pair costing more than the whole rest must sit alone (or
        # at the end of a chunk), never drag cheap pairs behind it
        pairs = [(0, 1), (0, 2), (0, 3), (0, 4)]
        costs = {(0, 1): 1, (0, 2): 1000, (0, 3): 1, (0, 4): 1}
        chunks = plan_chunks(
            pairs, lambda i, j: costs[(i, j)], workers=2
        )
        heavy = next(c for c in chunks if (0, 2) in c)
        assert heavy[-1] == (0, 2)  # the heavy pair closes its chunk

    def test_uniform_costs_match_legacy_granularity(self):
        # equal costs degrade to ~oversubscribe chunks per worker,
        # i.e. the legacy heuristic's shape
        pairs = [(0, i) for i in range(1, 33)]
        chunks = plan_chunks(pairs, lambda i, j: 10, workers=2)
        legacy = default_chunksize(len(pairs), 2)
        assert all(len(c) <= legacy for c in chunks)
        assert len(chunks) >= len(pairs) // legacy

    def test_balance_improves_on_blind_chunking(self):
        # skewed lengths: cost-model chunks are more level than
        # fixed-pair-count chunks of the same count
        lengths = tuple([400] * 2 + [20] * 10)
        pairs = [
            (i, j)
            for i in range(len(lengths))
            for j in range(i + 1, len(lengths))
        ]
        cost = distance_pair_cost(lengths, "dtw")
        planned = plan_chunks(pairs, cost, workers=4)
        size = max(1, len(pairs) // len(planned))
        blind = [
            pairs[k:k + size] for k in range(0, len(pairs), size)
        ]
        assert (
            chunk_cost_summary(planned, cost)["imbalance"]
            <= chunk_cost_summary(blind, cost)["imbalance"]
        )

    def test_empty_pairs(self):
        assert plan_chunks([], lambda i, j: 1, workers=2) == []

    def test_validation(self):
        with pytest.raises(ValueError, match="workers"):
            plan_chunks([(0, 1)], lambda i, j: 1, workers=0)
        with pytest.raises(ValueError, match="oversubscribe"):
            plan_chunks([(0, 1)], lambda i, j: 1, workers=1,
                        oversubscribe=0)

    def test_summary_of_empty_plan(self):
        summary = chunk_cost_summary([], lambda i, j: 1)
        assert summary["chunks"] == 0
        assert summary["imbalance"] == 1.0


class TestChunksizeOptions:
    """The engine's ``chunksize=`` argument: auto, legacy, int."""

    def test_auto_and_legacy_identical_results(self):
        series = [make_series(20 + 4 * s, s) for s in range(6)]
        serial = batch_distances(series, measure="cdtw", band=3)
        for chunksize in (None, "auto", "legacy", 2):
            result = batch_distances(
                series, measure="cdtw", band=3, workers=2,
                chunksize=chunksize,
            )
            assert result.distances == serial.distances
            assert result.cells == serial.cells

    def test_legacy_reaches_default_chunksize(self):
        tasks = [(0, i) for i in range(1, 20)]
        chunks = _resolve_chunks(tasks, 2, "legacy", lambda i, j: 1)
        size = default_chunksize(len(tasks), 2)
        assert all(len(c) == size for c in chunks[:-1])
        assert [p for c in chunks for p in c] == tasks

    def test_int_chunksize_fixed(self):
        tasks = [(0, i) for i in range(1, 8)]
        chunks = _resolve_chunks(tasks, 2, 3, lambda i, j: 1)
        assert [len(c) for c in chunks] == [3, 3, 1]

    def test_auto_routes_through_cost_model(self):
        # one huge pair among tiny ones: auto must isolate it, which a
        # pair-count heuristic cannot do
        tasks = [(0, 1), (0, 2), (1, 2), (1, 3)]
        costs = {(0, 1): 1, (0, 2): 1, (1, 2): 10_000, (1, 3): 1}
        chunks = _resolve_chunks(
            tasks, 2, "auto", lambda i, j: costs[(i, j)]
        )
        heavy = next(c for c in chunks if (1, 2) in c)
        assert heavy[-1] == (1, 2)

    def test_invalid_chunksize_rejected(self):
        with pytest.raises(ValueError, match="chunksize"):
            _resolve_chunks([(0, 1)], 2, 0, lambda i, j: 1)
        with pytest.raises(ValueError, match="chunksize"):
            _resolve_chunks([(0, 1)], 2, "bogus", lambda i, j: 1)
        series = [make_series(16, s) for s in range(3)]
        with pytest.raises(ValueError, match="chunksize"):
            batch_distances(series, workers=2, chunksize="bogus")


class TestChunkBand:
    def test_dtw_is_unconstrained(self):
        band_for = chunk_band("dtw")
        assert band_for(10, 20) is None

    def test_fraction_matches_window_geometry(self):
        # must agree with Window.from_fraction's ceil convention, or a
        # group's shared Window would disagree with the per-pair path
        from repro.core.window import Window

        band_for = chunk_band("cdtw", window=0.13)
        for n, m in ((10, 10), (17, 23), (100, 99), (3, 3)):
            expected = Window.from_fraction(n, m, 0.13)
            got = Window.band(n, m, band_for(n, m))
            assert got.ranges == expected.ranges

    def test_absolute_band_shape_independent(self):
        band_for = chunk_band("cdtw", band=5)
        assert band_for(10, 10) == band_for(500, 700) == 5

    def test_validation(self):
        with pytest.raises(ValueError, match="exactly one"):
            chunk_band("cdtw")
        with pytest.raises(ValueError, match="exactly one"):
            chunk_band("cdtw", window=0.1, band=3)
        with pytest.raises(ValueError, match="euclidean"):
            chunk_band("euclidean", band=3)


class TestGroupChunk:
    LENGTHS = (20, 20, 13, 13, 20, 8)

    def mixed_chunk(self):
        return [(0, 1), (2, 3), (0, 4), (5, 2), (4, 1), (3, 2), (0, 5)]

    def test_mixed_shapes_produce_multiple_groups(self):
        groups = group_chunk(self.mixed_chunk(), self.LENGTHS)
        assert len(groups) >= 2

    def test_no_pair_dropped_or_duplicated(self):
        chunk = self.mixed_chunk()
        groups = group_chunk(chunk, self.LENGTHS)
        positions = sorted(p for g in groups for p in g.positions)
        assert positions == list(range(len(chunk)))
        rebuilt = sorted(p for g in groups for p in g.pairs)
        assert rebuilt == sorted(chunk)

    def test_groups_are_shape_homogeneous(self):
        band_for = chunk_band("cdtw", window=0.1)
        for g in group_chunk(
            self.mixed_chunk(), self.LENGTHS, band_for=band_for
        ):
            for i, j in g.pairs:
                assert (self.LENGTHS[i], self.LENGTHS[j]) == (g.n, g.m)
                assert band_for(g.n, g.m) == g.band

    def test_first_occurrence_order_and_ascending_positions(self):
        chunk = self.mixed_chunk()
        groups = group_chunk(chunk, self.LENGTHS)
        firsts = [g.positions[0] for g in groups]
        assert firsts == sorted(firsts)
        for g in groups:
            assert list(g.positions) == sorted(g.positions)
            assert g.pairs == tuple(chunk[t] for t in g.positions)

    def test_band_splits_otherwise_equal_shapes(self):
        # same (n, m) but different resolved band -> different Window
        # -> must not share a group
        chunk = [(0, 1), (0, 1)]
        groups = group_chunk(
            chunk, (10, 10),
            band_for=lambda n, m, _c=iter((1, 2)): next(_c),
        )
        assert len(groups) == 2

    def test_cost_totals_preserved(self):
        # regrouping must not change the cost model's view of a chunk
        chunk = self.mixed_chunk()
        cost = distance_pair_cost(self.LENGTHS, "cdtw", window=0.1)
        groups = group_chunk(
            chunk, self.LENGTHS,
            band_for=chunk_band("cdtw", window=0.1),
        )
        group_total = sum(
            sum(cost(i, j) for i, j in g.pairs) for g in groups
        )
        assert group_total == sum(cost(i, j) for i, j in chunk)

    def test_reassembly_deterministic_under_any_completion_order(self):
        # simulate imap_unordered steals: whatever order groups (or
        # chunks) complete in, writing through `positions` rebuilds
        # exactly the input order
        import random as _random

        chunk = self.mixed_chunk()
        groups = group_chunk(chunk, self.LENGTHS)
        expected = list(chunk)
        for seed in range(5):
            shuffled = list(groups)
            _random.Random(seed).shuffle(shuffled)
            out = [None] * len(chunk)
            for g in shuffled:
                for pos, pair in zip(g.positions, g.pairs):
                    out[pos] = pair
            assert out == expected

    def test_uniform_chunk_is_one_group(self):
        chunk = [(0, 1), (1, 4), (4, 0)]
        groups = group_chunk(chunk, self.LENGTHS)
        assert len(groups) == 1
        assert groups[0].positions == (0, 1, 2)
