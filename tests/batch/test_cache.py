"""Tests for the per-worker series-artefact cache."""

from __future__ import annotations

import pytest

from repro.batch.cache import CacheStats, SeriesCache
from repro.lowerbounds.envelope import envelope
from repro.preprocess.normalize import znorm
from tests.conftest import make_series


class TestSeriesCache:
    def test_raw_round_trips_floats(self):
        cache = SeriesCache([[1, 2, 3], [4.0, 5.0, 6.0]])
        assert cache.raw(0) == [1.0, 2.0, 3.0]
        assert len(cache) == 2

    def test_rejects_empty_set(self):
        with pytest.raises(ValueError):
            SeriesCache([])

    def test_znorm_memoized(self):
        series = [make_series(30, seed=7)]
        cache = SeriesCache(series)
        first = cache.normalized(0)
        assert first == znorm(series[0])
        assert cache.normalized(0) is first  # served from memory
        stats = cache.stats()
        assert stats.znorm_misses == 1
        assert stats.znorm_hits == 1

    def test_envelope_memoized_per_band(self):
        series = [make_series(30, seed=8)]
        cache = SeriesCache(series)
        e2 = cache.envelope(0, 2)
        e3 = cache.envelope(0, 3)
        assert e2 is cache.envelope(0, 2)  # same band: cached
        assert e3 is not e2  # different band: distinct entry
        direct = envelope(series[0], 2)
        assert e2.upper == direct.upper
        assert e2.lower == direct.lower
        stats = cache.stats()
        assert stats.envelope_misses == 2
        assert stats.envelope_hits == 1

    def test_stats_snapshot_is_immutable_copy(self):
        cache = SeriesCache([make_series(10, seed=1)])
        before = cache.stats()
        cache.normalized(0)
        after = cache.stats()
        assert before.znorm_misses == 0
        assert after.znorm_misses == 1


class TestCacheStats:
    def test_addition_and_subtraction(self):
        a = CacheStats(1, 2, 3, 4)
        b = CacheStats(10, 20, 30, 40)
        assert a + b == CacheStats(11, 22, 33, 44)
        assert (b - a) == CacheStats(9, 18, 27, 36)
        assert a + CacheStats() == a

    def test_delta_protocol_used_by_the_engine(self):
        # the engine ships per-chunk deltas between processes; deltas
        # must compose back to the worker's running totals
        t0 = CacheStats()
        t1 = CacheStats(envelope_hits=2, envelope_misses=3)
        t2 = CacheStats(envelope_hits=7, envelope_misses=4)
        assert (t1 - t0) + (t2 - t1) == t2
