"""End-to-end coverage of the ``spawn`` start method.

Linux CI defaults to ``fork``, so until now ``spawn`` -- the only
method on Windows/macOS-default, and the one that exercises real
pickling of every initializer argument and task -- was never run.
These tests drive both the one-shot pool path and the persistent
executor under ``spawn``: shm attach/detach from freshly-started
interpreters, trace-snapshot merging, and no segment or fd leaks.

Spawn pools are expensive to start (a fresh interpreter per worker),
so the executor tests share one module-scoped warm executor.
"""

import gc
import multiprocessing
import os

import pytest

from repro.batch import BatchExecutor, batch_distances, batch_lb_keogh
from repro.obs import RunTrace
from tests.conftest import make_series

pytestmark = pytest.mark.skipif(
    "spawn" not in multiprocessing.get_all_start_methods(),
    reason="spawn start method unavailable",
)


def _series(count=5, length=20, offset=0):
    return [make_series(length, s + offset) for s in range(count)]


@pytest.fixture(scope="module")
def spawn_executor():
    exe = BatchExecutor(workers=2, cap=None, start_method="spawn")
    yield exe
    exe.shutdown()


class TestOneShotSpawn:
    def test_distances_identical(self):
        series = _series()
        serial = batch_distances(series, measure="cdtw", band=3)
        spawned = batch_distances(series, measure="cdtw", band=3,
                                  workers=2, start_method="spawn")
        assert spawned.distances == serial.distances
        assert spawned.cells_per_pair == serial.cells_per_pair

    def test_trace_snapshots_merge(self):
        series = _series()
        with RunTrace() as trace:
            result = batch_distances(series, measure="cdtw", band=3,
                                     workers=2, start_method="spawn")
        assert trace.counter("dp.cells") == result.cells
        assert trace.counter("pool.chunks") > 0


class TestSpawnExecutor:
    def test_shm_attach_from_spawned_workers(self, spawn_executor):
        # spawned workers import the module fresh and attach the
        # segment by name -- the full zero-copy path, no fork cheats
        series = _series()
        serial = batch_distances(series, measure="cdtw", band=3)
        warm = batch_distances(series, measure="cdtw", band=3,
                               executor=spawn_executor)
        again = batch_distances(series, measure="cdtw", band=3,
                                executor=spawn_executor)
        assert warm.distances == serial.distances == again.distances
        assert warm.cells == serial.cells

    def test_lb_keogh_under_spawn(self, spawn_executor):
        series = _series(offset=10)
        serial = batch_lb_keogh(series, band=3)
        warm = batch_lb_keogh(series, band=3, executor=spawn_executor)
        assert warm.distances == serial.distances

    def test_trace_merge_under_spawn(self, spawn_executor):
        series = _series(offset=20)
        with RunTrace() as trace:
            result = batch_distances(series, measure="cdtw", band=3,
                                     executor=spawn_executor)
        assert trace.counter("dp.cells") == result.cells
        assert (
            trace.counter("sched.chunks")
            == trace.counter("pool.chunks")
        )

    def test_worker_death_does_not_unlink_parent_segment(self):
        # the resource-tracker trap: a spawn worker attaching a segment
        # must not take it down when the pool is torn down
        series = _series(offset=30)
        with BatchExecutor(workers=2, cap=None,
                           start_method="spawn") as exe:
            batch_distances(series, measure="cdtw", band=3, executor=exe)
            names = exe.segment_names()
            # recycle the pool: old workers exit, their exit must not
            # unlink the parent's live segment
            exe._state["pool"].terminate()
            exe._state["pool"].join()
            exe._state["pool"] = None
            result = batch_distances(series, measure="cdtw", band=3,
                                     executor=exe)
            assert exe.segment_names() == names
        serial = batch_distances(series, measure="cdtw", band=3)
        assert result.distances == serial.distances


class TestNoLeaks:
    def test_no_segment_or_fd_leak(self):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this platform")
        gc.collect()
        shm_before = set(os.listdir("/dev/shm"))
        fd_dir = "/proc/self/fd"
        has_fds = os.path.isdir(fd_dir)
        fds_before = len(os.listdir(fd_dir)) if has_fds else 0
        with BatchExecutor(workers=2, cap=None,
                           start_method="spawn") as exe:
            batch_distances(_series(offset=40), measure="dtw",
                            executor=exe)
            batch_distances(_series(offset=60), measure="dtw",
                            executor=exe)
        gc.collect()
        assert not (set(os.listdir("/dev/shm")) - shm_before)
        if has_fds:
            # pool and segments released: fd count back to baseline
            # (tolerate transient reaper fds)
            assert len(os.listdir(fd_dir)) <= fds_before + 2
