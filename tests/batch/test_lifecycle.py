"""Regression tests for the executor/shm lifecycle bug sweep.

Three latent bugs, each of which used to pass silently:

* the module-level ``default_executor()`` singleton had no pid guard
  of its own, so a forked child inherited and reused the parent's
  executor handle (stale pool fds; ``/dev/shm`` double-unlink risk
  when the child's globals were garbage collected);
* a worker exception mid-``imap_unordered`` abandoned the warm pool
  half-drained, and the next job on the same executor could hang or
  see the orphaned tasks' results;
* ``ShmDataset.close()`` unlinked unconditionally, so a forked child
  closing an inherited handle took the parent's live segment down.

Every test here fails on the pre-fix code.
"""

import gc
import multiprocessing
import os

import pytest

from repro.batch import (
    BatchExecutor,
    batch_distances,
    default_executor,
    shutdown_default_executor,
)
from repro.batch import executor as executor_mod
from repro.batch.executor import _resolve_workers
from repro.batch.shm import ShmDataset, pack_dataset, shm_available
from tests.conftest import make_series

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def _series(count=5, length=20, offset=0):
    return [make_series(length, s + offset) for s in range(count)]


def _segment_exists(name: str) -> bool:
    from multiprocessing import shared_memory

    from repro.batch.shm import _suppress_tracking

    try:
        with _suppress_tracking():
            seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    seg.close()
    return True


def _run_in_fork(child) -> int:
    """``os.fork`` + run ``child()`` + ``os._exit`` with its result.

    ``os._exit`` skips atexit/GC in the child so the *only* effects we
    observe are the ones ``child`` performs explicitly.
    """
    pid = os.fork()
    if pid == 0:  # pragma: no cover - exits before coverage writes
        code = 1
        try:
            code = int(child())
        finally:
            os._exit(code)
    _, status = os.waitpid(pid, 0)
    return os.waitstatus_to_exitcode(status)


@pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
class TestDefaultExecutorForkSafety:
    def teardown_method(self):
        shutdown_default_executor()

    def test_forked_child_gets_fresh_singleton(self):
        parent_exe = default_executor()

        def child():
            inherited = executor_mod._DEFAULT
            fresh = default_executor()
            return 0 if (
                inherited is parent_exe
                and fresh is not inherited
                and executor_mod._DEFAULT_PID == os.getpid()
            ) else 1

        assert _run_in_fork(child) == 0
        # the parent's singleton is untouched by the child's re-key
        assert default_executor() is parent_exe

    @pytest.mark.skipif(not shm_available(), reason="no shared memory")
    def test_child_shutdown_spares_parent_segments(self):
        series = _series()
        exe = default_executor()
        serial = batch_distances(series, measure="cdtw", band=3)
        warm = batch_distances(series, measure="cdtw", band=3,
                               executor=exe)
        names = exe.segment_names()
        assert names

        def child():
            # pre-fix: this shut down the *parent's* executor object,
            # and the child's exit could unlink the parent's segments
            shutdown_default_executor()
            fresh = default_executor()
            return 0 if fresh._state["pid"] == os.getpid() else 1

        assert _run_in_fork(child) == 0
        assert all(_segment_exists(n) for n in names)
        again = batch_distances(series, measure="cdtw", band=3,
                                executor=exe)
        assert warm.distances == serial.distances == again.distances


@pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
@pytest.mark.skipif(not shm_available(), reason="no shared memory")
class TestShmOwnerPidGuard:
    def test_child_close_detaches_without_unlink(self):
        payload, lengths, fp = pack_dataset(_series(count=2, length=8))
        dataset = ShmDataset(payload, lengths, fp)
        try:
            assert _run_in_fork(lambda: 0 if (
                dataset.close() or _segment_exists(dataset.name)
            ) else 1) == 0
            # parent's segment survived the child's close()
            assert _segment_exists(dataset.name)
        finally:
            dataset.close()
        assert not _segment_exists(dataset.name)

    def test_child_gc_spares_inherited_registry(self):
        exe = BatchExecutor(workers=2, cap=None)
        try:
            series = _series(offset=7)
            batch_distances(series, measure="cdtw", band=3, executor=exe)
            names = exe.segment_names()
            assert names

            def child():
                # drop every reference the child holds and force the
                # collector: pre-fix, ShmDataset.__del__ unlinked the
                # parent's live segments from here
                exe._state["datasets"].clear()
                gc.collect()
                return 0

            assert _run_in_fork(child) == 0
            assert all(_segment_exists(n) for n in names)
        finally:
            exe.shutdown()
        assert not any(_segment_exists(n) for n in names)


class TestErrorPathPoolRecycling:
    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_crashing_task_recycles_pool_keeps_residency(
        self, start_method
    ):
        if start_method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"{start_method} unavailable")
        series = _series()
        serial = batch_distances(series, measure="cdtw", band=3)
        with BatchExecutor(workers=2, cap=None,
                           start_method=start_method) as exe:
            warm = batch_distances(series, measure="cdtw", band=3,
                                   executor=exe)
            names = exe.segment_names()
            # a chunk naming a series that does not exist crashes in
            # the worker mid-drain (same shape as any task exception)
            with pytest.raises(IndexError):
                exe.run_job(
                    "lb", (3, True, "python"), series,
                    chunks=[[(0, 1)], [(0, 999)]],
                )
            assert exe.stats.pools_poisoned == 1
            # residency survives the recycle: nothing re-shipped...
            assert exe.segment_names() == names
            shipped = exe.stats.datasets_shipped
            # ...and the next job gets a fresh pool and exact results
            again = batch_distances(series, measure="cdtw", band=3,
                                    executor=exe)
            assert again.distances == warm.distances == serial.distances
            assert exe.stats.pools_created == 2
            assert exe.stats.datasets_shipped == shipped

    def test_repeated_failures_keep_recycling(self):
        series = _series(offset=3)
        with BatchExecutor(workers=2, cap=None) as exe:
            for expected in (1, 2):
                with pytest.raises(IndexError):
                    exe.run_job(
                        "lb", (3, True, "python"), series,
                        chunks=[[(0, 999)]],
                    )
                assert exe.stats.pools_poisoned == expected
            result = batch_distances(series, measure="cdtw", band=3,
                                     executor=exe)
        serial = batch_distances(series, measure="cdtw", band=3)
        assert result.distances == serial.distances


class TestWorkerCountValidation:
    @pytest.mark.parametrize("cap", ["cpu", None])
    @pytest.mark.parametrize("bad", [0, -1, -8, True, False, 2.5])
    def test_rejects_degenerate_requests(self, bad, cap):
        with pytest.raises(ValueError, match="workers"):
            _resolve_workers(bad, cap)
        with pytest.raises(ValueError, match="workers"):
            BatchExecutor(workers=bad, cap=cap)

    def test_none_still_means_cpu_count(self):
        cpus = os.cpu_count() or 1
        assert _resolve_workers(None, "cpu") == cpus
        assert _resolve_workers(None, None) == cpus
