"""The four rewired hot paths are workers-invariant end to end.

``distance_matrix``, 1-NN/LOOCV classification, ``nearest_neighbor``
and the clustering consumers (linkage matrices, DBA, k-means) all
accept ``workers=N`` now; each must return *identical* results --
values, cell accounting, labels, merge structures, tie-breaks -- for
any worker count, because ``workers=1`` is the seed behaviour.
"""

from __future__ import annotations

import pytest

from repro.classify.knn import (
    DistanceSpec,
    KNearestNeighbors,
    OneNearestNeighbor,
)
from repro.classify.loocv import best_window_search, loocv_error
from repro.cluster.dba import dba
from repro.cluster.kmeans import dtw_kmeans
from repro.cluster.linkage import linkage, linkage_from_series
from repro.core.matrix import distance_matrix
from repro.core.measures import MEASURES, ND_MEASURES
from repro.search.nn_search import nearest_neighbor
from tests.conftest import make_series, make_vectors

MATRIX_KWARGS = {
    "dtw": {},
    "cdtw": {"window": 0.2},
    "fastdtw": {"radius": 1},
    "fastdtw_reference": {"radius": 1},
    "euclidean": {},
    "rle_dtw": {},
    "rle_cdtw": {"window": 0.2},
    "dtw_d": {},
    "cdtw_d": {"window": 0.2},
    "dtw_i": {},
    "cdtw_i": {"window": 0.2},
}


def labelled_set(count=8, length=24, seed=100):
    series = [make_series(length, seed=seed + i) for i in range(count)]
    labels = ["odd" if i % 2 else "even" for i in range(count)]
    return series, labels


class TestDistanceMatrix:
    @pytest.mark.parametrize("measure", MEASURES)
    def test_workers_invariant(self, measure):
        if measure in ND_MEASURES:
            series = [make_vectors(20, 2, seed=s) for s in range(6)]
        else:
            series = [make_series(20, seed=s) for s in range(6)]
        serial = distance_matrix(
            series, measure=measure, **MATRIX_KWARGS[measure]
        )
        parallel = distance_matrix(
            series, measure=measure, workers=2, **MATRIX_KWARGS[measure]
        )
        assert serial == parallel  # values, measure and cells


class TestClassification:
    @pytest.mark.parametrize("spec", [
        DistanceSpec("euclidean"),
        DistanceSpec("dtw"),
        DistanceSpec("cdtw", window=0.15),
        DistanceSpec("fastdtw", radius=1),
        DistanceSpec("fastdtw_reference", radius=1),
        DistanceSpec("rle_dtw"),
        DistanceSpec("rle_cdtw", window=0.15),
    ], ids=lambda s: s.describe())
    def test_1nn_labels_and_cells(self, spec):
        series, labels = labelled_set()
        queries = [make_series(24, seed=900 + i) for i in range(3)]
        serial = OneNearestNeighbor(spec).fit(series, labels)
        parallel = OneNearestNeighbor(spec, workers=2).fit(series, labels)
        assert serial.predict(queries) == parallel.predict(queries)
        assert serial.cells_evaluated == parallel.cells_evaluated

    def test_1nn_tie_break_on_duplicate_training_series(self):
        base = make_series(20, seed=4)
        other = make_series(20, seed=5)
        # two identical nearest candidates with different labels: the
        # first must win, serially and in parallel
        series = [list(base), list(base), other]
        labels = ["first", "second", "far"]
        query = [v + 0.01 for v in base]
        spec = DistanceSpec("dtw")
        serial = OneNearestNeighbor(spec).fit(series, labels)
        parallel = OneNearestNeighbor(spec, workers=3).fit(series, labels)
        assert serial.predict_one(query) == "first"
        assert parallel.predict_one(query) == "first"

    def test_knn_votes(self):
        series, labels = labelled_set()
        query = make_series(24, seed=999)
        spec = DistanceSpec("cdtw", window=0.2)
        serial = KNearestNeighbors(spec, k=3).fit(series, labels)
        parallel = KNearestNeighbors(spec, k=3, workers=2).fit(
            series, labels
        )
        assert serial.predict_one(query) == parallel.predict_one(query)

    def test_loocv_error(self):
        series, labels = labelled_set(count=6)
        spec = DistanceSpec("cdtw", window=0.1)
        assert loocv_error(series, labels, spec) == loocv_error(
            series, labels, spec, workers=2
        )

    def test_best_window_search(self):
        series, labels = labelled_set(count=5, length=16)
        windows = (0.0, 0.1, 0.2)
        serial = best_window_search(
            series, labels, windows=windows, use_lower_bounds=False
        )
        parallel = best_window_search(
            series, labels, windows=windows, use_lower_bounds=False,
            workers=2,
        )
        assert serial == parallel

    def test_lower_bound_cascade_ignores_workers(self):
        # the cascade is sequential by design; workers must neither
        # crash it nor change its (already exact) answer
        series, labels = labelled_set(count=6)
        spec = DistanceSpec("cdtw", window=0.1, use_lower_bounds=True)
        serial = OneNearestNeighbor(spec).fit(series, labels)
        parallel = OneNearestNeighbor(spec, workers=2).fit(series, labels)
        query = make_series(24, seed=901)
        assert serial.predict_one(query) == parallel.predict_one(query)
        assert serial.cells_evaluated == parallel.cells_evaluated


class TestNnSearch:
    @pytest.mark.parametrize("strategy,kwargs", [
        ("cdtw", {"band": 3}),
        ("cdtw", {"window": 0.2}),
        ("fastdtw", {"radius": 1}),
        ("euclidean", {}),
    ])
    @pytest.mark.parametrize("workers", [2, 4])
    def test_full_strategies_workers_invariant(
        self, strategy, kwargs, workers
    ):
        query = make_series(22, seed=50)
        candidates = [make_series(22, seed=60 + i) for i in range(7)]
        serial = nearest_neighbor(query, candidates, strategy=strategy,
                                  **kwargs)
        parallel = nearest_neighbor(
            query, candidates, strategy=strategy, workers=workers,
            **kwargs,
        )
        assert serial.index == parallel.index
        assert serial.distance == parallel.distance
        assert serial.cells == parallel.cells

    def test_cdtw_lb_falls_back_to_serial(self):
        query = make_series(22, seed=50)
        candidates = [make_series(22, seed=60 + i) for i in range(7)]
        serial = nearest_neighbor(query, candidates, strategy="cdtw+lb",
                                  band=3)
        parallel = nearest_neighbor(
            query, candidates, strategy="cdtw+lb", band=3, workers=4
        )
        assert serial.index == parallel.index
        assert serial.distance == parallel.distance
        assert serial.cells == parallel.cells
        assert parallel.stats is not None  # cascade stats still there

    def test_workers_validation(self):
        with pytest.raises(ValueError, match="workers"):
            nearest_neighbor(
                [1.0, 2.0], [[1.0, 2.0]], strategy="euclidean", workers=0
            )


class TestClustering:
    def test_linkage_from_series_matches_manual_composition(self):
        series = [make_series(18, seed=200 + i) for i in range(5)]
        manual = linkage(
            distance_matrix(series, measure="cdtw", window=0.2).as_lists(),
            method="average",
        )
        for workers in (1, 2):
            merges = linkage_from_series(
                series, measure="cdtw", window=0.2, method="average",
                workers=workers,
            )
            assert merges == manual

    def test_dba_workers_invariant(self):
        series = [make_series(20, seed=300 + i) for i in range(5)]
        assert dba(series, band=3) == dba(series, band=3, workers=2)
        assert dba(series) == dba(series, workers=2)  # full DTW too

    def test_kmeans_workers_invariant(self):
        series = [make_series(16, seed=400 + i) for i in range(8)]
        serial = dtw_kmeans(series, 3, band=2, seed=7)
        parallel = dtw_kmeans(series, 3, band=2, seed=7, workers=2)
        assert serial == parallel

    def test_workers_validation(self):
        series = [make_series(10, seed=1) for _ in range(3)]
        with pytest.raises(ValueError, match="workers"):
            dba(series, workers=0)
        with pytest.raises(ValueError, match="workers"):
            dtw_kmeans(series, 2, workers=0)
