"""Pinned DP-cell counts: the cost-accounting contract, frozen.

The paper's Tables and cell-model verdicts rest on the exact number
of lattice cells each measure evaluates.  These tests pin those
counts for small fixed inputs, so a refactor that silently changes
the accounting (a different window construction, an off-by-one in
the band, a lost recursion level) fails loudly -- serially and
through the parallel batch path alike.
"""

from __future__ import annotations

import pytest

from repro.batch import batch_distances
from repro.core.cdtw import cdtw
from repro.core.dtw import dtw
from repro.core.fastdtw import fastdtw
from repro.core.fastdtw_reference import fastdtw_reference
from repro.core.matrix import distance_matrix
from repro.runtime import Runtime

X = [0.0, 1.0, 2.0, 3.0]
Y = [0.0, 2.0, 1.0, 3.0]
Z = [1.0, 1.0, 2.0, 0.0]
SERIES = [X, Y, Z]

# measure -> (engine kwargs, pinned total cells over the 3 pairs)
PINNED_MATRIX_CELLS = {
    "dtw": ({}, 48),  # 3 pairs x the full 4x4 lattice
    "cdtw": ({"band": 1}, 30),  # 3 pairs x 10 banded cells
    "fastdtw": ({"radius": 1}, 54),
    "fastdtw_reference": ({"radius": 1}, 60),
    "euclidean": ({}, 0),  # no lattice at all
}

# the distances themselves, shared by every measure on these inputs
# (radius-1 FastDTW happens to be exact here)
PINNED_DISTANCES = {(0, 1): 2.0, (0, 2): 10.0, (1, 2): 12.0}


class TestPinnedPairCells:
    """Single-pair counts, straight from the measure functions."""

    def test_full_dtw_touches_the_whole_lattice(self):
        assert dtw(X, Y).cells == 16

    def test_banded_cdtw_touches_the_band_only(self):
        assert cdtw(X, Y, band=1).cells == 10
        assert cdtw(X, Y, band=0).cells == 4

    def test_fastdtw_counts_all_recursion_levels(self):
        assert fastdtw(X, Y, radius=1).cells == 18
        assert fastdtw_reference(X, Y, radius=1).cells == 20


class TestPinnedMatrixCells:
    @pytest.mark.parametrize(
        "measure", sorted(PINNED_MATRIX_CELLS)
    )
    def test_serial_matrix_cells(self, measure):
        kwargs, cells = PINNED_MATRIX_CELLS[measure]
        matrix = distance_matrix(SERIES, measure=measure, **kwargs)
        assert matrix.cells == cells

    @pytest.mark.parametrize(
        "measure", sorted(PINNED_MATRIX_CELLS)
    )
    def test_workers2_matrix_cells(self, measure):
        kwargs, cells = PINNED_MATRIX_CELLS[measure]
        matrix = distance_matrix(
            SERIES, measure=measure, runtime=Runtime(workers=2),
            **kwargs
        )
        assert matrix.cells == cells

    @pytest.mark.parametrize(
        "measure", sorted(PINNED_MATRIX_CELLS)
    )
    @pytest.mark.parametrize("workers", [1, 2])
    def test_pinned_distances(self, measure, workers):
        kwargs, _ = PINNED_MATRIX_CELLS[measure]
        matrix = distance_matrix(
            SERIES, measure=measure, runtime=Runtime(workers=workers),
            **kwargs
        )
        for (i, j), d in PINNED_DISTANCES.items():
            assert matrix[i, j] == d
            assert matrix[j, i] == d

    def test_batch_engine_reports_per_pair_breakdown(self):
        result = batch_distances(SERIES, measure="cdtw", band=1)
        assert result.cells_per_pair == (10, 10, 10)
        result = batch_distances(
            SERIES, measure="cdtw", band=1, workers=2
        )
        assert result.cells_per_pair == (10, 10, 10)
