"""BatchExecutor lifecycle, shm hygiene and warm-pool semantics.

The executor's contract: identical results to the serial engine for
every mode (shm or inline, any worker count), a pool created once and
reused across jobs, datasets shipped once per content fingerprint and
re-shipped when the content changes, and -- critically -- **zero**
leaked ``/dev/shm`` segments after ``shutdown()`` or garbage
collection.
"""

import gc
import os

import pytest

from repro.batch import (
    BatchExecutor,
    batch_distances,
    batch_lb_keogh,
    default_executor,
    resolve_executor,
    shutdown_default_executor,
)
from repro.batch.shm import pack_dataset, shm_available
from repro.runtime import Runtime
from tests.conftest import make_series


def _series(count=6, length=24, offset=0):
    return [make_series(length, s + offset) for s in range(count)]


def _segment_exists(name: str) -> bool:
    """Does a POSIX shm segment with this name still exist?"""
    from multiprocessing import shared_memory

    from repro.batch.shm import _suppress_tracking

    try:
        with _suppress_tracking():
            seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    seg.close()
    return True


class TestLifecycle:
    def test_context_manager_shuts_down(self):
        with BatchExecutor(workers=2, cap=None) as exe:
            batch_distances(_series(), measure="cdtw", band=3,
                            executor=exe)
            assert not exe.closed
        assert exe.closed

    def test_shutdown_idempotent(self):
        exe = BatchExecutor(workers=2, cap=None)
        exe.shutdown()
        exe.shutdown()
        assert exe.closed

    def test_rejects_jobs_after_shutdown(self):
        exe = BatchExecutor(workers=2, cap=None)
        exe.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            batch_distances(_series(), measure="dtw", executor=exe)

    def test_pool_created_once_then_reused(self):
        with BatchExecutor(workers=2, cap=None) as exe:
            series = _series()
            for _ in range(3):
                batch_distances(series, measure="cdtw", band=3,
                                executor=exe)
            assert exe.stats.pools_created == 1
            assert exe.stats.pools_reused == 2
            assert exe.stats.jobs == 3

    def test_worker_cap_policies(self):
        cpus = os.cpu_count() or 1
        assert BatchExecutor(workers=cpus + 5).workers == cpus
        assert BatchExecutor(workers=2, cap=None).workers == 2
        assert BatchExecutor().workers == cpus
        with pytest.raises(ValueError, match="cap"):
            BatchExecutor(cap="all")
        with pytest.raises(ValueError, match="workers"):
            BatchExecutor(workers=0)
        with pytest.raises(ValueError, match="max_datasets"):
            BatchExecutor(max_datasets=0)

    def test_result_reports_executor_workers(self):
        with BatchExecutor(workers=2, cap=None) as exe:
            result = batch_distances(_series(), measure="cdtw", band=3,
                                     executor=exe)
        assert result.workers == 2


class TestEquivalence:
    @pytest.mark.parametrize("measure,kwargs", [
        ("dtw", {}),
        ("cdtw", {"band": 3}),
        ("fastdtw", {"radius": 1}),
        ("euclidean", {}),
    ])
    def test_identical_to_serial(self, measure, kwargs):
        series = _series()
        serial = batch_distances(series, measure=measure, **kwargs)
        with BatchExecutor(workers=2, cap=None) as exe:
            warm = batch_distances(series, measure=measure,
                                   executor=exe, **kwargs)
            again = batch_distances(series, measure=measure,
                                    executor=exe, **kwargs)
        assert warm.distances == serial.distances == again.distances
        assert warm.cells_per_pair == serial.cells_per_pair
        assert warm.cells == serial.cells == again.cells

    def test_return_paths_identical(self):
        series = _series(count=4)
        serial = batch_distances(series, measure="cdtw", band=3,
                                 return_paths=True)
        with BatchExecutor(workers=2, cap=None) as exe:
            warm = batch_distances(series, measure="cdtw", band=3,
                                   return_paths=True, executor=exe)
        assert warm.paths == serial.paths

    def test_lb_keogh_identical_to_serial(self):
        series = _series()
        serial = batch_lb_keogh(series, band=3)
        with BatchExecutor(workers=2, cap=None) as exe:
            warm = batch_lb_keogh(series, band=3, executor=exe)
            mixed = batch_distances(series, measure="cdtw", band=3,
                                    executor=exe)
            again = batch_lb_keogh(series, band=3, executor=exe)
        assert warm.distances == serial.distances == again.distances
        assert mixed.cells > 0

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_numpy_backend_identical(self, backend):
        pytest.importorskip("numpy")
        series = _series()
        serial = batch_distances(series, measure="cdtw", band=3)
        with BatchExecutor(workers=2, cap=None) as exe:
            result = batch_distances(series, measure="cdtw", band=3,
                                     backend=backend, executor=exe)
        assert result.distances == serial.distances
        assert result.cells == serial.cells

    def test_inline_fallback_identical(self):
        series = _series()
        serial = batch_distances(series, measure="cdtw", band=3)
        with BatchExecutor(workers=2, cap=None, use_shm=False) as exe:
            warm = batch_distances(series, measure="cdtw", band=3,
                                   executor=exe)
            again = batch_distances(series, measure="cdtw", band=3,
                                    executor=exe)
            assert exe.stats.datasets_shipped == 1  # shipped once
        assert warm.distances == serial.distances == again.distances

    def test_workers_one_plus_executor_uses_executor(self):
        # executor wins over workers: passing one runs the warm path
        # even at the default workers=1
        series = _series()
        serial = batch_distances(series, measure="cdtw", band=3)
        with BatchExecutor(workers=2, cap=None) as exe:
            result = batch_distances(series, measure="cdtw", band=3,
                                     workers=1, executor=exe)
            assert exe.stats.jobs == 1
        assert result.distances == serial.distances
        assert result.workers == 2


@pytest.mark.skipif(not shm_available(), reason="no shared memory")
class TestShmHygiene:
    def test_shutdown_unlinks_every_segment(self):
        exe = BatchExecutor(workers=2, cap=None)
        batch_distances(_series(offset=0), measure="dtw", executor=exe)
        batch_distances(_series(offset=50), measure="dtw", executor=exe)
        names = exe.segment_names()
        assert len(names) == 2
        assert all(_segment_exists(n) for n in names)
        exe.shutdown()
        assert not any(_segment_exists(n) for n in names)

    def test_gc_unlinks_segments(self):
        exe = BatchExecutor(workers=2, cap=None)
        batch_distances(_series(), measure="dtw", executor=exe)
        names = exe.segment_names()
        assert names and all(_segment_exists(n) for n in names)
        del exe
        gc.collect()
        assert not any(_segment_exists(n) for n in names)

    def test_dataset_shipped_once_per_fingerprint(self):
        series = _series()
        with BatchExecutor(workers=2, cap=None) as exe:
            batch_distances(series, measure="cdtw", band=3, executor=exe)
            # same values via new list objects: same fingerprint
            copy = [list(s) for s in series]
            batch_distances(copy, measure="dtw", executor=exe)
            assert exe.stats.datasets_shipped == 1
            assert len(exe.segment_names()) == 1

    def test_mutated_dataset_is_reshipped_not_stale_served(self):
        series = _series()
        with BatchExecutor(workers=2, cap=None) as exe:
            batch_distances(series, measure="cdtw", band=3, executor=exe)
            mutated = [list(s) for s in series]
            mutated[0][0] += 1.0  # a single-sample change
            serial = batch_distances(mutated, measure="cdtw", band=3)
            warm = batch_distances(mutated, measure="cdtw", band=3,
                                   executor=exe)
            assert exe.stats.datasets_shipped == 2
            assert len(exe.segment_names()) == 2
        # served from the *new* segment: distances reflect the mutation
        assert warm.distances == serial.distances

    def test_fingerprints_differ_on_mutation(self):
        series = _series()
        _, _, fp1 = pack_dataset(series)
        mutated = [list(s) for s in series]
        mutated[0][0] += 2 ** -40  # even a 1-ulp-scale change re-keys
        _, _, fp2 = pack_dataset(mutated)
        assert fp1 != fp2
        # and a re-split of the same flat values re-keys too
        flat = [v for s in series for v in s]
        half = len(flat) // 2
        _, _, fp3 = pack_dataset([flat[:half], flat[half:]])
        _, _, fp4 = pack_dataset([flat[:half - 1], flat[half - 1:]])
        assert fp3 != fp4

    def test_lru_evicts_oldest_dataset(self):
        with BatchExecutor(workers=2, cap=None, max_datasets=1) as exe:
            batch_distances(_series(offset=0), measure="dtw", executor=exe)
            first = exe.segment_names()
            batch_distances(_series(offset=50), measure="dtw",
                            executor=exe)
            second = exe.segment_names()
            assert len(second) == 1
            assert first != second
            assert not _segment_exists(first[0])

    def test_no_devshm_leak_across_lifecycle(self):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this platform")
        before = set(os.listdir("/dev/shm"))
        exe = BatchExecutor(workers=2, cap=None)
        batch_distances(_series(), measure="dtw", executor=exe)
        exe.shutdown()
        gc.collect()
        leaked = set(os.listdir("/dev/shm")) - before
        assert not leaked


class TestDefaultExecutor:
    def test_default_is_singleton_until_shutdown(self):
        try:
            a = default_executor()
            assert default_executor() is a
            shutdown_default_executor()
            assert a.closed
            b = default_executor()
            assert b is not a
            assert resolve_executor("default") is b
        finally:
            shutdown_default_executor()

    def test_resolve_executor_forms(self):
        assert resolve_executor(None) is None
        with BatchExecutor(workers=1) as exe:
            assert resolve_executor(exe) is exe
        with pytest.raises(TypeError, match="executor"):
            resolve_executor(42)

    def test_string_default_reaches_engine(self):
        series = _series()
        serial = batch_distances(series, measure="cdtw", band=3)
        try:
            result = batch_distances(series, measure="cdtw", band=3,
                                     executor="default")
            assert result.distances == serial.distances
        finally:
            shutdown_default_executor()


class TestConsumers:
    """``executor=`` plumbed through the high-level entry points."""

    def test_distance_matrix(self):
        from repro.core.matrix import distance_matrix

        series = _series()
        serial = distance_matrix(series, measure="cdtw", band=3)
        with BatchExecutor(workers=2, cap=None) as exe:
            warm = distance_matrix(series, measure="cdtw", band=3,
                                   runtime=Runtime(executor=exe))
        assert warm.values == serial.values
        assert warm.cells == serial.cells

    def test_knn_predict(self):
        from repro.classify.knn import DistanceSpec, OneNearestNeighbor

        train = _series(count=6, length=20)
        labels = [s % 2 for s in range(6)]
        queries = _series(count=3, length=20, offset=30)
        spec = DistanceSpec("cdtw", window=0.2)
        serial = OneNearestNeighbor(spec).fit(train, labels)
        expected = serial.predict(queries)
        with BatchExecutor(workers=2, cap=None) as exe:
            clf = OneNearestNeighbor(
                spec, runtime=Runtime(executor=exe)
            ).fit(train, labels)
            got = clf.predict(queries)
            assert exe.stats.jobs >= 1
        assert got == expected
        assert clf.cells_evaluated == serial.cells_evaluated

    def test_loocv_error(self):
        from repro.classify.knn import DistanceSpec
        from repro.classify.loocv import loocv_error

        series = _series(count=6, length=20)
        labels = [s % 2 for s in range(6)]
        spec = DistanceSpec("cdtw", window=0.2)
        serial = loocv_error(series, labels, spec)
        with BatchExecutor(workers=2, cap=None) as exe:
            warm = loocv_error(series, labels, spec,
                               runtime=Runtime(executor=exe))
            # one scan per series, all on the one warm pool; each fold
            # excludes a different series, so each is its own dataset
            assert exe.stats.jobs == len(series)
            assert exe.stats.pools_created == 1
            assert exe.stats.datasets_shipped == len(series)
        assert warm == serial

    def test_nn_search(self):
        from repro.search.nn_search import nearest_neighbor

        query = make_series(24, 99)
        candidates = _series(count=5, length=24)
        serial = nearest_neighbor(query, candidates, strategy="cdtw",
                                  band=3)
        with BatchExecutor(workers=2, cap=None) as exe:
            warm = nearest_neighbor(query, candidates, strategy="cdtw",
                                    band=3,
                                    runtime=Runtime(executor=exe))
        assert (warm.index, warm.distance, warm.cells) == (
            serial.index, serial.distance, serial.cells
        )

    def test_linkage_from_series(self):
        from repro.cluster.linkage import linkage_from_series

        series = _series(count=5, length=20)
        serial = linkage_from_series(series, measure="cdtw", band=3)
        with BatchExecutor(workers=2, cap=None) as exe:
            warm = linkage_from_series(series, measure="cdtw", band=3,
                                       runtime=Runtime(executor=exe))
        assert warm == serial

    def test_dba_and_kmeans(self):
        from repro.cluster.dba import dba
        from repro.cluster.kmeans import dtw_kmeans

        series = _series(count=5, length=16)
        serial_dba = dba(series, max_iterations=2, band=2)
        serial_km = dtw_kmeans(series, k=2, band=2, max_iterations=2,
                               dba_iterations=1, seed=3)
        with BatchExecutor(workers=2, cap=None) as exe:
            warm_dba = dba(series, max_iterations=2, band=2,
                           runtime=Runtime(executor=exe))
            warm_km = dtw_kmeans(series, k=2, band=2, max_iterations=2,
                                 dba_iterations=1, seed=3,
                                 runtime=Runtime(executor=exe))
            assert exe.stats.pools_created == 1  # one pool for it all
        assert warm_dba == serial_dba
        assert warm_km == serial_km
