"""The batch/shm layer's multivariate contract.

Covers the channel-aware :func:`repro.batch.shm.pack_dataset` (with
the load-bearing guarantee that *univariate* payloads and
fingerprints are byte-for-byte unchanged), the dataset-dims
detection and its refusal of mixed/ragged datasets, the
measure-vs-dims gate of :func:`repro.batch.engine.batch_distances`,
and the shared-memory round trip of ``(length, dims)`` series.
"""

import hashlib

import pytest

from repro.batch.engine import batch_distances
from repro.batch.shm import ShmDataset, dataset_dims, pack_dataset
from repro.core.measures import ND_MEASURES
from repro.core.multivariate import cdtw_nd
from tests.conftest import make_series, make_vectors


class TestDatasetDims:
    def test_univariate_is_none(self):
        assert dataset_dims([make_series(8, 0), make_series(5, 1)]) is None

    def test_multivariate_reports_dims(self):
        assert dataset_dims([make_vectors(8, 3, 0)]) == 3

    def test_mixed_rejected(self):
        with pytest.raises(ValueError, match="all-scalar or all"):
            dataset_dims([make_series(8, 0), make_vectors(8, 2, 1)])
        with pytest.raises(ValueError, match="all-scalar or all"):
            dataset_dims([make_vectors(8, 2, 1), make_series(8, 0)])

    def test_ragged_dims_rejected(self):
        with pytest.raises(ValueError, match="dimensional samples"):
            dataset_dims([make_vectors(8, 2, 0), make_vectors(8, 3, 1)])

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            dataset_dims([[]])


class TestPackDataset:
    def test_univariate_payload_and_fingerprint_golden(self):
        """The exact pre-multivariate bytes: list-vs-tuple rows, and
        a frozen fingerprint recipe (blake2b over payload + lengths),
        so adding the channel axis can never move univariate hashes
        (which would cold every serve/index artifact cache)."""
        series = [[0.0, 1.0, 2.0], [3.0, 4.0]]
        payload, lengths, fp = pack_dataset(series)
        assert lengths == (3, 2)
        assert len(payload) == 5 * 8
        h = hashlib.blake2b(digest_size=16)
        h.update(repr(tuple(lengths)).encode())
        h.update(payload)
        assert fp == h.hexdigest()

    def test_nd_packs_sample_major(self):
        import struct

        series = [[(0.0, 10.0), (1.0, 11.0)]]
        payload, lengths, _ = pack_dataset(series)
        assert lengths == (2,)
        values = struct.unpack("<4d", payload)
        assert values == (0.0, 10.0, 1.0, 11.0)

    def test_nd_fingerprint_differs_from_flat_same_values(self):
        """A (2, 2) dataset and the flat 4-sample dataset share bytes
        but must not share a fingerprint."""
        nd = [[(0.0, 1.0), (2.0, 3.0)]]
        flat = [[0.0, 1.0, 2.0, 3.0]]
        assert pack_dataset(nd)[0] == pack_dataset(flat)[0]
        assert pack_dataset(nd)[2] != pack_dataset(flat)[2]

    def test_nd_fingerprint_carries_dims(self):
        two = [[(0.0, 1.0), (2.0, 3.0)]]
        four = [[(0.0, 1.0, 2.0, 3.0)]]
        assert pack_dataset(two)[0] == pack_dataset(four)[0]
        assert pack_dataset(two)[2] != pack_dataset(four)[2]

    def test_deterministic(self):
        series = [make_vectors(10, 3, 0), make_vectors(8, 3, 1)]
        assert pack_dataset(series)[2] == pack_dataset(series)[2]


class TestMeasureDimsGate:
    @pytest.mark.parametrize("measure", ND_MEASURES)
    def test_nd_measure_rejects_flat_series(self, measure):
        series = [make_series(10, s) for s in range(3)]
        with pytest.raises(ValueError, match="is multivariate"):
            batch_distances(
                series, measure=measure,
                **({"band": 2} if measure.startswith("c") else {}),
            )

    def test_scalar_measure_rejects_nd_series(self):
        series = [make_vectors(10, 2, s) for s in range(3)]
        with pytest.raises(ValueError, match="is univariate"):
            batch_distances(series, measure="cdtw", band=2)

    def test_mixed_dataset_rejected(self):
        series = [make_series(10, 0), make_vectors(10, 2, 1)]
        with pytest.raises(ValueError, match="all-scalar or all"):
            batch_distances(series, measure="cdtw_d", band=2)


class TestNdBatchResults:
    def test_cdtw_d_matches_pairwise(self):
        series = [make_vectors(12, 3, s) for s in range(4)]
        result = batch_distances(series, measure="cdtw_d", band=3)
        idx = 0
        for i in range(4):
            for j in range(i + 1, 4):
                ref = cdtw_nd(series[i], series[j], band=3)
                assert result.distances[idx] == ref.distance
                assert result.cells_per_pair[idx] == ref.cells
                idx += 1

    @pytest.mark.parametrize("backend", ("python", "numpy"))
    @pytest.mark.parametrize("workers", (1, 2))
    def test_backend_worker_grid_bit_identical(self, backend, workers):
        series = [make_vectors(14, 2, s) for s in range(5)]
        reference = batch_distances(series, measure="cdtw_d", band=3)
        got = batch_distances(
            series, measure="cdtw_d", band=3,
            backend=backend, workers=workers,
        )
        assert got.distances == reference.distances
        assert got.cells_per_pair == reference.cells_per_pair


def _ship(series):
    payload, lengths, fp = pack_dataset(series)
    return ShmDataset(payload, lengths, fp, dims=dataset_dims(series))


class TestShmRoundTrip:
    def test_nd_series_survive_shared_memory(self):
        pytest.importorskip("multiprocessing.shared_memory")
        from repro.batch.shm import AttachedDataset

        series = [make_vectors(9, 3, s) for s in range(3)]
        ds = _ship(series)
        try:
            attached = AttachedDataset(ds.descriptor())
            try:
                assert attached.dims == 3
                back = attached.series()
                assert len(back) == 3
                for orig, view in zip(series, back):
                    assert [tuple(v) for v in view] == [
                        tuple(v) for v in orig
                    ]
            finally:
                attached.close()
        finally:
            ds.close()

    def test_univariate_descriptor_shape_unchanged(self):
        """Univariate descriptors keep the historical 4-tuple so old
        unpacking code keeps working; nd descriptors append dims."""
        pytest.importorskip("multiprocessing.shared_memory")
        flat = _ship([make_series(6, 0)])
        try:
            assert len(flat.descriptor()) == 4
        finally:
            flat.close()
        nd = _ship([make_vectors(6, 2, 0)])
        try:
            desc = nd.descriptor()
            assert len(desc) == 5
            assert desc[-1] == 2
        finally:
            nd.close()
