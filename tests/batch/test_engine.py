"""Unit tests for the batch engine's moving parts."""

from __future__ import annotations

import pytest

from repro.batch import (
    BatchSpec,
    all_pairs,
    argmin_first,
    batch_distances,
    batch_lb_keogh,
    default_chunksize,
)
from repro.core.cdtw import cdtw
from repro.core.dtw import dtw
from repro.lowerbounds.envelope import envelope
from repro.lowerbounds.lb_keogh import lb_keogh
from tests.conftest import make_series


class TestHelpers:
    def test_all_pairs_lexicographic(self):
        assert all_pairs(4) == [
            (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)
        ]
        assert all_pairs(0) == []
        assert all_pairs(1) == []
        with pytest.raises(ValueError):
            all_pairs(-1)

    def test_default_chunksize_targets_four_chunks_per_worker(self):
        assert default_chunksize(160, 4) == 10
        assert default_chunksize(1, 8) == 1
        assert default_chunksize(0, 2) == 1
        with pytest.raises(ValueError):
            default_chunksize(10, 0)

    def test_argmin_first(self):
        assert argmin_first([2.0]) == (0, 2.0)
        assert argmin_first([5.0, 1.0, 1.0]) == (1, 1.0)
        assert argmin_first([1.0, 1.0, 0.5]) == (2, 0.5)
        with pytest.raises(ValueError):
            argmin_first([])


class TestBatchSpec:
    def test_rejects_unknown_measure(self):
        with pytest.raises(ValueError, match="unknown measure"):
            BatchSpec(measure="manhattan")

    def test_make_fn_matches_direct_calls(self):
        x = make_series(20, seed=1)
        y = make_series(20, seed=2)
        fn = BatchSpec(measure="cdtw", band=3).make_fn()
        assert fn(x, y).distance == cdtw(x, y, band=3).distance


class TestBatchDistances:
    def test_default_pairs_are_all_pairs(self):
        series = [make_series(12, seed=s) for s in range(4)]
        result = batch_distances(series, measure="dtw")
        assert result.pairs == tuple(all_pairs(4))
        assert len(result) == 6

    def test_matches_direct_dtw_calls(self):
        series = [make_series(15, seed=s) for s in range(3)]
        result = batch_distances(series, measure="dtw")
        for (i, j), d, c in zip(
            result.pairs, result.distances, result.cells_per_pair
        ):
            direct = dtw(series[i], series[j])
            assert d == direct.distance
            assert c == direct.cells
        assert result.cells == sum(result.cells_per_pair)

    def test_return_paths(self):
        series = [make_series(10, seed=s) for s in range(3)]
        serial = batch_distances(
            series, measure="cdtw", band=2, return_paths=True
        )
        parallel = batch_distances(
            series, measure="cdtw", band=2, return_paths=True, workers=2
        )
        assert serial.paths is not None
        assert len(serial.paths) == len(serial)
        for p, q in zip(serial.paths, parallel.paths):
            assert list(p) == list(q)
        # paths off by default
        assert batch_distances(series, measure="dtw").paths is None

    def test_euclidean_paths_are_none(self):
        series = [make_series(8, seed=s) for s in range(2)]
        result = batch_distances(
            series, measure="euclidean", return_paths=True
        )
        assert result.paths == (None,)

    def test_validation(self):
        series = [make_series(8, seed=s) for s in range(3)]
        with pytest.raises(ValueError, match="workers"):
            batch_distances(series, workers=0)
        with pytest.raises(ValueError, match="at least one series"):
            batch_distances([], measure="dtw")
        with pytest.raises(ValueError, match="out of range"):
            batch_distances(series, pairs=[(0, 3)], measure="dtw")
        with pytest.raises(ValueError, match="out of range"):
            batch_distances(series, pairs=[(-1, 0)], measure="dtw")
        with pytest.raises(ValueError, match="unknown measure"):
            batch_distances(series, measure="nope")

    def test_worker_error_propagates(self):
        # unequal lengths are a per-pair error; it must surface from
        # the pool, not hang or vanish
        series = [make_series(8, seed=0), make_series(9, seed=1)]
        with pytest.raises(ValueError):
            batch_distances(series, measure="euclidean", workers=2)

    def test_normalize_uses_znorm_cache(self):
        series = [make_series(10, seed=s) for s in range(4)]
        result = batch_distances(
            series, measure="euclidean", normalize=True
        )
        # 6 pairs touch 12 series slots but only 4 distinct series:
        # 4 misses, 8 hits
        assert result.cache.znorm_misses == 4
        assert result.cache.znorm_hits == 8

    def test_cache_stats_merge_across_workers(self):
        series = [make_series(10, seed=s) for s in range(5)]
        result = batch_distances(
            series, measure="euclidean", normalize=True, workers=2
        )
        stats = result.cache
        # every pair resolves two series; totals must add up exactly
        # even though hits/misses happened in different processes
        assert stats.znorm_hits + stats.znorm_misses == 2 * len(result)
        # each worker misses each distinct series at most once
        assert stats.znorm_misses <= 2 * len(series)

    def test_spawn_start_method_works(self):
        series = [make_series(10, seed=s) for s in range(3)]
        serial = batch_distances(series, measure="dtw")
        spawned = batch_distances(
            series, measure="dtw", workers=2, start_method="spawn"
        )
        assert spawned.distances == serial.distances


class TestBatchLbKeogh:
    def test_matches_direct_lb_keogh(self):
        series = [make_series(20, seed=s) for s in range(4)]
        band = 3
        result = batch_lb_keogh(series, band=band)
        for (i, j), bound in zip(result.pairs, result.distances):
            env = envelope(series[i], band)
            assert bound == lb_keogh(env, series[j])

    def test_envelopes_computed_once_per_series(self):
        series = [make_series(20, seed=s) for s in range(5)]
        result = batch_lb_keogh(series, band=2)
        # 10 pairs need 10 query envelopes but only 4 distinct
        # queries appear on the left of some pair (series 4 never
        # does); the cache must collapse the rest
        assert result.cache.envelope_misses == 4
        assert result.cache.envelope_hits == 6

    def test_lower_bounds_the_banded_dtw(self):
        series = [make_series(25, seed=s) for s in range(4)]
        band = 4
        bounds = batch_lb_keogh(series, band=band)
        exact = batch_distances(series, measure="cdtw", band=band)
        for bound, distance in zip(bounds.distances, exact.distances):
            assert bound <= distance + 1e-9

    def test_parallel_identical_and_no_cells(self):
        series = [make_series(16, seed=s) for s in range(6)]
        serial = batch_lb_keogh(series, band=2)
        parallel = batch_lb_keogh(series, band=2, workers=4)
        assert serial.distances == parallel.distances
        assert serial.cells == parallel.cells == 0

    def test_validation(self):
        series = [make_series(8, seed=0)]
        with pytest.raises(ValueError, match="band"):
            batch_lb_keogh(series, band=-1)
        with pytest.raises(ValueError, match="workers"):
            batch_lb_keogh(series, band=1, workers=0)
