"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, cmd_advise, cmd_list, cmd_run, main
from repro.experiments import EXPERIMENTS


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_one_line_each(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == len(EXPERIMENTS)


class TestRun:
    def test_runs_cheap_experiment(self, capsys):
        assert main(["run", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "128" in out

    def test_runs_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        assert "Case A share" in capsys.readouterr().out

    def test_runs_fig3(self, capsys):
        assert main(["run", "fig3"]) == 0
        assert "34%" in capsys.readouterr().out

    def test_unknown_experiment_exits_2(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_paper_scale_flag_parses(self):
        args = build_parser().parse_args(["run", "fig2", "--paper-scale"])
        assert args.paper_scale is True


class TestBatch:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["batch"])
        assert args.measure == "cdtw"
        assert args.workers == 2
        assert args.count == 16

    def test_rejects_unknown_measure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["batch", "--measure", "emd"])

    def test_runs_and_reports_identical_cells(self, capsys):
        assert main([
            "batch", "--count", "6", "--length", "32", "--workers", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "cell accounting: identical" in out
        assert "workers=2" in out

    def test_bad_count_exits_2(self, capsys):
        assert main(["batch", "--count", "1"]) == 2
        assert "--count" in capsys.readouterr().err

    def test_bad_workers_exits_2(self, capsys):
        assert main(["batch", "--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().err


class TestKernels:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["kernels"])
        assert args.window == 0.1
        assert args.workers == 2
        assert args.out is None  # resolved per-mode in cmd_kernels
        assert args.smoke is False
        assert args.warm is False
        assert args.min_warm_speedup is None

    def test_smoke_run_writes_report(self, capsys, tmp_path):
        out = tmp_path / "bench.json"
        assert main([
            "kernels", "--smoke", "--workers", "1", "--out", str(out),
        ]) == 0
        stdout = capsys.readouterr().out
        assert "numpy_serial" in stdout
        assert "bit-identical" in stdout
        import json

        report = json.loads(out.read_text())
        assert report["parity"]["distances_identical"] is True
        assert report["parity"]["cells_identical"] is True
        assert "numpy_serial" in report["speedups_over_python_serial"]

    def test_dash_out_skips_writing(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main([
            "kernels", "--smoke", "--workers", "1", "--out", "-",
        ]) == 0
        assert "wrote" not in capsys.readouterr().out
        assert not (tmp_path / "BENCH_kernels.json").exists()

    def test_bad_workload_exits_2(self, capsys):
        assert main(["kernels", "--smoke", "--count", "0", "--out", "-"]) == 2
        assert "error" in capsys.readouterr().err

    def test_warm_smoke_writes_batch_report(self, capsys, tmp_path):
        out = tmp_path / "bench_batch.json"
        assert main([
            "kernels", "--warm", "--smoke", "--workers", "2",
            "--out", str(out),
        ]) == 0
        stdout = capsys.readouterr().out
        assert "python_workers_warm" in stdout
        assert "bit-identical" in stdout
        import json

        report = json.loads(out.read_text())
        assert report["cpu_count"] >= 1
        assert report["parity"]["distances_identical"] is True
        assert report["parity"]["cells_identical"] is True
        for label in (
            "python_serial", "python_workers_cold", "python_workers_warm",
            "numpy_serial", "numpy_workers_cold", "numpy_workers_warm",
        ):
            assert label in report["timings"]

    def test_warm_default_out_is_batch_json(self, capsys, tmp_path,
                                            monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["kernels", "--warm", "--smoke", "--workers", "2"]) == 0
        assert (tmp_path / "BENCH_batch.json").exists()
        assert not (tmp_path / "BENCH_kernels.json").exists()

    def test_warm_speedup_gate_fails_when_unmet(self, capsys):
        # an absurd threshold no machine meets: the gate must trip
        assert main([
            "kernels", "--warm", "--smoke", "--workers", "2",
            "--out", "-", "--min-warm-speedup", "1000",
        ]) == 1
        assert "below required" in capsys.readouterr().err


class TestAdvise:
    def test_case_a(self, capsys):
        assert main(["advise", "--n", "945", "--warping", "0.04"]) == 0
        out = capsys.readouterr().out
        assert "Case A" in out and "cDTW" in out

    def test_case_d(self, capsys):
        assert main(["advise", "--n", "5000", "--warping", "0.9"]) == 0
        assert "Case D" in capsys.readouterr().out

    def test_invalid_warping_exits_2(self, capsys):
        assert main(["advise", "--n", "100", "--warping", "2.0"]) == 2
        assert "error" in capsys.readouterr().err

    def test_requires_arguments(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["advise"])


class TestRuntime:
    def _document(self, capsys):
        import json

        return json.loads(capsys.readouterr().out)

    def test_prints_builtin_default_as_json(self, capsys):
        assert main(["runtime"]) == 0
        doc = self._document(capsys)
        assert doc["workers"] == 1
        assert doc["backend"] is None
        assert doc["backend_resolved"] == "python"
        assert doc["executor"] is None
        assert doc["chunksize"] == "auto"
        assert doc["parallel"] is False
        assert doc["traced"] is False

    def test_flags_override(self, capsys):
        assert main([
            "runtime", "--workers", "3", "--backend", "numpy",
            "--chunksize", "16",
        ]) == 0
        doc = self._document(capsys)
        assert doc["workers"] == 3
        assert doc["backend"] == "numpy"
        assert doc["backend_resolved"] == "numpy"
        assert doc["chunksize"] == 16
        assert doc["parallel"] is True

    def test_env_seeds_the_report(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert main(["runtime"]) == 0
        doc = self._document(capsys)
        assert doc["workers"] == 5
        assert doc["backend"] == "numpy"

    def test_flags_beat_env(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert main(["runtime", "--workers", "2"]) == 0
        assert self._document(capsys)["workers"] == 2

    def test_bad_backend_exits_2(self, capsys):
        assert main(["runtime", "--backend", "fortran"]) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_workers_exits_2(self, capsys):
        assert main(["runtime", "--workers", "0"]) == 2
        assert "workers must be >= 1" in capsys.readouterr().err

    def test_bad_chunksize_exits_2(self, capsys):
        assert main(["runtime", "--chunksize", "fast"]) == 2
        assert "--chunksize" in capsys.readouterr().err

    def test_chunksize_policies_pass_through(self, capsys):
        assert main(["runtime", "--chunksize", "legacy"]) == 0
        assert self._document(capsys)["chunksize"] == "legacy"


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_module_entry_point_importable(self):
        import repro.__main__  # noqa: F401
