"""Unit tests for sliding-window extraction."""

import pytest

from repro.preprocess.sliding import sliding_windows, subsequence_count


class TestSubsequenceCount:
    def test_basic(self):
        assert subsequence_count(10, 4) == 7

    def test_with_step(self):
        assert subsequence_count(10, 4, step=3) == 3

    def test_stream_shorter_than_window(self):
        assert subsequence_count(3, 4) == 0

    def test_exact_fit(self):
        assert subsequence_count(4, 4) == 1

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            subsequence_count(10, 0)
        with pytest.raises(ValueError):
            subsequence_count(10, 2, step=0)


class TestSlidingWindows:
    def test_yields_expected_pairs(self):
        got = list(sliding_windows([1, 2, 3, 4], 3))
        assert got == [(0, [1, 2, 3]), (1, [2, 3, 4])]

    def test_count_matches_formula(self):
        stream = list(range(25))
        for window, step in ((5, 1), (5, 3), (25, 1)):
            got = list(sliding_windows(stream, window, step))
            assert len(got) == subsequence_count(25, window, step)

    def test_windows_are_copies(self):
        stream = [1.0, 2.0, 3.0]
        (_, w), = sliding_windows(stream, 3)
        w[0] = 99.0
        assert stream[0] == 1.0

    def test_empty_when_too_short(self):
        assert list(sliding_windows([1, 2], 5)) == []

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            list(sliding_windows([1, 2], 0))
