"""Unit tests for normalisation (batch and streaming)."""

import math

import pytest

from repro.preprocess.normalize import RunningStats, znorm, znorm_subsequence
from tests.conftest import make_series


class TestZnorm:
    def test_zero_mean_unit_std(self):
        z = znorm(make_series(50, 1))
        assert sum(z) / len(z) == pytest.approx(0.0, abs=1e-9)
        var = sum(v * v for v in z) / len(z)
        assert math.sqrt(var) == pytest.approx(1.0)

    def test_constant_series_all_zeros(self):
        assert znorm([4.0] * 10) == [0.0] * 10

    def test_affine_invariance(self):
        x = make_series(30, 2)
        shifted = [5.0 * v - 3.0 for v in x]
        assert znorm(shifted) == pytest.approx(znorm(x))

    def test_single_sample(self):
        assert znorm([7.0]) == [0.0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            znorm([])

    def test_order_preserving(self):
        x = [1.0, 5.0, 3.0]
        z = znorm(x)
        assert z[0] < z[2] < z[1]


class TestRunningStats:
    def test_matches_batch_stats(self):
        stream = make_series(60, 3)
        window = 10
        rs = RunningStats(window)
        for i, v in enumerate(stream):
            rs.push(v)
            if i >= window - 1:
                seg = stream[i - window + 1:i + 1]
                mean = sum(seg) / window
                std = math.sqrt(sum((s - mean) ** 2 for s in seg) / window)
                assert rs.mean() == pytest.approx(mean, abs=1e-9)
                assert rs.std() == pytest.approx(max(std, 1e-12), abs=1e-7)

    def test_not_full_raises(self):
        rs = RunningStats(5)
        rs.push(1.0)
        with pytest.raises(ValueError, match="not yet full"):
            rs.mean()

    def test_full_flag(self):
        rs = RunningStats(2)
        assert not rs.full
        rs.push(1.0)
        rs.push(2.0)
        assert rs.full

    def test_constant_window_std_floored(self):
        rs = RunningStats(4)
        for _ in range(4):
            rs.push(3.0)
        assert rs.std() == pytest.approx(1e-12)

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            RunningStats(0)


class TestZnormSubsequence:
    def test_matches_direct(self):
        stream = make_series(40, 4)
        assert znorm_subsequence(stream, 5, 10) == pytest.approx(
            znorm(stream[5:15])
        )

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ValueError):
            znorm_subsequence([1.0, 2.0], 1, 5)
