"""Property tests for classification (Hypothesis)."""

import math

from hypothesis import given, settings, strategies as st

from repro.classify.knn import DistanceSpec, OneNearestNeighbor
from repro.core.cdtw import cdtw
from repro.core.euclidean import euclidean

finite = st.floats(
    min_value=-10, max_value=10, allow_nan=False, allow_infinity=False
)


@st.composite
def classification_tasks(draw):
    n = draw(st.integers(min_value=2, max_value=10))
    k = draw(st.integers(min_value=2, max_value=6))
    train = [
        draw(st.lists(finite, min_size=n, max_size=n)) for _ in range(k)
    ]
    labels = [draw(st.sampled_from(["a", "b", "c"])) for _ in range(k)]
    query = draw(st.lists(finite, min_size=n, max_size=n))
    return train, labels, query


@settings(deadline=None, max_examples=50)
@given(classification_tasks())
def test_1nn_euclidean_label_is_argmin(task):
    train, labels, query = task
    clf = OneNearestNeighbor(DistanceSpec("euclidean")).fit(train, labels)
    predicted = clf.predict_one(query)
    distances = [euclidean(query, t) for t in train]
    best = min(distances)
    # the predicted label must belong to some minimal-distance neighbour
    minimal_labels = {
        labels[i] for i, d in enumerate(distances)
        if math.isclose(d, best, rel_tol=1e-12, abs_tol=1e-12)
    }
    assert predicted in minimal_labels


@settings(deadline=None, max_examples=40)
@given(classification_tasks(), st.integers(min_value=0, max_value=4))
def test_1nn_cdtw_label_is_argmin(task, band):
    train, labels, query = task
    window = band / max(len(query), 1)
    window = min(window, 1.0)
    clf = OneNearestNeighbor(
        DistanceSpec("cdtw", window=window)
    ).fit(train, labels)
    predicted = clf.predict_one(query)
    distances = [cdtw(query, t, window=window).distance for t in train]
    best = min(distances)
    minimal_labels = {
        labels[i] for i, d in enumerate(distances)
        if math.isclose(d, best, rel_tol=1e-9, abs_tol=1e-9)
    }
    assert predicted in minimal_labels


@settings(deadline=None, max_examples=30)
@given(classification_tasks())
def test_training_member_classified_as_itself(task):
    train, labels, query = task
    clf = OneNearestNeighbor(DistanceSpec("euclidean")).fit(train, labels)
    # querying an exact training series returns a label of a
    # zero-distance neighbour
    predicted = clf.predict_one(train[0])
    zero_labels = {
        labels[i] for i, t in enumerate(train)
        if euclidean(train[0], t) == 0.0
    }
    assert predicted in zero_labels
