"""Unit tests for LOOCV and best-window search."""

import pytest

from repro.classify.knn import DistanceSpec
from repro.classify.loocv import best_window_search, loocv_error
from repro.datasets.gestures import gesture_dataset


@pytest.fixture(scope="module")
def warped_task():
    """Classes separable only with some warping tolerance."""
    data = gesture_dataset(
        n_classes=3, per_class=6, length=48,
        warp_fraction=0.10, noise_sigma=0.15, seed=8, name="loocv",
    )
    return [list(s) for s in data.series], list(data.labels)


class TestLoocvError:
    def test_perfectly_separable_zero_error(self):
        series = [[0.0] * 8] * 3 + [[9.0] * 8] * 3
        labels = ["a"] * 3 + ["b"] * 3
        assert loocv_error(series, labels,
                           DistanceSpec("euclidean")) == 0.0

    def test_error_in_unit_range(self, warped_task):
        series, labels = warped_task
        e = loocv_error(series, labels, DistanceSpec("cdtw", window=0.05))
        assert 0.0 <= e <= 1.0

    def test_needs_two_series(self):
        with pytest.raises(ValueError):
            loocv_error([[1.0]], ["a"], DistanceSpec("euclidean"))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            loocv_error([[1.0]], ["a", "b"], DistanceSpec("euclidean"))


class TestBestWindowSearch:
    def test_returns_searched_windows(self, warped_task):
        series, labels = warped_task
        windows = (0.0, 0.05, 0.10)
        res = best_window_search(series, labels, windows=windows)
        assert tuple(w for w, _ in res.errors) == windows
        assert res.best_window in windows

    def test_best_error_is_minimum(self, warped_task):
        series, labels = warped_task
        res = best_window_search(
            series, labels, windows=(0.0, 0.05, 0.10)
        )
        assert res.best_error == min(e for _, e in res.errors)

    def test_tie_breaks_to_smaller_window(self):
        # trivially separable: every window has zero error -> pick 0
        series = [[0.0] * 8] * 3 + [[9.0] * 8] * 3
        labels = ["a"] * 3 + ["b"] * 3
        res = best_window_search(series, labels, windows=(0.0, 0.1, 0.2))
        assert res.best_window == 0.0

    def test_warping_tolerance_helps_warped_classes(self, warped_task):
        # the Ratanamahatana observation, synthetic edition: some
        # warping must do at least as well as none
        series, labels = warped_task
        res = best_window_search(
            series, labels, windows=(0.0, 0.05, 0.10, 0.15)
        )
        e0 = dict(res.errors)[0.0]
        assert res.best_error <= e0

    def test_empty_windows_rejected(self, warped_task):
        series, labels = warped_task
        with pytest.raises(ValueError):
            best_window_search(series, labels, windows=())

    def test_lb_and_plain_agree(self, warped_task):
        series, labels = warped_task
        fast = best_window_search(
            series, labels, windows=(0.0, 0.08), use_lower_bounds=True
        )
        plain = best_window_search(
            series, labels, windows=(0.0, 0.08), use_lower_bounds=False
        )
        assert fast.errors == plain.errors
