"""Unit tests for the 1-NN classifier and DistanceSpec."""

import pytest

from repro.classify.knn import DistanceSpec, OneNearestNeighbor
from repro.datasets.gestures import gesture_dataset
from tests.conftest import make_series


class TestDistanceSpec:
    def test_cdtw_requires_window(self):
        with pytest.raises(ValueError, match="window"):
            DistanceSpec("cdtw")

    def test_fastdtw_requires_radius(self):
        with pytest.raises(ValueError, match="radius"):
            DistanceSpec("fastdtw")

    def test_euclidean_rejects_window(self):
        with pytest.raises(ValueError):
            DistanceSpec("euclidean", window=0.1)

    def test_cdtw_rejects_radius(self):
        with pytest.raises(ValueError):
            DistanceSpec("cdtw", window=0.1, radius=2)

    def test_unknown_measure(self):
        with pytest.raises(ValueError, match="unknown measure"):
            DistanceSpec("dtaidistance")

    def test_describe_paper_notation(self):
        assert DistanceSpec("cdtw", window=0.1).describe() == "cDTW_10"
        assert DistanceSpec("fastdtw", radius=20).describe() == "FastDTW_20"
        assert DistanceSpec("euclidean").describe() == "Euclidean"
        assert DistanceSpec("dtw").describe() == "Full DTW"


class TestClassifier:
    @pytest.fixture
    def tiny_task(self):
        # two trivially separable classes
        low = [[0.0 + 0.01 * i for i in range(10)] for _ in range(3)]
        high = [[5.0 + 0.01 * i for i in range(10)] for _ in range(3)]
        return low + high, ["low"] * 3 + ["high"] * 3

    @pytest.mark.parametrize("spec", [
        DistanceSpec("euclidean"),
        DistanceSpec("cdtw", window=0.1),
        DistanceSpec("cdtw", window=0.1, use_lower_bounds=True),
        DistanceSpec("dtw"),
        DistanceSpec("fastdtw", radius=2),
    ])
    def test_separable_task_perfect(self, tiny_task, spec):
        series, labels = tiny_task
        clf = OneNearestNeighbor(spec).fit(series, labels)
        assert clf.predict_one([0.2] * 10) == "low"
        assert clf.predict_one([4.9] * 10) == "high"

    def test_predict_batch(self, tiny_task):
        series, labels = tiny_task
        clf = OneNearestNeighbor(DistanceSpec("euclidean"))
        clf.fit(series, labels)
        assert clf.predict([[0.0] * 10, [5.0] * 10]) == ["low", "high"]

    def test_error_rate(self, tiny_task):
        series, labels = tiny_task
        clf = OneNearestNeighbor(DistanceSpec("euclidean"))
        clf.fit(series, labels)
        assert clf.error_rate(series, labels) == 0.0
        flipped = ["high" if l == "low" else "low" for l in labels]
        assert clf.error_rate(series, flipped) == 1.0

    def test_exclude_supports_loocv(self, tiny_task):
        series, labels = tiny_task
        clf = OneNearestNeighbor(DistanceSpec("euclidean"))
        clf.fit(series, labels)
        # excluding the identical self still classifies correctly here
        assert clf.predict_one(series[0], exclude=0) == "low"

    def test_unfitted_rejected(self):
        clf = OneNearestNeighbor(DistanceSpec("euclidean"))
        with pytest.raises(ValueError, match="not fitted"):
            clf.predict_one([1.0])

    def test_fit_validates_lengths(self):
        clf = OneNearestNeighbor(DistanceSpec("euclidean"))
        with pytest.raises(ValueError):
            clf.fit([[1.0]], ["a", "b"])

    def test_lb_accelerated_agrees_with_plain(self):
        data = gesture_dataset(
            n_classes=3, per_class=4, length=40, seed=2, name="t"
        )
        series = [list(s) for s in data.series]
        labels = list(data.labels)
        plain = OneNearestNeighbor(
            DistanceSpec("cdtw", window=0.1)
        ).fit(series, labels)
        fast = OneNearestNeighbor(
            DistanceSpec("cdtw", window=0.1, use_lower_bounds=True)
        ).fit(series, labels)
        queries = [make_series(40, s) for s in range(5)]
        assert plain.predict(queries) == fast.predict(queries)

    def test_cells_accumulate(self, tiny_task):
        series, labels = tiny_task
        clf = OneNearestNeighbor(DistanceSpec("cdtw", window=0.2))
        clf.fit(series, labels)
        clf.predict_one([0.0] * 10)
        assert clf.cells_evaluated > 0
