"""Unit tests for the k-NN majority-vote classifier."""

import pytest

from repro.classify.knn import DistanceSpec, KNearestNeighbors, OneNearestNeighbor
from repro.datasets.gestures import gesture_dataset


@pytest.fixture
def separable():
    series = [[0.0 + 0.1 * i] * 8 for i in range(4)] + [
        [5.0 + 0.1 * i] * 8 for i in range(4)
    ]
    labels = ["low"] * 4 + ["high"] * 4
    return series, labels


class TestKnn:
    def test_k1_matches_1nn(self, separable):
        series, labels = separable
        knn = KNearestNeighbors(DistanceSpec("euclidean"), k=1)
        onenn = OneNearestNeighbor(DistanceSpec("euclidean"))
        knn.fit(series, labels)
        onenn.fit(series, labels)
        queries = [[0.5] * 8, [4.7] * 8, [2.4] * 8]
        assert knn.predict(queries) == onenn.predict(queries)

    def test_k3_majority_vote(self, separable):
        series, labels = separable
        clf = KNearestNeighbors(DistanceSpec("euclidean"), k=3)
        clf.fit(series, labels)
        assert clf.predict_one([0.2] * 8) == "low"
        assert clf.predict_one([5.2] * 8) == "high"

    def test_majority_overrules_single_outlier(self):
        # one 'b' plant sits nearest, but two 'a's are next: k=3 votes 'a'
        series = [[0.0] * 4, [0.2] * 4, [0.05] * 4, [9.0] * 4]
        labels = ["a", "a", "b", "b"]
        clf = KNearestNeighbors(DistanceSpec("euclidean"), k=3)
        clf.fit(series, labels)
        assert clf.predict_one([0.06] * 4) == "a"

    def test_vote_tie_breaks_to_nearest(self):
        series = [[0.0] * 4, [1.0] * 4, [10.0] * 4, [11.0] * 4]
        labels = ["a", "a", "b", "b"]
        clf = KNearestNeighbors(DistanceSpec("euclidean"), k=4)
        clf.fit(series, labels)
        # 2-2 tie; nearest neighbour is 'a'
        assert clf.predict_one([0.5] * 4) == "a"

    def test_error_rate(self, separable):
        series, labels = separable
        clf = KNearestNeighbors(DistanceSpec("euclidean"), k=3)
        clf.fit(series, labels)
        assert clf.error_rate(series, labels) == 0.0

    def test_with_cdtw_distance(self):
        data = gesture_dataset(
            n_classes=2, per_class=5, length=32, noise_sigma=0.1,
            seed=12, name="knn",
        )
        series = [list(s) for s in data.series]
        labels = list(data.labels)
        clf = KNearestNeighbors(
            DistanceSpec("cdtw", window=0.1), k=3
        ).fit(series, labels)
        assert clf.error_rate(series, labels) <= 0.2

    def test_validation(self, separable):
        series, labels = separable
        with pytest.raises(ValueError, match="k must be positive"):
            KNearestNeighbors(DistanceSpec("euclidean"), k=0)
        clf = KNearestNeighbors(DistanceSpec("euclidean"), k=3)
        with pytest.raises(ValueError, match="not fitted"):
            clf.predict_one([1.0])
        with pytest.raises(ValueError, match="at least k"):
            clf.fit(series[:2], labels[:2])
        with pytest.raises(ValueError, match="equal length"):
            clf.fit(series, labels[:-1])
