"""Unit tests for learned (R-K style) warping bands."""

import pytest

from repro.classify.learned_band import (
    learn_band_radii,
    learned_band_dtw,
    window_from_radii,
)
from repro.core.cdtw import cdtw
from repro.core.dtw import dtw
from repro.datasets.gestures import gesture_dataset
from tests.conftest import make_series


@pytest.fixture(scope="module")
def warped_data():
    data = gesture_dataset(
        n_classes=2, per_class=5, length=48,
        warp_fraction=0.06, noise_sigma=0.1, seed=13, name="rk",
    )
    return [list(s) for s in data.series], list(data.labels)


class TestLearnBandRadii:
    def test_one_radius_per_row(self, warped_data):
        series, labels = warped_data
        radii = learn_band_radii(series, labels)
        assert len(radii) == 48

    def test_covers_training_alignments(self, warped_data):
        # every same-class training alignment must fit in the band
        series, labels = warped_data
        radii = learn_band_radii(series, labels, slack=0, smooth=0)
        for a in range(len(series)):
            for b in range(a + 1, len(series)):
                if labels[a] != labels[b]:
                    continue
                path = dtw(series[a], series[b], return_path=True).path
                for i, j in path:
                    assert abs(j - i) <= radii[i]

    def test_slack_widens(self, warped_data):
        series, labels = warped_data
        tight = learn_band_radii(series, labels, slack=0)
        loose = learn_band_radii(series, labels, slack=3)
        assert all(l == t + 3 for t, l in zip(tight, loose))

    def test_smoothing_is_sliding_max(self, warped_data):
        series, labels = warped_data
        raw = learn_band_radii(series, labels, slack=0, smooth=0)
        smoothed = learn_band_radii(series, labels, slack=0, smooth=2)
        assert all(s >= r for r, s in zip(raw, smoothed))

    def test_identical_series_learn_zero_band(self):
        x = make_series(20, 1)
        radii = learn_band_radii([x, x, x], slack=0, smooth=0)
        assert radii == [0] * 20

    def test_narrower_than_uniform_worst_case(self, warped_data):
        # the R-K point: the learned band's area is below the uniform
        # band at the worst-case radius
        series, labels = warped_data
        radii = learn_band_radii(series, labels, slack=0, smooth=0)
        worst = max(radii)
        learned_area = sum(2 * r + 1 for r in radii)
        uniform_area = len(radii) * (2 * worst + 1)
        assert learned_area <= uniform_area

    def test_validation(self, warped_data):
        series, labels = warped_data
        with pytest.raises(ValueError, match="two training"):
            learn_band_radii(series[:1])
        with pytest.raises(ValueError, match="lengths differ"):
            learn_band_radii([[1.0, 2.0], [1.0]])
        with pytest.raises(ValueError, match="labels"):
            learn_band_radii(series, labels[:-1])
        with pytest.raises(ValueError, match="same-class"):
            learn_band_radii(series[:2], ["a", "b"])


class TestWindowFromRadii:
    def test_corners_present(self):
        w = window_from_radii([2, 2, 2, 2])
        assert w.contains(0, 0) and w.contains(3, 3)

    def test_wider_radii_wider_window(self):
        narrow = window_from_radii([1] * 10)
        wide = window_from_radii([4] * 10)
        assert narrow.cell_count() < wide.cell_count()

    def test_rectangular_target(self):
        w = window_from_radii([2] * 8, m=12)
        assert w.n == 8 and w.m == 12

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            window_from_radii([1, -1])


class TestLearnedBandDtw:
    def test_upper_bounds_full_dtw(self, warped_data):
        series, labels = warped_data
        radii = learn_band_radii(series, labels)
        d = learned_band_dtw(series[0], series[1], radii).distance
        assert d >= dtw(series[0], series[1]).distance - 1e-9

    def test_fewer_cells_than_worstcase_uniform(self, warped_data):
        series, labels = warped_data
        radii = learn_band_radii(series, labels, slack=0, smooth=0)
        worst = max(radii)
        learned = learned_band_dtw(series[0], series[1], radii)
        uniform = cdtw(series[0], series[1], band=worst)
        assert learned.cells <= uniform.cells

    def test_exact_on_training_pairs(self, warped_data):
        # the band was built to contain these alignments, so the
        # constrained distance equals Full DTW on training pairs
        series, labels = warped_data
        radii = learn_band_radii(series, labels, slack=0, smooth=0)
        for a, b in ((0, 1), (1, 2)):
            if labels[a] != labels[b]:
                continue
            full = dtw(series[a], series[b]).distance
            banded = learned_band_dtw(series[a], series[b], radii).distance
            assert banded == pytest.approx(full)

    def test_length_mismatch_rejected(self, warped_data):
        series, labels = warped_data
        radii = learn_band_radii(series, labels)
        with pytest.raises(ValueError, match="length"):
            learned_band_dtw(series[0][:-1], series[1], radii)
