"""Indexed vs index-free consumers: bit-identical results everywhere.

The ``index=`` fast path must be invisible in every consumer's output:
same neighbour, same distance, same discord, same motif, same LOOCV
error -- across worker counts, backends and the persistent executor.
The acceptance grid (workers 1/2/4 x python/numpy x executor) runs
here; the mismatch gates (wrong band, mutated data, wrong kind) prove
a stale index can never be consulted silently.
"""

import math

import pytest

from repro.anomaly.discord import find_discord
from repro.classify.knn import DistanceSpec, OneNearestNeighbor
from repro.classify.loocv import loocv_error
from repro.index import IndexMismatchError, build_index, build_stream_index
from repro.motifs.discovery import find_motif
from repro.runtime import Runtime
from repro.search.nn_search import nearest_neighbor
from repro.search.subsequence import (
    subsequence_search,
    subsequence_search_topk,
)
from tests.conftest import make_series

BAND = 2
QUERY = make_series(20, seed=500)
CANDS = [make_series(20, seed=501 + i) for i in range(8)]
STREAM = make_series(80, seed=520)
WINDOW = 12
LABELS = ["a", "b"] * 4

RUNTIMES = [
    pytest.param(None, id="default"),
    pytest.param(Runtime(workers=1, backend="python"), id="w1-python"),
    pytest.param(Runtime(workers=2, backend="python"), id="w2-python"),
    pytest.param(Runtime(workers=4, backend="python"), id="w4-python"),
    pytest.param(Runtime(workers=1, backend="numpy"), id="w1-numpy"),
    pytest.param(Runtime(workers=2, backend="numpy"), id="w2-numpy"),
    pytest.param(Runtime(workers=4, backend="numpy"), id="w4-numpy"),
    pytest.param(
        Runtime(workers=4, backend="numpy", executor="default"),
        id="w4-numpy-executor",
    ),
]


def _skip_if_numpy_missing(rt):
    if rt is not None and rt.backend_name == "numpy":
        pytest.importorskip("numpy")


@pytest.fixture(scope="module")
def coll_index():
    return build_index(CANDS, band=BAND)


@pytest.fixture(scope="module")
def stream_index():
    return build_stream_index(STREAM, window=WINDOW, band=BAND)


class TestNearestNeighbor:
    @pytest.mark.parametrize("rt", RUNTIMES)
    def test_indexed_matches_unindexed(self, rt, coll_index):
        _skip_if_numpy_missing(rt)
        plain = nearest_neighbor(QUERY, CANDS, band=BAND)
        fast = nearest_neighbor(
            QUERY, CANDS, band=BAND, runtime=rt, index=coll_index
        )
        assert (fast.index, fast.distance) == (plain.index, plain.distance)
        assert fast.stats is not None
        assert fast.cells == fast.stats.cells

    def test_index_restricted_to_cdtw_lb(self, coll_index):
        with pytest.raises(ValueError, match="cdtw\\+lb"):
            nearest_neighbor(
                QUERY, CANDS, strategy="cdtw", band=BAND, index=coll_index
            )

    def test_wrong_band_rejected(self, coll_index):
        with pytest.raises(IndexMismatchError, match="band"):
            nearest_neighbor(QUERY, CANDS, band=BAND + 1, index=coll_index)

    def test_mutated_candidates_rejected(self, coll_index):
        mutated = [list(c) for c in CANDS]
        mutated[0][0] += 1.0
        with pytest.raises(IndexMismatchError, match="fingerprint"):
            nearest_neighbor(QUERY, mutated, band=BAND, index=coll_index)

    def test_wrong_kind_rejected(self, stream_index):
        wins = [list(s) for s in stream_index.series]
        with pytest.raises(IndexMismatchError, match="kind"):
            nearest_neighbor(
                wins[0], wins[1:], band=BAND, index=stream_index
            )

    def test_normalized_index_rejected(self):
        # a normalize=True index over the same raw candidates shares
        # their source fingerprint, so only the normalize pin stands
        # between the scan and z-normalised series the index-free
        # path never compares
        normed = build_index(CANDS, band=BAND, normalize=True)
        with pytest.raises(IndexMismatchError, match="normalize"):
            nearest_neighbor(QUERY, CANDS, band=BAND, index=normed)


class TestSubsequence:
    @pytest.mark.parametrize("rt", RUNTIMES)
    def test_search_indexed_matches_unindexed(self, rt, stream_index):
        _skip_if_numpy_missing(rt)
        q = make_series(WINDOW, seed=530)
        plain = subsequence_search(q, STREAM, band=BAND)
        fast = subsequence_search(
            q, STREAM, band=BAND, runtime=rt, index=stream_index
        )
        assert (fast.start, fast.distance, fast.windows) == (
            plain.start, plain.distance, plain.windows
        )

    @pytest.mark.parametrize("rt", RUNTIMES)
    def test_topk_indexed_matches_unindexed(self, rt, stream_index):
        _skip_if_numpy_missing(rt)
        q = make_series(WINDOW, seed=531)
        plain = subsequence_search_topk(q, STREAM, band=BAND, k=3)
        fast = subsequence_search_topk(
            q, STREAM, band=BAND, k=3, runtime=rt, index=stream_index
        )
        assert [(m.start, m.distance) for m in fast] == [
            (m.start, m.distance) for m in plain
        ]

    def test_step_mismatch_rejected(self, stream_index):
        q = make_series(WINDOW, seed=532)
        with pytest.raises(IndexMismatchError, match="step"):
            subsequence_search(
                q, STREAM, band=BAND, step=2, index=stream_index
            )

    def test_normalize_mismatch_rejected(self, stream_index):
        q = make_series(WINDOW, seed=533)
        with pytest.raises(IndexMismatchError, match="normalize"):
            subsequence_search(
                q, STREAM, band=BAND, normalize=False, index=stream_index
            )

    def test_mutated_stream_rejected(self, stream_index):
        q = make_series(WINDOW, seed=534)
        other = list(STREAM)
        other[10] += 0.5
        with pytest.raises(IndexMismatchError, match="fingerprint"):
            subsequence_search(q, other, band=BAND, index=stream_index)


class TestClassification:
    @pytest.mark.parametrize("rt", RUNTIMES)
    def test_loocv_error_identical(self, rt, coll_index):
        _skip_if_numpy_missing(rt)
        spec = DistanceSpec("cdtw", window=BAND / 20, use_lower_bounds=True)
        plain = loocv_error(CANDS, LABELS, spec)
        fast = loocv_error(
            CANDS, LABELS, spec, runtime=rt, index=coll_index
        )
        assert fast == plain

    def test_predictions_identical(self, coll_index):
        spec = DistanceSpec("cdtw", window=BAND / 20, use_lower_bounds=True)
        plain = OneNearestNeighbor(spec).fit(CANDS, LABELS)
        fast = OneNearestNeighbor(spec, index=coll_index).fit(
            CANDS, LABELS
        )
        queries = [make_series(20, seed=540 + i) for i in range(4)]
        assert fast.predict(queries) == plain.predict(queries)

    def test_index_requires_lower_bounded_cdtw(self, coll_index):
        with pytest.raises(ValueError, match="cdtw"):
            OneNearestNeighbor(
                DistanceSpec("fastdtw", radius=1), index=coll_index
            )
        with pytest.raises(ValueError, match="use_lower_bounds"):
            OneNearestNeighbor(
                DistanceSpec(
                    "cdtw", window=0.1, use_lower_bounds=False
                ),
                index=coll_index,
            )

    def test_fit_rejects_foreign_training_set(self, coll_index):
        spec = DistanceSpec("cdtw", window=BAND / 20, use_lower_bounds=True)
        other = [make_series(20, seed=550 + i) for i in range(8)]
        with pytest.raises(IndexMismatchError, match="fingerprint"):
            OneNearestNeighbor(spec, index=coll_index).fit(other, LABELS)

    def test_fit_rejects_normalized_index(self):
        # same fingerprint as the raw training set, but the stored
        # series are z-normalised views; fit must pin normalize=False
        spec = DistanceSpec("cdtw", window=BAND / 20, use_lower_bounds=True)
        normed = build_index(CANDS, band=BAND, normalize=True)
        with pytest.raises(IndexMismatchError, match="normalize"):
            OneNearestNeighbor(spec, index=normed).fit(CANDS, LABELS)


class TestAnomalyAndMotifs:
    @pytest.mark.parametrize("rt", RUNTIMES)
    def test_discord_identical_including_call_count(
        self, rt, stream_index
    ):
        _skip_if_numpy_missing(rt)
        plain = find_discord(STREAM, window=WINDOW, band=BAND)
        fast = find_discord(
            STREAM, window=WINDOW, band=BAND, runtime=rt,
            index=stream_index,
        )
        # the indexed scan keeps the serial loop structure, so even
        # distance_calls must match the serial reference
        assert fast == plain

    @pytest.mark.parametrize("rt", RUNTIMES)
    def test_motif_identical_including_call_count(self, rt, stream_index):
        _skip_if_numpy_missing(rt)
        plain = find_motif(STREAM, window=WINDOW, band=BAND)
        fast = find_motif(
            STREAM, window=WINDOW, band=BAND, runtime=rt,
            index=stream_index,
        )
        assert fast == plain

    def test_discord_window_mismatch_rejected(self, stream_index):
        with pytest.raises(IndexMismatchError, match="window"):
            find_discord(
                STREAM, window=WINDOW + 1, band=BAND, index=stream_index
            )

    def test_motif_band_mismatch_rejected(self, stream_index):
        with pytest.raises(IndexMismatchError, match="band"):
            find_motif(
                STREAM, window=WINDOW, band=BAND + 2, index=stream_index
            )


class TestLoadedIndexServesConsumers:
    def test_round_tripped_index_gives_identical_results(self, tmp_path):
        from repro.index import load_index, save_index

        idx = build_index(CANDS, band=BAND)
        path = tmp_path / "nn.idx"
        save_index(idx, path)
        loaded = load_index(path)
        plain = nearest_neighbor(QUERY, CANDS, band=BAND)
        fast = nearest_neighbor(QUERY, CANDS, band=BAND, index=loaded)
        assert (fast.index, fast.distance) == (plain.index, plain.distance)
