"""``index.*`` observability counters: derived, flushed, and invariant.

The searcher's counters are *derived* from the same CascadeStats the
results carry, so a trace snapshot and the returned stats must
reconcile exactly, and the whole counter set must be identical across
worker counts, backends and the persistent executor (the indexed scan
is sequential; the runtime only contributes its backend, and every
stage it counts is bit-identical by construction).
"""

from dataclasses import astuple

import pytest

from repro.index import build_index, build_stream_index
from repro.obs import RunTrace
from repro.runtime import Runtime
from repro.search.nn_search import nearest_neighbor
from repro.search.subsequence import subsequence_search_topk
from tests.conftest import make_series

BAND = 2
QUERY = make_series(20, seed=600)
CANDS = [make_series(20, seed=601 + i) for i in range(8)]
STREAM = make_series(64, seed=620)
WINDOW = 12

INDEX_COUNTERS = (
    "index.hits",
    "index.artifacts_reused",
    "index.lb_improved_prunes",
    "index.reused_exact",
)

RUNTIMES = [
    pytest.param(Runtime(workers=1, backend="python"), id="w1-python"),
    pytest.param(Runtime(workers=2, backend="python"), id="w2-python"),
    pytest.param(Runtime(workers=4, backend="python"), id="w4-python"),
    pytest.param(Runtime(workers=1, backend="numpy"), id="w1-numpy"),
    pytest.param(Runtime(workers=2, backend="numpy"), id="w2-numpy"),
    pytest.param(Runtime(workers=4, backend="numpy"), id="w4-numpy"),
    pytest.param(
        Runtime(workers=4, backend="numpy", executor="default"),
        id="w4-numpy-executor",
    ),
]


def _skip_if_numpy_missing(rt):
    if rt.backend_name == "numpy":
        pytest.importorskip("numpy")


def _snapshot(trace):
    return {name: trace.counter(name) for name in INDEX_COUNTERS}


def _loocv_counters(rt):
    idx = build_index(CANDS, band=BAND)
    searcher = idx.searcher(runtime=rt, share_exact=True)
    stats_totals = {"pruned_improved": 0, "reused_exact": 0,
                    "artifacts": 0}
    with RunTrace() as trace:
        for i, q in enumerate(CANDS):
            hit = searcher.nearest(q, exclude=i, query_index=i)
            stats_totals["pruned_improved"] += hit.stats.pruned_improved
            stats_totals["reused_exact"] += hit.stats.reused_exact
            stats_totals["artifacts"] += hit.artifacts_reused
    return _snapshot(trace), stats_totals


class TestCountersReconcile:
    def test_counters_derive_from_returned_stats(self):
        counters, totals = _loocv_counters(
            Runtime(workers=1, backend="python")
        )
        assert counters["index.hits"] == len(CANDS)
        assert counters["index.artifacts_reused"] == totals["artifacts"]
        assert (
            counters["index.lb_improved_prunes"]
            == totals["pruned_improved"]
        )
        assert counters["index.reused_exact"] == totals["reused_exact"]
        # the workload actually exercises the counters it checks
        assert totals["artifacts"] > 0
        assert totals["reused_exact"] > 0

    @pytest.mark.parametrize("rt", RUNTIMES)
    def test_counters_invariant_across_runtimes(self, rt):
        _skip_if_numpy_missing(rt)
        reference, _ = _loocv_counters(
            Runtime(workers=1, backend="python")
        )
        got, _ = _loocv_counters(rt)
        assert got == reference

    def test_nearest_neighbor_indexed_increments_hits(self):
        idx = build_index(CANDS, band=BAND)
        with RunTrace() as trace:
            nearest_neighbor(QUERY, CANDS, band=BAND, index=idx)
        assert trace.counter("index.hits") == 1
        assert trace.counter("index.artifacts_reused") > 0

    def test_scan_close_flushes_once(self):
        idx = build_stream_index(STREAM, window=WINDOW, band=BAND)
        searcher = idx.searcher()
        q = make_series(WINDOW, seed=630)
        with RunTrace() as trace:
            scan = searcher.scan(q)
            scan.distance(0)
            scan.close()
            scan.close()  # idempotent: no double counting
        assert trace.counter("index.hits") == 1

    def test_topk_scan_flushes_through_context_manager(self):
        idx = build_stream_index(STREAM, window=WINDOW, band=BAND)
        q = make_series(WINDOW, seed=631)
        with RunTrace() as trace:
            subsequence_search_topk(
                q, STREAM, band=BAND, k=2, index=idx
            )
        assert trace.counter("index.hits") == 1
        assert trace.counter("index.artifacts_reused") > 0


class TestNnStatsParity:
    """Satellite: ``NnResult.stats`` is populated -- identically -- on
    every ``"cdtw+lb"`` path, including the chunk-prefilter one."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_stats_populated_and_tuple_equal_across_workers(
        self, workers, backend
    ):
        if backend == "numpy":
            pytest.importorskip("numpy")
        reference = nearest_neighbor(
            QUERY, CANDS, band=BAND,
            runtime=Runtime(workers=1, backend=backend),
        )
        assert reference.stats is not None
        got = nearest_neighbor(
            QUERY, CANDS, band=BAND,
            runtime=Runtime(workers=workers, backend=backend),
        )
        assert got.stats is not None
        assert astuple(got.stats) == astuple(reference.stats)
        assert (got.index, got.distance, got.cells) == (
            reference.index, reference.distance, reference.cells
        )

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_indexed_stats_tuple_equal_across_runtimes(self, backend):
        if backend == "numpy":
            pytest.importorskip("numpy")
        idx = build_index(CANDS, band=BAND)
        reference = nearest_neighbor(
            QUERY, CANDS, band=BAND, index=idx,
            runtime=Runtime(workers=1, backend="python"),
        )
        got = nearest_neighbor(
            QUERY, CANDS, band=BAND, index=idx,
            runtime=Runtime(workers=4, backend=backend,
                            executor="default"),
        )
        assert astuple(got.stats) == astuple(reference.stats)
        assert (got.index, got.distance, got.cells) == (
            reference.index, reference.distance, reference.cells
        )

    def test_stats_counters_account_every_candidate(self):
        result = nearest_neighbor(QUERY, CANDS, band=BAND)
        s = result.stats
        assert s.candidates == len(CANDS)
        assert (
            s.pruned_total() + s.full_dtw + s.reused_exact
            == s.candidates
        )
