"""Building a DatasetIndex: artifacts, parameters, verification.

The index's whole value is that its precomputed artifacts are
*bit-identical* to what the live query path would compute -- envelopes
via the same kernels, z-normalised windows via the same ``znorm``,
moments via the same formulas.  These tests pin that, plus the
degenerate bands (constant series, length-2 series, band 0, band wider
than the series) and the verification API that gates every consumer.
"""

import math

import pytest

from repro.batch.shm import pack_dataset
from repro.index import (
    DatasetIndex,
    IndexMismatchError,
    build_index,
    build_stream_index,
)
from repro.lowerbounds.envelope import envelope
from repro.preprocess.normalize import znorm
from repro.preprocess.sliding import sliding_windows
from tests.conftest import make_series

SERIES = [make_series(20, seed=300 + i) for i in range(6)]
STREAM = make_series(60, seed=310)


class TestCollectionArtifacts:
    def test_series_stored_verbatim(self):
        idx = build_index(SERIES, band=2)
        assert [list(s) for s in idx.series] == SERIES
        assert idx.kind == "collection"
        assert idx.normalize is False
        assert idx.starts == ()
        assert idx.step == 1
        assert idx.window == 20
        assert len(idx) == 6
        assert idx.length == 20

    def test_envelopes_match_live_path(self):
        idx = build_index(SERIES, band=3)
        for i, s in enumerate(SERIES):
            env = envelope(s, 3)
            assert list(idx.upper[i]) == env.upper
            assert list(idx.lower[i]) == env.lower
            stored = idx.envelope(i)
            assert stored.band == 3
            assert stored.upper == env.upper
            assert stored.lower == env.lower

    def test_kim_endpoint_features(self):
        idx = build_index(SERIES, band=2)
        assert list(idx.kim) == [(s[0], s[-1]) for s in SERIES]

    def test_moments_match_znorm_formulas(self):
        idx = build_index(SERIES, band=2)
        for (mean, std), s in zip(idx.moments, SERIES):
            n = len(s)
            want_mean = sum(s) / n
            want_std = math.sqrt(
                sum((v - want_mean) ** 2 for v in s) / n
            )
            assert mean == want_mean
            assert std == want_std

    def test_normalized_collection_stores_znormed_views(self):
        idx = build_index(SERIES, band=2, normalize=True)
        assert [list(s) for s in idx.series] == [
            znorm(s) for s in SERIES
        ]
        # moments still describe the raw values
        assert idx.moments[0][0] == sum(SERIES[0]) / len(SERIES[0])

    def test_fingerprint_is_the_shm_content_hash(self):
        idx = build_index(SERIES, band=2)
        _, _, want = pack_dataset(SERIES)
        assert idx.source_fingerprint == want


class TestStreamArtifacts:
    def test_windows_match_sliding_plus_znorm(self):
        idx = build_stream_index(STREAM, window=12, band=2)
        want_starts, want_windows = [], []
        for start, w in sliding_windows(STREAM, 12, 1):
            want_starts.append(start)
            want_windows.append(znorm(w))
        assert list(idx.starts) == want_starts
        assert [list(s) for s in idx.series] == want_windows
        assert idx.kind == "windows"
        assert idx.normalize is True
        assert idx.window == 12

    def test_step_and_raw_windows(self):
        idx = build_stream_index(
            STREAM, window=10, band=1, step=4, normalize=False
        )
        assert list(idx.starts) == list(range(0, len(STREAM) - 10 + 1, 4))
        assert list(idx.series[0]) == STREAM[:10]

    def test_fingerprint_hashes_the_stream(self):
        idx = build_stream_index(STREAM, window=12, band=2)
        _, _, want = pack_dataset([STREAM])
        assert idx.source_fingerprint == want


class TestDegenerateBands:
    def test_constant_series_envelope_is_flat(self):
        flat = [[2.5] * 8, [0.0] * 8]
        for band in (0, 1, 8, 20):
            idx = build_index(flat, band=band)
            for i, s in enumerate(flat):
                assert list(idx.upper[i]) == s
                assert list(idx.lower[i]) == s

    def test_length_two_series(self):
        short = [[0.0, 1.0], [3.0, -2.0], [1.0, 1.0]]
        for band in (0, 1, 2, 5):
            idx = build_index(short, band=band)
            for i, s in enumerate(short):
                env = envelope(s, band)
                assert list(idx.upper[i]) == env.upper
                assert list(idx.lower[i]) == env.lower
        # band 0: the envelope is the series itself
        idx0 = build_index(short, band=0)
        assert [list(u) for u in idx0.upper] == short
        assert [list(l) for l in idx0.lower] == short

    def test_band_wider_than_series_is_global_extremes(self):
        idx = build_index(SERIES, band=100)
        for i, s in enumerate(SERIES):
            assert set(idx.upper[i]) == {max(s)}
            assert set(idx.lower[i]) == {min(s)}

    def test_constant_window_stream_znorm_zeroes(self):
        stream = [1.0] * 6 + make_series(10, seed=320)
        idx = build_stream_index(stream, window=6, band=1)
        # the first window is constant; znorm maps it to all zeros and
        # its envelope is flat zero
        assert list(idx.series[0]) == [0.0] * 6
        assert list(idx.upper[0]) == [0.0] * 6
        assert list(idx.lower[0]) == [0.0] * 6


class TestRequireAndVerify:
    def test_require_passes_and_chains(self):
        idx = build_index(SERIES, band=2)
        assert idx.require(kind="collection", band=2, length=20,
                           count=6) is idx

    def test_require_names_the_differing_field(self):
        idx = build_index(SERIES, band=2)
        with pytest.raises(IndexMismatchError, match="band is 2"):
            idx.require(band=5)
        with pytest.raises(IndexMismatchError, match="kind"):
            idx.require(kind="windows")
        with pytest.raises(IndexMismatchError, match="normalize"):
            idx.require(normalize=True)

    def test_require_unknown_key_is_a_type_error(self):
        idx = build_index(SERIES, band=2)
        with pytest.raises(TypeError, match="unknown index requirement"):
            idx.require(bands=2)

    def test_verify_collection_accepts_the_source(self):
        idx = build_index(SERIES, band=2)
        assert idx.verify_collection(SERIES) is idx

    def test_verify_collection_rejects_one_mutated_sample(self):
        idx = build_index(SERIES, band=2)
        mutated = [list(s) for s in SERIES]
        mutated[3][7] += 1e-9
        with pytest.raises(IndexMismatchError,
                           match="fingerprint mismatch"):
            idx.verify_collection(mutated)

    def test_verify_stream_rejects_different_stream(self):
        idx = build_stream_index(STREAM, window=12, band=2)
        assert idx.verify_stream(STREAM) is idx
        with pytest.raises(IndexMismatchError,
                           match="fingerprint mismatch"):
            idx.verify_stream(STREAM[:-1])

    def test_verify_wrong_kind_rejected(self):
        coll = build_index(SERIES, band=2)
        with pytest.raises(IndexMismatchError, match="kind"):
            coll.verify_stream(STREAM)
        wins = build_stream_index(STREAM, window=12, band=2)
        with pytest.raises(IndexMismatchError, match="kind"):
            wins.verify_collection(SERIES)

    def test_mismatch_error_is_a_value_error(self):
        assert issubclass(IndexMismatchError, ValueError)


class TestBuildErrors:
    def test_empty_collection(self):
        with pytest.raises(ValueError, match="empty collection"):
            build_index([], band=2)

    def test_ragged_collection(self):
        with pytest.raises(ValueError, match="equal-length"):
            build_index([SERIES[0], SERIES[1][:10]], band=2)

    def test_negative_band(self):
        with pytest.raises(ValueError, match="band"):
            build_index(SERIES, band=-1)
        with pytest.raises(ValueError, match="band"):
            build_stream_index(STREAM, window=12, band=-1)

    def test_stream_shorter_than_window(self):
        with pytest.raises(ValueError, match="shorter than window"):
            build_stream_index(STREAM[:5], window=12, band=2)

    def test_bad_window_or_step(self):
        with pytest.raises(ValueError, match="positive"):
            build_stream_index(STREAM, window=0, band=2)
        with pytest.raises(ValueError, match="positive"):
            build_stream_index(STREAM, window=12, band=2, step=0)

    def test_dataclass_validation_rejects_ragged_blocks(self):
        idx = build_index(SERIES, band=2)
        with pytest.raises(ValueError, match="ragged"):
            DatasetIndex(
                kind=idx.kind, band=idx.band, normalize=idx.normalize,
                step=idx.step, window=idx.window, starts=idx.starts,
                source_fingerprint=idx.source_fingerprint,
                series=idx.series, upper=idx.upper[:-1],
                lower=idx.lower, kim=idx.kim, moments=idx.moments,
            )

    def test_dataclass_validation_rejects_unknown_kind(self):
        idx = build_index(SERIES, band=2)
        with pytest.raises(ValueError, match="kind"):
            DatasetIndex(
                kind="streams", band=idx.band, normalize=idx.normalize,
                step=idx.step, window=idx.window, starts=idx.starts,
                source_fingerprint=idx.source_fingerprint,
                series=idx.series, upper=idx.upper, lower=idx.lower,
                kim=idx.kim, moments=idx.moments,
            )


@pytest.mark.parametrize("backend", ["python", "numpy"])
def test_index_is_backend_invariant(backend):
    """Envelope values are pure selections: one index serves every
    backend, bit for bit."""
    if backend == "numpy":
        pytest.importorskip("numpy")
    from repro.runtime import Runtime

    base = build_index(SERIES, band=3)
    other = build_index(SERIES, band=3, runtime=Runtime(backend=backend))
    assert other == base
