"""The ``repro.index/v1`` on-disk format: round trips and refusals.

A cache that can silently serve wrong envelopes is worse than no
cache, so the loader's paranoia is the contract under test: the
payload hash is always rechecked, the source fingerprint can be
pinned, and anything that is not byte-for-byte an index file fails
loudly with :class:`IndexMismatchError`.
"""

import json
import os

import pytest

from repro.index import (
    IndexMismatchError,
    build_index,
    build_stream_index,
    load_index,
    save_index,
)
from repro.index.storage import FORMAT
from tests.conftest import make_series

SERIES = [make_series(16, seed=400 + i) for i in range(5)]
STREAM = make_series(48, seed=410)


@pytest.fixture
def saved(tmp_path):
    idx = build_index(SERIES, band=2)
    path = tmp_path / "collection.idx"
    header = save_index(idx, path)
    return idx, path, header


class TestRoundTrip:
    def test_collection_round_trips_exactly(self, saved):
        idx, path, _ = saved
        assert load_index(path) == idx

    def test_stream_round_trips_exactly(self, tmp_path):
        idx = build_stream_index(STREAM, window=10, band=2, step=2)
        path = tmp_path / "stream.idx"
        save_index(idx, path)
        loaded = load_index(path)
        assert loaded == idx
        assert loaded.starts == idx.starts

    def test_header_records_the_contract(self, saved):
        idx, _, header = saved
        assert header["format"] == FORMAT
        assert header["kind"] == "collection"
        assert header["band"] == 2
        assert header["count"] == len(idx)
        assert header["length"] == idx.length
        assert header["source_fingerprint"] == idx.source_fingerprint
        assert "payload_fingerprint" in header

    def test_save_is_atomic_ish(self, saved):
        _, path, _ = saved
        assert not os.path.exists(str(path) + ".tmp")

    def test_expected_fingerprint_accepts_the_source(self, saved):
        idx, path, _ = saved
        assert (
            load_index(path, expected_fingerprint=idx.source_fingerprint)
            == idx
        )

    def test_loaded_index_still_verifies_live_data(self, saved):
        _, path, _ = saved
        loaded = load_index(path)
        assert loaded.verify_collection(SERIES) is loaded


class TestRefusals:
    def test_flipped_payload_byte_rejected(self, saved):
        _, path, _ = saved
        blob = bytearray(path.read_bytes())
        blob[-5] ^= 0x40
        path.write_bytes(bytes(blob))
        with pytest.raises(IndexMismatchError,
                           match="payload fingerprint mismatch"):
            load_index(path)

    def test_truncated_payload_rejected(self, saved):
        _, path, _ = saved
        path.write_bytes(path.read_bytes()[:-16])
        with pytest.raises(IndexMismatchError,
                           match="payload fingerprint mismatch"):
            load_index(path)

    def test_edited_header_field_rejected(self, saved):
        # the fingerprint covers the canonical header too, so editing
        # a semantic field over an intact payload cannot load
        _, path, _ = saved
        blob = path.read_bytes()
        newline = blob.find(b"\n")
        header = json.loads(blob[:newline])
        header["normalize"] = True
        path.write_bytes(
            json.dumps(header, sort_keys=True).encode()
            + b"\n" + blob[newline + 1:]
        )
        with pytest.raises(IndexMismatchError,
                           match="fingerprint mismatch"):
            load_index(path)

    def test_edited_starts_rejected(self, tmp_path):
        # subsequence/discord offsets are consumed straight from the
        # header, so starts must be tamper-evident as well
        idx = build_stream_index(STREAM, window=10, band=2, step=2)
        path = tmp_path / "stream.idx"
        save_index(idx, path)
        blob = path.read_bytes()
        newline = blob.find(b"\n")
        header = json.loads(blob[:newline])
        header["starts"] = [s + 1 for s in header["starts"]]
        path.write_bytes(
            json.dumps(header, sort_keys=True).encode()
            + b"\n" + blob[newline + 1:]
        )
        with pytest.raises(IndexMismatchError,
                           match="fingerprint mismatch"):
            load_index(path)

    def test_wrong_source_fingerprint_rejected(self, saved):
        _, path, _ = saved
        with pytest.raises(IndexMismatchError,
                           match="different data"):
            load_index(path, expected_fingerprint="deadbeef" * 4)

    def test_not_an_index_file(self, tmp_path):
        path = tmp_path / "garbage.idx"
        path.write_bytes(b"\x00\x01\x02\x03" * 8)
        with pytest.raises(IndexMismatchError, match="not a repro.index"):
            load_index(path)

    def test_unreadable_header(self, tmp_path):
        path = tmp_path / "badheader.idx"
        path.write_bytes(b"{not json\n" + b"\x00" * 16)
        with pytest.raises(IndexMismatchError, match="not a repro.index"):
            load_index(path)

    def test_unsupported_format_version(self, saved):
        _, path, _ = saved
        blob = path.read_bytes()
        newline = blob.find(b"\n")
        header = json.loads(blob[:newline])
        header["format"] = "repro.index/v99"
        path.write_bytes(
            json.dumps(header, sort_keys=True).encode()
            + b"\n" + blob[newline + 1:]
        )
        with pytest.raises(IndexMismatchError,
                           match="unsupported index format"):
            load_index(path)

    def test_foreign_endianness_rejected(self, saved):
        import sys

        _, path, _ = saved
        other = "big" if sys.byteorder == "little" else "little"
        blob = path.read_bytes()
        newline = blob.find(b"\n")
        header = json.loads(blob[:newline])
        header["byteorder"] = other
        path.write_bytes(
            json.dumps(header, sort_keys=True).encode()
            + b"\n" + blob[newline + 1:]
        )
        with pytest.raises(IndexMismatchError, match="endian"):
            load_index(path)

    def test_missing_file_is_an_os_error(self, tmp_path):
        with pytest.raises(OSError):
            load_index(tmp_path / "nope.idx")
