"""Schema smoke test for the index pruning-power benchmark.

``python -m repro index bench`` writes ``BENCH_index.json`` from
:func:`repro.index.bench.index_benchmark`; the CI gate and the README
table read specific keys, so the shape is a contract.  The tiny
workload here makes the timings meaningless -- only the schema, the
agreement flag and the counter arithmetic matter -- while the
checked-in ``BENCH_index.json`` carries the acceptance claim itself:
LB_Improved makes strictly fewer DTW calls than LB_Keogh alone.
"""

import json
import pathlib

import pytest

import repro
from repro.index import format_index_report, index_benchmark
from repro.index.bench import SCHEMA

VARIANTS = ("unindexed_keogh", "indexed_keogh", "indexed_improved")

VARIANT_KEYS = (
    "variant", "queries", "candidates", "dtw_calls",
    "dtw_calls_per_query", "full_dtw", "abandoned_dtw", "cells",
    "cells_per_query", "pruned_kim", "pruned_keogh", "pruned_improved",
    "pruned_keogh_reversed", "prune_rate", "seconds",
)


@pytest.fixture(scope="module")
def report():
    return index_benchmark(
        n_datasets=1, length_range=(24, 25), classes=2, per_class=3,
        window=0.1, seed=0,
    )


class TestReportSchema:
    def test_top_level_keys(self, report):
        assert report["benchmark"] == SCHEMA
        for key in ("note", "workload", "variants", "agree",
                    "improved_fewer_dtw_calls"):
            assert key in report

    def test_variant_rows(self, report):
        assert set(report["variants"]) == set(VARIANTS)
        for row in report["variants"].values():
            assert set(row) == set(VARIANT_KEYS)

    def test_variants_agree_on_the_neighbours(self, report):
        assert report["agree"] is True

    def test_counter_arithmetic(self, report):
        for row in report["variants"].values():
            assert row["dtw_calls"] == row["full_dtw"] + row["abandoned_dtw"]
            assert row["dtw_calls_per_query"] == (
                row["dtw_calls"] / row["queries"]
            )
            assert 0.0 <= row["prune_rate"] <= 1.0

    def test_improved_never_makes_more_dtw_calls(self, report):
        # an extra admissible stage can only prune more, never less
        improved = report["variants"]["indexed_improved"]
        keogh = report["variants"]["indexed_keogh"]
        assert improved["dtw_calls"] <= keogh["dtw_calls"]

    def test_json_round_trips(self, report):
        rebuilt = json.loads(json.dumps(report))
        assert rebuilt["variants"] == report["variants"]

    def test_format_report_lines(self, report):
        text = "\n".join(format_index_report(report))
        assert "dtw_calls/query" in text
        assert "neighbours identical across variants" in text
        assert "LB_Improved reduces DTW calls" in text

    def test_note_pins_the_harness_out(self, report):
        assert "never uses the index" in report["note"]


class TestCheckedInReport:
    """The repo-root ``BENCH_index.json`` carries the acceptance
    numbers: strictly fewer DTW calls per query with LB_Improved."""

    @pytest.fixture(scope="class")
    def checked_in(self):
        path = (
            pathlib.Path(repro.__file__).resolve().parents[2]
            / "BENCH_index.json"
        )
        if not path.is_file():
            pytest.skip("BENCH_index.json not present")
        return json.loads(path.read_text())

    def test_schema_and_agreement(self, checked_in):
        assert checked_in["benchmark"] == SCHEMA
        assert checked_in["agree"] is True
        assert set(checked_in["variants"]) == set(VARIANTS)

    def test_improved_strictly_fewer_dtw_calls(self, checked_in):
        assert checked_in["improved_fewer_dtw_calls"] is True
        improved = checked_in["variants"]["indexed_improved"]
        keogh = checked_in["variants"]["indexed_keogh"]
        assert improved["dtw_calls"] < keogh["dtw_calls"]
        assert (
            improved["dtw_calls_per_query"]
            < keogh["dtw_calls_per_query"]
        )

    def test_index_beats_unindexed_on_dtw_calls(self, checked_in):
        unindexed = checked_in["variants"]["unindexed_keogh"]
        keogh = checked_in["variants"]["indexed_keogh"]
        assert keogh["dtw_calls"] < unindexed["dtw_calls"]
