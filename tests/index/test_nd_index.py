"""The ahead-of-time index's multivariate extension.

Covers nd builds (flat sample-major rows, per-channel envelopes,
2*dims endpoint/moment features), the ``repro.index/v1+nd`` on-disk
format with its backward-compatibility guarantees (dims-1 files stay
plain ``repro.index/v1`` byte-for-byte; cross-format confusion is
refused loudly in both directions), the dims check on queries, and
indexed-search losslessness against the brute-force nd scan.
"""

import json

import pytest

from repro.batch.shm import pack_dataset
from repro.core.multivariate import cdtw_nd
from repro.index import (
    FORMAT,
    IndexMismatchError,
    build_index,
    build_stream_index,
    load_index,
    save_index,
)
from repro.index.storage import FORMAT_ND, _fingerprint
from repro.lowerbounds.nd import envelopes_nd
from tests.conftest import make_series, make_vectors


def _nd_collection(count=5, n=16, dims=3):
    return [make_vectors(n, dims, s) for s in range(count)]


class TestBuild:
    def test_collection_build_records_dims(self):
        series = _nd_collection()
        index = build_index(series, band=3)
        assert index.dims == 3
        assert index.length == 16
        assert len(index) == 5
        assert index.describe()["dims"] == 3

    def test_candidate_series_round_trip(self):
        series = _nd_collection(count=3, n=8, dims=2)
        index = build_index(series, band=2)
        back = index.candidate_series()
        assert len(back) == 3
        for orig, got in zip(series, back):
            assert [tuple(v) for v in got] == [tuple(v) for v in orig]

    def test_envelopes_match_per_channel_reference(self):
        series = _nd_collection(count=3, n=10, dims=3)
        index = build_index(series, band=2)
        for i, s in enumerate(series):
            stored = index.envelope(i)
            reference = envelopes_nd(s, 2)
            assert len(stored) == 3
            for env_s, env_r in zip(stored, reference):
                assert list(env_s.upper) == list(env_r.upper)
                assert list(env_s.lower) == list(env_r.lower)

    def test_kim_and_moments_are_two_per_dim(self):
        series = _nd_collection(count=2, n=8, dims=3)
        index = build_index(series, band=2)
        for row in index.kim:
            assert len(row) == 6
        for row in index.moments:
            assert len(row) == 6

    def test_stream_build_records_dims(self):
        stream = make_vectors(40, 2, 7)
        index = build_stream_index(stream, window=10, band=2)
        assert index.dims == 2
        assert index.window == 10

    def test_require_checks_dims(self):
        index = build_index(_nd_collection(), band=3)
        index.require(kind="collection", band=3, dims=3)
        with pytest.raises(IndexMismatchError, match="dims"):
            index.require(kind="collection", band=3, dims=1)


class TestStorageFormat:
    def test_nd_file_declares_extended_format(self, tmp_path):
        index = build_index(_nd_collection(), band=3)
        path = tmp_path / "nd.idx"
        header = save_index(index, path)
        assert header["format"] == FORMAT_ND
        assert header["dims"] == 3

    def test_dim1_file_stays_plain_v1(self, tmp_path):
        """No dims key, plain v1 format string: a dims-1 header is
        byte-identical to what pre-multivariate builds wrote."""
        series = [make_series(12, s) for s in range(4)]
        index = build_index(series, band=2)
        header = save_index(index, tmp_path / "flat.idx")
        assert header["format"] == FORMAT
        assert "dims" not in header

    def test_nd_round_trip_is_lossless(self, tmp_path):
        series = _nd_collection(count=4, n=12, dims=3)
        index = build_index(series, band=3)
        path = tmp_path / "nd.idx"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.dims == 3
        assert loaded.series == index.series
        assert loaded.upper == index.upper
        assert loaded.lower == index.lower
        assert loaded.kim == index.kim
        assert loaded.moments == index.moments
        assert loaded.source_fingerprint == index.source_fingerprint

    def test_source_fingerprint_pins_nd_dataset(self, tmp_path):
        series = _nd_collection(count=3, n=10, dims=2)
        index = build_index(series, band=2)
        path = tmp_path / "nd.idx"
        save_index(index, path)
        fp = pack_dataset(
            [[tuple(float(c) for c in v) for v in s] for s in series]
        )[2]
        assert load_index(path, expected_fingerprint=fp).dims == 2
        with pytest.raises(IndexMismatchError, match="different data"):
            load_index(path, expected_fingerprint="not-that-dataset")


def _tamper_header(path, mutate):
    """Rewrite the header through ``mutate`` and re-sign the file, so
    the tamper check under test (not the fingerprint) fires."""
    blob = path.read_bytes()
    newline = blob.find(b"\n")
    header = json.loads(blob[:newline].decode("utf-8"))
    payload = blob[newline + 1:]
    mutate(header)
    header["payload_fingerprint"] = _fingerprint(header, payload)
    path.write_bytes(
        json.dumps(header, sort_keys=True).encode("utf-8")
        + b"\n" + payload
    )


class TestFormatRefusals:
    def test_unknown_format_names_both_supported(self, tmp_path):
        """What a reader that predates v1+nd would say about an nd
        file: the format string is unrecognised and the error names
        what *is* readable -- loud, not silent misparsing."""
        index = build_index(_nd_collection(), band=3)
        path = tmp_path / "nd.idx"
        save_index(index, path)
        _tamper_header(
            path, lambda h: h.update(format="repro.index/v2-imaginary")
        )
        with pytest.raises(IndexMismatchError) as err:
            load_index(path)
        assert "unsupported index format" in str(err.value)
        assert FORMAT in str(err.value)
        assert FORMAT_ND in str(err.value)

    def test_v1_header_with_dims_key_rejected(self, tmp_path):
        series = [make_series(12, s) for s in range(3)]
        index = build_index(series, band=2)
        path = tmp_path / "flat.idx"
        save_index(index, path)
        _tamper_header(path, lambda h: h.update(dims=1))
        with pytest.raises(IndexMismatchError, match="must not carry"):
            load_index(path)

    def test_nd_header_with_dims_below_two_rejected(self, tmp_path):
        series = [make_series(12, s) for s in range(3)]
        index = build_index(series, band=2)
        path = tmp_path / "flat.idx"
        save_index(index, path)
        _tamper_header(
            path, lambda h: h.update(format=FORMAT_ND, dims=1)
        )
        with pytest.raises(IndexMismatchError, match="declares dims=1"):
            load_index(path)

    def test_header_tamper_without_resign_still_caught(self, tmp_path):
        index = build_index(_nd_collection(), band=3)
        path = tmp_path / "nd.idx"
        save_index(index, path)
        blob = path.read_bytes()
        newline = blob.find(b"\n")
        header = json.loads(blob[:newline].decode("utf-8"))
        header["dims"] = 7
        path.write_bytes(
            json.dumps(header, sort_keys=True).encode("utf-8")
            + b"\n" + blob[newline + 1:]
        )
        with pytest.raises(IndexMismatchError, match="fingerprint"):
            load_index(path)


class TestSearch:
    @pytest.mark.parametrize("backend", ("python", "numpy"))
    def test_nearest_matches_brute_force(self, backend):
        from repro.runtime import Runtime

        series = _nd_collection(count=6, n=14, dims=3)
        index = build_index(series, band=3)
        query = make_vectors(14, 3, 99)
        hit = index.searcher(
            runtime=Runtime(backend=backend)
        ).nearest(query)
        brute = [
            cdtw_nd(query, s, band=3).distance for s in series
        ]
        best = min(range(len(brute)), key=lambda i: (brute[i], i))
        assert hit.index == best
        assert hit.distance == brute[best]

    def test_query_dims_mismatch_refused(self):
        index = build_index(_nd_collection(count=3, n=10, dims=3), band=2)
        searcher = index.searcher()
        with pytest.raises(IndexMismatchError, match="channel"):
            searcher.nearest(make_vectors(10, 2, 1))
        with pytest.raises(IndexMismatchError, match="channel"):
            searcher.nearest(make_series(10, 1))

    def test_scalar_index_refuses_nd_query(self):
        series = [make_series(10, s) for s in range(3)]
        index = build_index(series, band=2)
        searcher = index.searcher()
        with pytest.raises(IndexMismatchError, match="channel"):
            searcher.nearest(make_vectors(10, 2, 1))
