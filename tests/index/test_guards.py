"""Tamper-style regression tests for the query-length guards.

The hole these pin shut: a stream index built with ``step != 1``
validated its window *starts* structurally, but nothing checked a
queried subsequence's length against the indexed window length before
reusing the stored envelopes -- a query of the wrong length would be
bounded against envelopes of a different length and return
plausible-looking, silently wrong results.  Two layers now refuse:

* ``DatasetIndex.__post_init__`` rejects a header whose ``window``
  disagrees with the stored series length (covers tampered/corrupted
  headers arriving through ``load_index``);
* ``IndexSearcher`` raises :class:`IndexMismatchError` for any query
  whose length differs from ``index.length``, on both the ``nearest``
  and ``scan`` entry points.
"""

import dataclasses

import pytest

from repro.index import (
    DatasetIndex,
    IndexMismatchError,
    build_index,
    build_stream_index,
)
from tests.conftest import make_series

SERIES = [make_series(16, seed=500 + i) for i in range(5)]
STREAM = make_series(64, seed=510)


class TestSearcherQueryLength:
    @pytest.mark.parametrize("step", [1, 2, 3])
    @pytest.mark.parametrize("wrong", [11, 13, 1])
    def test_stream_nearest_rejects_wrong_length(self, step, wrong):
        idx = build_stream_index(STREAM, window=12, band=2, step=step)
        searcher = idx.searcher()
        with pytest.raises(IndexMismatchError, match="length"):
            searcher.nearest(make_series(wrong, seed=520))

    def test_stream_scan_rejects_wrong_length(self):
        idx = build_stream_index(STREAM, window=12, band=2, step=2)
        with pytest.raises(IndexMismatchError, match="length"):
            idx.searcher().scan(make_series(13, seed=521))

    def test_collection_searcher_rejects_wrong_length(self):
        idx = build_index(SERIES, band=2)
        with pytest.raises(IndexMismatchError, match="length"):
            idx.searcher().nearest(make_series(15, seed=522))

    def test_right_length_still_served(self):
        idx = build_stream_index(STREAM, window=12, band=2, step=2)
        result = idx.searcher().nearest(make_series(12, seed=523))
        assert result.distance >= 0.0


class TestHeaderWindowConsistency:
    def test_tampered_window_field_refused(self):
        idx = build_stream_index(STREAM, window=12, band=2, step=2)
        with pytest.raises(ValueError, match="window"):
            dataclasses.replace(idx, window=10)

    def test_tampered_collection_window_refused(self):
        idx = build_index(SERIES, band=2)
        with pytest.raises(ValueError, match="window"):
            dataclasses.replace(idx, window=idx.window + 1)

    def test_consistent_replace_still_allowed(self):
        idx = build_index(SERIES, band=2)
        clone = dataclasses.replace(idx)
        assert clone.window == idx.window
