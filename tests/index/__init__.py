"""Tests for the ahead-of-time DatasetIndex (repro.index)."""
