"""find_motif under a Runtime: same pair, any execution context.

Serial discovery prunes pairs with the LB cascade and early
abandoning; a parallel runtime computes every admissible pair via the
batch engine and replays the comparison in scan order with a strict
``<``.  Both are exact, and ties resolve to the first pair in scan
order either way, so the motif is bit-identical everywhere.
"""

from __future__ import annotations

import pytest

from repro.motifs.discovery import find_motif
from repro.runtime import Runtime
from tests.conftest import make_series

STREAM = make_series(64, seed=5)


def _motif_stream():
    stream = make_series(80, seed=13, lo=-1.0, hi=1.0)
    pattern = [3.0, 2.0, 4.0, 1.0, 3.5, 2.5, 4.5, 1.5]
    for offset in (10, 60):
        for i, v in enumerate(pattern):
            stream[offset + i] = v
    return stream


@pytest.mark.parametrize("workers", [1, 2, 4])
@pytest.mark.parametrize("backend", ["python", "numpy"])
def test_bit_identical_across_contexts(workers, backend):
    serial = find_motif(STREAM, window=8, band=2)
    rt = Runtime(workers=workers, backend=backend)
    parallel = find_motif(STREAM, window=8, band=2, runtime=rt)
    assert parallel.start_a == serial.start_a
    assert parallel.start_b == serial.start_b
    assert parallel.distance == serial.distance
    assert parallel.windows == serial.windows


def test_serial_runtime_reproduces_the_default_exactly():
    rt = Runtime(workers=1, backend="python")
    assert find_motif(STREAM, window=8, band=2, runtime=rt) == (
        find_motif(STREAM, window=8, band=2)
    )


def test_acceptance_context_finds_the_implanted_motif():
    stream = _motif_stream()
    serial = find_motif(stream, window=8, band=2)
    rt = Runtime(workers=4, backend="numpy", executor="default")
    parallel = find_motif(stream, window=8, band=2, runtime=rt)
    assert (parallel.start_a, parallel.start_b, parallel.distance) == (
        serial.start_a, serial.start_b, serial.distance
    )
    assert (serial.start_a, serial.start_b) == (10, 60)


@pytest.mark.parametrize("step", [1, 3])
def test_step_and_exclusion_respected_in_parallel(step):
    serial = find_motif(STREAM, window=8, band=2, step=step, exclusion=12)
    parallel = find_motif(
        STREAM, window=8, band=2, step=step, exclusion=12,
        runtime=Runtime(workers=2),
    )
    assert (parallel.start_a, parallel.start_b, parallel.distance) == (
        serial.start_a, serial.start_b, serial.distance
    )


def test_parallel_distance_calls_count_admissible_pairs():
    result = find_motif(STREAM, window=8, band=2, runtime=Runtime(workers=2))
    starts = list(range(0, len(STREAM) - 8 + 1))
    admissible = sum(
        1
        for a in range(len(starts))
        for b in range(a + 1, len(starts))
        if starts[b] - starts[a] >= 8
    )
    assert result.distance_calls == admissible
