"""Unit tests for motif discovery."""

import math
import random

import pytest

from repro.core.cdtw import cdtw
from repro.datasets.random_walk import random_walk
from repro.motifs.discovery import find_motif
from repro.preprocess.normalize import znorm
from repro.preprocess.sliding import sliding_windows


def _brute_force(stream, window, band, step=1, exclusion=None):
    exclusion = window if exclusion is None else exclusion
    items = [
        (s, znorm(w)) for s, w in sliding_windows(stream, window, step)
    ]
    best = (math.inf, -1, -1)
    for i in range(len(items)):
        for j in range(i + 1, len(items)):
            if items[j][0] - items[i][0] < exclusion:
                continue
            d = cdtw(items[i][1], items[j][1], band=band).distance
            if d < best[0]:
                best = (d, items[i][0], items[j][0])
    return best


@pytest.fixture(scope="module")
def motif_stream():
    """Noise with the same (warped) pattern planted twice."""
    rng = random.Random(6)
    stream = random_walk(240, seed=99, normalize=False)
    stream = [0.15 * v for v in stream]
    pattern = [math.sin(2 * math.pi * i / 20) * 2.0 for i in range(40)]
    for offset, stretch in ((30, 1.0), (150, 1.0)):
        for i, v in enumerate(pattern):
            stream[offset + i] += v
    return stream


class TestFindMotif:
    def test_finds_planted_pair(self, motif_stream):
        motif = find_motif(motif_stream, window=40, band=4, step=5)
        assert abs(motif.start_a - 30) <= 5
        assert abs(motif.start_b - 150) <= 5

    def test_matches_brute_force(self, motif_stream):
        ours = find_motif(motif_stream, window=40, band=4, step=10)
        d, a, b = _brute_force(motif_stream, 40, 4, step=10)
        assert (ours.start_a, ours.start_b) == (a, b)
        assert ours.distance == pytest.approx(d)

    def test_distance_is_exact(self, motif_stream):
        motif = find_motif(motif_stream, window=40, band=4, step=5)
        wa = znorm(motif_stream[motif.start_a:motif.start_a + 40])
        wb = znorm(motif_stream[motif.start_b:motif.start_b + 40])
        assert cdtw(wa, wb, band=4).distance == pytest.approx(
            motif.distance
        )

    def test_pair_respects_exclusion(self, motif_stream):
        motif = find_motif(motif_stream, window=40, band=4, step=5)
        assert motif.start_b - motif.start_a >= 40

    def test_pruning_happens(self, motif_stream):
        motif = find_motif(motif_stream, window=40, band=4, step=5)
        # distance_calls counts attempted pairs; the cascade's stats
        # would show pruning, but at minimum a planted close pair must
        # make most full DPs unnecessary -- assert the call count is
        # the admissible-pair count (sanity) and distance tiny
        assert motif.distance < 5.0

    def test_ordering_of_pair(self, motif_stream):
        motif = find_motif(motif_stream, window=40, band=4, step=5)
        assert motif.start_a < motif.start_b

    def test_validation(self):
        with pytest.raises(ValueError, match="window"):
            find_motif([1.0] * 50, window=1, band=1)
        with pytest.raises(ValueError, match="too short"):
            find_motif([1.0] * 10, window=8, band=1)
        with pytest.raises(ValueError, match="not finite"):
            find_motif([1.0, float("nan")] * 30, window=10, band=1)


class TestMotifVsDiscord:
    def test_motif_distance_below_discord_score(self, motif_stream):
        # definitional: the closest pair is at most any window's NN
        from repro.anomaly.discord import find_discord

        motif = find_motif(motif_stream, window=40, band=4, step=10)
        discord = find_discord(motif_stream, window=40, band=4, step=10)
        assert motif.distance <= discord.score + 1e-9
