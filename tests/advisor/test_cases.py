"""Unit tests for the Table 1 case advisor."""

import pytest

from repro.advisor.cases import (
    Case,
    Recommendation,
    analyze,
    classify_case,
    estimate_warping_amount,
)
from repro.datasets.falls import fall_pair
from repro.datasets.power import midnight_hour_pair
from tests.conftest import make_series


class TestClassifyCase:
    def test_paper_anchor_examples(self):
        assert classify_case(945, 0.04) is Case.A      # UWave
        assert classify_case(24_000, 0.0083) is Case.B  # music
        assert classify_case(450, 0.40) is Case.C       # power
        assert classify_case(5_000, 1.00) is Case.D     # falls

    def test_boundaries(self):
        assert classify_case(999, 0.19) is Case.A
        assert classify_case(1000, 0.19) is Case.B
        assert classify_case(999, 0.20) is Case.C
        assert classify_case(1000, 0.20) is Case.D

    def test_custom_thresholds(self):
        assert classify_case(
            500, 0.10, long_threshold=400, wide_threshold=0.05
        ) is Case.D

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            classify_case(0, 0.1)
        with pytest.raises(ValueError):
            classify_case(100, 1.5)


class TestAnalyze:
    def test_recommends_cdtw_for_abc(self):
        for n, w in ((300, 0.05), (24_000, 0.0083), (450, 0.40)):
            assert analyze(n=n, warping=w).recommendation is (
                Recommendation.CDTW
            )

    def test_case_d_gets_qualified_recommendation(self):
        a = analyze(n=5_000, warping=0.9)
        assert a.case is Case.D
        assert a.recommendation is Recommendation.CDTW_FULL

    def test_describe_mentions_case_and_verdict(self):
        text = analyze(n=945, warping=0.04).describe()
        assert "Case A" in text
        assert "cDTW" in text

    def test_requires_inputs(self):
        with pytest.raises(ValueError, match="provide"):
            analyze()

    def test_measures_from_sample_pairs(self):
        pair = midnight_hour_pair()
        a = analyze(sample_pairs=[(pair.night_a, pair.night_b)])
        assert a.n == 450
        # measured alignment warping should land in Case C territory
        assert a.case in (Case.A, Case.C)
        assert a.warping > 0.0

    def test_explicit_warping_overrides_measurement(self):
        pair = midnight_hour_pair()
        a = analyze(
            warping=0.4, sample_pairs=[(pair.night_a, pair.night_b)]
        )
        assert a.warping == 0.4


class TestEstimateWarpingAmount:
    def test_identical_pairs_zero(self):
        x = make_series(30, 1)
        assert estimate_warping_amount([(x, x)]) == 0.0

    def test_fall_pair_near_full(self):
        pair = fall_pair(1.5, seed=2)
        w = estimate_warping_amount([(pair.early, pair.late)])
        assert w > 0.5

    def test_takes_worst_pair(self):
        x = make_series(30, 3)
        pair = fall_pair(1.0, seed=4)
        w_single = estimate_warping_amount([(pair.early, pair.late)])
        w_both = estimate_warping_amount(
            [(x, x), (pair.early, pair.late)]
        )
        assert w_both == w_single

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            estimate_warping_amount([])
