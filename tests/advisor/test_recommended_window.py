"""Tests for the advisor's concrete window recommendation."""

import pytest

from repro.advisor.cases import analyze
from repro.core.cdtw import cdtw
from repro.datasets.music import studio_and_live


class TestRecommendedWindow:
    def test_covers_declared_warping(self):
        a = analyze(n=450, warping=0.34)
        assert a.recommended_window() >= 0.34

    def test_margin_scales(self):
        a = analyze(n=450, warping=0.20)
        assert a.recommended_window(margin=0.5) == pytest.approx(0.30)

    def test_clipped_at_full(self):
        a = analyze(n=2000, warping=0.95)
        assert a.recommended_window(margin=1.0) == 1.0

    def test_floor_of_one_cell(self):
        a = analyze(n=100, warping=0.0)
        assert a.recommended_window() == pytest.approx(1 / 100)

    def test_negative_margin_rejected(self):
        a = analyze(n=100, warping=0.1)
        with pytest.raises(ValueError):
            a.recommended_window(margin=-0.1)

    def test_describe_includes_window(self):
        text = analyze(n=945, warping=0.04).describe()
        assert "w ~" in text

    def test_recommendation_actually_aligns_generated_data(self):
        # close the loop: measure W from data, take the recommended
        # window, verify it aligns the pair as well as Full DTW would
        pair = studio_and_live(seconds=6.0, max_drift_seconds=0.2,
                               seed=9)
        a = analyze(sample_pairs=[(pair.studio, pair.live)])
        w = a.recommended_window()
        from repro.core.dtw import dtw

        banded = cdtw(pair.studio, pair.live, window=w).distance
        full = dtw(pair.studio, pair.live).distance
        assert banded <= full * 1.05 + 1e-9
