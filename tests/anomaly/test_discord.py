"""Unit tests for discord discovery."""

import math
import random

import pytest

from repro.anomaly.discord import Discord, find_discord
from repro.core.cdtw import cdtw
from repro.datasets.ecg import ecg_stream, heartbeat
from repro.preprocess.normalize import znorm
from repro.preprocess.sliding import sliding_windows


def _brute_force_discord(stream, window, band, step=1, exclusion=None):
    """Naive reference: full nested scan, no pruning."""
    exclusion = window if exclusion is None else exclusion
    items = [
        (s, znorm(w)) for s, w in sliding_windows(stream, window, step)
    ]
    best = (-math.inf, -1, -1)
    for i, (si, wi) in enumerate(items):
        nn, nn_j = math.inf, -1
        for j, (sj, wj) in enumerate(items):
            if abs(si - sj) < exclusion:
                continue
            d = cdtw(wi, wj, band=band).distance
            if d < nn:
                nn, nn_j = d, j
        if nn_j >= 0 and nn > best[0]:
            best = (nn, si, items[nn_j][0])
    return best  # (score, start, neighbor_start)


@pytest.fixture(scope="module")
def anomalous_stream():
    """A repetitive stream with one planted anomaly."""
    rng = random.Random(3)
    stream = []
    for beat in range(12):
        stream.extend(heartbeat(40, rng, noise_sigma=0.01))
    # plant a burst anomaly inside beat 6
    for i in range(245, 265):
        stream[i] += 1.5
    return stream


class TestFindDiscord:
    def test_finds_planted_anomaly(self, anomalous_stream):
        discord = find_discord(
            anomalous_stream, window=40, band=3, step=5
        )
        # the anomalous region is samples 245-265
        assert 200 <= discord.start <= 270

    def test_matches_brute_force(self):
        rng = random.Random(9)
        stream = []
        for _ in range(6):
            stream.extend(heartbeat(24, rng, noise_sigma=0.02))
        stream[70] += 2.0  # small planted spike
        ours = find_discord(stream, window=24, band=2, step=4)
        score, start, neighbor = _brute_force_discord(
            stream, 24, 2, step=4
        )
        assert ours.start == start
        assert ours.score == pytest.approx(score)

    def test_score_is_true_nn_distance(self, anomalous_stream):
        discord = find_discord(
            anomalous_stream, window=40, band=3, step=10
        )
        wi = znorm(anomalous_stream[discord.start:discord.start + 40])
        wj = znorm(
            anomalous_stream[
                discord.neighbor_start:discord.neighbor_start + 40
            ]
        )
        assert cdtw(wi, wj, band=3).distance == pytest.approx(
            discord.score
        )

    def test_neighbor_respects_exclusion(self, anomalous_stream):
        discord = find_discord(
            anomalous_stream, window=40, band=3, step=10
        )
        assert abs(discord.start - discord.neighbor_start) >= 40

    def test_pruning_saves_distance_calls(self, anomalous_stream):
        discord = find_discord(
            anomalous_stream, window=40, band=3, step=5
        )
        naive = discord.windows * (discord.windows - 1)
        assert discord.distance_calls < naive

    def test_no_anomaly_still_returns_a_discord(self):
        rng = random.Random(11)
        stream = []
        for _ in range(8):
            stream.extend(heartbeat(30, rng, noise_sigma=0.01))
        discord = find_discord(stream, window=30, band=2, step=6)
        assert discord.score >= 0

    def test_validation(self):
        with pytest.raises(ValueError, match="window"):
            find_discord([1.0] * 50, window=1, band=1)
        with pytest.raises(ValueError, match="step"):
            find_discord([1.0] * 50, window=5, band=1, step=0)
        with pytest.raises(ValueError, match="two windows"):
            find_discord([1.0] * 5, window=5, band=1)
        with pytest.raises(ValueError, match="exclusion"):
            find_discord(
                [float(i) for i in range(12)], window=5, band=1,
                exclusion=50,
            )
