"""find_discord under a Runtime: execution detail, never semantic.

The serial path prunes with the LB cascade; a parallel runtime
computes every admissible pair through the batch engine.  Pruning is
lossless and the batched replay scans in serial order with strict
comparisons, so the discord itself -- offset, score, neighbour,
window count -- is bit-identical for every execution context.
``distance_calls`` is deliberately excluded: it is documented as
mode-dependent work accounting (cascade invocations vs admissible
pairs).
"""

from __future__ import annotations

import pytest

from repro.anomaly.discord import find_discord
from repro.runtime import Runtime
from tests.conftest import make_series

STREAM = make_series(64, seed=7)


def _anomalous_stream():
    stream = make_series(80, seed=11, lo=-1.0, hi=1.0)
    for i in range(40, 48):
        stream[i] += 6.0  # an implanted discord
    return stream


@pytest.mark.parametrize("workers", [1, 2, 4])
@pytest.mark.parametrize("backend", ["python", "numpy"])
def test_bit_identical_across_contexts(workers, backend):
    serial = find_discord(STREAM, window=8, band=2)
    rt = Runtime(workers=workers, backend=backend)
    parallel = find_discord(STREAM, window=8, band=2, runtime=rt)
    assert parallel.start == serial.start
    assert parallel.score == serial.score
    assert parallel.neighbor_start == serial.neighbor_start
    assert parallel.windows == serial.windows


def test_serial_runtime_reproduces_the_default_exactly():
    # workers=1, python: same code path, so even the work accounting
    # must match the no-runtime call bit for bit
    rt = Runtime(workers=1, backend="python")
    assert find_discord(STREAM, window=8, band=2, runtime=rt) == (
        find_discord(STREAM, window=8, band=2)
    )


def test_acceptance_context_finds_the_implanted_discord():
    # the issue's acceptance context, executor included
    stream = _anomalous_stream()
    serial = find_discord(stream, window=8, band=2, normalize=False)
    rt = Runtime(workers=4, backend="numpy", executor="default")
    parallel = find_discord(
        stream, window=8, band=2, normalize=False, runtime=rt
    )
    assert parallel.start == serial.start
    assert parallel.score == serial.score
    assert parallel.neighbor_start == serial.neighbor_start
    # the discord window overlaps the implanted bump at [40, 48)
    assert 33 <= serial.start <= 47


@pytest.mark.parametrize("step", [1, 3])
def test_step_and_exclusion_respected_in_parallel(step):
    serial = find_discord(STREAM, window=8, band=2, step=step, exclusion=12)
    parallel = find_discord(
        STREAM, window=8, band=2, step=step, exclusion=12,
        runtime=Runtime(workers=2),
    )
    assert (parallel.start, parallel.score) == (serial.start, serial.score)


def test_parallel_distance_calls_count_admissible_pairs():
    result = find_discord(STREAM, window=8, band=2, runtime=Runtime(workers=2))
    starts = range(0, len(STREAM) - 8 + 1)
    admissible = sum(
        1
        for i in starts
        for j in starts
        if j > i and abs(i - j) >= 8
    )
    assert result.distance_calls == admissible
