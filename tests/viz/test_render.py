"""Unit tests for the ASCII rendering helpers."""

import pytest

from repro.core.dtw import dtw
from repro.core.path import WarpingPath, diagonal_path
from repro.core.window import Window
from repro.viz.render import (
    render_alignment,
    render_cost_matrix,
    render_window,
    sparkline,
)
from tests.conftest import make_series


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1.0, 2.0, 3.0])) == 3

    def test_width_resamples(self):
        assert len(sparkline(make_series(100, 1), width=20)) == 20

    def test_extremes_use_extreme_blocks(self):
        line = sparkline([0.0, 1.0])
        assert line[0] == "▁"
        assert line[1] == "█"

    def test_constant_series_flat(self):
        assert sparkline([5.0] * 4) == "▁▁▁▁"

    def test_monotone_series_monotone_blocks(self):
        line = sparkline([float(i) for i in range(8)])
        assert list(line) == sorted(line)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline([])

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            sparkline([1.0], width=0)


class TestRenderAlignment:
    def test_three_lines(self):
        x = make_series(30, 2)
        y = make_series(30, 3)
        path = dtw(x, y, return_path=True).path
        art = render_alignment(x, y, path, width=40)
        lines = art.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("x: ")
        assert lines[2].startswith("y: ")

    def test_lockstep_path_vertical_hatches(self):
        x = make_series(20, 4)
        path = diagonal_path(20, 20)
        art = render_alignment(x, x, path, width=30)
        hatch = art.splitlines()[1]
        assert "|" in hatch
        assert "\\" not in hatch and "/" not in hatch

    def test_leading_series_slants_hatches(self):
        # y is x delayed: path connects early x to late y -> backslashes
        x = [0.0] * 5 + [5.0] + [0.0] * 24
        y = [0.0] * 20 + [5.0] + [0.0] * 9
        path = dtw(x, y, return_path=True).path
        art = render_alignment(x, y, path, width=40, hatch_every=3)
        assert "\\" in art.splitlines()[1]

    def test_wrong_path_rejected(self):
        x = make_series(10, 5)
        path = diagonal_path(8, 8)
        with pytest.raises(ValueError, match="does not align"):
            render_alignment(x, x, path)

    def test_bad_width_rejected(self):
        x = make_series(10, 6)
        path = diagonal_path(10, 10)
        with pytest.raises(ValueError):
            render_alignment(x, x, path, width=1)


class TestRenderCostMatrix:
    def test_dimensions(self):
        x = make_series(8, 7)
        y = make_series(12, 8)
        art = render_cost_matrix(x, y)
        lines = art.splitlines()
        assert len(lines) == 8
        assert all(len(l) == 12 for l in lines)

    def test_path_overlay(self):
        x = make_series(10, 9)
        y = make_series(10, 10)
        path = dtw(x, y, return_path=True).path
        art = render_cost_matrix(x, y, path=path)
        assert art.count("◆") == len(path)

    def test_band_excludes_cells(self):
        x = make_series(12, 11)
        art = render_cost_matrix(x, x, band=2)
        assert " " in art  # excluded corners render blank

    def test_identical_series_diagonal_cheapest(self):
        x = make_series(10, 12)
        path = dtw(x, x, return_path=True).path
        art = render_cost_matrix(x, x, path=path)
        # the diagonal is the path
        for i, line in enumerate(art.splitlines()):
            assert line[i] == "◆"

    def test_too_large_rejected(self):
        x = make_series(100, 13)
        with pytest.raises(ValueError, match="too long"):
            render_cost_matrix(x, x)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_cost_matrix([], [1.0])


class TestRenderWindow:
    def test_diagonal_band(self):
        art = render_window(Window.band(3, 3, 0))
        assert art == "#..\n.#.\n..#"

    def test_cell_counts_match(self):
        w = Window.band(10, 10, 2)
        art = render_window(w)
        assert art.count("#") == w.cell_count()

    def test_full_window_all_hash(self):
        art = render_window(Window.full(4, 5))
        assert "." not in art
        assert art.count("#") == 20

    def test_itakura_silhouette_pinches(self):
        art = render_window(Window.itakura(12, 12))
        lines = art.splitlines()
        assert lines[0].count("#") < lines[6].count("#")

    def test_too_large_rejected(self):
        with pytest.raises(ValueError, match="too large"):
            render_window(Window.full(100, 100))
