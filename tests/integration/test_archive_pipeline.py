"""Integration: the Fig. 2 pipeline end-to-end on a synthetic archive.

The real archive's "optimal w" values (Fig. 2a) were produced by
brute-force LOOCV window search per dataset.  Here the same pipeline
runs over a generated mini-archive with *known* warping amounts,
closing the loop the metadata table can only transcribe.
"""

import pytest

from repro.classify.loocv import best_window_search
from repro.datasets.synthetic_archive import synthetic_archive


@pytest.fixture(scope="module")
def searched_archive():
    entries = synthetic_archive(
        n_datasets=4,
        length_range=(32, 64),
        warp_range=(0.0, 0.12),
        classes=3,
        per_class=4,
        seed=1,
    )
    results = []
    for entry in entries:
        search = best_window_search(
            [list(s) for s in entry.dataset.series],
            list(entry.dataset.labels),
            windows=tuple(w / 100 for w in range(0, 21, 4)),
        )
        results.append((entry, search))
    return results


class TestArchivePipeline:
    def test_archive_shape(self):
        entries = synthetic_archive(n_datasets=3, seed=2)
        assert len(entries) == 3
        assert len({e.name for e in entries}) == 3
        lengths = [e.dataset.length for e in entries]
        assert lengths == sorted(lengths)

    def test_warp_amounts_span_range(self):
        entries = synthetic_archive(
            n_datasets=5, warp_range=(0.0, 0.2), seed=3
        )
        warps = [e.true_warp_fraction for e in entries]
        assert warps[0] == 0.0
        assert warps[-1] == pytest.approx(0.2)

    def test_searched_windows_are_small(self, searched_archive):
        # the Fig. 2a shape: realistic warping leads to small optimal
        # windows (all generated warps are <= 12%, so the search
        # should never need more than ~20%)
        for _entry, search in searched_archive:
            assert search.best_window <= 0.20

    def test_unwarped_dataset_needs_no_window(self, searched_archive):
        entry, search = searched_archive[0]
        assert entry.true_warp_fraction == 0.0
        # zero window must be among the best (no warping to exploit)
        errors = dict(search.errors)
        assert errors[0.0] <= search.best_error + 1e-12

    def test_search_errors_reasonable(self, searched_archive):
        # the generated tasks are learnable: the best LOOCV error
        # should beat chance (3 classes -> 2/3 error) comfortably
        for _entry, search in searched_archive:
            assert search.best_error < 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic_archive(n_datasets=0)
        with pytest.raises(ValueError):
            synthetic_archive(length_range=(10, 5))
        with pytest.raises(ValueError):
            synthetic_archive(warp_range=(0.3, 0.1))
