"""Cross-module integration tests: the library's pieces composed.

Each test exercises a realistic multi-module pipeline (generator ->
distance -> search/classify/cluster -> verdict) rather than a single
unit, mirroring how a downstream user would wire the package together.
"""

import math

import pytest

from repro import cdtw, dtw, fastdtw
from repro.advisor import analyze
from repro.classify import DistanceSpec, OneNearestNeighbor, best_window_search
from repro.cluster import ClusterNode, linkage
from repro.core import approximation_error_percent
from repro.datasets import (
    adversarial_pair,
    ecg_stream,
    gesture_dataset,
    midnight_hour_pair,
    random_walks,
    studio_and_live,
)
from repro.search import nearest_neighbor, subsequence_search


class TestClassificationPipeline:
    """Generate -> tune window -> classify, all measures consistent."""

    @pytest.fixture(scope="class")
    def task(self):
        data = gesture_dataset(
            n_classes=3, per_class=6, length=64,
            warp_fraction=0.06, noise_sigma=0.2, seed=21,
        )
        train, test = data.split(0.6, seed=21)
        return (
            [list(s) for s in train.series], list(train.labels),
            [list(s) for s in test.series], list(test.labels),
        )

    def test_tuned_cdtw_at_least_as_good_as_euclidean(self, task):
        xtr, ytr, xte, yte = task
        search = best_window_search(
            xtr, ytr, windows=(0.0, 0.04, 0.08, 0.12)
        )
        cdtw_clf = OneNearestNeighbor(
            DistanceSpec("cdtw", window=search.best_window,
                         use_lower_bounds=True)
        ).fit(xtr, ytr)
        euc_clf = OneNearestNeighbor(DistanceSpec("euclidean")).fit(
            xtr, ytr
        )
        assert cdtw_clf.error_rate(xte, yte) <= euc_clf.error_rate(
            xte, yte
        )

    def test_lb_acceleration_does_not_change_predictions(self, task):
        xtr, ytr, xte, _ = task
        plain = OneNearestNeighbor(
            DistanceSpec("cdtw", window=0.08)
        ).fit(xtr, ytr)
        accel = OneNearestNeighbor(
            DistanceSpec("cdtw", window=0.08, use_lower_bounds=True)
        ).fit(xtr, ytr)
        assert plain.predict(xte) == accel.predict(xte)


class TestSearchPipeline:
    """ECG stream -> subsequence search -> exact result verified."""

    def test_found_window_is_truly_nearest(self):
        stream = ecg_stream(6, mean_beat_samples=40, seed=31)
        query = stream[80:120]
        match = subsequence_search(query, stream, band=2)

        from repro.preprocess.normalize import znorm

        q = znorm(query)
        distances = [
            cdtw(q, znorm(stream[s:s + 40]), band=2).distance
            for s in range(len(stream) - 39)
        ]
        assert match.distance == pytest.approx(min(distances))

    def test_nn_strategies_on_random_walks(self):
        walks = random_walks(12, 50, seed=32)
        query, candidates = walks[0], walks[1:]
        exact = nearest_neighbor(query, candidates, "cdtw", band=3)
        fast = nearest_neighbor(query, candidates, "cdtw+lb", band=3)
        assert (exact.index, pytest.approx(exact.distance)) == (
            fast.index, fast.distance
        )


class TestAdversarialPipeline:
    """Adversarial triple -> distances -> clustering -> verdict."""

    def test_full_story(self):
        triple = adversarial_pair()
        series = triple.series()

        def matrix(fn):
            k = len(series)
            m = [[0.0] * k for _ in range(k)]
            for i in range(k):
                for j in range(i + 1, k):
                    m[i][j] = m[j][i] = fn(series[i], series[j])
            return m

        full = matrix(lambda a, b: dtw(a, b).distance)
        fast = matrix(
            lambda a, b: fastdtw(a, b, radius=20).distance
        )
        err = approximation_error_percent(fast[0][1], full[0][1])
        assert err > 100_000

        full_tree = ClusterNode.from_merges(linkage(full))
        fast_tree = ClusterNode.from_merges(linkage(fast))
        # under full DTW, A-B fuse below the A-C level; under FastDTW
        # they fuse at the top
        assert full_tree.cophenetic(0, 1) < full_tree.cophenetic(0, 2)
        assert fast_tree.cophenetic(0, 1) >= fast_tree.cophenetic(0, 2)


class TestAdvisorPipeline:
    """Generators feed the advisor the paper's quadrants."""

    def test_music_lands_in_case_b(self):
        pair = studio_and_live(seconds=15.0, max_drift_seconds=0.125,
                               seed=41)
        a = analyze(
            n=24_000,
            sample_pairs=[(pair.studio, pair.live)],
        )
        assert a.case.value == "B"

    def test_power_measured_w_is_wide(self):
        pair = midnight_hour_pair(seed=42)
        a = analyze(sample_pairs=[(pair.night_a, pair.night_b)])
        assert a.n == 450
        assert a.warping > 0.15


class TestCostAccountingConsistency:
    """Cells reported by results match the analytic models' ordering."""

    def test_case_a_work_ordering(self):
        from repro.datasets.random_walk import random_walk

        x = random_walk(256, seed=51)
        y = random_walk(256, seed=52)
        small_band = cdtw(x, y, window=0.04).cells
        # a serviceable FastDTW (r >= 5) does more cell work than the
        # archive-optimal band, and full DTW dominates everything
        fast_serviceable = fastdtw(x, y, radius=5).cells
        full = dtw(x, y).cells
        assert small_band < fast_serviceable < full

    def test_distances_consistent_across_apis(self):
        from repro.datasets.random_walk import random_walk

        x = random_walk(64, seed=53)
        y = random_walk(64, seed=54)
        assert cdtw(x, y, window=1.0).distance == pytest.approx(
            dtw(x, y).distance
        )
        assert fastdtw(x, y, radius=64).distance == pytest.approx(
            dtw(x, y).distance
        )
