"""Property-based tests across module boundaries.

The core invariants are property-tested in ``tests/core``; these
target the composed layers: search consistency, cluster correctness
against a naive reference, preprocessing round-trips, and the
multivariate lift of the DTW contracts.
"""

import math
import random

from hypothesis import given, settings, strategies as st

from repro.cluster.linkage import linkage
from repro.core.cdtw import cdtw
from repro.core.dtw import dtw
from repro.core.multivariate import cdtw_nd, dtw_nd, fastdtw_nd
from repro.lowerbounds.cascade import LowerBoundCascade
from repro.preprocess.normalize import znorm
from repro.search.nn_search import nearest_neighbor

finite = st.floats(
    min_value=-20, max_value=20, allow_nan=False, allow_infinity=False
)


# -- search ------------------------------------------------------------------

workloads = st.integers(min_value=2, max_value=8).flatmap(
    lambda k: st.tuples(
        st.lists(finite, min_size=6, max_size=6),
        st.lists(
            st.lists(finite, min_size=6, max_size=6),
            min_size=k, max_size=k,
        ),
        st.integers(min_value=0, max_value=4),
    )
)


@settings(deadline=None, max_examples=40)
@given(workloads)
def test_cascade_search_matches_brute_force(args):
    query, candidates, band = args
    res = nearest_neighbor(query, candidates, "cdtw+lb", band=band)
    distances = [
        cdtw(query, c, band=band).distance for c in candidates
    ]
    best = min(distances)
    assert math.isclose(res.distance, best, rel_tol=1e-9, abs_tol=1e-9)
    assert math.isclose(
        distances[res.index], best, rel_tol=1e-9, abs_tol=1e-9
    )


@settings(deadline=None, max_examples=40)
@given(workloads)
def test_cascade_distance_exact_or_inf(args):
    query, candidates, band = args
    cascade = LowerBoundCascade(query, band)
    for c in candidates:
        true = cdtw(query, c, band=band).distance
        got = cascade.distance(c, best_so_far=true * 0.75)
        assert got == math.inf or math.isclose(
            got, true, rel_tol=1e-9, abs_tol=1e-9
        )
        if got == math.inf:
            assert true > true * 0.75 or true == 0.0


# -- clustering --------------------------------------------------------------


@st.composite
def distance_matrices(draw):
    k = draw(st.integers(min_value=2, max_value=7))
    entries = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=100,
                      allow_nan=False, allow_infinity=False),
            min_size=k * (k - 1) // 2,
            max_size=k * (k - 1) // 2,
        )
    )
    m = [[0.0] * k for _ in range(k)]
    idx = 0
    for i in range(k):
        for j in range(i + 1, k):
            m[i][j] = m[j][i] = entries[idx]
            idx += 1
    return m


@settings(deadline=None, max_examples=50)
@given(distance_matrices(), st.sampled_from(["single", "complete",
                                             "average"]))
def test_linkage_structural_invariants(m, method):
    merges = linkage(m, method=method)
    k = len(m)
    assert len(merges) == k - 1
    assert merges[-1].size == k
    # single-linkage merge heights are non-decreasing
    if method == "single":
        heights = [x.distance for x in merges]
        assert all(a <= b + 1e-12 for a, b in zip(heights, heights[1:]))
    # first merge is always the global minimum distance
    lo = min(m[i][j] for i in range(k) for j in range(i + 1, k))
    assert math.isclose(merges[0].distance, lo, rel_tol=1e-12)


@settings(deadline=None, max_examples=30)
@given(distance_matrices())
def test_single_linkage_first_merge_pair_is_argmin(m):
    merges = linkage(m, method="single")
    k = len(m)
    lo = min(m[i][j] for i in range(k) for j in range(i + 1, k))
    a, b = merges[0].left, merges[0].right
    assert math.isclose(m[a][b], lo, rel_tol=1e-12)


# -- preprocessing ------------------------------------------------------------


@settings(deadline=None, max_examples=60)
@given(st.lists(finite, min_size=2, max_size=50))
def test_znorm_idempotent(x):
    once = znorm(x)
    twice = znorm(once)
    assert all(
        math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)
        for a, b in zip(once, twice)
    )


@settings(deadline=None, max_examples=60)
@given(
    st.lists(finite, min_size=2, max_size=50),
    st.floats(min_value=0.1, max_value=10, allow_nan=False),
    st.floats(min_value=-10, max_value=10, allow_nan=False),
)
def test_znorm_affine_invariant(x, scale, shift):
    if max(x) - min(x) < 1e-6:
        return  # constant series normalise to zeros either way
    a = znorm(x)
    b = znorm([scale * v + shift for v in x])
    assert all(
        math.isclose(p, q, rel_tol=1e-6, abs_tol=1e-6)
        for p, q in zip(a, b)
    )


# -- multivariate -------------------------------------------------------------

vector_pairs = st.integers(min_value=1, max_value=3).flatmap(
    lambda dim: st.integers(min_value=1, max_value=12).flatmap(
        lambda n: st.tuples(
            st.lists(
                st.lists(finite, min_size=dim, max_size=dim),
                min_size=n, max_size=n,
            ),
            st.lists(
                st.lists(finite, min_size=dim, max_size=dim),
                min_size=n, max_size=n,
            ),
        )
    )
)


@settings(deadline=None, max_examples=40)
@given(vector_pairs)
def test_multivariate_dtw_symmetric_nonnegative(pair):
    x, y = pair
    d = dtw_nd(x, y).distance
    assert d >= 0
    assert math.isclose(d, dtw_nd(y, x).distance, rel_tol=1e-9,
                        abs_tol=1e-9)


@settings(deadline=None, max_examples=40)
@given(vector_pairs, st.integers(min_value=0, max_value=4))
def test_multivariate_fastdtw_upper_bounds(pair, radius):
    x, y = pair
    assert fastdtw_nd(x, y, radius=radius).distance >= (
        dtw_nd(x, y).distance - 1e-9
    )


@settings(deadline=None, max_examples=40)
@given(vector_pairs, st.integers(min_value=0, max_value=5))
def test_multivariate_cdtw_sandwich(pair, band):
    x, y = pair
    d = cdtw_nd(x, y, band=band).distance
    assert d >= dtw_nd(x, y).distance - 1e-9
    wider = cdtw_nd(x, y, band=band + 2).distance
    assert wider <= d + 1e-9
