"""Failure injection: corrupted input is rejected loudly everywhere.

A NaN that slips into a distance computation silently poisons searches
and clusterings; these tests verify every public pipeline surfaces a
pointed ``ValueError`` instead.
"""

import math

import pytest

from repro.anomaly.discord import find_discord
from repro.classify.knn import DistanceSpec, OneNearestNeighbor
from repro.cluster.dba import dba
from repro.cluster.linkage import linkage
from repro.core.matrix import distance_matrix
from repro.search.subsequence import subsequence_search
from tests.conftest import make_series

NAN = float("nan")
INF = float("inf")


class TestNanRejection:
    def test_distance_matrix_rejects_nan_series(self):
        series = [make_series(10, 1), [1.0, NAN] + [0.0] * 8]
        with pytest.raises(ValueError, match="not finite"):
            distance_matrix(series, measure="dtw")

    def test_subsequence_search_rejects_nan_stream(self):
        stream = make_series(50, 2)
        stream[20] = NAN
        with pytest.raises(ValueError, match="not finite"):
            subsequence_search(make_series(10, 3), stream, band=1)

    def test_subsequence_search_rejects_nan_query(self):
        with pytest.raises(ValueError, match="not finite"):
            subsequence_search([1.0, NAN], make_series(20, 4), band=1)

    def test_discord_rejects_nan_stream(self):
        stream = make_series(60, 5)
        stream[30] = INF
        with pytest.raises(ValueError, match="not finite"):
            find_discord(stream, window=10, band=1)

    def test_classifier_rejects_nan_query(self):
        clf = OneNearestNeighbor(DistanceSpec("cdtw", window=0.1))
        clf.fit([make_series(10, 6), make_series(10, 7)], ["a", "b"])
        with pytest.raises(ValueError, match="not finite"):
            clf.predict_one([1.0, NAN] + [0.0] * 8)

    def test_dba_rejects_nan_member(self):
        with pytest.raises(ValueError, match="not finite"):
            dba([make_series(10, 8), [NAN] * 10])


class TestDegenerateInputsStillWork:
    """Legitimate edge inputs must not crash."""

    def test_constant_series_distances(self):
        from repro.core import cdtw, dtw, fastdtw

        flat = [3.0] * 20
        assert dtw(flat, flat).distance == 0.0
        assert cdtw(flat, [4.0] * 20, band=2).distance == pytest.approx(
            20.0
        )
        assert fastdtw(flat, flat, radius=2).distance == 0.0

    def test_single_sample_series(self):
        from repro.core import dtw

        assert dtw([5.0], [7.0]).distance == 4.0

    def test_linkage_with_equal_distances(self):
        m = [[0.0, 1.0, 1.0], [1.0, 0.0, 1.0], [1.0, 1.0, 0.0]]
        merges = linkage(m)
        assert len(merges) == 2

    def test_huge_values_no_overflow(self):
        from repro.core import cdtw

        big = [1e100] * 10
        small = [0.0] * 10
        d = cdtw(big, small, band=1).distance
        assert math.isfinite(d)

    def test_tiny_values_no_underflow_to_wrong_zero(self):
        from repro.core import dtw

        a = [1e-200] * 5
        b = [3e-200] * 5
        assert dtw(a, b).distance >= 0.0
