"""Unit tests for the experiment runners."""

import pytest

from repro.core.cdtw import cdtw
from repro.timing.runner import (
    PairwiseResult,
    SweepPoint,
    find_crossover,
    pairwise_experiment,
    sweep,
)
from tests.conftest import make_series


@pytest.fixture
def series():
    return [make_series(30, s) for s in range(6)]


class TestPairwiseExperiment:
    def test_counts_all_pairs(self, series):
        res = pairwise_experiment(
            series, lambda x, y: cdtw(x, y, band=2)
        )
        assert res.pairs == 15

    def test_max_pairs_caps(self, series):
        res = pairwise_experiment(
            series, lambda x, y: cdtw(x, y, band=2), max_pairs=4
        )
        assert res.pairs == 4

    def test_accumulates_cells(self, series):
        res = pairwise_experiment(
            series, lambda x, y: cdtw(x, y, band=1), max_pairs=3
        )
        single = cdtw(series[0], series[1], band=1).cells
        assert res.cells == 3 * single

    def test_cell_free_results_ok(self, series):
        res = pairwise_experiment(series, lambda x, y: 1.0, max_pairs=2)
        assert res.cells == 0

    def test_per_pair_seconds(self):
        r = PairwiseResult(pairs=4, seconds=2.0, cells=0)
        assert r.per_pair_seconds == 0.5

    def test_needs_two_series(self):
        with pytest.raises(ValueError):
            pairwise_experiment([make_series(5, 0)], lambda x, y: 0)


class TestSweep:
    def test_one_point_per_param(self, series):
        points = sweep(
            series, "cDTW", [0.0, 0.1, 0.2],
            lambda w: (lambda x, y: cdtw(x, y, window=w)),
            max_pairs=3,
        )
        assert [p.param for p in points] == [0.0, 0.1, 0.2]
        assert all(p.algorithm == "cDTW" for p in points)

    def test_cells_grow_with_window(self, series):
        points = sweep(
            series, "cDTW", [0.0, 0.2, 0.5],
            lambda w: (lambda x, y: cdtw(x, y, window=w)),
            max_pairs=3,
        )
        cells = [p.per_pair_cells for p in points]
        assert cells == sorted(cells)

    def test_total_seconds_scales(self):
        p = SweepPoint("x", 0.1, per_pair_seconds=0.001,
                       per_pair_cells=10, pairs_measured=5)
        assert p.total_seconds(1000) == pytest.approx(1.0)

    def test_empty_params_rejected(self, series):
        with pytest.raises(ValueError):
            sweep(series, "x", [], lambda p: (lambda x, y: 0))


class TestFindCrossover:
    def test_finds_first_crossover(self):
        params = [1, 2, 3, 4]
        a = [10, 10, 10, 10]
        b = [20, 15, 5, 1]
        p, ratio = find_crossover(params, a, b)
        assert p == 3
        assert ratio == 0.5

    def test_no_crossover_raises(self):
        with pytest.raises(ValueError, match="no crossover"):
            find_crossover([1, 2], [1, 1], [2, 2])

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            find_crossover([1], [1, 2], [1])
