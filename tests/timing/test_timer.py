"""Unit tests for the timing harness."""

import pytest

from repro.timing.timer import (
    Timing,
    extrapolate,
    seconds_to_human,
    time_callable,
)


class TestTimeCallable:
    def test_runs_requested_repeats(self):
        calls = []
        t = time_callable(lambda: calls.append(1), repeats=4, warmup=2)
        assert len(calls) == 6
        assert t.repeats == 4

    def test_summary_relationships(self):
        t = time_callable(lambda: sum(range(1000)), repeats=5)
        assert t.minimum <= t.median
        assert t.minimum <= t.mean
        assert t.total == pytest.approx(t.mean * t.repeats)

    def test_median_even_repeats(self):
        t = time_callable(lambda: None, repeats=4)
        assert t.median >= 0.0

    def test_per_call_ms(self):
        t = Timing(repeats=1, mean=0.5, median=0.5, minimum=0.5, total=0.5)
        assert t.per_call_ms() == 500.0

    def test_per_call_ms_defaults_to_mean(self):
        # the paper reports "the average"; the default statistic must
        # be the mean, not the median it silently used to be
        t = Timing(repeats=3, mean=0.2, median=0.3, minimum=0.1, total=0.6)
        assert t.per_call_ms() == pytest.approx(200.0)
        assert t.per_call_ms("median") == pytest.approx(300.0)
        assert t.per_call_ms("minimum") == pytest.approx(100.0)

    def test_value_statistics(self):
        t = Timing(repeats=3, mean=0.2, median=0.3, minimum=0.1, total=0.6)
        assert t.value() == 0.2
        assert t.value("mean") == 0.2
        assert t.value("median") == 0.3
        assert t.value("minimum") == 0.1
        with pytest.raises(ValueError):
            t.value("total")
        with pytest.raises(ValueError):
            t.per_call_ms("average")

    def test_measures_real_work(self):
        fast = time_callable(lambda: None, repeats=3).median
        slow = time_callable(
            lambda: sum(range(200_000)), repeats=3
        ).median
        assert slow > fast

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)
        with pytest.raises(ValueError):
            time_callable(lambda: None, warmup=-1)


class TestExtrapolate:
    def test_footnote2_arithmetic(self):
        # 0.1845 ms/call at a trillion calls ~ 5.8 years
        total = extrapolate(0.1845e-3, 10**12)
        years = total / (365.25 * 86400)
        assert years == pytest.approx(5.8, abs=0.1)

    def test_zero_calls(self):
        assert extrapolate(1.0, 0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            extrapolate(-1.0, 10)


class TestSecondsToHuman:
    def test_milliseconds(self):
        assert seconds_to_human(0.0456) == "45.6 ms"

    def test_seconds(self):
        assert seconds_to_human(3.21) == "3.2 s"

    def test_minutes(self):
        assert seconds_to_human(600) == "10.0 minutes"

    def test_hours(self):
        assert seconds_to_human(7200) == "2.0 hours"

    def test_days(self):
        assert seconds_to_human(1.4 * 86400) == "1.4 days"

    def test_years(self):
        assert seconds_to_human(5.8 * 365.25 * 86400) == "5.8 years"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            seconds_to_human(-1.0)
