"""Unit tests for the analytic cell-count cost models."""

import pytest

from repro.core.cdtw import cdtw
from repro.core.fastdtw import fastdtw
from repro.timing.cells import (
    cdtw_cell_model,
    crossover_band,
    crossover_length,
    fastdtw_cell_model,
)
from tests.conftest import make_series


class TestCdtwCellModel:
    def test_zero_window_is_n(self):
        assert cdtw_cell_model(100, 0.0) == 100

    def test_full_window_is_n_squared(self):
        assert cdtw_cell_model(100, 1.0) == 100 * 100

    def test_clipped_at_lattice(self):
        assert cdtw_cell_model(10, 0.9) <= 100

    def test_close_to_measured(self):
        n, w = 120, 0.08
        measured = cdtw(make_series(n, 1), make_series(n, 2),
                        window=w).cells
        model = cdtw_cell_model(n, w)
        assert abs(measured - model) / model < 0.15

    def test_exact_equal_lengths(self):
        # the model is routed through the DP's own Window geometry, so
        # it must match the measured cell count exactly
        n, w = 120, 0.08
        measured = cdtw(make_series(n, 1), make_series(n, 2),
                        window=w).cells
        assert cdtw_cell_model(n, w) == measured

    def test_unequal_lengths_regression(self):
        # regression: the model once computed ceil(window * n) locally,
        # under-sizing the band whenever m > n (Window.from_fraction
        # uses ceil(window * max(n, m)))
        n, m, w = 80, 140, 0.1
        measured = cdtw(make_series(n, 5), make_series(m, 6),
                        window=w).cells
        assert cdtw_cell_model(n, w, m=m) == measured

    def test_m_defaults_to_n(self):
        assert cdtw_cell_model(64, 0.1) == cdtw_cell_model(64, 0.1, m=64)

    def test_invalid(self):
        with pytest.raises(ValueError):
            cdtw_cell_model(0, 0.1)
        with pytest.raises(ValueError):
            cdtw_cell_model(10, 2.0)
        with pytest.raises(ValueError):
            cdtw_cell_model(10, 0.1, m=0)


class TestFastdtwCellModel:
    def test_formula(self):
        assert fastdtw_cell_model(100, 10) == 9400

    def test_order_of_magnitude_vs_measured(self):
        # Salvador & Chan's model is approximate; stay within 3x
        n, r = 256, 5
        measured = fastdtw(make_series(n, 3), make_series(n, 4),
                           radius=r).cells
        model = fastdtw_cell_model(n, r)
        assert model / 3 < measured < model * 3

    def test_invalid(self):
        with pytest.raises(ValueError):
            fastdtw_cell_model(0, 1)
        with pytest.raises(ValueError):
            fastdtw_cell_model(10, -1)


class TestCrossovers:
    def test_paper_fig1_setting(self):
        # N=945, r=10: cDTW does less work below w ~ 4.9%, so the
        # archive-optimal w=4 beats FastDTW_10 -- the Case A argument
        w_star = crossover_band(945, 10)
        assert 0.04 < w_star < 0.06

    def test_crossover_band_clipped(self):
        assert crossover_band(10, 100) == 1.0

    def test_crossover_length_fig6(self):
        # w=100%, r=40: the cell model predicts N ~ 167; wall-clock
        # crossovers land higher (ours ~300, paper 400) because of
        # FastDTW's per-level overhead
        n_star = crossover_length(1.0, 40)
        assert 150 < n_star < 200

    def test_models_consistent_at_crossover(self):
        n, r = 500, 8
        w_star = crossover_band(n, r)
        cdtw_cells = cdtw_cell_model(n, w_star)
        fast_cells = fastdtw_cell_model(n, r)
        assert abs(cdtw_cells - fast_cells) / fast_cells < 0.1

    def test_invalid(self):
        with pytest.raises(ValueError):
            crossover_band(0, 1)
        with pytest.raises(ValueError):
            crossover_length(0.0, 1)
