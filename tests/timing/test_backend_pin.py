"""The paper harness is pinned to the pure-Python engine.

The paper's claim is "same language, same hardware": both contenders
(exact cDTW and FastDTW) run on the shared pure-Python DP engine, so a
vectorised backend sneaking into the timing path would invalidate the
comparison.  These tests make the pin load-bearing: the explicit
``backend=`` escape hatch raises, and a source scan proves nothing in
``repro.experiments`` or ``repro.timing`` (other than the clearly
labelled cross-backend micro-benchmark ``kernel_bench``) can even name
the NumPy backend or the registry's default-switching hooks.
"""

import pathlib

import pytest

import repro.experiments
import repro.timing
from repro.timing.runner import PINNED_BACKEND, batch_pairwise_experiment
from tests.conftest import make_series

FORBIDDEN_TOKENS = (
    '"numpy"',
    "'numpy'",
    "dtw_numpy",
    "get_kernels",
    "set_default_backend",
    "use_backend",
    "set_default_runtime",
    "use_runtime",
    # the stacked chunk kernels (dtw_chunk, envelope_chunk,
    # lb_keogh_chunk) are repeated-use machinery; the paper harness
    # must never route through them
    "_chunk",
    # the ahead-of-time index is repeated-use machinery too: the
    # paper's timings must stay index-free, so the harness can never
    # even name the index package or its constructors
    "repro.index",
    "DatasetIndex",
    "IndexSearcher",
    "build_index",
    "build_stream_index",
    "load_index",
    "save_index",
    # the serving layer is the repeated-use machine's front door --
    # micro-batching, artifact caches, warm executors.  The paper's
    # timings must never ride it, so the harness can't import the
    # package or name its entry classes
    "repro.serve",
    "QueryService",
    "MicroBatcher",
    "AsyncQueryService",
    # the compressed-domain fast path is an opt-in optimisation the
    # paper never benchmarks: the harness must time the dense engines
    # only, so it can never name the rle module or its measures
    "repro.core.rle",
    "RleSeries",
    "rle_dtw",
    "rle_cdtw",
    # the paper's experiments are univariate; the multivariate stack
    # (DTW_D/DTW_I measures, the nd kernels and bounds) must never
    # leak into the harness.  The measure names are scanned in their
    # string-literal forms because bare "dtw_d" would false-positive
    # on the long-standing "cdtw_distance"/"fastdtw_distances"
    # result fields; "_nd" catches every nd function and kernel
    # (dtw_nd, cdtw_nd, fastdtw_nd, envelope_nd, lb_keogh_nd, ...)
    "multivariate",
    "_nd",
    '"dtw_d"',
    "'dtw_d'",
    '"cdtw_d"',
    "'cdtw_d'",
    '"dtw_i"',
    "'dtw_i'",
    '"cdtw_i"',
    "'cdtw_i'",
)


def _sources(package):
    root = pathlib.Path(package.__file__).parent
    return sorted(root.glob("*.py"))


class TestExplicitPin:
    def test_pinned_backend_is_python(self):
        assert PINNED_BACKEND == "python"

    def test_non_python_backend_raises(self):
        series = [make_series(16, s) for s in range(4)]
        with pytest.raises(ValueError, match="pinned"):
            batch_pairwise_experiment(series, band=2, backend="numpy")

    def test_explicit_python_backend_accepted(self):
        series = [make_series(16, s) for s in range(4)]
        res = batch_pairwise_experiment(series, band=2, backend="python")
        assert res.pairs == 6

    def test_default_backend_switch_does_not_leak_in(self):
        # even if a user flips the process default, the harness stays
        # on the pure engine -- distances and cells must not move
        from repro.core.kernels import use_backend

        series = [make_series(16, s) for s in range(4)]
        plain = batch_pairwise_experiment(series, band=2)
        with use_backend("numpy"):
            switched = batch_pairwise_experiment(series, band=2)
        assert switched.cells == plain.cells
        assert switched.pairs == plain.pairs

    def test_default_runtime_does_not_leak_in(self, monkeypatch):
        # the harness builds its own explicit Runtime, which resolve()
        # never merges with the process default; a poisoned NumPy
        # kernel proves the vectorised path is never reached
        import repro.core.numpy_backend as nb
        from repro.runtime import Runtime, use_runtime

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("numpy kernel reached the harness")

        monkeypatch.setattr(nb, "dtw_numpy", boom)
        monkeypatch.setattr(nb, "dtw_numpy_batch", boom)
        series = [make_series(16, s) for s in range(4)]
        plain = batch_pairwise_experiment(series, band=2)
        with use_runtime(Runtime(backend="numpy", workers=2)):
            pinned = batch_pairwise_experiment(series, band=2)
        assert pinned.cells == plain.cells
        assert pinned.pairs == plain.pairs


class TestSourceScan:
    @pytest.mark.parametrize(
        "package", [repro.experiments, repro.timing],
        ids=["experiments", "timing"],
    )
    def test_no_numpy_backend_references(self, package):
        offenders = []
        for path in _sources(package):
            if path.name == "kernel_bench.py":
                continue  # the cross-backend bench, by design
            text = path.read_text()
            for token in FORBIDDEN_TOKENS:
                if token in text:
                    offenders.append(f"{path.name}: {token}")
        assert not offenders, offenders

    def test_scan_covers_the_harness_modules(self):
        names = {p.name for p in _sources(repro.timing)}
        assert "runner.py" in names and "kernel_bench.py" in names
