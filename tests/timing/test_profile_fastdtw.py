"""Unit tests for the FastDTW phase profiler."""

import pytest

from repro.core.fastdtw import fastdtw
from repro.timing.profile_fastdtw import profile_fastdtw
from tests.conftest import make_series


class TestProfileFastdtw:
    def test_distance_matches_plain_fastdtw(self):
        x = make_series(128, 1)
        y = make_series(128, 2)
        for radius in (0, 2, 5):
            prof = profile_fastdtw(x, y, radius=radius)
            plain = fastdtw(x, y, radius=radius)
            assert prof.distance == pytest.approx(plain.distance)

    def test_phases_nonnegative_and_sum(self):
        x = make_series(256, 3)
        y = make_series(256, 4)
        prof = profile_fastdtw(x, y, radius=4)
        assert prof.coarsen_seconds >= 0
        assert prof.window_seconds >= 0
        assert prof.dp_seconds > 0
        assert prof.total_seconds == pytest.approx(
            prof.coarsen_seconds + prof.window_seconds + prof.dp_seconds
        )

    def test_levels_counted(self):
        x = make_series(128, 5)
        y = make_series(128, 6)
        prof = profile_fastdtw(x, y, radius=1)
        # 128 -> 64 -> 32 -> 16 -> 8 -> 4 -> base(<=3): ~6-7 levels
        assert 4 <= prof.levels <= 8

    def test_overhead_fraction_in_unit_range(self):
        x = make_series(200, 7)
        y = make_series(200, 8)
        prof = profile_fastdtw(x, y, radius=3)
        assert 0.0 <= prof.overhead_fraction() < 1.0

    def test_overhead_is_real(self):
        # the point of the profiler: a measurable share of FastDTW's
        # time is outside the DP the cell model sees
        x = make_series(512, 9)
        y = make_series(512, 10)
        prof = profile_fastdtw(x, y, radius=2)
        assert prof.coarsen_seconds + prof.window_seconds > 0

    def test_base_case_only_dp(self):
        x = make_series(4, 11)
        y = make_series(4, 12)
        prof = profile_fastdtw(x, y, radius=5)
        assert prof.levels == 1
        assert prof.coarsen_seconds == 0.0
        assert prof.window_seconds == 0.0

    def test_bit_exact_against_fastdtw(self):
        # the profiler now *is* fastdtw observed through its own span
        # hooks, so distance, level count and cell counts must match
        # the plain run bit-for-bit, not approximately
        x = make_series(160, 13)
        y = make_series(160, 14)
        for radius in (0, 1, 3):
            prof = profile_fastdtw(x, y, radius=radius)
            plain = fastdtw(x, y, radius=radius, keep_levels=True)
            assert prof.distance == plain.distance
            assert prof.levels == len(plain.levels)
            assert prof.cells == plain.cells
            assert prof.level_cells == tuple(
                lvl.window_cells for lvl in plain.levels
            )

    def test_level_cells_sum_to_cells(self):
        prof = profile_fastdtw(make_series(96, 15), make_series(96, 16),
                               radius=2)
        assert sum(prof.level_cells) == prof.cells

    def test_profiler_trace_is_private(self):
        # running the profiler inside a caller's RunTrace must not
        # leak its spans/counters into that trace
        from repro.obs import RunTrace

        x = make_series(64, 17)
        y = make_series(64, 18)
        with RunTrace() as outer:
            profile_fastdtw(x, y, radius=1)
        assert outer.counter("dp.cells") == 0
        assert outer.span_count("fastdtw") == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            profile_fastdtw([1.0], [1.0], radius=-1)
        with pytest.raises(ValueError, match="not finite"):
            profile_fastdtw([float("nan")], [1.0])
