"""Schema smoke test for the executor benchmark report.

``python -m repro kernels --warm`` writes ``BENCH_batch.json`` from
:func:`repro.timing.kernel_bench.executor_benchmark`; downstream
tooling (the CI speedup gates, the README table) reads specific keys
at full float precision, so the emitted schema is a contract.  The
workload here is tiny -- the timings are meaningless, only the shape
and types of the report matter.
"""

import json
import math

import pytest

pytest.importorskip("numpy")

from repro.timing.kernel_bench import (  # noqa: E402
    executor_benchmark,
    format_executor_report,
)

TIMING_LABELS = (
    "python_serial", "python_workers_cold", "python_workers_warm",
    "numpy_serial", "numpy_workers_cold", "numpy_workers_warm",
)

CHUNK_STAT_KEYS = (
    "sched_chunks", "kernel_calls", "groups",
    "stacked_pairs", "pad_rows", "pad_waste_fraction",
)


@pytest.fixture(scope="module")
def report():
    return executor_benchmark(
        length=32, count=4, window=0.2, workers=2, repeats=1, seed=0
    )


class TestExecutorReportSchema:
    def test_top_level_keys(self, report):
        for key in (
            "benchmark", "note", "cpu_count", "workload", "timings",
            "speedups_over_python_serial",
            "warm_python_speedup_over_serial",
            "warm_numpy_speedup_over_numpy_serial",
            "chunk_stats", "parity",
        ):
            assert key in report

    def test_timing_rows(self, report):
        assert set(report["timings"]) == set(TIMING_LABELS)
        for row in report["timings"].values():
            assert row["seconds"] > 0
            assert row["per_pair_seconds"] > 0

    def test_warm_speedups_are_full_precision_floats(self, report):
        for key in (
            "warm_python_speedup_over_serial",
            "warm_numpy_speedup_over_numpy_serial",
        ):
            value = report[key]
            assert type(value) is float
            assert math.isfinite(value) and value > 0
        for value in report["speedups_over_python_serial"].values():
            assert type(value) is float

    def test_chunk_stats_schema(self, report):
        cs = report["chunk_stats"]
        assert set(cs) == set(CHUNK_STAT_KEYS)
        pairs = report["workload"]["pairs"]
        assert cs["stacked_pairs"] == pairs
        assert cs["kernel_calls"] == cs["groups"] >= 1
        assert cs["sched_chunks"] >= 1
        assert cs["pad_rows"] >= 0
        waste = cs["pad_waste_fraction"]
        assert 0.0 <= waste < 1.0
        assert waste == cs["pad_rows"] / (
            cs["stacked_pairs"] + cs["pad_rows"]
        )

    def test_cpu_count_recorded(self, report):
        assert isinstance(report["cpu_count"], int)
        assert report["cpu_count"] >= 1
        if report["cpu_count"] < 2:
            assert "cpu_count=1" in report["note"]

    def test_single_core_note_round_trips(self, monkeypatch):
        """The cpu_count<2 limitation note survives the JSON contract.

        On a single-core runner the worker rows time-share one core, so
        the report appends an explanatory sentence to ``note``; the CLI
        writes the report verbatim, so the sentence must survive a JSON
        round trip byte-for-byte for downstream readers.
        """
        monkeypatch.setattr("os.cpu_count", lambda: 1)
        report = executor_benchmark(
            length=32, count=4, window=0.2, workers=2, repeats=1, seed=0
        )
        assert report["cpu_count"] == 1
        assert "This run had cpu_count=1" in report["note"]
        assert "time-share one core" in report["note"]
        rebuilt = json.loads(json.dumps(report))
        assert rebuilt["note"] == report["note"]
        assert rebuilt["cpu_count"] == 1

    def test_parity_holds_on_smoke_workload(self, report):
        assert report["parity"]["distances_identical"] is True
        assert report["parity"]["cells_identical"] is True

    def test_json_round_trip_preserves_floats(self, report):
        rebuilt = json.loads(json.dumps(report))
        assert (
            rebuilt["warm_numpy_speedup_over_numpy_serial"]
            == report["warm_numpy_speedup_over_numpy_serial"]
        )
        assert rebuilt["chunk_stats"] == report["chunk_stats"]

    def test_format_mentions_chunk_stats(self, report):
        text = format_executor_report(report)
        assert "stacked kernel calls" in text
        assert "pad waste" in text
