"""Unit tests for the controlled-warp substrate."""

import random

import pytest

from repro.core.cdtw import cdtw
from repro.datasets.warping import (
    add_noise,
    gaussian_bump,
    resample,
    smooth_monotone_map,
    warp_series,
)
from tests.conftest import make_series


class TestSmoothMonotoneMap:
    def test_endpoints_fixed(self):
        t = smooth_monotone_map(50, 5.0, random.Random(1))
        assert t[0] == 0.0
        assert t[-1] == 49.0

    def test_monotone(self):
        for seed in range(5):
            t = smooth_monotone_map(80, 10.0, random.Random(seed))
            assert all(a < b for a, b in zip(t, t[1:]))

    def test_bounded_deviation(self):
        max_shift = 7.0
        for seed in range(5):
            t = smooth_monotone_map(100, max_shift, random.Random(seed))
            assert all(
                abs(v - i) <= max_shift + 1e-6 for i, v in enumerate(t)
            )

    def test_zero_shift_is_identity(self):
        t = smooth_monotone_map(20, 0.0, random.Random(2))
        assert t == pytest.approx(list(range(20)))

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            smooth_monotone_map(1, 1.0, random.Random(0))
        with pytest.raises(ValueError):
            smooth_monotone_map(10, -1.0, random.Random(0))
        with pytest.raises(ValueError):
            smooth_monotone_map(10, 1.0, random.Random(0), knots=1)


class TestResample:
    def test_integer_positions_identity(self):
        x = make_series(10, 1)
        assert resample(x, list(range(10))) == pytest.approx(x)

    def test_midpoint_interpolates(self):
        assert resample([0.0, 2.0], [0.5]) == [1.0]

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ValueError):
            resample([1.0, 2.0], [1.5])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            resample([], [0.0])


class TestWarpSeries:
    def test_alignable_within_budget(self):
        # the substrate's contract: a warped copy is alignable by cDTW
        # with band >= max_shift at near-zero cost
        x = [float(i % 7) for i in range(60)]
        max_shift = 4.0
        for seed in range(3):
            y = warp_series(x, max_shift, random.Random(seed))
            close = cdtw(x, y, band=8).distance
            assert close < cdtw(x, y, band=0).distance + 1e-9

    def test_zero_shift_identity(self):
        x = make_series(30, 2)
        assert warp_series(x, 0.0, random.Random(0)) == pytest.approx(x)

    def test_length_preserved(self):
        x = make_series(25, 3)
        assert len(warp_series(x, 3.0, random.Random(1))) == 25


class TestAddNoise:
    def test_zero_sigma_identity(self):
        x = make_series(10, 4)
        assert add_noise(x, 0.0, random.Random(0)) == pytest.approx(x)

    def test_noise_has_roughly_right_scale(self):
        x = [0.0] * 10_000
        noisy = add_noise(x, 0.5, random.Random(5))
        var = sum(v * v for v in noisy) / len(noisy)
        assert var == pytest.approx(0.25, rel=0.1)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            add_noise([1.0], -0.1, random.Random(0))


class TestGaussianBump:
    def test_peak_at_centre(self):
        bump = gaussian_bump(21, 10.0, 2.0, height=3.0)
        assert bump[10] == pytest.approx(3.0)
        assert max(bump) == bump[10]

    def test_symmetric(self):
        bump = gaussian_bump(21, 10.0, 2.0)
        assert bump[7] == pytest.approx(bump[13])

    def test_far_tail_underflows_to_zero(self):
        bump = gaussian_bump(1000, 0.0, 0.5)
        assert bump[-1] == 0.0

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            gaussian_bump(10, 5.0, 0.0)
