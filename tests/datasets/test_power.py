"""Unit tests for the power-demand generator (Fig. 3)."""

import pytest

from repro.datasets.power import (
    estimate_warping,
    find_peaks,
    midnight_hour_pair,
)


class TestMidnightHourPair:
    def test_paper_dimensions(self):
        pair = midnight_hour_pair()
        assert pair.length == 450

    def test_paper_peak_offset(self):
        # the paper: third pair of peaks differs by 153 samples
        pair = midnight_hour_pair()
        assert pair.max_peak_offset() == 153

    def test_paper_warping_estimate(self):
        pair = midnight_hour_pair()
        assert pair.warping_estimate() == pytest.approx(0.34, abs=0.01)

    def test_deterministic(self):
        assert midnight_hour_pair(seed=3).night_a == \
            midnight_hour_pair(seed=3).night_a

    def test_peaks_actually_present(self):
        pair = midnight_hour_pair()
        for peaks, trace in (
            (pair.peaks_a, pair.night_a), (pair.peaks_b, pair.night_b),
        ):
            for p in peaks:
                # the trace near a peak rises well above base load
                assert trace[p] > 0.8

    def test_validation(self):
        with pytest.raises(ValueError, match="same number"):
            midnight_hour_pair(peaks_a=(10, 20), peaks_b=(10,))
        with pytest.raises(ValueError, match="inside"):
            midnight_hour_pair(peaks_a=(10, 20, 500))
        with pytest.raises(ValueError, match="increasing"):
            midnight_hour_pair(peaks_a=(20, 10, 30))


class TestQuantize:
    """``quantize=`` snaps traces onto the RLE exactness grid."""

    def test_default_none_is_the_original_trace(self):
        plain = midnight_hour_pair(seed=5)
        explicit = midnight_hour_pair(seed=5, quantize=None)
        assert plain.night_a == explicit.night_a
        assert plain.night_b == explicit.night_b

    def test_samples_land_on_multiples_of_the_step(self):
        step = 2.0 ** -6
        pair = midnight_hour_pair(seed=5, quantize=step)
        for trace in (pair.night_a, pair.night_b):
            for v in trace:
                assert v == round(v / step) * step

    def test_quantized_traces_sit_on_the_exactness_grid(self):
        from repro.core.rle import RleSeries

        pair = midnight_hour_pair(seed=5, quantize=2.0 ** -6)
        for trace in (pair.night_a, pair.night_b):
            assert RleSeries.encode(trace).exactness_grid()

    def test_coarser_grids_compress_better(self):
        fine = midnight_hour_pair(seed=5, quantize=2.0 ** -8)
        coarse = midnight_hour_pair(seed=5, quantize=2.0 ** -2)
        assert (
            coarse.compression_ratio() > fine.compression_ratio() >= 1.0
        )

    def test_run_counts_match_the_encoder(self):
        from repro.core.rle import RleSeries

        pair = midnight_hour_pair(seed=5, quantize=2.0 ** -4)
        assert pair.run_counts() == (
            RleSeries.encode(pair.night_a).run_count,
            RleSeries.encode(pair.night_b).run_count,
        )

    def test_unquantized_noise_barely_compresses(self):
        # continuous noise means runs of length ~1 everywhere
        pair = midnight_hour_pair(seed=5)
        assert pair.compression_ratio() == pytest.approx(1.0, abs=0.05)

    def test_invalid_steps_rejected(self):
        for bad in (0.0, -0.5):
            with pytest.raises(ValueError, match="positive"):
                midnight_hour_pair(quantize=bad)

    def test_quantized_peaks_still_recoverable(self):
        # quantization must not destroy the Fig. 3 structure
        pair = midnight_hour_pair(quantize=2.0 ** -4)
        assert estimate_warping(pair) == pytest.approx(0.34, abs=0.01)


class TestFindPeaks:
    def test_recovers_planted_peaks(self):
        pair = midnight_hour_pair()
        found = find_peaks(pair.night_a, threshold=0.6)
        assert len(found) == 3
        for got, truth in zip(found, pair.peaks_a):
            assert abs(got - truth) <= 3

    def test_no_peaks_in_flat_series(self):
        assert find_peaks([0.1] * 100, threshold=0.5) == []

    def test_min_separation_suppresses_ripples(self):
        x = [0.0] * 50
        x[20] = 1.0
        x[22] = 0.9  # ripple next to the real peak
        found = find_peaks(x, threshold=0.5, min_separation=5)
        assert found == [20]

    def test_invalid_separation(self):
        with pytest.raises(ValueError):
            find_peaks([1.0], 0.5, min_separation=0)


class TestEstimateWarping:
    def test_reproduces_paper_number(self):
        # the Fig. 3 procedure end to end: peaks -> offsets -> W = 34%
        assert estimate_warping(midnight_hour_pair()) == pytest.approx(
            0.34, abs=0.01
        )

    def test_zero_for_identical_nights(self):
        pair = midnight_hour_pair(
            peaks_a=(60, 170, 260), peaks_b=(60, 170, 260)
        )
        assert estimate_warping(pair) == pytest.approx(0.0, abs=0.01)

    def test_raises_on_unmatched_peak_counts(self):
        pair = midnight_hour_pair()
        with pytest.raises(ValueError, match="peaks"):
            estimate_warping(pair, threshold=1.5)  # nothing detected
