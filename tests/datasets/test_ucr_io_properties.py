"""Property tests: UCR TSV serialisation round-trips exactly."""

from hypothesis import given, settings, strategies as st

from repro.datasets.base import as_dataset
from repro.datasets.ucr_io import load_ucr_tsv, save_ucr_tsv

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def datasets(draw):
    n_series = draw(st.integers(min_value=1, max_value=8))
    length = draw(st.integers(min_value=1, max_value=20))
    series = [
        draw(st.lists(finite, min_size=length, max_size=length))
        for _ in range(n_series)
    ]
    labels = [
        draw(st.sampled_from(["0", "1", "2", "-1", "7.5"]))
        for _ in range(n_series)
    ]
    return as_dataset("prop", series, labels)


@settings(deadline=None, max_examples=50)
@given(datasets())
def test_round_trip_exact(tmp_path_factory, data):
    path = tmp_path_factory.mktemp("ucr") / "d.tsv"
    save_ucr_tsv(data, path)
    loaded = load_ucr_tsv(path, name="prop")
    assert loaded.labels == data.labels
    assert len(loaded) == len(data)
    for a, b in zip(loaded.series, data.series):
        assert a == b  # repr round-trip is exact for finite floats
