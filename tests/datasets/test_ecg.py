"""Unit tests for the synthetic ECG generator."""

import random

import pytest

from repro.core.cdtw import cdtw
from repro.datasets.ecg import ecg_stream, heartbeat
from repro.preprocess.normalize import znorm


class TestHeartbeat:
    def test_length(self):
        assert len(heartbeat(180)) == 180

    def test_r_peak_dominates(self):
        beat = heartbeat(200, random.Random(1), noise_sigma=0.0)
        peak_idx = max(range(200), key=lambda i: beat[i])
        # R wave sits at ~42% of the beat
        assert abs(peak_idx - 84) < 12

    def test_beats_similar_but_not_identical(self):
        rng = random.Random(2)
        a, b = heartbeat(150, rng), heartbeat(150, rng)
        assert a != b
        d = cdtw(znorm(a), znorm(b), window=0.05).distance
        assert d < 30.0  # same morphology

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            heartbeat(10)


class TestEcgStream:
    def test_roughly_expected_length(self):
        stream = ecg_stream(10, mean_beat_samples=100, seed=1)
        assert 800 <= len(stream) <= 1200

    def test_deterministic(self):
        assert ecg_stream(3, seed=4) == ecg_stream(3, seed=4)

    def test_variable_beat_lengths(self):
        # the Case D argument: equal-duration excerpts hold different
        # beat counts; verify the generator varies beat lengths
        long = ecg_stream(50, mean_beat_samples=100,
                          rr_variability=0.2, seed=5)
        fixed = ecg_stream(50, mean_beat_samples=100,
                           rr_variability=0.0, seed=5)
        assert len(long) != len(fixed)

    def test_zero_variability_exact_length(self):
        stream = ecg_stream(5, mean_beat_samples=80,
                            rr_variability=0.0, seed=6)
        assert len(stream) == 400

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            ecg_stream(0)
        with pytest.raises(ValueError):
            ecg_stream(3, rr_variability=1.0)
