"""Unit tests for the dataset container."""

import pytest

from repro.datasets.base import TimeSeriesDataset, as_dataset


@pytest.fixture
def data():
    return as_dataset(
        "toy",
        [[1.0, 2.0], [3.0, 4.0], [5.0, 6.0], [7.0, 8.0]],
        ["a", "b", "a", "b"],
    )


class TestConstruction:
    def test_basic_properties(self, data):
        assert len(data) == 4
        assert data.length == 2
        assert data.classes == ("a", "b")

    def test_rejects_mismatched_labels(self):
        with pytest.raises(ValueError, match="equal length"):
            as_dataset("x", [[1.0]], ["a", "b"])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            as_dataset("x", [], [])

    def test_rejects_ragged_series(self):
        with pytest.raises(ValueError, match="differ"):
            as_dataset("x", [[1.0], [1.0, 2.0]], ["a", "b"])

    def test_immutable_series(self, data):
        assert isinstance(data.series[0], tuple)


class TestSplit:
    def test_partition(self, data):
        train, test = data.split(0.5, seed=1)
        assert len(train) + len(test) == len(data)
        assert sorted(train.series + test.series) == sorted(data.series)

    def test_deterministic(self, data):
        a = data.split(0.5, seed=7)
        b = data.split(0.5, seed=7)
        assert a[0].series == b[0].series

    def test_different_seeds_differ(self):
        big = as_dataset(
            "big", [[float(i), 0.0] for i in range(20)], list(range(20))
        )
        a, _ = big.split(0.5, seed=1)
        b, _ = big.split(0.5, seed=2)
        assert a.series != b.series

    def test_labels_follow_series(self, data):
        train, _ = data.split(0.5, seed=3)
        for s, l in zip(train.series, train.labels):
            idx = data.series.index(s)
            assert data.labels[idx] == l

    def test_invalid_fraction_rejected(self, data):
        with pytest.raises(ValueError):
            data.split(0.0)
        with pytest.raises(ValueError):
            data.split(1.0)

    def test_degenerate_split_rejected(self):
        two = as_dataset("t", [[1.0], [2.0]], ["a", "b"])
        with pytest.raises(ValueError, match="empty side"):
            two.split(0.1)
