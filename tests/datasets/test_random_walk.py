"""Unit tests for random walks."""

import math

import pytest

from repro.datasets.random_walk import random_walk, random_walks


class TestRandomWalk:
    def test_length(self):
        assert len(random_walk(123)) == 123

    def test_deterministic(self):
        assert random_walk(50, seed=9) == random_walk(50, seed=9)

    def test_seeds_differ(self):
        assert random_walk(50, seed=1) != random_walk(50, seed=2)

    def test_normalized_by_default(self):
        x = random_walk(500, seed=3)
        assert sum(x) / len(x) == pytest.approx(0.0, abs=1e-9)
        assert math.sqrt(sum(v * v for v in x) / len(x)) == pytest.approx(1.0)

    def test_unnormalized_is_cumulative(self):
        x = random_walk(100, seed=4, normalize=False)
        # a random walk wanders: adjacent steps are ~N(0,1)
        steps = [b - a for a, b in zip(x, x[1:])]
        assert max(abs(s) for s in steps) < 6.0

    def test_length_one(self):
        assert len(random_walk(1, normalize=False)) == 1

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            random_walk(0)
        with pytest.raises(ValueError):
            random_walk(10, step_sigma=0.0)


class TestRandomWalks:
    def test_count_and_lengths(self):
        walks = random_walks(5, 40, seed=1)
        assert len(walks) == 5
        assert all(len(w) == 40 for w in walks)

    def test_walks_are_distinct(self):
        walks = random_walks(4, 30, seed=2)
        assert len({tuple(w) for w in walks}) == 4

    def test_deterministic(self):
        assert random_walks(3, 20, seed=5) == random_walks(3, 20, seed=5)

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            random_walks(0, 10)
