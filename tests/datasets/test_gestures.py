"""Unit tests for the gesture generator."""

import pytest

from repro.classify.knn import DistanceSpec
from repro.classify.loocv import loocv_error
from repro.datasets.gestures import gesture_dataset, uwave_like


class TestGestureDataset:
    def test_shape(self):
        d = gesture_dataset(n_classes=3, per_class=4, length=64, seed=1)
        assert len(d) == 12
        assert d.length == 64
        assert len(d.classes) == 3

    def test_deterministic(self):
        a = gesture_dataset(n_classes=2, per_class=2, length=32, seed=5)
        b = gesture_dataset(n_classes=2, per_class=2, length=32, seed=5)
        assert a.series == b.series

    def test_series_are_znormed(self):
        d = gesture_dataset(n_classes=2, per_class=2, length=100, seed=2)
        for s in d.series:
            assert sum(s) / len(s) == pytest.approx(0.0, abs=1e-9)

    def test_classes_are_learnable_with_warping(self):
        # the generator's purpose: classes separable by cDTW
        d = gesture_dataset(
            n_classes=3, per_class=5, length=48,
            warp_fraction=0.05, noise_sigma=0.1, seed=3,
        )
        err = loocv_error(
            [list(s) for s in d.series], list(d.labels),
            DistanceSpec("cdtw", window=0.08, use_lower_bounds=True),
        )
        assert err < 0.2

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            gesture_dataset(n_classes=1)
        with pytest.raises(ValueError):
            gesture_dataset(per_class=0)
        with pytest.raises(ValueError):
            gesture_dataset(warp_fraction=0.9)
        with pytest.raises(ValueError):
            gesture_dataset(length=4)


class TestUwaveLike:
    def test_matches_paper_shape(self):
        d = uwave_like(per_class=1)
        assert d.length == 945          # the paper's N
        assert len(d.classes) == 8      # UWave's 8 gestures

    def test_per_class_scales(self):
        assert len(uwave_like(per_class=2)) == 16
