"""Property tests over the workload generators (Hypothesis).

Determinism and the generators' declared contracts (normalisation,
bounded warping, dimension consistency) across arbitrary seeds --
these are what make the benchmark artefacts reproducible run to run.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.core.dtw import dtw
from repro.datasets.falls import fall_pair
from repro.datasets.gestures import gesture_dataset
from repro.datasets.music import studio_and_live
from repro.datasets.power import midnight_hour_pair
from repro.datasets.random_walk import random_walk

seeds = st.integers(min_value=0, max_value=10_000)


@settings(deadline=None, max_examples=25)
@given(seeds, st.integers(min_value=2, max_value=200))
def test_random_walk_deterministic_and_normalised(seed, n):
    a = random_walk(n, seed=seed)
    b = random_walk(n, seed=seed)
    assert a == b
    assert abs(sum(a) / n) < 1e-9
    var = sum(v * v for v in a) / n
    assert math.isclose(math.sqrt(var), 1.0, rel_tol=1e-6) or var == 0.0


@settings(deadline=None, max_examples=10)
@given(seeds)
def test_gesture_dataset_deterministic(seed):
    kwargs = dict(n_classes=2, per_class=2, length=32, seed=seed)
    assert gesture_dataset(**kwargs).series == (
        gesture_dataset(**kwargs).series
    )


@settings(deadline=None, max_examples=10)
@given(seeds)
def test_power_pair_peak_offset_is_parameter_driven(seed):
    pair = midnight_hour_pair(seed=seed)
    # the offset comes from the peak positions, not the noise seed
    assert pair.max_peak_offset() == 153


@settings(deadline=None, max_examples=8)
@given(seeds, st.floats(min_value=0.8, max_value=2.0))
def test_fall_pair_needs_wide_warping(seed, seconds):
    pair = fall_pair(seconds, seed=seed)
    path = dtw(pair.early, pair.late, return_path=True).path
    assert path.warp_fraction() > 0.3
    # at L=0.8s with a 0.5s fall the stillness gap is 3/8 of the window
    assert pair.required_window_fraction() >= 0.3


@settings(deadline=None, max_examples=6)
@given(seeds)
def test_music_pair_alignable_within_declared_window(seed):
    pair = studio_and_live(seconds=5.0, max_drift_seconds=0.25,
                           seed=seed)
    from repro.core.cdtw import cdtw

    within = cdtw(pair.studio, pair.live,
                  window=pair.window_fraction).distance
    lockstep = cdtw(pair.studio, pair.live, window=0.0).distance
    assert within <= lockstep + 1e-9
