"""Unit tests for the UCR archive metadata table."""

import pytest

from repro.datasets.ucr_meta import (
    UCR_2018,
    UWAVE_ERROR_BEST_W,
    UWAVE_ERROR_EUCLIDEAN,
    UWAVE_ERROR_FULL_DTW,
    best_w_histogram,
    by_name,
    case_census,
    fraction_best_w_at_most,
    fraction_shorter_than,
    histogram,
    length_histogram,
)


class TestTable:
    def test_exactly_128_datasets(self):
        assert len(UCR_2018) == 128

    def test_names_unique(self):
        assert len({d.name for d in UCR_2018}) == 128

    def test_all_fields_sane(self):
        for d in UCR_2018:
            assert d.length > 0
            assert d.train_size > 0 and d.test_size > 0
            assert d.classes >= 2
            assert 0 <= d.best_w <= 100

    def test_uwave_matches_paper_text(self):
        # the paper: 896 train exemplars of length 945, best w = 4
        d = by_name("UWaveGestureLibraryAll")
        assert d.length == 945
        assert d.train_size == 896
        assert d.best_w == 4
        assert d.train_size * (d.train_size - 1) // 2 == 400_960

    def test_longest_dataset_is_2844(self):
        # the paper: "The longest of these is 2,844" (Rock)
        assert max(d.length for d in UCR_2018) == 2844
        assert by_name("Rock").length == 2844

    def test_quoted_error_rates(self):
        assert UWAVE_ERROR_EUCLIDEAN == 0.052
        assert UWAVE_ERROR_BEST_W == 0.034
        assert UWAVE_ERROR_FULL_DTW == 0.108

    def test_by_name_missing(self):
        with pytest.raises(KeyError):
            by_name("NotADataset")


class TestAggregates:
    def test_majority_shorter_than_1000(self):
        # the paper's Fig. 2b claim
        assert fraction_shorter_than(1000) > 0.75

    def test_best_w_rarely_above_10(self):
        # the paper's Fig. 2a claim
        assert fraction_best_w_at_most(10) > 0.80

    def test_census_sums_to_total(self):
        census = case_census()
        assert sum(census.values()) == 128

    def test_case_a_dominates(self):
        census = case_census()
        assert census["A"] > 100
        assert census["D"] <= 2

    def test_dataset_case_method(self):
        assert by_name("UWaveGestureLibraryAll").case() == "A"
        assert by_name("Chinatown").case() == "A"


class TestHistogram:
    def test_basic_binning(self):
        assert histogram([1, 2, 5, 9], [0, 5, 10]) == [2, 2]

    def test_max_value_counted_in_last_bin(self):
        assert histogram([10], [0, 5, 10]) == [0, 1]

    def test_out_of_range_ignored(self):
        assert histogram([-1, 99], [0, 5, 10]) == [0, 0]

    def test_bad_edges_rejected(self):
        with pytest.raises(ValueError):
            histogram([1], [5])
        with pytest.raises(ValueError):
            histogram([1], [5, 5])

    def test_w_histogram_totals(self):
        assert sum(best_w_histogram()) == 128

    def test_length_histogram_totals(self):
        assert sum(length_histogram()) == 128

    def test_w_histogram_first_bin_biggest(self):
        counts = best_w_histogram()
        assert counts[0] == max(counts)
