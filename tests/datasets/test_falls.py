"""Unit tests for the fall generator (Figs. 5-6)."""

import pytest

from repro.core.dtw import dtw
from repro.core.euclidean import euclidean
from repro.datasets.falls import fall_pair, fall_signature
import random


class TestFallSignature:
    def test_length(self):
        assert len(fall_signature(50, random.Random(1))) == 50

    def test_starts_and_ends_quiet(self):
        # the burst ramps from and back to stillness, which is what
        # lets DTW align early and late falls cheaply (Fig. 5)
        sig = fall_signature(50, random.Random(2))
        assert abs(sig[0]) < 0.3
        assert abs(sig[-1]) < 0.3

    def test_impact_peak_early(self):
        sig = fall_signature(100, random.Random(7))
        peak = max(range(100), key=lambda i: abs(sig[i]))
        assert peak < 50
        assert abs(sig[peak]) > 1.5

    def test_decays(self):
        sig = fall_signature(100, random.Random(3))
        head = max(abs(v) for v in sig[:20])
        tail = max(abs(v) for v in sig[-20:])
        assert tail < head

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            fall_signature(3, random.Random(0))


class TestFallPair:
    def test_paper_dimensions(self):
        pair = fall_pair(4.0)
        assert pair.length == 400  # L = 4 s at 100 Hz

    def test_falls_at_opposite_ends(self):
        pair = fall_pair(3.0, seed=1)
        n, f = pair.length, pair.fall_duration_samples
        assert max(abs(v) for v in pair.early[:f]) > 1.0
        assert max(abs(v) for v in pair.early[f + 10:]) < 0.5
        assert max(abs(v) for v in pair.late[-f:]) > 1.0
        assert max(abs(v) for v in pair.late[:n - f - 10]) < 0.5

    def test_requires_near_full_warping(self):
        pair = fall_pair(3.0, seed=2)
        assert pair.required_window_fraction() > 0.8

    def test_full_dtw_aligns_the_falls(self):
        # Fig. 5's premise: unconstrained DTW maps fall onto fall,
        # making the pair far closer than lock-step comparison
        pair = fall_pair(2.0, seed=3)
        warped = dtw(pair.early, pair.late).distance
        lockstep = euclidean(pair.early, pair.late)
        assert warped < lockstep / 10

    def test_alignment_deviates_near_full_length(self):
        pair = fall_pair(2.0, seed=4)
        path = dtw(pair.early, pair.late, return_path=True).path
        assert path.warp_fraction() > 0.5

    def test_deterministic(self):
        assert fall_pair(1.0, seed=5).early == fall_pair(1.0, seed=5).early

    def test_window_shorter_than_fall_rejected(self):
        with pytest.raises(ValueError):
            fall_pair(0.4, fall_seconds=0.5)
