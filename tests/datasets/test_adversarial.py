"""Unit tests for the adversarial triple -- the Appendix A contract.

These tests pin down every property the paper's Table 2 / Fig. 7 /
Fig. 8 experiments rely on, so a regression in any core algorithm that
would break the reproduction is caught here.
"""

import pytest

from repro.core.dtw import dtw
from repro.core.error import approximation_error_percent
from repro.core.fastdtw import fastdtw
from repro.core.paa import halve, paa_factor
from repro.datasets.adversarial import (
    adversarial_pair,
    deviation_at_row,
)


@pytest.fixture(scope="module")
def triple():
    return adversarial_pair()


class TestConstruction:
    def test_default_geometry(self, triple):
        assert triple.length == 256
        assert triple.doublet_shift == 32
        assert triple.bump_shift == -32

    def test_deterministic(self):
        assert adversarial_pair(seed=1).a == adversarial_pair(seed=1).a

    def test_doublet_vanishes_under_halving(self, triple):
        # the construction's key invariant: the dominant feature is
        # exactly invisible at every coarsened level
        coarse = halve(triple.a)
        window = coarse[
            triple.doublet_a // 2 - 2: triple.doublet_a // 2 + 2
        ]
        assert all(abs(v) < 0.1 for v in window)

    def test_doublet_is_dominant_raw_feature(self, triple):
        assert max(abs(v) for v in triple.a) == pytest.approx(
            abs(triple.a[triple.doublet_a]), rel=0.05
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="even"):
            adversarial_pair(doublet_a=65)
        with pytest.raises(ValueError, match="even"):
            adversarial_pair(shift=31)
        with pytest.raises(ValueError, match="at least 64"):
            adversarial_pair(length=32)
        with pytest.raises(ValueError, match="overlap"):
            adversarial_pair(doublet_a=100, bump_a=140)


class TestPaperClaims:
    def test_full_dtw_finds_pair_nearly_identical(self, triple):
        # paper: 0.020
        assert dtw(triple.a, triple.b).distance < 0.1

    def test_fastdtw20_blows_up(self, triple):
        # paper: 31.24
        assert fastdtw(triple.a, triple.b, radius=20).distance > 10.0

    def test_error_exceeds_hundred_thousand_percent(self, triple):
        # paper: 156,100%
        exact = dtw(triple.a, triple.b).distance
        approx = fastdtw(triple.a, triple.b, radius=20).distance
        assert approximation_error_percent(approx, exact) > 100_000

    def test_c_distances_well_approximated(self, triple):
        # FastDTW gets A-C and B-C right, so only the A-B edge flips
        for other in (triple.a, triple.b):
            exact = dtw(other, triple.c).distance
            approx = fastdtw(other, triple.c, radius=20).distance
            assert approximation_error_percent(approx, exact) < 5.0

    def test_dendrogram_flip_precondition(self, triple):
        # fast(A,B) must exceed the A-C/B-C distances while full(A,B)
        # sits far below them
        full_ab = dtw(triple.a, triple.b).distance
        fast_ab = fastdtw(triple.a, triple.b, radius=20).distance
        ac = dtw(triple.a, triple.c).distance
        bc = dtw(triple.b, triple.c).distance
        assert full_ab < min(ac, bc)
        assert fast_ab > max(ac, bc)

    def test_large_radius_recovers(self, triple):
        # once the radius covers the shift, the approximation is fine
        exact = dtw(triple.a, triple.b).distance
        big = fastdtw(triple.a, triple.b, radius=40).distance
        assert approximation_error_percent(big, exact) < 50.0


class TestWrongWayWarping:
    def test_raw_path_follows_doublet(self, triple):
        path = dtw(triple.a, triple.b, return_path=True).path
        dev = deviation_at_row(path, triple.doublet_a)
        assert dev == pytest.approx(triple.doublet_shift, abs=2)

    def test_paa8_path_goes_other_way(self, triple):
        pa = paa_factor(triple.a, 8)
        pb = paa_factor(triple.b, 8)
        path = dtw(pa, pb, return_path=True).path
        dev = deviation_at_row(path, triple.doublet_a // 8)
        assert dev <= 0

    def test_fastdtw_coarsest_level_goes_other_way(self, triple):
        r = fastdtw(triple.a, triple.b, radius=20, keep_levels=True)
        lvl = r.levels[0]
        scale = triple.length // lvl.n
        dev = deviation_at_row(lvl.path, triple.doublet_a // scale)
        assert dev <= 0


class TestDeviationAtRow:
    def test_requires_row_in_path(self):
        from repro.core.path import WarpingPath

        p = WarpingPath([(0, 0), (1, 1)])
        with pytest.raises(ValueError):
            deviation_at_row(p, 5)

    def test_mean_over_multiple_cells(self):
        from repro.core.path import WarpingPath

        p = WarpingPath([(0, 0), (0, 1), (0, 2), (1, 2)])
        assert deviation_at_row(p, 0) == pytest.approx(1.0)
