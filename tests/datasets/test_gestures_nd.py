"""Round trips between the multivariate gesture generator, the
channel helpers (``interleave`` / ``split_channels``), and the
``magnitude`` reduction.

UWave-style archives ship one dataset per accelerometer axis; these
tests pin the lossless conversions between that per-axis layout and
the ``(length, axes)`` series :func:`multivariate_gestures` emits.
"""

import math

import pytest

from repro.core.multivariate import interleave, magnitude, split_channels
from repro.datasets.gestures import multivariate_gestures


@pytest.fixture(scope="module")
def dataset():
    return multivariate_gestures(
        n_classes=3, per_class=2, length=32, axes=3, seed=7
    )


class TestGeneratorShape:
    def test_counts_lengths_and_axes(self, dataset):
        series, labels = dataset
        assert len(series) == 6
        assert labels == [0, 0, 1, 1, 2, 2]
        for s in series:
            assert len(s) == 32
            assert all(len(v) == 3 for v in s)

    def test_deterministic_per_seed(self, dataset):
        again, labels = multivariate_gestures(
            n_classes=3, per_class=2, length=32, axes=3, seed=7
        )
        assert again == dataset[0]
        assert labels == dataset[1]
        other, _ = multivariate_gestures(
            n_classes=3, per_class=2, length=32, axes=3, seed=8
        )
        assert other != dataset[0]


class TestInterleaveRoundTrip:
    def test_split_inverts_interleave(self):
        a, b = [1.0, 2.0, 3.0], [10.0, 20.0, 30.0]
        assert split_channels(interleave(a, b)) == [a, b]

    def test_interleave_inverts_split(self, dataset):
        """Splitting a generated gesture into per-axis UWave-style
        channels and re-interleaving reproduces it exactly."""
        series, _ = dataset
        for s in series:
            xs, ys, zs = split_channels(s)
            assert interleave(xs, ys, zs) == [tuple(v) for v in s]

    def test_interleave_refuses_ragged_channels(self):
        with pytest.raises(ValueError, match="lengths differ"):
            interleave([1.0, 2.0], [1.0])

    def test_interleave_refuses_no_channels(self):
        with pytest.raises(ValueError, match="at least one"):
            interleave()


class TestMagnitude:
    def test_known_norms(self):
        assert magnitude([(3.0, 4.0), (0.0, 0.0)]) == [5.0, 0.0]

    def test_equals_per_channel_norm(self, dataset):
        series, _ = dataset
        s = series[0]
        chans = split_channels(s)
        want = [
            math.sqrt(sum(c[i] ** 2 for c in chans))
            for i in range(len(s))
        ]
        assert magnitude(s) == want

    def test_magnitude_is_univariate(self, dataset):
        series, _ = dataset
        flat = magnitude(series[0])
        assert all(isinstance(v, float) for v in flat)
        assert len(flat) == len(series[0])
