"""Unit tests for the Case B music generator."""

import pytest

from repro.core.cdtw import cdtw
from repro.datasets.music import chroma_profile, studio_and_live
import random


class TestChromaProfile:
    def test_length(self):
        p = chroma_profile(500, random.Random(1))
        assert len(p) == 500

    def test_has_structure(self):
        # a note profile is not constant
        p = chroma_profile(400, random.Random(2))
        assert max(p) - min(p) > 0.1

    def test_bounded_levels(self):
        p = chroma_profile(400, random.Random(3))
        assert all(0.0 <= v <= 1.0 + 1e-9 for v in p)

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            chroma_profile(1, random.Random(0))


class TestStudioAndLive:
    def test_paper_scale_dimensions(self):
        pair = studio_and_live(seconds=240.0, max_drift_seconds=2.0)
        assert pair.length == 24_000                     # the paper's N
        assert pair.window_fraction == pytest.approx(1 / 120)  # 0.83%

    def test_default_window_fraction_preserved(self):
        pair = studio_and_live(seconds=60.0, max_drift_seconds=0.5)
        assert pair.window_fraction == pytest.approx(1 / 120)

    def test_deterministic(self):
        a = studio_and_live(seconds=5.0, seed=1)
        b = studio_and_live(seconds=5.0, seed=1)
        assert a.studio == b.studio and a.live == b.live

    def test_alignable_within_declared_window(self):
        # the generator's contract: the declared window suffices
        pair = studio_and_live(seconds=8.0, max_drift_seconds=0.3, seed=2)
        w = pair.window_fraction
        within = cdtw(pair.studio, pair.live, window=w).distance
        lockstep = cdtw(pair.studio, pair.live, window=0.0).distance
        assert within < lockstep

    def test_alignment_uses_real_warping(self):
        pair = studio_and_live(seconds=8.0, max_drift_seconds=0.3, seed=3)
        path = cdtw(
            pair.studio, pair.live,
            window=pair.window_fraction, return_path=True,
        ).path
        assert path.max_band_deviation() > 0

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            studio_and_live(seconds=0.0)
        with pytest.raises(ValueError):
            studio_and_live(seconds=10.0, max_drift_seconds=-1.0)
