"""Unit tests for UCR TSV reading/writing."""

import math

import pytest

from repro.datasets.gestures import gesture_dataset
from repro.datasets.ucr_io import (
    load_ucr_dataset,
    load_ucr_tsv,
    parse_ucr_line,
    save_ucr_tsv,
)


class TestParseLine:
    def test_basic(self):
        assert parse_ucr_line("2\t0.5\t1.5") == ("2", [0.5, 1.5])

    def test_float_labels_kept_as_strings(self):
        label, _ = parse_ucr_line("1.0\t3.0")
        assert label == "1.0"

    def test_nan_tail_trimmed(self):
        _, samples = parse_ucr_line("1\t1.0\t2.0\tnan\tnan")
        assert samples == [1.0, 2.0]

    def test_nan_tail_kept_when_disabled(self):
        with pytest.raises(ValueError, match="NaN inside"):
            parse_ucr_line("1\t1.0\tnan", trim_nan_tail=False)

    def test_interior_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN inside"):
            parse_ucr_line("1\t1.0\tnan\t2.0")

    def test_all_nan_rejected(self):
        with pytest.raises(ValueError, match="all-NaN"):
            parse_ucr_line("1\tnan\tnan")

    def test_missing_samples_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            parse_ucr_line("1")

    def test_non_numeric_rejected(self):
        with pytest.raises(ValueError, match="non-numeric"):
            parse_ucr_line("1\tabc")

    def test_empty_label_rejected(self):
        with pytest.raises(ValueError, match="empty class label"):
            parse_ucr_line(" \t1.0")


class TestLoadSave:
    def test_round_trip(self, tmp_path):
        data = gesture_dataset(
            n_classes=2, per_class=3, length=16, seed=5, name="rt"
        )
        path = tmp_path / "rt_TRAIN.tsv"
        save_ucr_tsv(data, path)
        loaded = load_ucr_tsv(path, name="rt")
        assert len(loaded) == len(data)
        assert loaded.labels == tuple(str(l) for l in data.labels)
        for a, b in zip(loaded.series, data.series):
            assert a == pytest.approx(b)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "x.tsv"
        path.write_text("1\t1.0\t2.0\n\n2\t3.0\t4.0\n")
        data = load_ucr_tsv(path)
        assert len(data) == 2

    def test_line_number_in_errors(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("1\t1.0\t2.0\n1\toops\t2.0\n")
        with pytest.raises(ValueError, match="bad.tsv:2"):
            load_ucr_tsv(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.tsv"
        path.write_text("\n")
        with pytest.raises(ValueError, match="no series"):
            load_ucr_tsv(path)

    def test_ragged_rejected_by_default(self, tmp_path):
        path = tmp_path / "ragged.tsv"
        path.write_text("1\t1.0\t2.0\t3.0\n2\t1.0\t2.0\n")
        with pytest.raises(ValueError, match="variable lengths"):
            load_ucr_tsv(path)

    def test_ragged_padded_on_request(self, tmp_path):
        path = tmp_path / "ragged.tsv"
        path.write_text("1\t1.0\t2.0\t3.0\n2\t1.0\t2.0\n")
        data = load_ucr_tsv(path, pad_to_longest=True)
        assert data.length == 3
        assert data.series[1] == (1.0, 2.0, 2.0)  # last-value padding

    def test_variable_length_via_nan_padding(self, tmp_path):
        # the archive's actual representation of ragged datasets
        path = tmp_path / "var.tsv"
        path.write_text("1\t1.0\t2.0\t3.0\n2\t5.0\t6.0\tnan\n")
        data = load_ucr_tsv(path, pad_to_longest=True)
        assert data.length == 3
        assert data.series[1][:2] == (5.0, 6.0)

    def test_archive_directory_layout(self, tmp_path):
        data = gesture_dataset(
            n_classes=2, per_class=2, length=8, seed=6, name="Toy"
        )
        root = tmp_path / "Toy"
        root.mkdir()
        save_ucr_tsv(data, root / "Toy_TRAIN.tsv")
        save_ucr_tsv(data, root / "Toy_TEST.tsv")
        train, test = load_ucr_dataset(tmp_path, "Toy")
        assert train.name == "Toy[train]"
        assert len(test) == len(data)

    def test_loaded_data_classifies(self, tmp_path):
        # end-to-end: export synthetic data, reload, classify
        from repro.classify.knn import DistanceSpec, OneNearestNeighbor

        data = gesture_dataset(
            n_classes=2, per_class=4, length=24, noise_sigma=0.05,
            seed=7, name="clf",
        )
        path = tmp_path / "clf.tsv"
        save_ucr_tsv(data, path)
        loaded = load_ucr_tsv(path)
        clf = OneNearestNeighbor(
            DistanceSpec("cdtw", window=0.1)
        ).fit([list(s) for s in loaded.series], list(loaded.labels))
        err = clf.error_rate(
            [list(s) for s in loaded.series], list(loaded.labels)
        )
        assert err == 0.0
