"""Unit tests for the O(n) streaming envelope."""

import pytest

from repro.lowerbounds.envelope import Envelope, envelope, envelope_naive
from tests.conftest import make_series


class TestEnvelope:
    def test_band_zero_is_identity(self):
        x = make_series(20, 1)
        e = envelope(x, 0)
        assert e.upper == pytest.approx(x)
        assert e.lower == pytest.approx(x)

    def test_known_small_case(self):
        e = envelope([1.0, 3.0, 2.0], 1)
        assert e.upper == [3.0, 3.0, 3.0]
        assert e.lower == [1.0, 1.0, 2.0]

    def test_contains_series(self):
        x = make_series(50, 2)
        for band in (0, 1, 5, 20):
            e = envelope(x, band)
            assert all(
                l <= v <= u for l, v, u in zip(e.lower, x, e.upper)
            )

    def test_wide_band_is_global_extrema(self):
        x = make_series(30, 3)
        e = envelope(x, 100)
        assert all(u == max(x) for u in e.upper)
        assert all(l == min(x) for l in e.lower)

    def test_widens_with_band(self):
        x = make_series(40, 4)
        narrow = envelope(x, 2)
        wide = envelope(x, 8)
        assert all(w >= n for w, n in zip(wide.upper, narrow.upper))
        assert all(w <= n for w, n in zip(wide.lower, narrow.lower))

    def test_length_preserved(self):
        x = make_series(17, 5)
        e = envelope(x, 3)
        assert len(e) == 17

    def test_negative_band_rejected(self):
        with pytest.raises(ValueError):
            envelope([1.0], -1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            envelope([], 1)


class TestAgainstNaive:
    @pytest.mark.parametrize("band", [0, 1, 2, 5, 11, 40])
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_naive(self, band, seed):
        x = make_series(37, seed)
        fast = envelope(x, band)
        slow = envelope_naive(x, band)
        assert fast.upper == pytest.approx(slow.upper)
        assert fast.lower == pytest.approx(slow.lower)

    def test_single_element(self):
        assert envelope([4.0], 3).upper == envelope_naive([4.0], 3).upper
