"""Unit tests for LB_Keogh and its reversed variant."""

import math

import pytest

from repro.core.cdtw import cdtw
from repro.lowerbounds.envelope import envelope
from repro.lowerbounds.lb_keogh import lb_keogh, lb_keogh_reversed
from tests.conftest import make_series


class TestLbKeogh:
    def test_zero_when_candidate_inside_envelope(self):
        q = [0.0, 5.0, 0.0, -5.0, 0.0]
        env = envelope(q, 2)
        candidate = [0.0, 1.0, 0.0, -1.0, 0.0]
        assert lb_keogh(env, candidate) == 0.0

    def test_known_gap_cost(self):
        q = [0.0, 0.0, 0.0]
        env = envelope(q, 0)
        assert lb_keogh(env, [2.0, 0.0, -1.0]) == 4.0 + 1.0

    def test_abs_gap(self):
        q = [0.0, 0.0, 0.0]
        env = envelope(q, 0)
        assert lb_keogh(env, [2.0, 0.0, -1.0], squared=False) == 3.0

    @pytest.mark.parametrize("band", [0, 1, 3, 7])
    @pytest.mark.parametrize("seed", range(10))
    def test_lower_bounds_cdtw_same_band(self, band, seed):
        q = make_series(20, seed)
        c = make_series(20, seed + 1000)
        env = envelope(q, band)
        lb = lb_keogh(env, c)
        assert lb <= cdtw(q, c, band=band).distance + 1e-9

    def test_tightens_as_band_narrows(self):
        q = make_series(25, 3)
        c = make_series(25, 4)
        lbs = [lb_keogh(envelope(q, b), c) for b in (0, 2, 5, 12)]
        assert all(a >= b - 1e-12 for a, b in zip(lbs, lbs[1:]))

    def test_band_zero_equals_euclidean(self):
        from repro.core.euclidean import euclidean

        q = make_series(15, 5)
        c = make_series(15, 6)
        assert lb_keogh(envelope(q, 0), c) == pytest.approx(
            euclidean(q, c)
        )

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            lb_keogh(envelope([1.0, 2.0], 1), [1.0])

    def test_early_abandon(self):
        q = [0.0] * 10
        env = envelope(q, 0)
        c = [10.0] * 10
        assert lb_keogh(env, c, abandon_above=5.0) == math.inf

    def test_no_abandon_below_threshold(self):
        q = make_series(10, 7)
        c = make_series(10, 8)
        env = envelope(q, 1)
        exact = lb_keogh(env, c)
        assert lb_keogh(env, c, abandon_above=exact + 1) == pytest.approx(
            exact
        )


class TestLbKeoghReversed:
    @pytest.mark.parametrize("band", [0, 2, 5])
    def test_lower_bounds_cdtw(self, band):
        for seed in range(10):
            q = make_series(18, seed)
            c = make_series(18, seed + 1100)
            lb = lb_keogh_reversed(q, c, band)
            assert lb <= cdtw(q, c, band=band).distance + 1e-9

    def test_differs_from_forward_in_general(self):
        q = make_series(20, 9)
        c = make_series(20, 10)
        fwd = lb_keogh(envelope(q, 3), c)
        rev = lb_keogh_reversed(q, c, 3)
        # both are valid bounds; they are rarely identical
        assert fwd >= 0 and rev >= 0

    def test_max_of_both_is_still_a_bound(self):
        for seed in range(10):
            q = make_series(16, seed)
            c = make_series(16, seed + 1200)
            band = 2
            combined = max(
                lb_keogh(envelope(q, band), c),
                lb_keogh_reversed(q, c, band),
            )
            assert combined <= cdtw(q, c, band=band).distance + 1e-9
