"""Unit tests for LB_Kim."""

import pytest

from repro.core.cdtw import cdtw
from repro.core.dtw import dtw
from repro.lowerbounds.lb_kim import lb_kim
from tests.conftest import make_series


class TestLbKim:
    def test_known_value_tier1(self):
        x = [1.0, 0.0, 2.0]
        y = [0.0, 0.0, 0.0]
        assert lb_kim(x, y, tiers=1) == 1.0 + 4.0

    def test_single_sample(self):
        assert lb_kim([2.0], [5.0]) == 9.0

    def test_identical_series_zero(self):
        x = make_series(10, 1)
        assert lb_kim(x, x) == 0.0

    @pytest.mark.parametrize("tiers", [1, 2])
    @pytest.mark.parametrize("seed", range(15))
    def test_lower_bounds_full_dtw(self, tiers, seed):
        x = make_series(12, seed)
        y = make_series(12, seed + 700)
        assert lb_kim(x, y, tiers=tiers) <= dtw(x, y).distance + 1e-9

    @pytest.mark.parametrize("band", [0, 1, 3, 12])
    def test_lower_bounds_banded(self, band):
        for seed in range(10):
            x = make_series(10, seed)
            y = make_series(10, seed + 800)
            assert lb_kim(x, y) <= cdtw(x, y, band=band).distance + 1e-9

    def test_tier2_at_least_tier1(self):
        for seed in range(10):
            x = make_series(15, seed)
            y = make_series(15, seed + 900)
            assert lb_kim(x, y, tiers=2) >= lb_kim(x, y, tiers=1)

    def test_abs_cost(self):
        x = [1.0, 0.0, 2.0]
        y = [0.0, 0.0, 0.0]
        assert lb_kim(x, y, cost="abs", tiers=1) == 3.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            lb_kim([1.0], [1.0, 2.0])

    def test_bad_tiers_rejected(self):
        with pytest.raises(ValueError):
            lb_kim([1.0, 2.0], [1.0, 2.0], tiers=3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            lb_kim([], [])
