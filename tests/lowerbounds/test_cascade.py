"""Unit tests for the lower-bound cascade."""

import math

import pytest

from repro.core.cdtw import cdtw
from repro.lowerbounds.cascade import CascadeStats, LowerBoundCascade
from tests.conftest import make_series


class TestCascadeDistance:
    def test_exact_when_not_pruned(self):
        q = make_series(20, 1)
        c = make_series(20, 2)
        cascade = LowerBoundCascade(q, band=3)
        d = cascade.distance(c)  # best_so_far = inf, nothing prunes
        assert d == pytest.approx(cdtw(q, c, band=3).distance)

    def test_pruned_returns_inf(self):
        q = [0.0] * 20
        c = [100.0] * 20
        cascade = LowerBoundCascade(q, band=2)
        assert cascade.distance(c, best_so_far=1.0) == math.inf

    def test_pruning_is_sound(self):
        # pruned candidates must truly exceed the threshold
        q = make_series(15, 3)
        cascade = LowerBoundCascade(q, band=2)
        for seed in range(20):
            c = make_series(15, seed + 2000)
            true = cdtw(q, c, band=2).distance
            threshold = true * 0.9
            d = cascade.distance(c, best_so_far=threshold)
            if d == math.inf:
                assert true > threshold

    def test_length_mismatch_rejected(self):
        cascade = LowerBoundCascade([1.0, 2.0], band=1)
        with pytest.raises(ValueError):
            cascade.distance([1.0])

    def test_negative_band_rejected(self):
        with pytest.raises(ValueError):
            LowerBoundCascade([1.0, 2.0], band=-1)

    def test_stats_accumulate(self):
        q = make_series(12, 5)
        cascade = LowerBoundCascade(q, band=1)
        for seed in range(8):
            cascade.distance(make_series(12, seed + 3000),
                             best_so_far=0.01)
        s = cascade.stats
        assert s.candidates == 8
        assert s.pruned_total() + s.full_dtw == 8

    def test_cells_tracked(self):
        q = make_series(12, 6)
        cascade = LowerBoundCascade(q, band=2)
        cascade.distance(make_series(12, 7))
        assert cascade.stats.cells > 0


class TestCascadeNearest:
    def test_matches_brute_force(self):
        q = make_series(16, 11)
        candidates = [make_series(16, s + 100) for s in range(12)]
        cascade = LowerBoundCascade(q, band=2)
        idx, dist = cascade.nearest(candidates)

        brute = min(
            range(12), key=lambda i: cdtw(q, candidates[i], band=2).distance
        )
        assert idx == brute
        assert dist == pytest.approx(
            cdtw(q, candidates[brute], band=2).distance
        )

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            LowerBoundCascade([1.0], band=0).nearest([])

    def test_prunes_most_on_easy_workload(self):
        # one near-identical candidate among far-away ones: after the
        # close match is found, the rest should be pruned cheaply
        q = make_series(24, 13)
        near = [v + 0.01 for v in q]
        far = [[v + 50.0 for v in make_series(24, s)] for s in range(20)]
        cascade = LowerBoundCascade(q, band=2)
        idx, _ = cascade.nearest([near] + far)
        assert idx == 0
        assert cascade.stats.prune_rate() > 0.5


class TestCascadeStats:
    def test_prune_rate_empty(self):
        assert CascadeStats().prune_rate() == 0.0

    def test_without_reversed_stage(self):
        q = make_series(14, 15)
        cascade = LowerBoundCascade(q, band=1, use_reversed=False)
        d = cascade.distance(make_series(14, 16))
        assert math.isfinite(d)
        assert cascade.stats.pruned_keogh_reversed == 0
