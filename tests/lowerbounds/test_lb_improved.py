"""LB_Improved: admissibility, dominance, and chunk-kernel parity.

Lemire's two-pass bound is the new cascade stage the ahead-of-time
index enables by default, so its contract gets the same adversarial
coverage as the older bounds: property-tested ``<= cDTW``, provably
``>= LB_Keogh``, and the stacked chunk kernel bit-identical to the
scalar on every backend (values *and* abandon decisions).
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cdtw import cdtw
from repro.core.kernels import get_kernels
from repro.lowerbounds.envelope import Envelope, envelope
from repro.lowerbounds.lb_improved import clip_to_envelope, lb_improved
from repro.lowerbounds.lb_keogh import lb_keogh
from tests.conftest import make_series

finite = st.floats(
    min_value=-50, max_value=50, allow_nan=False, allow_infinity=False
)
pair_and_band = st.integers(min_value=1, max_value=18).flatmap(
    lambda n: st.tuples(
        st.lists(finite, min_size=n, max_size=n),
        st.lists(finite, min_size=n, max_size=n),
        st.integers(min_value=0, max_value=n),
    )
)


@settings(deadline=None, max_examples=60)
@given(pair_and_band)
def test_lb_improved_below_banded_dtw(args):
    x, y, band = args
    assert lb_improved(x, y, band) <= cdtw(x, y, band=band).distance + 1e-9


@settings(deadline=None, max_examples=60)
@given(pair_and_band)
def test_lb_improved_below_banded_dtw_abs_cost(args):
    x, y, band = args
    assert (
        lb_improved(x, y, band, squared=False)
        <= cdtw(x, y, band=band, cost="abs").distance + 1e-9
    )


@settings(deadline=None, max_examples=60)
@given(pair_and_band)
def test_lb_improved_dominates_lb_keogh(args):
    x, y, band = args
    keogh = lb_keogh(envelope(x, band), y)
    assert lb_improved(x, y, band) >= keogh


class TestClipToEnvelope:
    def test_inside_values_unchanged(self):
        env = Envelope(1, [2.0, 3.0, 4.0], [0.0, 1.0, 2.0])
        assert clip_to_envelope([1.0, 2.0, 3.0], env) == [1.0, 2.0, 3.0]

    def test_outside_values_clamped(self):
        env = Envelope(0, [1.0, 1.0], [-1.0, -1.0])
        assert clip_to_envelope([5.0, -5.0], env) == [1.0, -1.0]

    def test_length_mismatch_raises(self):
        env = Envelope(0, [1.0], [0.0])
        with pytest.raises(ValueError, match="length"):
            clip_to_envelope([1.0, 2.0], env)

    def test_matches_numpy_clip_bit_for_bit(self):
        np = pytest.importorskip("numpy")
        x = make_series(40, seed=1)
        env = envelope(make_series(40, seed=2), 3)
        scalar = clip_to_envelope(x, env)
        vector = np.clip(
            np.asarray(x), np.asarray(env.lower), np.asarray(env.upper)
        )
        assert scalar == list(vector)


class TestScalarSemantics:
    def test_equals_keogh_plus_second_pass(self):
        # the two passes combine with one addition; reusing a
        # precomputed first pass must not change the value
        x = make_series(30, seed=5)
        y = make_series(30, seed=6)
        band = 3
        env = envelope(x, band)
        keogh = lb_keogh(env, y)
        full = lb_improved(x, y, band)
        assert full == lb_improved(x, y, band, keogh=keogh)
        assert full == lb_improved(x, y, band, query_envelope=env)
        assert full >= keogh

    def test_identical_series_bound_is_zero(self):
        x = make_series(20, seed=7)
        assert lb_improved(x, x, 2) == 0.0

    def test_constant_series(self):
        # degenerate envelope: upper == lower == the constant
        q = [2.5] * 8
        c = make_series(8, seed=8)
        band = 2
        got = lb_improved(q, c, band)
        assert got <= cdtw(q, c, band=band).distance + 1e-9
        assert got >= lb_keogh(envelope(q, band), c)

    def test_length_two_series(self):
        q = [0.0, 1.0]
        c = [3.0, -2.0]
        for band in (0, 1, 2):
            got = lb_improved(q, c, band)
            assert got <= cdtw(q, c, band=band).distance + 1e-9

    def test_band_wider_than_series_still_admissible(self):
        x = make_series(10, seed=9)
        y = make_series(10, seed=10)
        assert lb_improved(x, y, 50) <= cdtw(x, y, band=50).distance + 1e-9

    def test_band_zero_reduces_to_pointwise(self):
        # band 0 envelopes are the series themselves: the first pass is
        # the full squared distance and the second pass adds nothing
        x = make_series(12, seed=11)
        y = make_series(12, seed=12)
        pointwise = sum((a - b) ** 2 for a, b in zip(x, y))
        assert lb_improved(x, y, 0) == pointwise

    def test_abandon_decision_matches_full_bound(self):
        x = make_series(25, seed=13)
        y = make_series(25, seed=14)
        full = lb_improved(x, y, 2)
        assert full > 0
        # threshold == bound: not provably above, must not abandon
        assert lb_improved(x, y, 2, abandon_above=full) == full
        # threshold just below: must abandon
        assert lb_improved(x, y, 2, abandon_above=full * 0.999) == math.inf

    def test_unequal_lengths_raise(self):
        with pytest.raises(ValueError, match="equal-length"):
            lb_improved([1.0, 2.0], [1.0, 2.0, 3.0], 1)

    def test_mismatched_query_envelope_raises(self):
        x = make_series(10, seed=15)
        with pytest.raises(ValueError, match="query_envelope"):
            lb_improved(x, x, 2, query_envelope=envelope(x, 3))
        with pytest.raises(ValueError, match="query_envelope"):
            lb_improved(x, x, 2, query_envelope=envelope(x[:5], 2))


@pytest.mark.parametrize("backend", ["python", "numpy"])
class TestChunkKernelParity:
    """``lb_improved_chunk`` must be bit-identical to the scalar."""

    def _kernels(self, backend):
        if backend == "numpy":
            pytest.importorskip("numpy")
        return get_kernels(backend)

    def test_stack_matches_scalar(self, backend):
        k = self._kernels(backend)
        q = make_series(24, seed=20)
        cands = [make_series(24, seed=21 + i) for i in range(6)]
        band = 3
        env = envelope(q, band)
        got = k.lb_improved_chunk(env.upper, env.lower, cands, q, band)
        want = [
            lb_improved(q, c, band, query_envelope=env) for c in cands
        ]
        assert [float(v) for v in got] == want

    def test_precomputed_keogh_reused(self, backend):
        k = self._kernels(backend)
        q = make_series(20, seed=30)
        cands = [make_series(20, seed=31 + i) for i in range(4)]
        band = 2
        env = envelope(q, band)
        keoghs = [lb_keogh(env, c) for c in cands]
        got = k.lb_improved_chunk(
            env.upper, env.lower, cands, q, band, keogh=keoghs
        )
        plain = k.lb_improved_chunk(env.upper, env.lower, cands, q, band)
        assert [float(v) for v in got] == [float(v) for v in plain]

    def test_abandon_decisions_match_scalar(self, backend):
        k = self._kernels(backend)
        q = make_series(24, seed=40)
        cands = [make_series(24, seed=41 + i) for i in range(8)]
        band = 2
        env = envelope(q, band)
        full = [lb_improved(q, c, band, query_envelope=env) for c in cands]
        threshold = sorted(full)[len(full) // 2]
        got = k.lb_improved_chunk(
            env.upper, env.lower, cands, q, band,
            abandon_above=threshold,
        )
        want = [
            lb_improved(
                q, c, band, query_envelope=env, abandon_above=threshold
            )
            for c in cands
        ]
        assert [float(v) for v in got] == want
        assert math.inf in want  # the threshold actually bites

    def test_count_drops_pad_rows(self, backend):
        k = self._kernels(backend)
        q = make_series(16, seed=50)
        real = [make_series(16, seed=51 + i) for i in range(3)]
        padded = real + [[0.0] * 16]
        band = 2
        env = envelope(q, band)
        got = k.lb_improved_chunk(
            env.upper, env.lower, padded, q, band, count=3
        )
        assert len(got) == 3
        assert [float(v) for v in got] == [
            lb_improved(q, c, band, query_envelope=env) for c in real
        ]

    def test_per_row_envelope_stacks(self, backend):
        # 2-D envelope stacks: row t is candidate t's own envelope
        k = self._kernels(backend)
        q = make_series(18, seed=60)
        cands = [make_series(18, seed=61 + i) for i in range(3)]
        band = 2
        envs = [
            envelope(make_series(18, seed=70 + i), band)
            for i in range(3)
        ]
        got = k.lb_improved_chunk(
            [e.upper for e in envs], [e.lower for e in envs],
            cands, q, band,
        )
        want = [
            lb_improved(q, c, band, query_envelope=e)
            for c, e in zip(cands, envs)
        ]
        assert [float(v) for v in got] == want
