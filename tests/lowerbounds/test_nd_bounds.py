"""Admissibility of the summed multivariate lower bounds.

The losslessness of every nd pruning path rests on the chain

    bound(x, y)  <=  cDTW_I(x, y)  <=  cDTW_D(x, y)

for each of LB_Kim / LB_Keogh / LB_Improved summed over channels, so
the chain gets generated (hypothesis) coverage on top of the unit
tests, plus the dominance ordering LB_Improved >= LB_Keogh and the
remaining-threshold abandon semantics.
"""

from math import inf

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.multivariate import cdtw_i, cdtw_nd
from repro.lowerbounds.nd import (
    channels,
    envelopes_nd,
    lb_improved_nd,
    lb_keogh_nd,
    lb_keogh_reversed_nd,
    lb_kim_nd,
)
from tests.conftest import make_vectors

finite = st.floats(
    min_value=-50, max_value=50, allow_nan=False, allow_infinity=False
)


def _vector_series(n, dims):
    sample = st.tuples(*([finite] * dims))
    return st.lists(sample, min_size=n, max_size=n)


nd_pair_and_band = st.tuples(
    st.integers(min_value=2, max_value=12),
    st.integers(min_value=1, max_value=3),
).flatmap(
    lambda nd: st.tuples(
        _vector_series(nd[0], nd[1]),
        _vector_series(nd[0], nd[1]),
        st.integers(min_value=0, max_value=nd[0]),
    )
)


@settings(deadline=None, max_examples=60)
@given(nd_pair_and_band)
def test_lb_kim_nd_below_both_measures(args):
    x, y, band = args
    bound = lb_kim_nd(x, y)
    ind = cdtw_i(x, y, band=band).distance
    dep = cdtw_nd(x, y, band=band).distance
    assert bound <= ind + 1e-9
    assert ind <= dep + 1e-9


@settings(deadline=None, max_examples=60)
@given(nd_pair_and_band)
def test_lb_keogh_nd_below_both_measures(args):
    x, y, band = args
    bound = lb_keogh_nd(envelopes_nd(x, band), y)
    assert bound <= cdtw_i(x, y, band=band).distance + 1e-9
    assert bound <= cdtw_nd(x, y, band=band).distance + 1e-9


@settings(deadline=None, max_examples=60)
@given(nd_pair_and_band)
def test_lb_keogh_reversed_nd_below_both_measures(args):
    x, y, band = args
    bound = lb_keogh_reversed_nd(x, y, band)
    assert bound <= cdtw_i(x, y, band=band).distance + 1e-9
    assert bound <= cdtw_nd(x, y, band=band).distance + 1e-9


@settings(deadline=None, max_examples=60)
@given(nd_pair_and_band)
def test_lb_improved_nd_chain(args):
    """LB_Improved dominates LB_Keogh and stays admissible."""
    x, y, band = args
    envs = envelopes_nd(x, band)
    keogh = lb_keogh_nd(envs, y)
    improved = lb_improved_nd(x, y, band, query_envelopes=envs)
    assert keogh <= improved + 1e-9
    assert improved <= cdtw_i(x, y, band=band).distance + 1e-9
    assert improved <= cdtw_nd(x, y, band=band).distance + 1e-9


class TestChannels:
    def test_round_trip(self):
        x = make_vectors(10, 3, 1)
        cs = channels(x)
        assert len(cs) == 3
        for k in range(3):
            assert cs[k] == [v[k] for v in x]

    def test_flat_series_rejected(self):
        with pytest.raises(ValueError, match="flat scalar"):
            channels([1.0, 2.0, 3.0])

    def test_ragged_samples_rejected(self):
        with pytest.raises(ValueError, match="components"):
            channels([(1.0, 2.0), (3.0,)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            channels([])


class TestEnvelopesNd:
    def test_one_envelope_per_channel(self):
        x = make_vectors(12, 3, 2)
        envs = envelopes_nd(x, 2)
        assert len(envs) == 3
        for env in envs:
            assert len(env.upper) == 12
            assert all(
                lo <= up for lo, up in zip(env.lower, env.upper)
            )

    def test_dimension_mismatch_rejected(self):
        x = make_vectors(10, 2, 1)
        y = make_vectors(10, 3, 2)
        with pytest.raises(ValueError, match="mismatch"):
            lb_kim_nd(x, y)
        with pytest.raises(ValueError, match="channels"):
            lb_keogh_nd(envelopes_nd(x, 2), y)
        with pytest.raises(ValueError, match="mismatch"):
            lb_improved_nd(x, y, 2)


class TestAbandon:
    """abandon_above= returns inf exactly above the threshold and is
    bit-identical to the plain bound below it."""

    def test_keogh_loose_threshold_inert(self):
        x, y = make_vectors(20, 3, 1), make_vectors(20, 3, 2)
        envs = envelopes_nd(x, 3)
        plain = lb_keogh_nd(envs, y)
        assert plain > 0
        assert lb_keogh_nd(envs, y, abandon_above=plain + 1.0) == plain

    def test_keogh_tight_threshold_abandons(self):
        x, y = make_vectors(20, 3, 3), make_vectors(20, 3, 4)
        envs = envelopes_nd(x, 3)
        plain = lb_keogh_nd(envs, y)
        assert plain > 0
        assert lb_keogh_nd(envs, y, abandon_above=plain / 2.0) == inf

    def test_improved_thresholds(self):
        x, y = make_vectors(20, 2, 5), make_vectors(20, 2, 6)
        plain = lb_improved_nd(x, y, 3)
        assert plain > 0
        assert lb_improved_nd(x, y, 3, abandon_above=plain + 1.0) == plain
        assert lb_improved_nd(x, y, 3, abandon_above=plain / 2.0) == inf

    def test_reversed_thresholds(self):
        x, y = make_vectors(20, 2, 7), make_vectors(20, 2, 8)
        plain = lb_keogh_reversed_nd(x, y, 3)
        assert plain > 0
        assert (
            lb_keogh_reversed_nd(x, y, 3, abandon_above=plain + 1.0)
            == plain
        )
        assert (
            lb_keogh_reversed_nd(x, y, 3, abandon_above=plain / 2.0)
            == inf
        )
