"""Property-based tests: lower bounds never exceed the true distance.

The entire correctness of lossless pruning rests on these inequalities,
so they get adversarial (generated) coverage beyond the unit tests.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.core.cdtw import cdtw
from repro.core.dtw import dtw
from repro.lowerbounds.envelope import envelope, envelope_naive
from repro.lowerbounds.lb_keogh import lb_keogh, lb_keogh_reversed
from repro.lowerbounds.lb_kim import lb_kim

finite = st.floats(
    min_value=-50, max_value=50, allow_nan=False, allow_infinity=False
)
pair_and_band = st.integers(min_value=1, max_value=18).flatmap(
    lambda n: st.tuples(
        st.lists(finite, min_size=n, max_size=n),
        st.lists(finite, min_size=n, max_size=n),
        st.integers(min_value=0, max_value=n),
    )
)


@settings(deadline=None, max_examples=60)
@given(pair_and_band)
def test_lb_kim_below_banded_dtw(args):
    x, y, band = args
    assert lb_kim(x, y) <= cdtw(x, y, band=band).distance + 1e-9


@settings(deadline=None, max_examples=60)
@given(pair_and_band)
def test_lb_kim_below_full_dtw(args):
    x, y, _ = args
    assert lb_kim(x, y) <= dtw(x, y).distance + 1e-9


@settings(deadline=None, max_examples=60)
@given(pair_and_band)
def test_lb_keogh_below_banded_dtw(args):
    x, y, band = args
    env = envelope(x, band)
    assert lb_keogh(env, y) <= cdtw(x, y, band=band).distance + 1e-9


@settings(deadline=None, max_examples=60)
@given(pair_and_band)
def test_lb_keogh_reversed_below_banded_dtw(args):
    x, y, band = args
    assert (
        lb_keogh_reversed(x, y, band)
        <= cdtw(x, y, band=band).distance + 1e-9
    )


@settings(deadline=None, max_examples=60)
@given(pair_and_band)
def test_combined_bound_still_valid(args):
    x, y, band = args
    combined = max(
        lb_kim(x, y),
        lb_keogh(envelope(x, band), y),
        lb_keogh_reversed(x, y, band),
    )
    assert combined <= cdtw(x, y, band=band).distance + 1e-9


@settings(deadline=None, max_examples=80)
@given(
    st.lists(finite, min_size=1, max_size=40),
    st.integers(min_value=0, max_value=45),
)
def test_envelope_matches_naive(x, band):
    fast = envelope(x, band)
    slow = envelope_naive(x, band)
    assert all(
        math.isclose(a, b, rel_tol=1e-12, abs_tol=1e-12)
        for a, b in zip(fast.upper, slow.upper)
    )
    assert all(
        math.isclose(a, b, rel_tol=1e-12, abs_tol=1e-12)
        for a, b in zip(fast.lower, slow.lower)
    )


@settings(deadline=None, max_examples=60)
@given(
    st.lists(finite, min_size=1, max_size=30),
    st.integers(min_value=0, max_value=10),
)
def test_envelope_sandwich(x, band):
    e = envelope(x, band)
    assert all(l <= v + 1e-12 for l, v in zip(e.lower, x))
    assert all(v <= u + 1e-12 for v, u in zip(x, e.upper))
