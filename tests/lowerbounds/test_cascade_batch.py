"""CascadeBatch: lossless many-query driving of the LB cascade.

The batch driver reorders candidates best-first, serves precomputed
envelopes and (for self-joins) shares exact distances across queries.
All of it must be invisible in the results: for every flag combination
and backend, ``nearest`` returns the same ``(index, distance)`` as the
plain in-order serial scan, with the documented min-index tie-break.
"""

import itertools
from dataclasses import astuple
from math import inf

import pytest

from repro.lowerbounds.cascade import (
    BatchNearest,
    CascadeBatch,
    LowerBoundCascade,
)
from repro.runtime import Runtime
from tests.conftest import make_series

BAND = 3
CANDS = [make_series(24, seed=100 + i) for i in range(10)]
QUERIES = [make_series(24, seed=200 + i) for i in range(4)]


def serial_nearest(query, candidates, band, exclude=None):
    """The reference: plain in-order scan, first-wins tie-break."""
    cascade = LowerBoundCascade(
        query, band, runtime=Runtime(backend="python")
    )
    best, best_idx = inf, -1
    for j, cand in enumerate(candidates):
        if j == exclude:
            continue
        d = cascade.distance(cand, best_so_far=best)
        if d < best:
            best, best_idx = d, j
    return best_idx, best


class TestBitIdentity:
    @pytest.mark.parametrize("backend", ["python", "numpy"])
    @pytest.mark.parametrize(
        "use_improved,best_first",
        list(itertools.product([False, True], repeat=2)),
    )
    def test_matches_serial_scan(self, backend, use_improved, best_first):
        if backend == "numpy":
            pytest.importorskip("numpy")
        batch = CascadeBatch(
            CANDS, BAND, use_improved=use_improved,
            best_first=best_first, runtime=Runtime(backend=backend),
        )
        for q in QUERIES:
            want = serial_nearest(q, CANDS, BAND)
            hit = batch.nearest(q)
            assert isinstance(hit, BatchNearest)
            assert (hit.index, hit.distance) == want

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_exclude_matches_leave_one_out(self, backend):
        if backend == "numpy":
            pytest.importorskip("numpy")
        batch = CascadeBatch(
            CANDS, BAND, runtime=Runtime(backend=backend)
        )
        for i in range(len(CANDS)):
            want = serial_nearest(CANDS[i], CANDS, BAND, exclude=i)
            hit = batch.nearest(CANDS[i], exclude=i)
            assert (hit.index, hit.distance) == want

    def test_duplicate_candidates_min_index_wins(self):
        dup = [CANDS[0], CANDS[1], CANDS[1], CANDS[1], CANDS[2]]
        hit = CascadeBatch(dup, BAND).nearest(CANDS[1])
        assert hit.index == 1
        assert hit.distance == 0.0

    def test_duplicate_with_self_excluded(self):
        dup = [CANDS[0], CANDS[1], CANDS[2], CANDS[1]]
        hit = CascadeBatch(dup, BAND).nearest(
            CANDS[1], exclude=1, query_index=1
        )
        assert hit.index == 3
        assert hit.distance == 0.0


class TestShareExact:
    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_self_join_reuses_and_stays_exact(self, backend):
        if backend == "numpy":
            pytest.importorskip("numpy")
        batch = CascadeBatch(
            CANDS, BAND, share_exact=True,
            runtime=Runtime(backend=backend),
        )
        reused = 0
        for i, q in enumerate(CANDS):
            want = serial_nearest(q, CANDS, BAND, exclude=i)
            hit = batch.nearest(q, exclude=i, query_index=i)
            assert (hit.index, hit.distance) == want
            reused += hit.stats.reused_exact
        # cDTW is symmetric: later queries must be served from the
        # cache at least once on this workload
        assert reused > 0

    def test_cache_off_reports_no_reuse(self):
        batch = CascadeBatch(CANDS, BAND, share_exact=False)
        total = 0
        for i, q in enumerate(CANDS):
            total += batch.nearest(
                q, exclude=i, query_index=i
            ).stats.reused_exact
        assert total == 0


class TestPrecomputedEnvelopes:
    def test_provided_envelopes_identical_results(self):
        rt = Runtime(backend="python")
        up, lo = rt.kernels().envelope_chunk(CANDS, BAND)
        plain = CascadeBatch(CANDS, BAND, runtime=rt)
        primed = CascadeBatch(
            CANDS, BAND, runtime=rt, candidate_envelopes=(up, lo)
        )
        for q in QUERIES:
            a = plain.nearest(q)
            b = primed.nearest(q)
            assert (a.index, a.distance) == (b.index, b.distance)
            assert astuple(a.stats) == astuple(b.stats)

    def test_artifacts_reused_counts_served_envelopes(self):
        rt = Runtime(backend="python")
        up, lo = rt.kernels().envelope_chunk(CANDS, BAND)
        primed = CascadeBatch(
            CANDS, BAND, runtime=rt, candidate_envelopes=(up, lo)
        )
        hit = primed.nearest(QUERIES[0])
        # every candidate that reached the reversed stage consumed a
        # precomputed envelope
        assert hit.artifacts_reused >= hit.stats.full_dtw

    def test_wrong_envelope_count_rejected(self):
        rt = Runtime(backend="python")
        up, lo = rt.kernels().envelope_chunk(CANDS[:3], BAND)
        with pytest.raises(ValueError, match="every candidate"):
            CascadeBatch(
                CANDS, BAND, runtime=rt, candidate_envelopes=(up, lo)
            )


class TestErrors:
    def test_empty_candidates(self):
        with pytest.raises(ValueError, match="no candidates"):
            CascadeBatch([], BAND)

    def test_negative_band(self):
        with pytest.raises(ValueError, match="band"):
            CascadeBatch(CANDS, -1)

    def test_ragged_candidates(self):
        with pytest.raises(ValueError, match="equal-length"):
            CascadeBatch([CANDS[0], CANDS[1][:10]], BAND)

    def test_exclude_everything(self):
        batch = CascadeBatch([CANDS[0]], BAND)
        with pytest.raises(ValueError, match="no candidates"):
            batch.nearest(QUERIES[0], exclude=0)
