"""Tests for the Section 4 extension experiment."""

import pytest

from repro.experiments import approx_quality


@pytest.fixture(scope="module")
def result():
    cfg = approx_quality.ApproxQualityConfig(
        radii=(0, 2, 10, 20, 32), pairs_per_family=2, length=256,
    )
    return approx_quality.run(cfg)


class TestGrid:
    def test_one_row_per_family_radius(self, result):
        assert len(result.errors) == 4 * 5

    def test_families_present(self, result):
        assert set(result.families()) == {
            "random_walk", "gesture", "fall", "adversarial"
        }

    def test_errors_nonnegative(self, result):
        # FastDTW upper-bounds the exact distance, so errors are >= 0
        assert all(e.mean >= -1e-9 for e in result.errors)

    def test_worst_at_least_mean(self, result):
        assert all(e.worst >= e.mean - 1e-9 for e in result.errors)

    def test_lookup_missing_raises(self, result):
        with pytest.raises(KeyError):
            result.at("gesture", 99)


class TestShapes:
    def test_benign_families_converge(self, result):
        assert result.benign_families_converge(radius=10, tolerance=15.0)

    def test_long_range_families_stay_broken(self, result):
        assert result.long_range_families_stay_broken(radius=10)

    def test_adversarial_error_dwarfs_benign(self, result):
        adv = result.at("adversarial", 10).mean
        benign = result.at("gesture", 10).mean
        assert adv > 1000 * max(benign, 0.001)

    def test_full_radius_fixes_everything(self, result):
        for family in result.families():
            assert result.at(family, 32).worst < 50.0

    def test_fall_family_broken_below_offset(self, result):
        # the paper's own Fig. 6 workload: FastDTW_10 has not actually
        # aligned the falls
        assert result.at("fall", 10).worst > 1000.0


class TestReport:
    def test_renders(self, result):
        out = approx_quality.format_report(result)
        assert "adversarial" in out
        assert "YES" in out

    def test_registered_as_extension(self):
        from repro.experiments import EXPERIMENTS

        assert EXPERIMENTS["approx_quality"] is approx_quality
        assert hasattr(approx_quality, "PAPER_SCALE")
