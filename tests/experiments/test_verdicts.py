"""The capstone: every paper claim holds on one small-scale sweep."""

import pytest

from repro.experiments import (
    appendix_b,
    approx_quality,
    case_b_music,
    fig1_uwave,
    fig4_case_c,
    fig6_fall_crossover,
    repeated_use,
)
from repro.experiments.verdicts import (
    Verdict,
    collect_verdicts,
    format_verdicts,
)

#: tiny configs for the heavy experiments; the rest use their defaults
TEST_OVERRIDES = {
    fig1_uwave: fig1_uwave.Fig1Config(
        per_class=1, max_pairs=2, windows=(0.0, 0.04, 0.20),
        radii=(0, 1, 10),
    ),
    case_b_music: case_b_music.CaseBConfig(
        seconds=12.0, max_drift_seconds=0.1, radii=(10, 40),
    ),
    fig4_case_c: fig4_case_c.Fig4Config(
        examples=4, max_pairs=2, windows=(0.0, 0.40), radii=(0, 40),
    ),
    fig6_fall_crossover: fig6_fall_crossover.Fig6Config(
        lengths_seconds=(1.0, 3.0, 6.0),
    ),
    appendix_b: appendix_b.AppendixBConfig(
        n_classes=3, per_class=6, length=64, seed=7,
    ),
    repeated_use: repeated_use.RepeatedUseConfig(
        n_classes=3, per_class=6, length=64, queries=4,
    ),
    approx_quality: approx_quality.ApproxQualityConfig(
        radii=(0, 10, 20, 32), pairs_per_family=2, length=256,
    ),
}


@pytest.fixture(scope="module")
def verdicts():
    return collect_verdicts(overrides=TEST_OVERRIDES)


class TestVerdicts:
    def test_all_claims_covered(self, verdicts):
        experiments = {v.experiment for v in verdicts}
        assert {
            "table1", "fig1", "fig2", "case_b", "fig3", "fig4",
            "fig5_fig6", "table2_fig7", "fig8", "appendix_b",
            "footnote2", "repeated_use", "approx_quality",
        } <= experiments

    def test_all_robust_claims_hold(self, verdicts):
        # the single known-borderline point (Fig. 1's literal r=0
        # comparison) is excluded; everything else must reproduce
        failures = [
            v for v in verdicts
            if not v.holds and "borderline" not in v.claim
        ]
        assert not failures, format_verdicts(failures)

    def test_at_least_twenty_claims(self, verdicts):
        assert len(verdicts) >= 20

    def test_format_renders_every_claim(self, verdicts):
        out = format_verdicts(verdicts)
        assert "claims reproduced" in out
        assert out.count("[") == len(verdicts)

    def test_verdict_type(self, verdicts):
        assert all(isinstance(v, Verdict) for v in verdicts)
