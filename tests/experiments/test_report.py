"""Unit tests for report formatting helpers."""

import pytest

from repro.experiments.report import format_bar_chart, format_table, ms, ratio


class TestFormatTable:
    def test_contains_headers_and_cells(self):
        out = format_table(("a", "b"), [(1, 2), (3, 4)])
        for token in ("a", "b", "1", "4"):
            assert token in out

    def test_floats_rendered_compactly(self):
        out = format_table(("x",), [(0.123456789,)])
        assert "0.1235" in out

    def test_rule_line_present(self):
        out = format_table(("col",), [("v",)])
        assert "---" in out

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [(1,)])

    def test_rejects_no_columns(self):
        with pytest.raises(ValueError):
            format_table((), [])

    def test_empty_rows_ok(self):
        out = format_table(("a",), [])
        assert "a" in out


class TestFormatBarChart:
    def test_bars_proportional(self):
        out = format_bar_chart(["x", "y"], [1, 10], width=10)
        lines = out.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 1

    def test_counts_shown(self):
        out = format_bar_chart(["a"], [7])
        assert "7" in out

    def test_zero_counts_ok(self):
        out = format_bar_chart(["a", "b"], [0, 0])
        assert "#" not in out

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            format_bar_chart(["a"], [1, 2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            format_bar_chart([], [])


class TestScalars:
    def test_ms(self):
        assert ms(0.0456) == "45.6 ms"

    def test_ratio(self):
        assert ratio(10.0, 2.0) == "5.0x"

    def test_ratio_zero_guard(self):
        assert ratio(1.0, 0.0) == "inf"
