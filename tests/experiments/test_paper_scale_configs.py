"""Every experiment's PAPER_SCALE config matches the paper's numbers.

These do not *run* the full-scale experiments (hours); they pin the
recorded parameters so the laptop-scale defaults cannot silently drift
away from what the paper actually did.
"""

import dataclasses

import pytest

from repro.experiments import (
    EXPERIMENTS,
    appendix_b,
    case_b_music,
    fig1_uwave,
    fig4_case_c,
    fig6_fall_crossover,
    footnote2_trillion,
)


class TestConfigsWellFormed:
    @pytest.mark.parametrize("name", sorted(EXPERIMENTS))
    def test_both_configs_are_frozen_dataclasses(self, name):
        module = EXPERIMENTS[name]
        for config in (module.DEFAULT, module.PAPER_SCALE):
            assert dataclasses.is_dataclass(config)
            with pytest.raises(dataclasses.FrozenInstanceError):
                object.__setattr__  # appease linters
                config.__class__.__dataclass_fields__  # exists
                setattr(config, list(
                    config.__class__.__dataclass_fields__
                )[0], None)

    @pytest.mark.parametrize("name", sorted(EXPERIMENTS))
    def test_default_no_heavier_than_paper_scale(self, name):
        module = EXPERIMENTS[name]
        d, p = module.DEFAULT, module.PAPER_SCALE
        # same config type
        assert type(d) is type(p)


class TestPaperNumbersPinned:
    def test_fig1_full_scale(self):
        cfg = fig1_uwave.PAPER_SCALE
        assert cfg.per_class * 8 == 896          # train exemplars
        assert cfg.full_scale_pairs == 400_960   # (896*895)/2
        assert max(cfg.radii) == 20
        assert max(cfg.windows) == pytest.approx(0.20)
        assert cfg.max_pairs == 0                # every pair

    def test_case_b_full_scale(self):
        cfg = case_b_music.PAPER_SCALE
        assert cfg.seconds == 240.0              # "Let It Be"
        assert cfg.rate_hz == 100                # chroma rate
        assert cfg.seconds * cfg.rate_hz == 24_000
        assert cfg.max_drift_seconds == 2.0
        assert cfg.window_fraction == pytest.approx(1 / 120)  # 0.83%
        assert cfg.repeats == 1000
        assert set(cfg.radii) == {10, 40}

    def test_fig4_full_scale(self):
        cfg = fig4_case_c.PAPER_SCALE
        assert cfg.length == 450
        assert cfg.examples == 1000
        assert cfg.full_scale_pairs == 499_500   # (1000*999)/2
        assert max(cfg.windows) == pytest.approx(0.40)
        assert max(cfg.radii) == 40

    def test_fig6_full_scale(self):
        cfg = fig6_fall_crossover.PAPER_SCALE
        assert cfg.rate_hz == 100
        assert cfg.radius == 40
        assert cfg.repeats == 1000
        assert 4.0 in cfg.lengths_seconds        # the paper's break-even

    def test_footnote2_full_scale(self):
        cfg = footnote2_trillion.PAPER_SCALE
        assert cfg.length == 128
        assert cfg.radius == 10
        assert cfg.comparisons == 10**12
        assert cfg.repeats == 1_000_000

    def test_appendix_b_radius(self):
        assert appendix_b.PAPER_SCALE.radius == 30  # the third party's
