"""Unit tests for the sweep-result helper methods (no timing involved).

The experiment result classes carry decision logic (lookups, claim
predicates, crossover selection) that deserves direct unit coverage on
hand-built measurements, independent of wall-clock noise.
"""

import pytest

from repro.experiments.fig1_uwave import Fig1Config, Fig1Result
from repro.experiments.fig4_case_c import Fig4Config, Fig4Result
from repro.timing.runner import SweepPoint


def pt(algorithm, param, seconds, cells=100.0):
    return SweepPoint(
        algorithm=algorithm, param=param, per_pair_seconds=seconds,
        per_pair_cells=cells, pairs_measured=3,
    )


def fig1_result(cdtw_times, fastdtw_times):
    """Build a Fig1Result from {param: seconds} maps."""
    return Fig1Result(
        config=Fig1Config(),
        series_length=945,
        cdtw_points=tuple(
            pt("cDTW", w, s) for w, s in sorted(cdtw_times.items())
        ),
        fastdtw_points=tuple(
            pt("FastDTW", float(r), s)
            for r, s in sorted(fastdtw_times.items())
        ),
    )


class TestFig1Helpers:
    def test_lookups(self):
        r = fig1_result({0.04: 0.02, 0.20: 0.08}, {0: 0.01, 10: 0.4})
        assert r.cdtw_at(0.04).per_pair_seconds == 0.02
        assert r.fastdtw_at(10).per_pair_seconds == 0.4
        with pytest.raises(KeyError):
            r.cdtw_at(0.5)
        with pytest.raises(KeyError):
            r.fastdtw_at(99)

    def test_headline_true_when_cdtw4_fastest(self):
        r = fig1_result({0.04: 0.005, 0.20: 0.08}, {0: 0.01, 10: 0.4})
        assert r.headline_holds()

    def test_headline_false_when_r0_wins(self):
        r = fig1_result({0.04: 0.02, 0.20: 0.08}, {0: 0.01, 10: 0.4})
        assert not r.headline_holds()

    def test_dominates_from_radius_skips_fast_r0(self):
        r = fig1_result(
            {0.04: 0.02, 0.20: 0.08},
            {0: 0.01, 1: 0.05, 10: 0.4},
        )
        assert r.dominates_from_radius() == 1

    def test_dominates_from_radius_zero_when_sweep_all_slower(self):
        r = fig1_result(
            {0.04: 0.005, 0.20: 0.08},
            {0: 0.01, 1: 0.05, 10: 0.4},
        )
        assert r.dominates_from_radius() == 0

    def test_dominates_requires_suffix_not_point(self):
        # r=1 slower but r=10 faster: no suffix from 1 works; from 10
        # neither; must raise
        r = fig1_result(
            {0.04: 0.02, 0.20: 0.08},
            {0: 0.01, 1: 0.05, 10: 0.001},
        )
        with pytest.raises(ValueError):
            r.dominates_from_radius()

    def test_serviceable_claim(self):
        r = fig1_result({0.04: 0.02, 0.20: 0.08}, {0: 0.01, 10: 0.4})
        assert r.serviceable_claim_holds()
        r2 = fig1_result({0.04: 0.02, 0.20: 0.5}, {0: 0.01, 10: 0.4})
        assert not r2.serviceable_claim_holds()


class TestFig4Helpers:
    def make(self, cdtw_times, fastdtw_times):
        return Fig4Result(
            config=Fig4Config(),
            cdtw_points=tuple(
                pt("cDTW", w, s) for w, s in sorted(cdtw_times.items())
            ),
            fastdtw_points=tuple(
                pt("FastDTW", float(p), s)
                for p, s in sorted(fastdtw_times.items())
            ),
        )

    def test_extrema(self):
        r = self.make({0.0: 0.001, 0.40: 0.03},
                      {0: 0.006, 40: 0.9})
        assert r.max_cdtw_seconds() == 0.03
        assert r.min_fastdtw_seconds() == 0.006

    def test_matched_params(self):
        r = self.make({0.0: 0.001, 0.40: 0.03},
                      {0: 0.006, 40: 0.9})
        matched = r.comparable_at_matched_params()
        assert (0.0, 0.001, 0.006) in matched
        assert (40.0, 0.03, 0.9) in matched

    def test_total_seconds_projection(self):
        p = pt("cDTW", 0.1, 0.002)
        assert p.total_seconds(499_500) == pytest.approx(999.0)
