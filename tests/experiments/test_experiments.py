"""Integration tests: every experiment reproduces its paper-shape claim.

Each test runs the experiment at a deliberately tiny scale (seconds,
not hours) and asserts the *qualitative* result the paper reports --
who wins, which direction, which classification -- plus that the
report renders.  Absolute timings are never asserted.
"""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    appendix_b,
    case_b_music,
    fig1_uwave,
    fig2_ucr_histograms,
    fig3_power,
    fig4_case_c,
    fig6_fall_crossover,
    fig7_adversarial,
    fig8_wrong_way,
    footnote2_trillion,
    repeated_use,
    table1_cases,
)


class TestRegistry:
    def test_every_experiment_registered(self):
        # 12 paper artefacts + the approx-quality extension
        assert len(EXPERIMENTS) == 13

    def test_contract_surface(self):
        for module in EXPERIMENTS.values():
            assert hasattr(module, "DEFAULT")
            assert hasattr(module, "PAPER_SCALE")
            assert callable(module.run)
            assert callable(module.format_report)
            assert callable(module.main)


class TestTable1:
    def test_canonical_examples_classified_as_paper(self):
        res = table1_cases.run()
        cases = [a.case.value for _, a in res.examples]
        assert cases == ["A", "B", "C", "D"]

    def test_case_a_dominates_archive(self):
        res = table1_cases.run()
        assert res.case_a_fraction > 0.75

    def test_report_renders(self):
        out = table1_cases.format_report(table1_cases.run())
        assert "Case A share" in out


class TestFig1:
    @pytest.fixture(scope="class")
    def result(self):
        cfg = fig1_uwave.Fig1Config(
            per_class=1, max_pairs=3,
            windows=(0.0, 0.04, 0.20), radii=(0, 1, 10),
        )
        return fig1_uwave.run(cfg)

    def test_serviceable_claim_cdtw20_vs_fastdtw10(self, result):
        # the paper: exact cDTW_20 as fast as FastDTW_10 -- on our
        # hardware cDTW_20 wins by several-fold
        assert result.serviceable_claim_holds()

    def test_cdtw4_beats_fastdtw_from_small_radius(self, result):
        # the robust form of the Fig. 1 headline: every FastDTW with
        # any refinement at all (r >= 1) loses to cDTW at the
        # archive-optimal window
        assert result.dominates_from_radius() <= 1

    def test_cdtw4_crushes_serviceable_fastdtw(self, result):
        assert (
            result.cdtw_at(0.04).per_pair_seconds * 3
            < result.fastdtw_at(10).per_pair_seconds
        )

    def test_report_renders(self, result):
        out = fig1_uwave.format_report(result)
        assert "cDTW_4" in out and "FastDTW_10" in out

    def test_lookup_missing_raises(self, result):
        with pytest.raises(KeyError):
            result.cdtw_at(0.33)

    def test_optimized_variant_runs_too(self):
        cfg = fig1_uwave.Fig1Config(
            per_class=1, max_pairs=2, windows=(0.04,), radii=(1,),
            fastdtw_variant="optimized",
        )
        res = fig1_uwave.run(cfg)
        assert res.fastdtw_at(1).per_pair_seconds > 0


class TestFig2:
    def test_headline_fractions(self):
        res = fig2_ucr_histograms.run()
        assert res.fraction_shorter_than_1000 > 0.75
        assert res.fraction_w_at_most_10 > 0.80

    def test_histograms_cover_all_datasets(self):
        res = fig2_ucr_histograms.run()
        assert sum(res.w_counts) == res.datasets == 128

    def test_report_renders(self):
        out = fig2_ucr_histograms.format_report(fig2_ucr_histograms.run())
        assert "128" in out and "#" in out


class TestCaseB:
    @pytest.fixture(scope="class")
    def result(self):
        cfg = case_b_music.CaseBConfig(
            seconds=12.0, max_drift_seconds=0.1, radii=(10, 40),
        )
        return case_b_music.run(cfg)

    def test_window_fraction_is_0_83_percent(self, result):
        assert result.window_fraction == pytest.approx(1 / 120)

    def test_cdtw_wins(self, result):
        assert result.cdtw_wins()

    def test_larger_radius_slower(self, result):
        assert result.radius_hurts()

    def test_cdtw_distance_finite_and_modest(self, result):
        # the declared window really aligns the pair
        assert 0 <= result.cdtw_distance < 1e6

    def test_report_renders(self, result):
        out = case_b_music.format_report(result)
        assert "FastDTW_40" in out


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return fig3_power.run()

    def test_peak_offset_153(self, result):
        assert result.peak_offset == 153

    def test_w_estimate_34_percent(self, result):
        assert result.warping_estimate == pytest.approx(0.34, abs=0.01)

    def test_rounded_to_40_percent(self, result):
        assert result.rounded_w == pytest.approx(0.40)

    def test_classified_case_c(self, result):
        assert result.case.value == "C"

    def test_report_renders(self, result):
        assert "34%" in fig3_power.format_report(result)


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        cfg = fig4_case_c.Fig4Config(
            examples=4, max_pairs=3,
            windows=(0.0, 0.40), radii=(0, 40),
        )
        return fig4_case_c.run(cfg)

    def test_even_widest_cdtw_beats_fastdtw_at_matched_accuracy(
        self, result
    ):
        # at N=450 the paper finds no FastDTW utility at all: even
        # cDTW_40 undercuts the radius-40 FastDTW
        cdtw40 = result.cdtw_points[-1].per_pair_seconds
        fast40 = result.fastdtw_points[-1].per_pair_seconds
        assert cdtw40 < fast40

    def test_coarsest_fastdtw_slower_than_euclideanish_cdtw(self, result):
        assert (
            result.cdtw_points[0].per_pair_seconds
            < result.fastdtw_points[0].per_pair_seconds
        )

    def test_report_renders(self, result):
        assert "random walks" in fig4_case_c.format_report(result)


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        cfg = fig6_fall_crossover.Fig6Config(
            lengths_seconds=(1.0, 3.0, 6.0),
        )
        return fig6_fall_crossover.run(cfg)

    def test_crossover_exists_and_in_paper_ballpark(self, result):
        be = result.breakeven()
        # paper: N = 400; cell model predicts ~333; allow 100..600
        assert 100 <= be.n <= 600

    def test_full_dtw_slower_at_large_l(self, result):
        last = result.points[-1]
        assert last.fastdtw_faster

    def test_alignment_needs_wide_warping(self, result):
        assert all(
            p.alignment_deviation_fraction > 0.3 for p in result.points
        )

    def test_report_renders(self, result):
        assert "break-even" in fig6_fall_crossover.format_report(result)


class TestFig7Table2:
    @pytest.fixture(scope="class")
    def result(self):
        return fig7_adversarial.run()

    def test_error_exceeds_hundred_thousand_percent(self, result):
        assert result.ab_error_percent > 100_000

    def test_dendrograms_differ(self, result):
        assert result.topologies_differ()

    def test_full_dtw_merges_a_b_first(self, result):
        assert result.full_first_merge == frozenset({0, 1})

    def test_matrices_symmetric_in_construction(self, result):
        m = result.full_matrix
        assert m[0][1] == m[1][0]

    def test_report_renders(self, result):
        out = fig7_adversarial.format_report(result)
        assert "156,100%" in out and "DIFFERENT" in out

    def test_dendrogram_strings_render(self, result):
        full_dgm, fast_dgm = fig7_adversarial.dendrograms(result)
        assert "A" in full_dgm and "C" in fast_dgm


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return fig8_wrong_way.run()

    def test_wrong_way_confirmed(self, result):
        assert result.wrong_way()

    def test_raw_deviation_positive(self, result):
        assert result.raw_deviation > 20

    def test_window_cannot_recover(self, result):
        assert not result.final_window_reaches_feature

    def test_report_renders(self, result):
        assert "wrong-way" in fig8_wrong_way.format_report(result)


class TestAppendixB:
    @pytest.fixture(scope="class")
    def result(self):
        cfg = appendix_b.AppendixBConfig(
            n_classes=3, per_class=6, length=64, seed=7,
        )
        return appendix_b.run(cfg)

    def test_claims_hold(self, result):
        assert result.claims_hold()

    def test_speedup_is_substantial(self, result):
        # paper's third party saw ~24x; require at least 2x here
        assert result.speedup > 2.0

    def test_report_renders(self, result):
        assert "faster" in appendix_b.format_report(result)


class TestFootnote2:
    @pytest.fixture(scope="class")
    def result(self):
        cfg = footnote2_trillion.Footnote2Config(repeats=3)
        return footnote2_trillion.run(cfg)

    def test_fastdtw_slower_per_call(self, result):
        assert result.gap_factor() > 1.0

    def test_trillion_projection_scales(self, result):
        # the projection must use the configured statistic (the paper's
        # mean), not a hard-wired one
        stat = result.config.statistic
        assert result.fastdtw_trillion_seconds == pytest.approx(
            result.fastdtw_timing.value(stat) * 10**12
        )

    def test_statistic_consistent(self, result):
        cfg_median = footnote2_trillion.Footnote2Config(
            repeats=3, statistic="median"
        )
        r = footnote2_trillion.run(cfg_median)
        assert r.cdtw_trillion_seconds == pytest.approx(
            r.cdtw_timing.median * 10**12
        )

    def test_report_renders(self, result):
        out = footnote2_trillion.format_report(result)
        assert "trillion" in out.lower() or "1e+12" in out


class TestRepeatedUse:
    @pytest.fixture(scope="class")
    def result(self):
        cfg = repeated_use.RepeatedUseConfig(
            n_classes=3, per_class=6, length=64, queries=4,
        )
        return repeated_use.run(cfg)

    def test_exact_strategies_agree(self, result):
        assert result.exact_strategies_agree()

    def test_cascade_saves_cells(self, result):
        assert result.cascade_cell_fraction() < 1.0

    def test_fastdtw_does_most_cell_work(self, result):
        assert (
            result.outcomes["fastdtw"].cells
            > result.outcomes["cdtw+lb"].cells
        )

    def test_report_renders(self, result):
        assert "agree: YES" in repeated_use.format_report(result)
