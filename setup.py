"""Legacy entry point so ``pip install -e .`` works without the
``wheel`` package (this environment is offline); configuration lives in
``pyproject.toml``."""

from setuptools import setup

setup()
