"""Terminal visualisation of series, alignments and cost matrices."""

from .render import (
    render_alignment,
    render_cost_matrix,
    render_window,
    sparkline,
)

__all__ = [
    "render_alignment",
    "render_cost_matrix",
    "render_window",
    "sparkline",
]
