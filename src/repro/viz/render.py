"""ASCII rendering of series, warping alignments and DTW lattices.

The paper communicates through small alignment pictures (Fig. 5's fall
alignment, Fig. 7c's hatch lines); these helpers produce the terminal
equivalents the examples print:

* :func:`sparkline` -- a one-line block-character plot of a series;
* :func:`render_alignment` -- two sparklines with hatch columns
  marking where the warping path connects them;
* :func:`render_cost_matrix` -- the accumulated-cost lattice as a
  character heat map with the optimal path overlaid, which makes
  windows, bands and wrong-way corridors visible at a glance.
"""

from __future__ import annotations

from math import inf, isfinite
from typing import List, Optional, Sequence

from ..core.cost import resolve_cost
from ..core.naive import naive_full_matrix
from ..core.path import WarpingPath

_BLOCKS = "▁▂▃▄▅▆▇█"
_SHADES = " .:-=+*#%@"
_PATH_MARK = "◆"


def sparkline(x: Sequence[float], width: Optional[int] = None) -> str:
    """One-line block plot of a series.

    ``width`` resamples by picking evenly-spaced samples (no
    averaging); ``None`` keeps one block per sample.

    >>> sparkline([0.0, 1.0, 0.5])
    '▁█▄'
    """
    if not len(x):
        raise ValueError("cannot plot an empty series")
    if width is not None:
        if width < 1:
            raise ValueError("width must be positive")
        n = len(x)
        x = [x[min(n - 1, round(i * (n - 1) / max(1, width - 1)))]
             for i in range(width)]
    lo, hi = min(x), max(x)
    span = hi - lo
    if span <= 0:
        return _BLOCKS[0] * len(x)
    out = []
    for v in x:
        idx = int((v - lo) / span * (len(_BLOCKS) - 1))
        out.append(_BLOCKS[idx])
    return "".join(out)


def render_alignment(
    x: Sequence[float],
    y: Sequence[float],
    path: WarpingPath,
    width: int = 60,
    hatch_every: int = 6,
) -> str:
    """Two sparklines joined by hatch lines sampled from ``path``.

    A hatch column marks a path cell ``(i, j)``: ``|`` when the
    connection is (nearly) lock-step, ``\\`` when ``x`` leads (the
    ``y`` sample lies later), ``/`` when ``y`` leads -- so warping
    direction and extent are visible, as in the paper's Fig. 7c.
    """
    if len(x) != path.n or len(y) != path.m:
        raise ValueError("path does not align these series")
    if width < 2 or hatch_every < 1:
        raise ValueError("need width >= 2 and hatch_every >= 1")

    top = sparkline(x, width=width)
    bottom = sparkline(y, width=width)

    def col(idx: int, n: int) -> int:
        return round(idx * (width - 1) / max(1, n - 1))

    hatch = [" "] * width
    for k in range(0, len(path), hatch_every):
        i, j = path[k]
        ci, cj = col(i, path.n), col(j, path.m)
        mid = (ci + cj) // 2
        if cj > ci:
            hatch[mid] = "\\"
        elif cj < ci:
            hatch[mid] = "/"
        else:
            hatch[mid] = "|"
    return "\n".join(["x: " + top, "   " + "".join(hatch),
                      "y: " + bottom])


def render_window(window, max_size: int = 60) -> str:
    """A :class:`~repro.core.window.Window` as an ASCII silhouette.

    ``#`` marks admitted cells, ``.`` excluded ones -- the quickest
    way to *see* the difference between a Sakoe-Chiba band, an Itakura
    parallelogram, a learned R-K band and a FastDTW corridor.

    >>> from repro.core.window import Window
    >>> print(render_window(Window.band(3, 3, 0)))
    #..
    .#.
    ..#
    """
    if window.n > max_size or window.m > max_size:
        raise ValueError(
            f"window too large to render ({window.n}x{window.m} > "
            f"{max_size})"
        )
    lines = []
    for i in range(window.n):
        lo, hi = window.row(i)
        lines.append(
            "." * lo + "#" * (hi - lo + 1) + "." * (window.m - 1 - hi)
        )
    return "\n".join(lines)


def render_cost_matrix(
    x: Sequence[float],
    y: Sequence[float],
    path: Optional[WarpingPath] = None,
    band: Optional[int] = None,
    cost: str = "squared",
    max_size: int = 60,
) -> str:
    """The accumulated-cost lattice as a character heat map.

    Rows are ``x`` indices (top to bottom), columns ``y`` indices.
    Darker characters are costlier cells; ``◆`` marks the optimal (or
    given) path; excluded band cells print as spaces.  Series longer
    than ``max_size`` are refused (this is a lens for small examples,
    not a plotting library).
    """
    n, m = len(x), len(y)
    if not n or not m:
        raise ValueError("cannot render empty series")
    if n > max_size or m > max_size:
        raise ValueError(
            f"series too long to render ({n}x{m} > {max_size}); "
            "slice them first"
        )
    D = naive_full_matrix(x, y, cost=cost, band=band)
    finite_vals = [v for row in D for v in row if isfinite(v)]
    lo, hi = min(finite_vals), max(finite_vals)
    span = (hi - lo) or 1.0

    on_path = set(path.cells) if path is not None else set()
    lines: List[str] = []
    for i in range(n):
        chars = []
        for j in range(m):
            if (i, j) in on_path:
                chars.append(_PATH_MARK)
            elif not isfinite(D[i][j]):
                chars.append(" ")
            else:
                idx = int((D[i][j] - lo) / span * (len(_SHADES) - 1))
                chars.append(_SHADES[idx])
        lines.append("".join(chars))
    return "\n".join(lines)
