"""DTW k-means: partitional clustering with DBA centroids.

The intro's "clustering" task in its most common DTW form: Lloyd-style
iterations where assignment uses banded cDTW and the centroid update
is DTW Barycenter Averaging.  Every distance evaluated is exact; the
band both regularises alignments and keeps each iteration
O(k_clusters * n_series * N * band).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from math import inf
from typing import List, Optional, Sequence, Tuple

from ..core.cdtw import cdtw
from ..core.dtw import dtw
from ..core.validate import validate_series
from ..runtime import Runtime, _resolve_legacy
from .dba import dba


@dataclass(frozen=True)
class KMeansResult:
    """Clustering outcome.

    Attributes
    ----------
    centroids:
        One barycenter per cluster.
    assignments:
        Cluster index per input series.
    inertia:
        Total DTW distance of every series to its centroid.
    iterations:
        Lloyd rounds performed.
    converged:
        Whether assignments stabilised before the iteration cap.
    """

    centroids: Tuple[Tuple[float, ...], ...]
    assignments: Tuple[int, ...]
    inertia: float
    iterations: int
    converged: bool


def dtw_kmeans(
    series: Sequence[Sequence[float]],
    k: int,
    band: Optional[int] = None,
    max_iterations: int = 10,
    dba_iterations: int = 3,
    seed: int = 0,
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    executor=None,
    runtime: Optional[Runtime] = None,
) -> KMeansResult:
    """Cluster equal-length series into ``k`` groups under DTW.

    Parameters
    ----------
    series:
        At least ``k`` equal-length series.
    k:
        Number of clusters.
    band:
        cDTW band for assignments and barycenters (``None`` = Full
        DTW).
    max_iterations:
        Lloyd iteration cap.
    dba_iterations:
        DBA rounds per centroid update.
    seed:
        Seeds the k-means++-style initial centroid choice.
    runtime:
        Execution context for every distance and alignment -- each
        Lloyd round's assignment batch, the DBA centroid updates and
        the inertia evaluation -- per :mod:`repro.runtime` (``None``
        = the process default).  Assignments, centroids and inertia
        are identical for every context: the DP results are
        bit-identical on every backend and the batched fan-out
        preserves the serial tie-breaks.  A runtime carrying a
        persistent executor shares one warm pool across the whole
        clustering run.
    workers, backend, executor:
        Deprecated per-knob overrides of the corresponding ``runtime``
        fields (each emits a :class:`DeprecationWarning`).

    Returns
    -------
    KMeansResult
        Deterministic for a given seed.
    """
    rt = _resolve_legacy(
        "dtw_kmeans", runtime, workers=workers, backend=backend,
        executor=executor,
    )
    lists = [list(s) for s in series]
    for i, s in enumerate(lists):
        validate_series(s, f"series {i}")
    if k < 1:
        raise ValueError("k must be positive")
    if len(lists) < k:
        raise ValueError(f"need at least k={k} series, got {len(lists)}")
    if len({len(s) for s in lists}) != 1:
        raise ValueError("series must share one length")

    dist = _dist_fn(band, rt)

    centroids = _plus_plus_init(lists, k, dist, random.Random(seed))

    assignments: List[int] = [-1] * len(lists)
    iterations = 0
    converged = False
    for _ in range(max_iterations):
        new_assignments = _assign(lists, centroids, band, rt)
        iterations += 1
        if new_assignments == assignments:
            converged = True
            break
        assignments = new_assignments
        for c in range(k):
            members = [
                lists[i] for i, a in enumerate(assignments) if a == c
            ]
            if members:
                centroids[c] = list(
                    dba(members, max_iterations=dba_iterations,
                        band=band, runtime=rt).barycenter
                )
            # empty clusters keep their previous centroid

    inertia = _total_inertia(lists, centroids, assignments, band, rt)
    return KMeansResult(
        centroids=tuple(tuple(c) for c in centroids),
        assignments=tuple(assignments),
        inertia=inertia,
        iterations=iterations,
        converged=converged,
    )


def _dist_fn(band, rt: Runtime):
    """The pairwise distance the clustering uses, backend-dispatched."""
    if rt.backend_name != "python":
        from ..core.measures import measure_fn

        fn = measure_fn(
            "dtw" if band is None else "cdtw", band=band,
            backend=rt.backend_name,
        )
        return lambda a, b: fn(a, b).distance

    def dist(a, b) -> float:
        if band is None:
            return dtw(a, b).distance
        return cdtw(a, b, band=band).distance
    return dist


def _assign(lists, centroids, band, rt: Runtime) -> List[int]:
    """Nearest-centroid index per series (first centroid wins ties)."""
    if rt.parallel:
        from ..batch.engine import argmin_first, batch_distances

        k = len(centroids)
        result = batch_distances(
            list(centroids) + lists,
            pairs=[
                (c, k + i)
                for i in range(len(lists))
                for c in range(k)
            ],
            measure="dtw" if band is None else "cdtw",
            band=band,
            runtime=rt,
        )
        return [
            argmin_first(result.distances[i * k:(i + 1) * k])[0]
            for i in range(len(lists))
        ]
    dist = _dist_fn(band, rt)
    assignments = []
    for s in lists:
        best, best_c = inf, 0
        for c, centre in enumerate(centroids):
            d = dist(centre, s)
            if d < best:
                best, best_c = d, c
        assignments.append(best_c)
    return assignments


def _total_inertia(lists, centroids, assignments, band, rt: Runtime) -> float:
    """Sum of each series' distance to its assigned centroid."""
    if rt.parallel:
        from ..batch.engine import batch_distances

        k = len(centroids)
        result = batch_distances(
            list(centroids) + lists,
            pairs=[(assignments[i], k + i) for i in range(len(lists))],
            measure="dtw" if band is None else "cdtw",
            band=band,
            runtime=rt,
        )
        return sum(result.distances)
    dist = _dist_fn(band, rt)
    return sum(
        dist(centroids[assignments[i]], s) for i, s in enumerate(lists)
    )


def _plus_plus_init(lists, k, dist, rng) -> List[List[float]]:
    """k-means++ seeding: spread initial centroids apart."""
    centroids = [list(lists[rng.randrange(len(lists))])]
    while len(centroids) < k:
        weights = []
        for s in lists:
            weights.append(min(dist(c, s) for c in centroids))
        total = sum(weights)
        if total <= 0:  # all identical: arbitrary distinct picks
            centroids.append(list(lists[len(centroids) % len(lists)]))
            continue
        r = rng.uniform(0, total)
        acc = 0.0
        for s, w in zip(lists, weights):
            acc += w
            if acc >= r:
                centroids.append(list(s))
                break
    return centroids
