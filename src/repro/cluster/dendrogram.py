"""Dendrogram trees and terminal rendering.

Turns the merge list of :func:`repro.cluster.linkage.linkage` into a
navigable tree and renders it as ASCII art -- the closest a terminal
gets to the paper's Fig. 7 panels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from .linkage import Merge


@dataclass
class ClusterNode:
    """A node of the dendrogram.

    Leaves have ``left is None and right is None`` and carry their item
    ``id``; internal nodes carry the linkage ``height`` at which their
    children merged.
    """

    id: int
    height: float = 0.0
    left: Optional["ClusterNode"] = None
    right: Optional["ClusterNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None

    def leaves(self) -> List[int]:
        """Leaf item ids, left-to-right."""
        if self.is_leaf:
            return [self.id]
        return self.left.leaves() + self.right.leaves()

    @classmethod
    def from_merges(cls, merges: Sequence[Merge]) -> "ClusterNode":
        """Build the tree for a complete merge list."""
        if not merges:
            raise ValueError("no merges")
        k = len(merges) + 1
        nodes = {i: cls(i) for i in range(k)}
        for step, m in enumerate(merges):
            node = cls(
                k + step,
                height=m.distance,
                left=nodes[m.left],
                right=nodes[m.right],
            )
            nodes[k + step] = node
        return nodes[k + len(merges) - 1]

    def cophenetic(self, a: int, b: int) -> float:
        """Height at which leaves ``a`` and ``b`` first share a cluster."""
        if a == b:
            return 0.0
        node = self._lowest_common(a, b)
        if node is None:
            raise ValueError(f"leaves {a} and {b} not both in this tree")
        return node.height

    def _lowest_common(self, a: int, b: int) -> Optional["ClusterNode"]:
        if self.is_leaf:
            return None
        left_leaves = set(self.left.leaves())
        right_leaves = set(self.right.leaves())
        if a in left_leaves and b in left_leaves:
            return self.left._lowest_common(a, b) or self
        if a in right_leaves and b in right_leaves:
            return self.right._lowest_common(a, b) or self
        if {a, b} <= left_leaves | right_leaves:
            return self
        return None


def render_ascii(
    root: ClusterNode,
    labels: Optional[Sequence[str]] = None,
    width: int = 40,
) -> str:
    """Render a dendrogram as ASCII art, one leaf per line.

    Bar length is proportional to merge height (scaled to ``width``
    columns), so the paper's Fig. 7 contrast -- A and B fusing at
    ~0.02 under Full DTW but at 31.24 under FastDTW_20 -- is visible
    at a glance.
    """
    leaves = root.leaves()
    if labels is None:
        labels = [str(i) for i in range(max(leaves) + 1)]
    max_h = max(_heights(root)) or 1.0

    def col(height: float) -> int:
        return 1 + int((width - 1) * height / max_h)

    lines: List[str] = []

    def walk(node: ClusterNode, depth_col: int) -> int:
        """Render subtree; return the line index of its connector."""
        if node.is_leaf:
            lines.append(f"{labels[node.id]:>8} -+")
            return len(lines) - 1
        c = col(node.height)
        top = walk(node.left, c)
        bot = walk(node.right, c)
        # extend horizontal bars of the two children to column c
        for idx in (top, bot):
            pad = 10 + c - len(lines[idx])
            lines[idx] = lines[idx] + "-" * max(0, pad)
        # vertical connector
        for idx in range(top + 1, bot):
            base = lines[idx]
            pos = 10 + c
            if len(base) < pos + 1:
                base = base + " " * (pos + 1 - len(base))
            if base[pos] == " ":
                base = base[:pos] + "|" + base[pos + 1:]
            lines[idx] = base
        mid = (top + bot) // 2
        for idx in (top, bot):
            lines[idx] += "+"
        return mid

    walk(root, 0)
    return "\n".join(lines)


def _heights(node: ClusterNode) -> List[float]:
    if node.is_leaf:
        return [0.0]
    return [node.height] + _heights(node.left) + _heights(node.right)
