"""Agglomerative hierarchical clustering over distance matrices.

Built for the paper's Fig. 7: clustering three series under Full DTW
versus FastDTW_20 produces different dendrograms, because FastDTW's
approximation error (156,100% on the adversarial pair) moves A and B
apart.  The implementation is generic: any symmetric distance matrix,
single/complete/average linkage, with a tree object and ASCII
rendering.
"""

from .dba import DbaResult, dba
from .dendrogram import ClusterNode, render_ascii
from .kmeans import KMeansResult, dtw_kmeans
from .linkage import LINKAGES, Merge, linkage, linkage_from_series

__all__ = [
    "ClusterNode",
    "DbaResult",
    "KMeansResult",
    "LINKAGES",
    "Merge",
    "dba",
    "dtw_kmeans",
    "linkage",
    "linkage_from_series",
    "render_ascii",
]
