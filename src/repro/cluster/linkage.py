"""Agglomerative linkage from a distance matrix, from scratch.

Produces the same merge structure as ``scipy.cluster.hierarchy.linkage``
(against which the test-suite cross-checks): leaves are 0..k-1, each
merge creates node ``k + step``, and merges record the linkage distance
at which the two clusters joined.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import inf
from typing import List, Optional, Sequence, Tuple

LINKAGES = ("single", "complete", "average")


@dataclass(frozen=True)
class Merge:
    """One agglomeration step.

    ``left``/``right`` are node ids (leaf ids ``< k``, internal ids
    assigned in merge order starting at ``k``); ``distance`` is the
    linkage distance; ``size`` the resulting cluster's leaf count.
    """

    left: int
    right: int
    distance: float
    size: int


def linkage(
    matrix: Sequence[Sequence[float]],
    method: str = "average",
) -> List[Merge]:
    """Cluster ``k`` items from their symmetric distance matrix.

    Parameters
    ----------
    matrix:
        ``k x k`` symmetric matrix with a zero diagonal (validated).
    method:
        ``"single"`` (min), ``"complete"`` (max) or ``"average"``
        (unweighted mean, i.e. UPGMA).

    Returns
    -------
    list[Merge]
        ``k - 1`` merges in non-decreasing construction order.  Ties
        break towards the smallest node ids, making results
        deterministic.
    """
    if method not in LINKAGES:
        raise ValueError(f"unknown linkage {method!r}; pick from {LINKAGES}")
    k = len(matrix)
    if k < 2:
        raise ValueError("need at least two items to cluster")
    for i in range(k):
        if len(matrix[i]) != k:
            raise ValueError("distance matrix must be square")
        if abs(matrix[i][i]) > 1e-12:
            raise ValueError(f"diagonal entry ({i},{i}) must be zero")
        for j in range(i + 1, k):
            if abs(matrix[i][j] - matrix[j][i]) > 1e-9:
                raise ValueError(f"matrix not symmetric at ({i},{j})")
            if matrix[i][j] < 0:
                raise ValueError(f"negative distance at ({i},{j})")

    # active clusters: node id -> (leaf count, row of distances keyed by id)
    dist = {
        i: {j: float(matrix[i][j]) for j in range(k) if j != i}
        for i in range(k)
    }
    sizes = {i: 1 for i in range(k)}
    merges: List[Merge] = []
    next_id = k

    while len(dist) > 1:
        best = (inf, -1, -1)
        for a in sorted(dist):
            row = dist[a]
            for b in sorted(row):
                if b > a and row[b] < best[0]:
                    best = (row[b], a, b)
        d, a, b = best
        new_size = sizes[a] + sizes[b]
        merges.append(Merge(a, b, d, new_size))

        new_row = {}
        for c in dist:
            if c in (a, b):
                continue
            dac, dbc = dist[a][c], dist[b][c]
            if method == "single":
                new_row[c] = min(dac, dbc)
            elif method == "complete":
                new_row[c] = max(dac, dbc)
            else:  # average (UPGMA)
                new_row[c] = (
                    sizes[a] * dac + sizes[b] * dbc
                ) / new_size
        del dist[a], dist[b]
        for c in list(dist):
            dist[c].pop(a, None)
            dist[c].pop(b, None)
            dist[c][next_id] = new_row[c]
        dist[next_id] = new_row
        sizes[next_id] = new_size
        next_id += 1
    return merges


def linkage_from_series(
    series: Sequence[Sequence[float]],
    measure: str = "cdtw",
    method: str = "average",
    window: Optional[float] = None,
    band: Optional[int] = None,
    radius: int = 1,
    cost: str = "squared",
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    executor=None,
    runtime=None,
) -> List[Merge]:
    """Cluster raw series: batched all-pairs matrix, then linkage.

    Convenience composition of
    :func:`repro.core.matrix.distance_matrix` (which fans the
    ``k * (k - 1) / 2`` pairwise computations out under the given
    :class:`repro.runtime.Runtime` -- ``None`` = the process default)
    and :func:`linkage`.  The merge structure is identical for any
    execution context -- worker count, executor, kernel backend --
    since the matrix is.  ``workers=``/``backend=``/``executor=`` are
    deprecated per-knob overrides of the corresponding runtime fields.
    """
    from ..core.matrix import distance_matrix
    from ..runtime import _resolve_legacy

    rt = _resolve_legacy(
        "linkage_from_series", runtime, workers=workers,
        backend=backend, executor=executor,
    )
    matrix = distance_matrix(
        series, measure=measure, window=window, band=band,
        radius=radius, cost=cost, runtime=rt,
    )
    return linkage(matrix.as_lists(), method=method)


def merge_order_signature(merges: Sequence[Merge]) -> Tuple[frozenset, ...]:
    """Order-insensitive signature of which leaf sets merged.

    Two dendrograms have the same topology iff their signatures match;
    used by the Fig. 7 experiment to show Full DTW and FastDTW_20 give
    *different* clusterings of the same three series.
    """
    k = len(merges) + 1
    members = {i: frozenset([i]) for i in range(k)}
    sig = []
    for step, m in enumerate(merges):
        merged = members[m.left] | members[m.right]
        members[k + step] = merged
        sig.append(merged)
    return tuple(sig)
