"""DTW Barycenter Averaging (DBA): consensus series under warping.

The intro's task list includes *summarization*: representing a set of
series by one prototype.  The arithmetic mean smears time-shifted
features; DBA (Petitjean et al.) averages *under DTW alignment*
instead -- each iteration aligns every series to the current
barycenter with exact DTW and replaces each barycenter sample by the
mean of all samples aligned to it.  The result is the standard
centroid for DTW k-means and template construction.

Exact (c)DTW alignments are what make DBA work; with this package's
banded DTW each iteration over ``k`` series of length ``n`` costs
``O(k * n * band)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.cdtw import cdtw
from ..core.dtw import dtw
from ..core.validate import validate_series
from ..runtime import Runtime, _resolve_legacy


@dataclass(frozen=True)
class DbaResult:
    """A DBA barycenter and its fit statistics.

    Attributes
    ----------
    barycenter:
        The consensus series.
    inertia:
        Sum of DTW distances from every input series to the
        barycenter (the quantity DBA descends).
    iterations:
        Update rounds performed (excluding the initialisation).
    converged:
        Whether the inertia improvement fell below the tolerance
        before the iteration cap.
    """

    barycenter: Tuple[float, ...]
    inertia: float
    iterations: int
    converged: bool


def dba(
    series: Sequence[Sequence[float]],
    max_iterations: int = 10,
    tolerance: float = 1e-6,
    band: Optional[int] = None,
    initial: Optional[Sequence[float]] = None,
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    executor=None,
    runtime: Optional[Runtime] = None,
) -> DbaResult:
    """Compute a DTW barycenter of equal-length series.

    Parameters
    ----------
    series:
        Non-empty collection of equal-length series.
    max_iterations:
        Cap on update rounds.
    tolerance:
        Stop once the inertia improves by less than this (absolute).
    band:
        Optional Sakoe-Chiba half-width for the alignments (``None``
        uses Full DTW, the classic DBA; a band both speeds it up and
        regularises the alignments).
    initial:
        Starting barycenter (defaults to the medoid-ish choice: the
        input series with the smallest summed Euclidean distance to
        the others, a cheap robust initialisation).
    runtime:
        Execution context for the per-iteration alignments and
        inertia evaluations, per :mod:`repro.runtime` (``None`` = the
        process default).  Every series aligns to the barycenter
        independently, so under a parallel context each round is one
        :mod:`repro.batch` job; distances *and recovered paths* are
        bit-identical on every backend and worker count, so the
        barycenter is too.  A runtime carrying a persistent executor
        re-ships the dataset each round (the barycenter moves), but
        the warm pool amortises across all rounds.
    workers, backend, executor:
        Deprecated per-knob overrides of the corresponding ``runtime``
        fields (each emits a :class:`DeprecationWarning`).

    Returns
    -------
    DbaResult
        The barycenter has the common input length; the inertia is
        non-increasing across iterations by construction.
    """
    rt = _resolve_legacy(
        "dba", runtime, workers=workers, backend=backend,
        executor=executor,
    )
    if not series:
        raise ValueError("need at least one series")
    lists = [list(s) for s in series]
    for i, s in enumerate(lists):
        validate_series(s, f"series {i}")
    lengths = {len(s) for s in lists}
    if len(lengths) != 1:
        raise ValueError(f"series lengths differ: {sorted(lengths)}")
    n = lengths.pop()
    if max_iterations < 0:
        raise ValueError("max_iterations must be non-negative")

    if initial is not None:
        if len(initial) != n:
            raise ValueError("initial barycenter has wrong length")
        centre = [float(v) for v in initial]
    else:
        centre = list(lists[_euclidean_medoid(lists)])

    inertia = _inertia(centre, lists, band, rt)
    iterations = 0
    converged = False
    for _ in range(max_iterations):
        sums = [0.0] * n
        counts = [0] * n
        paths = _alignments(centre, lists, band, rt)
        for s, path in zip(lists, paths):
            for i, j in path:
                sums[i] += s[j]
                counts[i] += 1
        new_centre = [
            sums[i] / counts[i] if counts[i] else centre[i]
            for i in range(n)
        ]
        new_inertia = _inertia(new_centre, lists, band, rt)
        iterations += 1
        if new_inertia <= inertia:
            centre = new_centre
        improvement = inertia - new_inertia
        inertia = min(inertia, new_inertia)
        if improvement < tolerance:
            converged = True
            break
    return DbaResult(
        barycenter=tuple(centre),
        inertia=inertia,
        iterations=iterations,
        converged=converged,
    )


def _alignments(centre, lists, band, rt: Runtime):
    """One warping path per series, aligning each to ``centre``."""
    if rt.parallel:
        from ..batch.engine import batch_distances

        result = batch_distances(
            [centre] + lists,
            pairs=[(0, i + 1) for i in range(len(lists))],
            measure="dtw" if band is None else "cdtw",
            band=band,
            return_paths=True,
            runtime=rt,
        )
        return list(result.paths)
    if rt.backend_name != "python":
        from ..core.measures import measure_fn

        fn = measure_fn(
            "dtw" if band is None else "cdtw", band=band,
            return_path=True, backend=rt.backend_name,
        )
        return [fn(centre, s).path for s in lists]
    if band is None:
        return [dtw(centre, s, return_path=True).path for s in lists]
    return [
        cdtw(centre, s, band=band, return_path=True).path for s in lists
    ]


def _inertia(centre, lists, band, rt: Runtime) -> float:
    if rt.parallel:
        from ..batch.engine import batch_distances

        result = batch_distances(
            [centre] + lists,
            pairs=[(0, i + 1) for i in range(len(lists))],
            measure="dtw" if band is None else "cdtw",
            band=band,
            runtime=rt,
        )
        return sum(result.distances)
    if rt.backend_name != "python":
        from ..core.measures import measure_fn

        fn = measure_fn(
            "dtw" if band is None else "cdtw", band=band,
            backend=rt.backend_name,
        )
        return sum(fn(centre, s).distance for s in lists)
    total = 0.0
    for s in lists:
        if band is None:
            total += dtw(centre, s).distance
        else:
            total += cdtw(centre, s, band=band).distance
    return total


def _euclidean_medoid(lists: List[List[float]]) -> int:
    """Index of the series minimising summed Euclidean distance."""
    if len(lists) == 1:
        return 0
    best_idx, best = 0, float("inf")
    for i, a in enumerate(lists):
        total = 0.0
        for b in lists:
            total += sum((x - y) ** 2 for x, y in zip(a, b))
        if total < best:
            best, best_idx = total, i
    return best_idx
