"""repro: reproduction of Wu & Keogh, "FastDTW is Approximate and
Generally Slower than the Algorithm it Approximates" (ICDE 2021).

The package implements, from scratch, both sides of the paper's
comparison -- exact constrained DTW and the FastDTW approximation --
together with the lower-bounding/early-abandoning machinery, 1-NN
classification, hierarchical clustering, the synthetic workloads behind
every figure, and a benchmark harness that regenerates each table and
figure of the paper.

Quickstart
----------
>>> from repro import dtw, fastdtw
>>> x = [0.0, 1.0, 2.0, 1.0, 0.0]
>>> y = [0.0, 0.0, 1.0, 2.0, 1.0]
>>> exact = dtw(x, y)
>>> approx = fastdtw(x, y, radius=1)
>>> exact.distance <= approx.distance  # FastDTW upper-bounds Full DTW
True
"""

from .batch import BatchExecutor, BatchResult, batch_distances
from .core import (
    DtwResult,
    FastDtwResult,
    KernelSet,
    RleSeries,
    WarpingPath,
    Window,
    approximation_error_percent,
    available_backends,
    cdtw,
    default_backend,
    dtw,
    euclidean,
    fastdtw,
    get_kernels,
    halve,
    paa,
    rle_cdtw,
    rle_dtw,
    set_default_backend,
    use_backend,
    windowed_dtw,
)
from .index import (
    DatasetIndex,
    IndexMismatchError,
    build_index,
    build_stream_index,
    load_index,
    save_index,
)
from .obs import RunTrace, TraceSnapshot, active_trace
from .runtime import (
    Runtime,
    default_runtime,
    set_default_runtime,
    use_runtime,
)

__version__ = "1.0.0"

__all__ = [
    "BatchExecutor",
    "BatchResult",
    "DatasetIndex",
    "DtwResult",
    "FastDtwResult",
    "IndexMismatchError",
    "KernelSet",
    "RleSeries",
    "RunTrace",
    "Runtime",
    "TraceSnapshot",
    "WarpingPath",
    "Window",
    "active_trace",
    "approximation_error_percent",
    "available_backends",
    "batch_distances",
    "build_index",
    "build_stream_index",
    "cdtw",
    "default_backend",
    "default_runtime",
    "dtw",
    "euclidean",
    "fastdtw",
    "get_kernels",
    "halve",
    "load_index",
    "paa",
    "rle_cdtw",
    "rle_dtw",
    "save_index",
    "set_default_backend",
    "set_default_runtime",
    "use_backend",
    "use_runtime",
    "windowed_dtw",
    "__version__",
]
