"""The early/late fall generator (the paper's Fig. 5 and Fig. 6).

Section 3.4's Case D probe: actors fall "anytime within two seconds of
hearing the beep" in an ``L``-second window recorded at 100 Hz, so the
natural warping amount approaches 100% of ``N``.  One series has an
immediate fall followed by near-stillness; the other is near-still
until a fall just before the end.  Aligning the two falls requires
unconstrained warping (``cDTW_100``), and sweeping ``L`` locates the
paper's crossover where ``FastDTW_40`` finally becomes faster
(paper: ``L = 4``, ``N = 400``).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List

from .warping import add_noise


@dataclass(frozen=True)
class FallPair:
    """An early-fall/late-fall pair of accelerometer-style traces."""

    early: List[float]
    late: List[float]
    rate_hz: int
    fall_duration_samples: int

    @property
    def length(self) -> int:
        return len(self.early)

    def required_window_fraction(self) -> float:
        """The cDTW window needed to align the two falls (~1.0)."""
        return (
            self.length - self.fall_duration_samples
        ) / self.length


def fall_signature(samples: int, rng: random.Random) -> List[float]:
    """A fall event: an impact oscillation that ramps up and rings down.

    The burst starts and ends near zero (the actor is still before and
    after), which is what lets unconstrained DTW align an early fall
    with a late one at near-zero cost -- the premise of Fig. 5.
    """
    if samples < 4:
        raise ValueError("fall must span at least 4 samples")
    out = []
    for i in range(samples):
        t = i / samples
        envelope = math.sin(math.pi / 2 * t * 4) if t < 0.25 else (
            math.exp(-4.0 * (t - 0.25))
        )
        out.append(
            3.0 * envelope * (1 - t) * math.cos(2 * math.pi * 5 * t)
            + rng.gauss(0.0, 0.03) * envelope
        )
    return out


def fall_pair(
    seconds: float,
    rate_hz: int = 100,
    fall_seconds: float = 0.5,
    noise_sigma: float = 0.02,
    seed: int = 0,
) -> FallPair:
    """Generate the Fig. 5 pair for an ``L``-second recording window.

    Parameters
    ----------
    seconds:
        The window length ``L``; ``N = seconds * rate_hz``.
    rate_hz:
        Sampling rate (paper: 100 Hz).
    fall_seconds:
        Duration of the fall event itself.
    noise_sigma:
        Sensor noise on the near-motionless segments.
    """
    if seconds <= fall_seconds:
        raise ValueError("window must be longer than the fall itself")
    rng = random.Random(seed)
    n = int(round(seconds * rate_hz))
    fall_n = int(round(fall_seconds * rate_hz))

    sig_a = fall_signature(fall_n, rng)
    sig_b = fall_signature(fall_n, rng)
    still = [0.0] * (n - fall_n)

    early = add_noise(sig_a + still, noise_sigma, rng)
    late = add_noise(still + sig_b, noise_sigma, rng)
    return FallPair(early=early, late=late, rate_hz=rate_hz,
                    fall_duration_samples=fall_n)
