"""Random-walk series: the paper's data-independent timing workload.

Fig. 4's caption notes "the timing for both algorithms does not depend
on the data itself, so we use random walk datasets".  These generators
produce standard Gaussian random walks, optionally z-normalised.
"""

from __future__ import annotations

import random
from typing import List

from ..preprocess.normalize import znorm


def random_walk(
    n: int, seed: int = 0, step_sigma: float = 1.0, normalize: bool = True,
) -> List[float]:
    """One Gaussian random walk of length ``n``.

    >>> len(random_walk(100))
    100
    >>> random_walk(10, seed=1) == random_walk(10, seed=1)
    True
    """
    if n < 1:
        raise ValueError("length must be positive")
    if step_sigma <= 0:
        raise ValueError("step_sigma must be positive")
    rng = random.Random(seed)
    value = 0.0
    out = []
    for _ in range(n):
        value += rng.gauss(0.0, step_sigma)
        out.append(value)
    return znorm(out) if (normalize and n > 1) else out


def random_walks(
    count: int, n: int, seed: int = 0, normalize: bool = True,
) -> List[List[float]]:
    """``count`` independent random walks of length ``n``."""
    if count < 1:
        raise ValueError("count must be positive")
    return [
        random_walk(n, seed=seed * 1_000_003 + i, normalize=normalize)
        for i in range(count)
    ]
