"""Synthetic workload generators for every figure of the paper.

Each generator documents which experiment it feeds and which real
material it substitutes for (see DESIGN.md §2).  All are deterministic
given a seed.
"""

from .adversarial import AdversarialTriple, adversarial_pair, deviation_at_row
from .base import TimeSeriesDataset, as_dataset
from .ecg import ecg_stream, heartbeat
from .falls import FallPair, fall_pair
from .gestures import gesture_dataset, uwave_like
from .music import MusicPair, studio_and_live
from .power import PowerPair, estimate_warping, find_peaks, midnight_hour_pair
from .random_walk import random_walk, random_walks
from .ucr_meta import (
    UCR_2018,
    UcrDataset,
    best_w_histogram,
    by_name,
    case_census,
    fraction_best_w_at_most,
    fraction_shorter_than,
    length_histogram,
)
from .warping import add_noise, gaussian_bump, resample, warp_series

__all__ = [
    "AdversarialTriple",
    "FallPair",
    "MusicPair",
    "PowerPair",
    "TimeSeriesDataset",
    "UCR_2018",
    "UcrDataset",
    "add_noise",
    "adversarial_pair",
    "as_dataset",
    "best_w_histogram",
    "by_name",
    "case_census",
    "deviation_at_row",
    "ecg_stream",
    "estimate_warping",
    "fall_pair",
    "find_peaks",
    "fraction_best_w_at_most",
    "fraction_shorter_than",
    "gaussian_bump",
    "gesture_dataset",
    "heartbeat",
    "length_histogram",
    "midnight_hour_pair",
    "random_walk",
    "random_walks",
    "resample",
    "studio_and_live",
    "uwave_like",
    "warp_series",
]
