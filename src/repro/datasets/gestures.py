"""Synthetic accelerometer-style gesture datasets.

Stands in for UCR's ``UWaveGestureLibraryAll`` (Fig. 1: 896 train
exemplars of length 945, 8 gesture classes) and for the Appendix B
third-party gesture-classification experiment.  Each class is a
prototype built from class-specific strokes (Gaussian bumps) riding a
class-specific oscillation; exemplars are bounded-warp, noisy,
amplitude-jittered renditions of their prototype, so the dataset has a
*known* natural warping amount ``W`` -- exactly the quantity the
paper's case analysis turns on.
"""

from __future__ import annotations

import math
import random
from typing import List

from ..preprocess.normalize import znorm
from .base import TimeSeriesDataset, as_dataset
from .warping import add_noise, gaussian_bump, warp_series


def gesture_prototype(
    class_id: int, length: int, rng: random.Random,
) -> List[float]:
    """A class prototype: 3 strokes plus a class-keyed oscillation."""
    if length < 8:
        raise ValueError("gesture length must be at least 8")
    base = [0.0] * length
    stroke_count = 3
    for s in range(stroke_count):
        centre = length * (s + 1) / (stroke_count + 1)
        centre += rng.uniform(-0.05, 0.05) * length
        width = length * rng.uniform(0.03, 0.08)
        height = rng.uniform(0.8, 1.6) * (1 if (class_id + s) % 2 else -1)
        for i, v in enumerate(gaussian_bump(length, centre, width, height)):
            base[i] += v
    freq = 1.5 + 0.7 * class_id
    phase = rng.uniform(0, 2 * math.pi)
    for i in range(length):
        base[i] += 0.3 * math.sin(2 * math.pi * freq * i / length + phase)
    return base


def gesture_dataset(
    n_classes: int = 8,
    per_class: int = 16,
    length: int = 315,
    warp_fraction: float = 0.04,
    noise_sigma: float = 0.05,
    seed: int = 0,
    name: str = "SyntheticGestures",
) -> TimeSeriesDataset:
    """A labelled gesture dataset with bounded intra-class warping.

    Parameters
    ----------
    n_classes, per_class:
        Dataset shape (``n_classes * per_class`` series).
    length:
        Series length ``N``.
    warp_fraction:
        The natural warping amount ``W`` as a fraction of ``N``:
        exemplars differ from their prototype by at most
        ``warp_fraction * length`` samples of time distortion.  The
        UWave-like default (4%) matches the archive's optimal window
        for that dataset.
    noise_sigma:
        Additive Gaussian noise level (pre-normalisation).
    seed:
        Determinism; the same seed always yields the same dataset.
    """
    if n_classes < 2:
        raise ValueError("need at least two classes")
    if per_class < 1:
        raise ValueError("per_class must be positive")
    if not 0.0 <= warp_fraction <= 0.5:
        raise ValueError("warp_fraction must be in [0, 0.5]")
    rng = random.Random(seed)
    max_shift = warp_fraction * length

    series: List[List[float]] = []
    labels: List[int] = []
    for c in range(n_classes):
        proto = gesture_prototype(c, length, rng)
        for _ in range(per_class):
            s = warp_series(proto, max_shift, rng) if max_shift else list(proto)
            s = [v * rng.uniform(0.9, 1.1) for v in s]
            s = add_noise(s, noise_sigma, rng)
            series.append(znorm(s))
            labels.append(c)
    return as_dataset(name, series, labels)


def multivariate_gestures(
    n_classes: int = 4,
    per_class: int = 6,
    length: int = 96,
    axes: int = 3,
    warp_fraction: float = 0.05,
    noise_sigma: float = 0.05,
    seed: int = 0,
):
    """3-axis (or n-axis) gesture exemplars, UWave-style.

    Real gesture archives record one series per accelerometer axis
    (UWave ships X/Y/Z variants); this generator produces the
    multivariate originals: per class, ``axes`` correlated channel
    prototypes, warped *with one shared time map per exemplar* (all
    axes of a gesture distort together, which is what makes
    multivariate DTW meaningful).

    Returns ``(series, labels)`` where each series is a list of
    ``axes``-tuples, consumable by :mod:`repro.core.multivariate`.
    """
    if axes < 1:
        raise ValueError("need at least one axis")
    if n_classes < 2 or per_class < 1:
        raise ValueError("need n_classes >= 2 and per_class >= 1")
    rng = random.Random(seed)
    max_shift = warp_fraction * length

    from ..core.multivariate import interleave
    from .warping import resample, smooth_monotone_map

    series = []
    labels = []
    for c in range(n_classes):
        protos = [
            gesture_prototype(c * axes + a, length, rng)
            for a in range(axes)
        ]
        for _ in range(per_class):
            tmap = smooth_monotone_map(length, max_shift, rng)
            channels = []
            for proto in protos:
                ch = resample(proto, tmap)
                ch = add_noise(ch, noise_sigma, rng)
                channels.append(znorm(ch))
            series.append(interleave(*channels))
            labels.append(c)
    return series, labels


def uwave_like(
    per_class: int = 4, seed: int = 0,
) -> TimeSeriesDataset:
    """The Fig. 1 stand-in: 8 classes, length 945, ``W ~ 4%``.

    The paper's full-scale experiment uses 896 train exemplars
    (``per_class=112``); the default here is laptop-sized, and the
    Fig. 1 benchmark extrapolates per-pair timings to the full 400,960
    comparisons (see ``repro.experiments.fig1_uwave``).
    """
    return gesture_dataset(
        n_classes=8,
        per_class=per_class,
        length=945,
        warp_fraction=0.04,
        seed=seed,
        name="UWaveLike",
    )
