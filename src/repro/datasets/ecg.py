"""Synthetic electrocardiogram traces.

Supports the paper's Case D discussion ("all uses of DTW for cardiology
are in Case A"): single heartbeats of 120-200 samples at ~250 Hz, and
multi-beat streams with rate variability for the subsequence-search
example.  Beats follow the classic P-QRS-T morphology as a sum of
Gaussian waves.
"""

from __future__ import annotations

import random
from typing import List, Optional

from .warping import add_noise, gaussian_bump

#: (centre fraction of beat, width fraction of beat, amplitude)
_WAVES = (
    (0.18, 0.035, 0.15),   # P
    (0.38, 0.016, -0.12),  # Q
    (0.42, 0.018, 1.00),   # R
    (0.46, 0.016, -0.25),  # S
    (0.70, 0.060, 0.30),   # T
)


def heartbeat(
    samples: int = 180,
    rng: Optional[random.Random] = None,
    amplitude_jitter: float = 0.08,
    timing_jitter: float = 0.015,
    noise_sigma: float = 0.01,
) -> List[float]:
    """One synthetic heartbeat of ``samples`` points.

    Morphology parameters get small per-beat jitter so consecutive
    beats are similar but not identical -- the realistic regime in
    which "it is never meaningful to compare ninety-eight heartbeats
    to one-hundred and three heartbeats" (Section 3.4).
    """
    if samples < 20:
        raise ValueError("a heartbeat needs at least 20 samples")
    rng = rng or random.Random(0)
    beat = [0.0] * samples
    for centre_f, width_f, amp in _WAVES:
        centre = samples * (centre_f + rng.uniform(-timing_jitter, timing_jitter))
        width = max(1.0, samples * width_f)
        height = amp * (1.0 + rng.uniform(-amplitude_jitter, amplitude_jitter))
        for i, v in enumerate(gaussian_bump(samples, centre, width, height)):
            beat[i] += v
    return add_noise(beat, noise_sigma, rng)


def ecg_stream(
    n_beats: int,
    mean_beat_samples: int = 180,
    rr_variability: float = 0.1,
    seed: int = 0,
) -> List[float]:
    """A stream of ``n_beats`` heartbeats with RR-interval variability.

    Beat lengths vary uniformly by ``+-rr_variability`` around the
    mean, so equal-duration excerpts contain different beat counts --
    the paper's argument for why long-ECG DTW comparisons are
    meaningless, and the workload for the subsequence-search example
    (find one beat inside a long stream).
    """
    if n_beats < 1:
        raise ValueError("need at least one beat")
    if not 0.0 <= rr_variability < 1.0:
        raise ValueError("rr_variability must be in [0, 1)")
    rng = random.Random(seed)
    out: List[float] = []
    for _ in range(n_beats):
        length = int(round(
            mean_beat_samples * (1.0 + rng.uniform(-rr_variability,
                                                   rr_variability))
        ))
        out.extend(heartbeat(max(20, length), rng))
    return out
