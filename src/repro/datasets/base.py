"""Labelled time-series dataset container shared by all generators."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class TimeSeriesDataset:
    """A labelled collection of equal-length series.

    Attributes
    ----------
    name:
        Human-readable dataset name (appears in experiment reports).
    series:
        The series, one list of floats each.
    labels:
        One label per series.
    """

    name: str
    series: Tuple[Tuple[float, ...], ...]
    labels: Tuple[object, ...]

    def __post_init__(self) -> None:
        if len(self.series) != len(self.labels):
            raise ValueError("series and labels must have equal length")
        if not self.series:
            raise ValueError("dataset is empty")
        lengths = {len(s) for s in self.series}
        if len(lengths) != 1:
            raise ValueError(f"series lengths differ: {sorted(lengths)}")

    def __len__(self) -> int:
        return len(self.series)

    @property
    def length(self) -> int:
        """Length ``N`` of every series in the dataset."""
        return len(self.series[0])

    @property
    def classes(self) -> Tuple[object, ...]:
        """Distinct labels, sorted by repr for determinism."""
        return tuple(sorted(set(self.labels), key=repr))

    def split(
        self, train_fraction: float, seed: int = 0
    ) -> Tuple["TimeSeriesDataset", "TimeSeriesDataset"]:
        """Shuffled train/test split, stratification-free.

        ``train_fraction`` in (0, 1); both splits are non-empty or a
        ``ValueError`` is raised.
        """
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        order = list(range(len(self)))
        random.Random(seed).shuffle(order)
        cut = round(train_fraction * len(self))
        if cut == 0 or cut == len(self):
            raise ValueError("split leaves an empty side")
        train_idx, test_idx = order[:cut], order[cut:]
        return (
            self._subset(train_idx, f"{self.name}[train]"),
            self._subset(test_idx, f"{self.name}[test]"),
        )

    def _subset(self, indices: Sequence[int], name: str) -> "TimeSeriesDataset":
        return TimeSeriesDataset(
            name,
            tuple(self.series[i] for i in indices),
            tuple(self.labels[i] for i in indices),
        )


def as_dataset(
    name: str,
    series: Sequence[Sequence[float]],
    labels: Sequence[object],
) -> TimeSeriesDataset:
    """Build a :class:`TimeSeriesDataset` from plain sequences."""
    return TimeSeriesDataset(
        name,
        tuple(tuple(float(v) for v in s) for s in series),
        tuple(labels),
    )
