"""Residential power-demand workload (the paper's Fig. 3 / Case C).

The paper's only natural Case C example: the first hour of electrical
power demand after midnight, sampled every eight seconds (``N = 450``),
where a dishwasher program produces three conserved heating peaks whose
timing shifts night to night.  The paper estimates ``W`` from the
*maximum* peak-pair offset -- 153 samples on the third pair, giving
``W = 34%``, rounded up to 40%.

:func:`midnight_hour_pair` generates such a pair with exactly those
offsets by default, and :func:`estimate_warping` recovers the estimate
the way the paper does (peak matching), closing the loop in tests.

Real power meters report on a coarse grid (a dishwasher draws one of
a handful of wattages), which makes demand traces *step-like*: long
runs of repeated values.  ``quantize=`` snaps each sample to a value
grid, turning the synthetic traces into exactly that shape -- the
natural workload for the compressed-domain measures in
:mod:`repro.core.rle` -- and :meth:`PowerPair.run_counts` /
:meth:`PowerPair.compression_ratio` report how compressible the
result is.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .warping import add_noise, gaussian_bump


@dataclass(frozen=True)
class PowerPair:
    """Two midnight-hour demand traces and their ground-truth peaks."""

    night_a: List[float]
    night_b: List[float]
    peaks_a: Tuple[int, ...]
    peaks_b: Tuple[int, ...]

    @property
    def length(self) -> int:
        return len(self.night_a)

    def run_counts(self) -> Tuple[int, int]:
        """Tolerance-zero RLE run counts of the two nights."""
        from ..core.rle import RleSeries

        return (
            RleSeries.encode(self.night_a).run_count,
            RleSeries.encode(self.night_b).run_count,
        )

    def compression_ratio(self) -> float:
        """Samples per run across both nights (1.0 = incompressible).

        The routing statistic the serve layer thresholds on: the
        block DP wins once runs are several samples long on average.
        """
        ka, kb = self.run_counts()
        return (len(self.night_a) + len(self.night_b)) / (ka + kb)

    def max_peak_offset(self) -> int:
        """Largest timing difference between corresponding peaks."""
        return max(abs(a - b) for a, b in zip(self.peaks_a, self.peaks_b))

    def warping_estimate(self) -> float:
        """The paper's ``W`` estimate: max peak offset / length."""
        return self.max_peak_offset() / self.length


def midnight_hour_pair(
    length: int = 450,
    peaks_a: Sequence[int] = (60, 170, 260),
    peaks_b: Sequence[int] = (90, 140, 413),
    peak_width: float = 9.0,
    peak_height: float = 1.0,
    base_load: float = 0.25,
    noise_sigma: float = 0.02,
    seed: int = 0,
    quantize: Optional[float] = None,
) -> PowerPair:
    """A pair of synthetic dishwasher-night traces.

    The default peak positions give a third-pair offset of 153 samples
    out of 450 -- the paper's ``W = 34%`` estimate.  Peaks are heating
    spikes over a small base load with measurement noise.

    ``quantize`` snaps every sample to the nearest multiple of that
    step (``None``, the default, leaves the traces continuous and the
    existing harness behaviour untouched).  A dyadic step such as
    ``2**-6`` lands every value on a grid where the RLE block DP is
    provably bit-exact against the dense engine -- see
    :meth:`repro.core.rle.RleSeries.exactness_grid`.
    """
    if length < 10:
        raise ValueError("length must be at least 10")
    if quantize is not None and not quantize > 0.0:
        raise ValueError("quantize step must be positive")
    if len(peaks_a) != len(peaks_b):
        raise ValueError("both nights need the same number of peaks")
    for peaks in (peaks_a, peaks_b):
        if any(not 0 <= p < length for p in peaks):
            raise ValueError("peak positions must lie inside the series")
        if list(peaks) != sorted(peaks):
            raise ValueError("peak positions must be increasing")
    rng = random.Random(seed)

    def trace(peaks: Sequence[int], rseed: int) -> List[float]:
        r = random.Random(rseed)
        out = [base_load] * length
        for p in peaks:
            bump = gaussian_bump(length, p, peak_width, peak_height)
            for i in range(length):
                out[i] += bump[i]
        out = add_noise(out, noise_sigma, r)
        if quantize is not None:
            out = [round(v / quantize) * quantize for v in out]
        return out

    return PowerPair(
        night_a=trace(peaks_a, rng.randrange(2**31)),
        night_b=trace(peaks_b, rng.randrange(2**31)),
        peaks_a=tuple(peaks_a),
        peaks_b=tuple(peaks_b),
    )


def find_peaks(
    x: Sequence[float], threshold: float, min_separation: int = 20,
) -> List[int]:
    """Indices of local maxima above ``threshold``.

    Greedy: scans for the largest remaining above-threshold local
    maximum, suppressing ``min_separation`` neighbours -- enough to
    recover dishwasher peaks from a noisy trace.
    """
    if min_separation < 1:
        raise ValueError("min_separation must be positive")
    n = len(x)
    candidates = [
        i for i in range(1, n - 1)
        if x[i] >= threshold and x[i] >= x[i - 1] and x[i] >= x[i + 1]
    ]
    candidates.sort(key=lambda i: -x[i])
    chosen: List[int] = []
    for i in candidates:
        if all(abs(i - c) >= min_separation for c in chosen):
            chosen.append(i)
    return sorted(chosen)


def estimate_warping(pair: PowerPair, threshold: float = 0.6) -> float:
    """Recover ``W`` from the traces alone, the way the paper eyeballs it.

    Detects peaks in both nights, matches them in order, and returns
    the maximum offset as a fraction of length.  With the default pair
    this reproduces the paper's 34%.
    """
    pa = find_peaks(pair.night_a, threshold)
    pb = find_peaks(pair.night_b, threshold)
    if len(pa) != len(pb) or not pa:
        raise ValueError(
            f"peak detection found {len(pa)} vs {len(pb)} peaks; "
            "adjust threshold"
        )
    return max(abs(a - b) for a, b in zip(pa, pb)) / pair.length
