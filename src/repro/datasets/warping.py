"""Controlled time warping: the data-generation dual of DTW.

The synthetic workloads need exemplars that differ by a *bounded,
known* amount of warping -- that bound is the paper's ``W``.  The
generator here produces a smooth monotone time map whose deviation from
the identity never exceeds ``max_shift`` samples, then resamples a
series through it.  A dataset built this way is guaranteed to be
alignable by ``cDTW_w`` with ``w >= max_shift / N``, which is what lets
the experiments place themselves deliberately into the paper's
Case A/B/C/D quadrants.
"""

from __future__ import annotations

import random
from typing import List, Sequence


def smooth_monotone_map(
    n: int, max_shift: float, rng: random.Random, knots: int = 6,
) -> List[float]:
    """A monotone map ``t: [0, n) -> [0, n)`` with ``|t(i) - i| <= max_shift``.

    Random offsets (zero at both ends, bounded by ``max_shift``) are
    drawn at ``knots`` anchor points and linearly interpolated; strict
    monotonicity is then enforced by a forward clamp that never
    increases the deviation bound.
    """
    if n < 2:
        raise ValueError("need at least two samples to warp")
    if max_shift < 0:
        raise ValueError("max_shift must be non-negative")
    if knots < 2:
        raise ValueError("need at least two knots")
    anchors = [0.0]
    for _ in range(knots - 2):
        anchors.append(rng.uniform(-max_shift, max_shift))
    anchors.append(0.0)

    t: List[float] = []
    segments = knots - 1
    for i in range(n):
        pos = i * segments / (n - 1)
        k = min(int(pos), segments - 1)
        frac = pos - k
        offset = anchors[k] * (1 - frac) + anchors[k + 1] * frac
        t.append(min(n - 1.0, max(0.0, i + offset)))
    # enforce strict monotonicity without growing deviation:
    # clamping towards the previous value only moves t[i] closer to i
    # when the violation came from a decreasing offset.
    for i in range(1, n):
        if t[i] <= t[i - 1]:
            t[i] = min(n - 1.0, t[i - 1] + 1e-9)
    t[0] = 0.0
    t[-1] = n - 1.0
    return t


def resample(x: Sequence[float], positions: Sequence[float]) -> List[float]:
    """Linear interpolation of ``x`` at fractional ``positions``.

    Positions must lie within ``[0, len(x) - 1]``.
    """
    n = len(x)
    if n == 0:
        raise ValueError("cannot resample an empty series")
    out: List[float] = []
    for p in positions:
        if not 0.0 <= p <= n - 1:
            raise ValueError(f"position {p} outside [0, {n - 1}]")
        i = int(p)
        if i == n - 1:
            out.append(float(x[-1]))
        else:
            frac = p - i
            out.append(x[i] * (1 - frac) + x[i + 1] * frac)
    return out


def warp_series(
    x: Sequence[float],
    max_shift: float,
    rng: random.Random,
    knots: int = 6,
) -> List[float]:
    """A warped copy of ``x`` whose alignment needs at most ``max_shift``
    samples of warping (i.e. ``W <= max_shift / len(x)``).
    """
    t = smooth_monotone_map(len(x), max_shift, rng, knots=knots)
    return resample(x, t)


def add_noise(
    x: Sequence[float], sigma: float, rng: random.Random,
) -> List[float]:
    """``x`` plus iid Gaussian noise of standard deviation ``sigma``."""
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    return [v + rng.gauss(0.0, sigma) for v in x]


def gaussian_bump(
    n: int, centre: float, width: float, height: float = 1.0,
) -> List[float]:
    """A Gaussian bump sampled on ``range(n)`` -- the workloads' basic
    building block (dishwasher peaks, gesture strokes, QRS complexes).
    """
    if width <= 0:
        raise ValueError("width must be positive")
    return [
        height * _exp(-0.5 * ((i - centre) / width) ** 2) for i in range(n)
    ]


def _exp(v: float) -> float:
    from math import exp

    # exp underflows silently to 0.0 for very negative v, which is the
    # behaviour we want for far-away bump tails.
    if v < -700:
        return 0.0
    return exp(v)
