"""A synthetic mini-archive: the Fig. 2 pipeline made end-to-end.

Fig. 2's "optimal w" histogram comes from a pipeline the real archive
ran at vast scale: per dataset, brute-force LOOCV over candidate
windows and keep the best.  The UCR metadata table transcribes those
*results*; this module generates a small archive with *known* natural
warping amounts so the pipeline itself can be exercised and checked:
the search should recover windows near each dataset's generating
``W``, and -- as in the real archive -- the recovered windows should
be small for realistically-warped data.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from .base import TimeSeriesDataset
from .gestures import gesture_dataset


@dataclass(frozen=True)
class ArchiveEntry:
    """One synthetic dataset and its generating parameters."""

    dataset: TimeSeriesDataset
    true_warp_fraction: float

    @property
    def name(self) -> str:
        return self.dataset.name


def synthetic_archive(
    n_datasets: int = 6,
    length_range: Tuple[int, int] = (40, 120),
    warp_range: Tuple[float, float] = (0.0, 0.12),
    classes: int = 3,
    per_class: int = 5,
    seed: int = 0,
) -> List[ArchiveEntry]:
    """Generate datasets with varied lengths and warping amounts.

    Lengths and warp fractions are spread evenly across their ranges
    (deterministically, given the seed), mimicking the archive's
    diversity at toy scale.
    """
    if n_datasets < 1:
        raise ValueError("need at least one dataset")
    lo_n, hi_n = length_range
    lo_w, hi_w = warp_range
    if lo_n < 16 or hi_n < lo_n:
        raise ValueError("invalid length range")
    if not (0.0 <= lo_w <= hi_w <= 0.5):
        raise ValueError("invalid warp range")
    rng = random.Random(seed)

    entries: List[ArchiveEntry] = []
    for k in range(n_datasets):
        frac = k / max(1, n_datasets - 1)
        length = int(round(lo_n + frac * (hi_n - lo_n)))
        warp = lo_w + frac * (hi_w - lo_w)
        data = gesture_dataset(
            n_classes=classes,
            per_class=per_class,
            length=length,
            warp_fraction=warp,
            noise_sigma=0.15,
            seed=rng.randrange(2**31),
            name=f"Synthetic{k:02d}",
        )
        entries.append(ArchiveEntry(dataset=data, true_warp_fraction=warp))
    return entries
