"""Reading and writing the UCR archive's on-disk format.

The UCR Time Series Classification Archive distributes each dataset as
``<Name>_TRAIN.tsv`` / ``<Name>_TEST.tsv``: one series per line, the
class label in the first tab-separated column, samples in the rest.
This environment is offline, so the experiments run on synthetic
stand-ins -- but a downstream user holding the real archive can load it
through these functions and run every classifier, search and benchmark
in the package on the genuine data the paper used.

Missing values (variable-length datasets pad with ``NaN``) are trimmed
from the tail on request, mirroring common archive practice.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import List, Sequence, Tuple, Union

from .base import TimeSeriesDataset, as_dataset

PathLike = Union[str, Path]


def parse_ucr_line(
    line: str, trim_nan_tail: bool = True,
) -> Tuple[str, List[float]]:
    """Parse one archive line into ``(label, samples)``.

    The label is kept as a string (archive labels are ints or floats
    depending on the dataset; string form round-trips exactly).

    >>> parse_ucr_line("2\\t0.5\\t1.5")
    ('2', [0.5, 1.5])
    """
    fields = line.rstrip("\n").split("\t")
    if len(fields) < 2:
        raise ValueError(
            "a UCR line needs a label and at least one sample"
        )
    label = fields[0].strip()
    if not label:
        raise ValueError("empty class label")
    try:
        samples = [float(v) for v in fields[1:]]
    except ValueError as exc:
        raise ValueError(f"non-numeric sample in line: {exc}") from None
    if trim_nan_tail:
        while samples and math.isnan(samples[-1]):
            samples.pop()
        if not samples:
            raise ValueError("series is all-NaN")
    if any(math.isnan(v) for v in samples):
        raise ValueError(
            "NaN inside the series body (only tail padding is trimmed)"
        )
    return label, samples


def load_ucr_tsv(
    path: PathLike,
    name: str = "",
    trim_nan_tail: bool = True,
    pad_to_longest: bool = False,
) -> TimeSeriesDataset:
    """Load one ``*_TRAIN.tsv`` / ``*_TEST.tsv`` archive file.

    Parameters
    ----------
    path:
        The TSV file.
    name:
        Dataset name for reports (defaults to the file stem).
    trim_nan_tail:
        Strip the archive's NaN padding from variable-length series.
    pad_to_longest:
        After trimming, re-pad shorter series with their own final
        value up to the longest length (the container requires equal
        lengths; last-value padding is DTW-neutral at the boundary).
        Without this flag a ragged file raises.

    Returns
    -------
    TimeSeriesDataset
    """
    path = Path(path)
    labels: List[str] = []
    series: List[List[float]] = []
    with open(path) as f:
        for lineno, line in enumerate(f, start=1):
            if not line.strip():
                continue
            try:
                label, samples = parse_ucr_line(
                    line, trim_nan_tail=trim_nan_tail
                )
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from None
            labels.append(label)
            series.append(samples)
    if not series:
        raise ValueError(f"{path}: no series found")

    lengths = {len(s) for s in series}
    if len(lengths) > 1:
        if not pad_to_longest:
            raise ValueError(
                f"{path}: variable lengths {sorted(lengths)}; pass "
                "pad_to_longest=True to load"
            )
        longest = max(lengths)
        series = [s + [s[-1]] * (longest - len(s)) for s in series]
    return as_dataset(name or path.stem, series, labels)


def load_ucr_dataset(
    directory: PathLike, name: str,
    trim_nan_tail: bool = True, pad_to_longest: bool = False,
) -> Tuple[TimeSeriesDataset, TimeSeriesDataset]:
    """Load a dataset's archive-layout train/test pair.

    Expects ``<directory>/<name>/<name>_TRAIN.tsv`` and ``..._TEST.tsv``
    (the archive's directory convention).
    """
    root = Path(directory) / name
    train = load_ucr_tsv(
        root / f"{name}_TRAIN.tsv", name=f"{name}[train]",
        trim_nan_tail=trim_nan_tail, pad_to_longest=pad_to_longest,
    )
    test = load_ucr_tsv(
        root / f"{name}_TEST.tsv", name=f"{name}[test]",
        trim_nan_tail=trim_nan_tail, pad_to_longest=pad_to_longest,
    )
    return train, test


def save_ucr_tsv(dataset: TimeSeriesDataset, path: PathLike) -> None:
    """Write a dataset in archive format (inverse of :func:`load_ucr_tsv`).

    Lets the synthetic generators be exported for use by other DTW
    tools, and round-trips exactly (labels as strings, samples as
    ``repr`` floats).
    """
    path = Path(path)
    with open(path, "w") as f:
        for label, series in zip(dataset.labels, dataset.series):
            fields = [str(label)] + [repr(float(v)) for v in series]
            f.write("\t".join(fields) + "\n")
