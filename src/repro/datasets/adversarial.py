"""The Appendix A adversarial pair that defeats FastDTW.

The paper's Fig. 7/8 example exploits FastDTW's core assumption: that
the PAA-coarsened series warps the same way as the raw series.  The
construction here realises the paper's recipe directly:

* Each series carries a **dominant feature** that vanishes under
  averaging -- a zero-mean *doublet* (one sample up, the next down).
  Aligned to even sample boundaries, a doublet PAA-averages to exactly
  zero, so it is invisible at every coarsened resolution.
* Each series also carries a **tiny but wide bump** that survives
  averaging.
* Between series A and B the doublet shifts **right** by more than
  FastDTW's radius, while the bump shifts **left**: the only feature
  the coarse levels can see warps in the *opposite direction* to the
  feature that matters.

Full DTW, free to warp both ways, aligns both features and reports a
tiny distance.  FastDTW's coarse pass commits to the bump's wrong-way
corridor; at full resolution the doublets sit outside the radius-``r``
window, cannot be matched, and the approximate distance explodes --
the paper reports an error of 156,100% for ``radius = 20``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from .warping import add_noise, gaussian_bump


@dataclass(frozen=True)
class AdversarialTriple:
    """The three series of the paper's Table 2 / Fig. 7.

    ``a`` and ``b`` are the adversarial pair (nearly identical under
    Full DTW, far apart under FastDTW); ``c`` is a genuinely different
    third series whose distances FastDTW approximates well, so the two
    dendrograms differ only through the A-B edge.
    """

    a: List[float]
    b: List[float]
    c: List[float]
    doublet_a: int
    doublet_b: int
    bump_a: int
    bump_b: int

    @property
    def length(self) -> int:
        return len(self.a)

    @property
    def doublet_shift(self) -> int:
        """Rightward shift of the dominant doublet from A to B."""
        return self.doublet_b - self.doublet_a

    @property
    def bump_shift(self) -> int:
        """Leftward (negative) shift of the decoy bump from A to B."""
        return self.bump_b - self.bump_a

    def series(self) -> List[List[float]]:
        """``[a, b, c]`` for distance-matrix builders."""
        return [self.a, self.b, self.c]


def _with_doublet(base: List[float], position: int, height: float) -> None:
    base[position] += height
    base[position + 1] -= height


def adversarial_pair(
    length: int = 256,
    doublet_a: int = 64,
    shift: int = 32,
    bump_a: int = 176,
    doublet_height: float = 3.0,
    bump_height: float = 0.6,
    bump_width: float = 14.0,
    noise_sigma: float = 0.005,
    seed: int = 0,
) -> AdversarialTriple:
    """Build the adversarial triple.

    Parameters
    ----------
    length:
        Series length (a power of two keeps halving exact).
    doublet_a:
        Even start index of A's doublet; B's sits at
        ``doublet_a + shift``.
    shift:
        Even, positive doublet shift.  FastDTW with
        ``radius < shift`` cannot recover the alignment
        (``radius = 20`` against the default ``shift = 32`` reproduces
        the paper's failure).
    bump_a:
        Centre of A's decoy bump; B's sits at ``bump_a - shift``.
    doublet_height, bump_height, bump_width:
        Feature scales: the doublet dominates the raw distance, the
        bump dominates every coarsened distance.
    noise_sigma:
        Small measurement noise (makes the Full DTW distance a small
        non-zero number, as in the paper's 0.020).
    seed:
        Determinism.

    Raises
    ------
    ValueError
        If the geometry is inconsistent (odd offsets, features
        overlapping or out of bounds).
    """
    if length < 64:
        raise ValueError("length must be at least 64")
    if doublet_a % 2 or shift % 2 or shift <= 0:
        raise ValueError(
            "doublet position and shift must be even (so the doublet "
            "PAA-averages to exactly zero) and shift positive"
        )
    doublet_b = doublet_a + shift
    bump_b = bump_a - shift
    if not (0 < doublet_a and doublet_b + 1 < length):
        raise ValueError("doublets out of bounds")
    if not (0 < bump_b < bump_a < length):
        raise ValueError("bumps out of bounds")
    if doublet_b + 2 >= bump_b - 2 * bump_width:
        raise ValueError("doublet and bump regions overlap")

    rng = random.Random(seed)

    def build(doublet_pos: int, bump_pos: int) -> List[float]:
        base = [0.0] * length
        for i, v in enumerate(
            gaussian_bump(length, bump_pos, bump_width, bump_height)
        ):
            base[i] += v
        _with_doublet(base, doublet_pos, doublet_height)
        return add_noise(base, noise_sigma, rng)

    a = build(doublet_a, bump_a)
    b = build(doublet_b, bump_b)

    # C: an honestly different series -- a broad plateau the pair lacks.
    # Scaled so that dtw(A, C) and dtw(B, C) land *between* the tiny
    # exact A-B distance and FastDTW's inflated A-B distance, which is
    # what makes the two dendrograms disagree (Fig. 7).
    c = [0.0] * length
    for i, v in enumerate(
        gaussian_bump(length, length // 2, length * 0.08, 0.7)
    ):
        c[i] += v
    c = add_noise(c, noise_sigma, rng)

    return AdversarialTriple(
        a=a, b=b, c=c,
        doublet_a=doublet_a, doublet_b=doublet_b,
        bump_a=bump_a, bump_b=bump_b,
    )


def deviation_at_row(path, row: int) -> float:
    """Mean signed deviation ``j - i`` of ``path`` over lattice row ``row``.

    Positive means the path matches ``x[row]`` against *later* samples
    of ``y``.  The Fig. 8 analysis compares this at the doublet row for
    the exact path (positive: follows the doublet's rightward shift)
    and for FastDTW's coarse path projected up (negative: follows the
    bump's leftward shift) -- the "wrong-way warping".
    """
    devs = [j - i for i, j in path if i == row]
    if not devs:
        raise ValueError(f"path has no cell on row {row}")
    return sum(devs) / len(devs)
