"""Synthetic music-alignment workload (the paper's Case B).

Section 3.2 aligns a four-minute studio recording with a live
rendition: chroma-style features at 100 Hz give ``N = 24,000``, and a
generous +-2 s performance drift gives ``w = 0.83%``.  The generator
produces a note-level energy profile (a piecewise-constant "score"
smoothed at note boundaries) and a live rendition that is a
bounded-drift time warp of it plus performance noise, so the pair is
alignable by ``cDTW_{0.83}`` by construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from ..preprocess.normalize import znorm
from .warping import add_noise, warp_series


@dataclass(frozen=True)
class MusicPair:
    """A studio/live pair with its drift bound.

    ``window_fraction`` is the cDTW window that provably suffices to
    align the pair (``max_drift_samples / length``) -- the experiment's
    ``w = 0.0083``.
    """

    studio: List[float]
    live: List[float]
    rate_hz: int
    max_drift_seconds: float

    @property
    def length(self) -> int:
        return len(self.studio)

    @property
    def max_drift_samples(self) -> float:
        return self.max_drift_seconds * self.rate_hz

    @property
    def window_fraction(self) -> float:
        return self.max_drift_samples / self.length


def chroma_profile(
    length: int, rng: random.Random, mean_note_seconds: float = 0.5,
    rate_hz: int = 100,
) -> List[float]:
    """A note-level energy profile: levels that change at note onsets.

    Note durations are exponential around ``mean_note_seconds``; levels
    jump at onsets and decay slightly within a note, which gives DTW
    actual structure to align (a constant series would make every
    alignment equal).
    """
    if length < 2:
        raise ValueError("length must be at least 2")
    out: List[float] = []
    pos = 0
    while pos < length:
        dur = max(2, int(rng.expovariate(1.0 / (mean_note_seconds * rate_hz))))
        level = rng.uniform(0.2, 1.0)
        for k in range(min(dur, length - pos)):
            out.append(level * (1.0 - 0.1 * k / dur))
        pos += dur
    return out[:length]


def studio_and_live(
    seconds: float = 240.0,
    rate_hz: int = 100,
    max_drift_seconds: float = 2.0,
    noise_sigma: float = 0.02,
    seed: int = 0,
) -> MusicPair:
    """The Case B pair: a 4-minute song and a +-2 s-drifting live take.

    Defaults reproduce the paper exactly: ``N = 24,000`` samples and
    ``window_fraction = 0.8333%`` (the paper rounds to 0.83%).
    """
    if seconds <= 0 or rate_hz < 1:
        raise ValueError("need positive duration and rate")
    if max_drift_seconds < 0:
        raise ValueError("drift must be non-negative")
    length = int(round(seconds * rate_hz))
    rng = random.Random(seed)
    studio = chroma_profile(length, rng, rate_hz=rate_hz)
    live = warp_series(studio, max_drift_seconds * rate_hz, rng, knots=10)
    live = add_noise(live, noise_sigma, rng)
    return MusicPair(
        studio=znorm(studio),
        live=znorm(live),
        rate_hz=rate_hz,
        max_drift_seconds=max_drift_seconds,
    )
