"""Per-dataset metadata of the 128-dataset UCR 2018 archive (Fig. 2).

The paper's Fig. 2 histograms summarise, across the public UCR Time
Series Classification Archive (Dau et al., 2018), (a) the optimal
warping window ``w`` found by brute-force leave-one-out search and
(b) the series lengths -- establishing that most series are shorter
than 1,000 samples and ``w`` is rarely above 10%.

**Provenance / substitution note** (see DESIGN.md §2): the archive
itself is public but not bundled in this offline environment.  The
table below is a transcription of its published summary: dataset
*names*, *lengths* and split sizes follow the archive's tables;
``best_w`` values are transcribed from the published search results
and should be treated as approximate per-entry (the aggregate
distributions, which are all Fig. 2 uses, are preserved -- in
particular UWaveGestureLibraryAll's ``best_w = 4`` and the maximum
length 2,844 for Rock, both quoted in the paper's text).  Datasets the
archive lists as variable-length carry a representative length and
``variable_length=True``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class UcrDataset:
    """Summary row for one archive dataset."""

    name: str
    length: int
    train_size: int
    test_size: int
    classes: int
    best_w: int  # optimal warping window, percent of length
    variable_length: bool = False

    def case(self, long_threshold: int = 1000, wide_threshold: int = 20) -> str:
        """This dataset's quadrant in the paper's Table 1 (A/B/C/D)."""
        long_n = self.length >= long_threshold
        wide_w = self.best_w >= wide_threshold
        if not long_n and not wide_w:
            return "A"
        if long_n and not wide_w:
            return "B"
        if not long_n and wide_w:
            return "C"
        return "D"


def _d(name, length, train, test, classes, w, var=False):
    return UcrDataset(name, length, train, test, classes, w, var)


#: The 128 datasets of the 2018 archive (see module docstring for
#: provenance).  Ordered alphabetically as in the archive.
UCR_2018: Tuple[UcrDataset, ...] = (
    _d("ACSF1", 1460, 100, 100, 10, 4),
    _d("Adiac", 176, 390, 391, 37, 3),
    _d("AllGestureWiimoteX", 500, 300, 700, 10, 14, var=True),
    _d("AllGestureWiimoteY", 500, 300, 700, 10, 9, var=True),
    _d("AllGestureWiimoteZ", 500, 300, 700, 10, 11, var=True),
    _d("ArrowHead", 251, 36, 175, 3, 0),
    _d("BME", 128, 30, 150, 3, 4),
    _d("Beef", 470, 30, 30, 5, 0),
    _d("BeetleFly", 512, 20, 20, 2, 7),
    _d("BirdChicken", 512, 20, 20, 2, 6),
    _d("CBF", 128, 30, 900, 3, 11),
    _d("Car", 577, 60, 60, 4, 1),
    _d("Chinatown", 24, 20, 343, 2, 0),
    _d("ChlorineConcentration", 166, 467, 3840, 3, 0),
    _d("CinCECGTorso", 1639, 40, 1380, 4, 1),
    _d("Coffee", 286, 28, 28, 2, 0),
    _d("Computers", 720, 250, 250, 2, 12),
    _d("CricketX", 300, 390, 390, 12, 10),
    _d("CricketY", 300, 390, 390, 12, 17),
    _d("CricketZ", 300, 390, 390, 12, 5),
    _d("Crop", 46, 7200, 16800, 24, 0),
    _d("DiatomSizeReduction", 345, 16, 306, 4, 0),
    _d("DistalPhalanxOutlineAgeGroup", 80, 400, 139, 3, 0),
    _d("DistalPhalanxOutlineCorrect", 80, 600, 276, 2, 1),
    _d("DistalPhalanxTW", 80, 400, 139, 6, 0),
    _d("DodgerLoopDay", 288, 78, 80, 7, 0),
    _d("DodgerLoopGame", 288, 20, 138, 2, 6),
    _d("DodgerLoopWeekend", 288, 20, 138, 2, 3),
    _d("ECG200", 96, 100, 100, 2, 0),
    _d("ECG5000", 140, 500, 4500, 5, 1),
    _d("ECGFiveDays", 136, 23, 861, 2, 0),
    _d("EOGHorizontalSignal", 1250, 362, 362, 12, 3),
    _d("EOGVerticalSignal", 1250, 362, 362, 12, 4),
    _d("Earthquakes", 512, 322, 139, 2, 6),
    _d("ElectricDevices", 96, 8926, 7711, 7, 14),
    _d("EthanolLevel", 1751, 504, 500, 4, 1),
    _d("FaceAll", 131, 560, 1690, 14, 3),
    _d("FaceFour", 350, 24, 88, 4, 2),
    _d("FacesUCR", 131, 200, 2050, 14, 12),
    _d("FiftyWords", 270, 450, 455, 50, 6),
    _d("Fish", 463, 175, 175, 7, 4),
    _d("FordA", 500, 3601, 1320, 2, 1),
    _d("FordB", 500, 3636, 810, 2, 1),
    _d("FreezerRegularTrain", 301, 150, 2850, 2, 1),
    _d("FreezerSmallTrain", 301, 28, 2850, 2, 4),
    _d("Fungi", 201, 18, 186, 18, 0),
    _d("GestureMidAirD1", 360, 208, 130, 26, 5, var=True),
    _d("GestureMidAirD2", 360, 208, 130, 26, 6, var=True),
    _d("GestureMidAirD3", 360, 208, 130, 26, 1, var=True),
    _d("GesturePebbleZ1", 455, 132, 172, 6, 2, var=True),
    _d("GesturePebbleZ2", 455, 146, 158, 6, 6, var=True),
    _d("GunPoint", 150, 50, 150, 2, 0),
    _d("GunPointAgeSpan", 150, 135, 316, 2, 0),
    _d("GunPointMaleVersusFemale", 150, 135, 316, 2, 0),
    _d("GunPointOldVersusYoung", 150, 136, 315, 2, 0),
    _d("Ham", 431, 109, 105, 2, 0),
    _d("HandOutlines", 2709, 1000, 370, 2, 1),
    _d("Haptics", 1092, 155, 308, 5, 2),
    _d("Herring", 512, 64, 64, 2, 5),
    _d("HouseTwenty", 2000, 40, 119, 2, 33),
    _d("InlineSkate", 1882, 100, 550, 7, 14),
    _d("InsectEPGRegularTrain", 601, 62, 249, 3, 11),
    _d("InsectEPGSmallTrain", 601, 17, 249, 3, 13),
    _d("InsectWingbeatSound", 256, 220, 1980, 11, 1),
    _d("ItalyPowerDemand", 24, 67, 1029, 2, 0),
    _d("LargeKitchenAppliances", 720, 375, 375, 3, 94),
    _d("Lightning2", 637, 60, 61, 2, 6),
    _d("Lightning7", 319, 70, 73, 7, 5),
    _d("Mallat", 1024, 55, 2345, 8, 0),
    _d("Meat", 448, 60, 60, 3, 0),
    _d("MedicalImages", 99, 381, 760, 10, 20),
    _d("MelbournePedestrian", 24, 1194, 2439, 10, 2),
    _d("MiddlePhalanxOutlineAgeGroup", 80, 400, 154, 3, 0),
    _d("MiddlePhalanxOutlineCorrect", 80, 600, 291, 2, 0),
    _d("MiddlePhalanxTW", 80, 399, 154, 6, 3),
    _d("MixedShapesRegularTrain", 1024, 500, 2425, 5, 4),
    _d("MixedShapesSmallTrain", 1024, 100, 2425, 5, 6),
    _d("MoteStrain", 84, 20, 1252, 2, 1),
    _d("NonInvasiveFetalECGThorax1", 750, 1800, 1965, 42, 1),
    _d("NonInvasiveFetalECGThorax2", 750, 1800, 1965, 42, 1),
    _d("OSULeaf", 427, 200, 242, 6, 7),
    _d("OliveOil", 570, 30, 30, 4, 0),
    _d("PLAID", 1345, 537, 537, 11, 3, var=True),
    _d("PhalangesOutlinesCorrect", 80, 1800, 858, 2, 0),
    _d("Phoneme", 1024, 214, 1896, 39, 14),
    _d("PickupGestureWiimoteZ", 361, 50, 50, 10, 17, var=True),
    _d("PigAirwayPressure", 2000, 104, 208, 52, 1),
    _d("PigArtPressure", 2000, 104, 208, 52, 1),
    _d("PigCVP", 2000, 104, 208, 52, 1),
    _d("Plane", 144, 105, 105, 7, 6),
    _d("PowerCons", 144, 180, 180, 2, 3),
    _d("ProximalPhalanxOutlineAgeGroup", 80, 400, 205, 3, 0),
    _d("ProximalPhalanxOutlineCorrect", 80, 600, 291, 2, 0),
    _d("ProximalPhalanxTW", 80, 400, 205, 6, 0),
    _d("RefrigerationDevices", 720, 375, 375, 3, 8),
    _d("Rock", 2844, 20, 50, 4, 0),
    _d("ScreenType", 720, 375, 375, 3, 17),
    _d("SemgHandGenderCh2", 1500, 300, 600, 2, 1),
    _d("SemgHandMovementCh2", 1500, 450, 450, 6, 1),
    _d("SemgHandSubjectCh2", 1500, 450, 450, 5, 2),
    _d("ShakeGestureWiimoteZ", 385, 50, 50, 10, 6, var=True),
    _d("ShapeletSim", 500, 20, 180, 2, 3),
    _d("ShapesAll", 512, 600, 600, 60, 4),
    _d("SmallKitchenAppliances", 720, 375, 375, 3, 15),
    _d("SmoothSubspace", 15, 150, 150, 3, 7),
    _d("SonyAIBORobotSurface1", 70, 20, 601, 2, 0),
    _d("SonyAIBORobotSurface2", 65, 27, 953, 2, 0),
    _d("StarLightCurves", 1024, 1000, 8236, 3, 16),
    _d("Strawberry", 235, 613, 370, 2, 0),
    _d("SwedishLeaf", 128, 500, 625, 15, 2),
    _d("Symbols", 398, 25, 995, 6, 8),
    _d("SyntheticControl", 60, 300, 300, 6, 6),
    _d("ToeSegmentation1", 277, 40, 228, 2, 8),
    _d("ToeSegmentation2", 343, 36, 130, 2, 5),
    _d("Trace", 275, 100, 100, 4, 3),
    _d("TwoLeadECG", 82, 23, 1139, 2, 4),
    _d("TwoPatterns", 128, 1000, 4000, 4, 4),
    _d("UMD", 150, 36, 144, 3, 7),
    _d("UWaveGestureLibraryAll", 945, 896, 3582, 8, 4),
    _d("UWaveGestureLibraryX", 315, 896, 3582, 8, 4),
    _d("UWaveGestureLibraryY", 315, 896, 3582, 8, 4),
    _d("UWaveGestureLibraryZ", 315, 896, 3582, 8, 6),
    _d("Wafer", 152, 1000, 6164, 2, 1),
    _d("Wine", 234, 57, 54, 2, 0),
    _d("WordSynonyms", 270, 267, 638, 25, 9),
    _d("Worms", 900, 181, 77, 5, 9),
    _d("WormsTwoClass", 900, 181, 77, 2, 7),
    _d("Yoga", 426, 300, 3000, 2, 7),
)

#: The dataset the paper's Fig. 1 and Section 3.1 analyse in detail,
#: with the error rates quoted there.
UWAVE_ALL = "UWaveGestureLibraryAll"
UWAVE_ERROR_EUCLIDEAN = 0.052   # cDTW_0
UWAVE_ERROR_BEST_W = 0.034      # cDTW_4
UWAVE_ERROR_FULL_DTW = 0.108    # cDTW_100


def by_name(name: str) -> UcrDataset:
    """Look up one archive dataset by exact name."""
    for d in UCR_2018:
        if d.name == name:
            return d
    raise KeyError(f"no UCR 2018 dataset named {name!r}")


def histogram(values: Sequence[float], edges: Sequence[float]) -> List[int]:
    """Counts of ``values`` per half-open bin ``[edges[i], edges[i+1])``.

    The final bin is closed on the right, so the maximum value is
    counted.  Values outside the edges are ignored.
    """
    if len(edges) < 2 or any(
        b <= a for a, b in zip(edges, edges[1:])
    ):
        raise ValueError("edges must be strictly increasing, length >= 2")
    counts = [0] * (len(edges) - 1)
    for v in values:
        for i in range(len(counts)):
            last = i == len(counts) - 1
            if edges[i] <= v < edges[i + 1] or (last and v == edges[i + 1]):
                counts[i] += 1
                break
    return counts


def best_w_histogram(
    edges: Sequence[float] = tuple(range(0, 105, 5)),
) -> List[int]:
    """Fig. 2a: distribution of optimal ``w`` over the 128 datasets."""
    return histogram([d.best_w for d in UCR_2018], edges)


def length_histogram(
    edges: Sequence[float] = tuple(range(0, 3250, 250)),
) -> List[int]:
    """Fig. 2b: distribution of series lengths over the 128 datasets."""
    return histogram([d.length for d in UCR_2018], edges)


def fraction_shorter_than(threshold: int = 1000) -> float:
    """Fraction of archive datasets with length below ``threshold``."""
    return sum(1 for d in UCR_2018 if d.length < threshold) / len(UCR_2018)


def fraction_best_w_at_most(threshold: int = 10) -> float:
    """Fraction of archive datasets with optimal ``w <= threshold`` %."""
    return sum(1 for d in UCR_2018 if d.best_w <= threshold) / len(UCR_2018)


def case_census(
    long_threshold: int = 1000, wide_threshold: int = 20,
) -> Dict[str, int]:
    """How many archive datasets fall in each Table 1 quadrant."""
    census = {"A": 0, "B": 0, "C": 0, "D": 0}
    for d in UCR_2018:
        census[d.case(long_threshold, wide_threshold)] += 1
    return census
