"""Preprocessing: normalisation and subsequence extraction."""

from .normalize import RunningStats, znorm, znorm_subsequence
from .sliding import sliding_windows, subsequence_count

__all__ = [
    "RunningStats",
    "sliding_windows",
    "subsequence_count",
    "znorm",
    "znorm_subsequence",
]
