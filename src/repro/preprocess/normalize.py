"""Z-normalisation, batch and just-in-time.

Comparing time series under DTW is only meaningful after z-normalising
each series (or subsequence) to zero mean and unit variance.  For
subsequence search over a long stream, re-normalising every window from
scratch is O(N*m); the UCR suite's "just-in-time normalisation" keeps
running sums so each window's mean/std comes from O(1) updates.  The
paper's Section 3.4 cites exactly this family of tricks as one reason
repeated-use cDTW beats FastDTW by orders of magnitude.
"""

from __future__ import annotations

from math import sqrt
from typing import List, Sequence


def znorm(x: Sequence[float], epsilon: float = 1e-12) -> List[float]:
    """Z-normalise a series to zero mean, unit standard deviation.

    A series whose standard deviation is below ``epsilon`` (i.e.
    constant) is returned as all zeros rather than dividing by ~0,
    matching common archive practice.

    >>> znorm([1.0, 2.0, 3.0])
    [-1.224744871391589, 0.0, 1.224744871391589]
    """
    n = len(x)
    if n == 0:
        raise ValueError("cannot normalise an empty series")
    mean = sum(x) / n
    var = sum((v - mean) ** 2 for v in x) / n
    std = sqrt(var)
    if std < epsilon:
        return [0.0] * n
    return [(v - mean) / std for v in x]


def znorm_nd(
    x: Sequence[Sequence[float]], epsilon: float = 1e-12,
) -> List[tuple]:
    """Z-normalise a multivariate series per channel.

    Each channel of a ``(length, dims)`` series is normalised
    independently with :func:`znorm` (the convention of multivariate
    archives like UWave: per-axis statistics), then the channels are
    recombined sample-major.

    >>> znorm_nd([(1.0, 30.0), (2.0, 20.0), (3.0, 10.0)])[0]
    (-1.224744871391589, 1.224744871391589)
    """
    n = len(x)
    if n == 0:
        raise ValueError("cannot normalise an empty series")
    dims = len(x[0])
    channels = [
        znorm([float(v[k]) for v in x], epsilon=epsilon)
        for k in range(dims)
    ]
    return [tuple(c[i] for c in channels) for i in range(n)]


class RunningStats:
    """Streaming mean/std over a sliding window of fixed length.

    Feed samples with :meth:`push`; once ``len(window)`` samples have
    arrived, :meth:`mean` and :meth:`std` describe the most recent
    window in O(1) per sample (just-in-time normalisation).

    Uses the direct sum / sum-of-squares formulation of the UCR suite;
    for the value ranges of z-normalisable data this is numerically
    adequate and is what the original code does.
    """

    def __init__(self, window: int):
        if window < 1:
            raise ValueError("window length must be positive")
        self.window = window
        self._buf: List[float] = []
        self._head = 0
        self._sum = 0.0
        self._sumsq = 0.0
        self._count = 0

    def push(self, value: float) -> None:
        """Add the next stream sample, evicting the oldest if full."""
        value = float(value)
        if len(self._buf) < self.window:
            self._buf.append(value)
        else:
            old = self._buf[self._head]
            self._sum -= old
            self._sumsq -= old * old
            self._buf[self._head] = value
            self._head = (self._head + 1) % self.window
        self._sum += value
        self._sumsq += value * value
        self._count += 1

    @property
    def full(self) -> bool:
        """Whether a complete window has been observed."""
        return len(self._buf) == self.window

    def mean(self) -> float:
        """Mean of the current window (requires :attr:`full`)."""
        self._require_full()
        return self._sum / self.window

    def std(self, epsilon: float = 1e-12) -> float:
        """Population std of the current window, floored at ``epsilon``."""
        self._require_full()
        mean = self._sum / self.window
        var = self._sumsq / self.window - mean * mean
        if var < 0.0:  # numerical noise on constant windows
            var = 0.0
        return max(sqrt(var), epsilon)

    def _require_full(self) -> None:
        if not self.full:
            raise ValueError(
                f"window not yet full ({len(self._buf)}/{self.window} samples)"
            )


def znorm_subsequence(
    stream: Sequence[float], start: int, length: int,
    epsilon: float = 1e-12,
) -> List[float]:
    """Z-normalised copy of ``stream[start:start+length]``.

    Convenience used by the subsequence-search tests to validate the
    streaming statistics against direct computation.
    """
    if start < 0 or start + length > len(stream):
        raise ValueError("subsequence out of bounds")
    return znorm(stream[start:start + length], epsilon=epsilon)
