"""Sliding-window subsequence extraction over long streams."""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple


def subsequence_count(stream_length: int, window: int, step: int = 1) -> int:
    """How many windows :func:`sliding_windows` will yield.

    >>> subsequence_count(10, 4)
    7
    >>> subsequence_count(10, 4, step=3)
    3
    """
    if window < 1 or step < 1:
        raise ValueError("window and step must be positive")
    if stream_length < window:
        return 0
    return (stream_length - window) // step + 1


def sliding_windows(
    stream: Sequence[float], window: int, step: int = 1,
) -> Iterator[Tuple[int, List[float]]]:
    """Yield ``(start, subsequence)`` pairs over ``stream``.

    Windows are copies, so callers may normalise them in place.  An
    empty iterator results when the stream is shorter than ``window``.

    >>> [(s, w) for s, w in sliding_windows([1, 2, 3, 4], 3)]
    [(0, [1, 2, 3]), (1, [2, 3, 4])]
    """
    if window < 1 or step < 1:
        raise ValueError("window and step must be positive")
    for start in range(0, len(stream) - window + 1, step):
        yield start, list(stream[start:start + window])
