"""Footnote 2: the trillion-comparison extrapolation.

The paper measures FastDTW_10 at 0.1845 ms per comparison for
``N = 128`` and extrapolates: 10^12 comparisons would take 5.8 years --
against the UCR suite's 1.4 *days* for an exact trillion-point cDTW_5
search on 2012 hardware.  This experiment measures our FastDTW_10 and
cDTW_5 at ``N = 128``, projects both to a trillion comparisons, and
reports the (enormous) gap.  Absolute times differ from the paper's
compiled implementations; the years-vs-days *shape* is the claim.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.cdtw import cdtw
from ..core.variants import resolve_fastdtw
from ..datasets.random_walk import random_walk
from ..timing.timer import Timing, extrapolate, seconds_to_human, time_callable
from .report import format_table


@dataclass(frozen=True)
class Footnote2Config:
    """The footnote's parameters."""

    length: int = 128
    radius: int = 10
    window: float = 0.05  # the UCR suite's cDTW_5 query setting
    comparisons: int = 10**12
    repeats: int = 20     # paper: averaged over a million comparisons
    fastdtw_variant: str = "reference"
    seed: int = 0
    #: Timing summary used everywhere in the report.  ``"mean"`` is
    #: the paper's convention ("reporting the average"); a previous
    #: version extrapolated from the median while the table was
    #: captioned per the paper, mixing the two statistics.
    statistic: str = "mean"


DEFAULT = Footnote2Config()
PAPER_SCALE = Footnote2Config(repeats=1_000_000)


@dataclass(frozen=True)
class Footnote2Result:
    """Per-call timings and trillion-call projections."""

    config: Footnote2Config
    fastdtw_timing: Timing
    cdtw_timing: Timing

    @property
    def fastdtw_trillion_seconds(self) -> float:
        return extrapolate(
            self.fastdtw_timing.value(self.config.statistic),
            self.config.comparisons,
        )

    @property
    def cdtw_trillion_seconds(self) -> float:
        return extrapolate(
            self.cdtw_timing.value(self.config.statistic),
            self.config.comparisons,
        )

    def gap_factor(self) -> float:
        """How many times longer the FastDTW projection takes.

        Computed under the same statistic as the table and the
        extrapolations, so every number in the report is one summary.
        """
        stat = self.config.statistic
        return (
            self.fastdtw_timing.value(stat) / self.cdtw_timing.value(stat)
        )


def run(config: Footnote2Config = DEFAULT) -> Footnote2Result:
    """Time both algorithms at N = 128 on a random-walk pair."""
    x = random_walk(config.length, seed=config.seed)
    y = random_walk(config.length, seed=config.seed + 1)
    fastdtw_fn = resolve_fastdtw(config.fastdtw_variant)
    fast_t = time_callable(
        lambda: fastdtw_fn(x, y, radius=config.radius),
        repeats=config.repeats,
    )
    cdtw_t = time_callable(
        lambda: cdtw(x, y, window=config.window),
        repeats=config.repeats,
    )
    return Footnote2Result(config=config, fastdtw_timing=fast_t,
                           cdtw_timing=cdtw_t)


def format_report(result: Footnote2Result) -> str:
    """The footnote's arithmetic, with measured inputs."""
    cfg = result.config
    rows = (
        (f"FastDTW_{cfg.radius}",
         f"{result.fastdtw_timing.per_call_ms(cfg.statistic):.4f} ms",
         seconds_to_human(result.fastdtw_trillion_seconds)),
        (f"cDTW_{round(cfg.window * 100)}",
         f"{result.cdtw_timing.per_call_ms(cfg.statistic):.4f} ms",
         seconds_to_human(result.cdtw_trillion_seconds)),
    )
    table = format_table(
        ("algorithm", f"per call (N={cfg.length})",
         f"{cfg.comparisons:.0e} calls"),
        rows,
    )
    return (
        "Footnote 2 -- trillion-comparison projection\n" + table + "\n"
        f"FastDTW is {result.gap_factor():.1f}x slower per call "
        "(paper: 5.8 years vs 1.4 days, and the real UCR suite adds "
        "2-5 further orders of magnitude via lower bounds)"
    )


def main() -> None:  # pragma: no cover
    print(format_report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
