"""Plain-text rendering helpers shared by the experiment modules.

Every experiment prints paper-style rows to stdout; these helpers keep
that output consistent (fixed-width tables, ASCII bar charts for the
histogram figures, ms formatting that matches the paper's units).
"""

from __future__ import annotations

from typing import List, Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]],
) -> str:
    """A fixed-width table with a header rule.

    Cells are stringified; floats are shown with 4 significant digits.
    """
    if not headers:
        raise ValueError("need at least one column")

    def cell(v: object) -> str:
        if isinstance(v, float):
            return f"{v:.4g}"
        return str(v)

    str_rows = [[cell(v) for v in row] for row in rows]
    for r in str_rows:
        if len(r) != len(headers):
            raise ValueError("row width does not match headers")
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(s.rjust(w) for s, w in zip(row, widths))

    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in str_rows)
    return "\n".join(lines)


def format_bar_chart(
    labels: Sequence[str], counts: Sequence[int], width: int = 50,
) -> str:
    """Horizontal ASCII bar chart (the Fig. 2 histograms in text)."""
    if len(labels) != len(counts):
        raise ValueError("labels and counts must align")
    if not counts:
        raise ValueError("nothing to chart")
    peak = max(counts) or 1
    label_w = max(len(l) for l in labels)
    lines: List[str] = []
    for label, count in zip(labels, counts):
        bar = "#" * round(width * count / peak)
        lines.append(f"{label.rjust(label_w)} | {bar} {count}")
    return "\n".join(lines)


def ms(seconds: float) -> str:
    """Seconds rendered as the paper's milliseconds, e.g. ``45.6 ms``."""
    return f"{seconds * 1000:.1f} ms"


def ratio(slower: float, faster: float) -> str:
    """A speedup factor like ``5.2x`` (``inf`` guarded)."""
    if faster <= 0:
        return "inf"
    return f"{slower / faster:.1f}x"
