"""Extension of Section 4: when does FastDTW approximate badly?

The paper measures FastDTW's *speed* everywhere but its *accuracy*
only once (the adversarial pair), noting that a systematic treatment
"opens a pandora's box" and that no literature characterises when
FastDTW fails.  This extension experiment takes the obvious first
step the paper calls for: measure the approximation error
(Salvador & Chan's own metric) across radii on several workload
families --

* random walks (benign: smooth, coarsening-friendly),
* synthetic gestures (structured, moderate warping),
* fall pairs (extreme warping), and
* the adversarial family (features that vanish under coarsening),

reporting per-family mean/max error per radius.  Two shapes emerge:

* *benign* families (random walks, moderately-warped gestures)
  converge within a few percent by small radii;
* *long-range-warp* families stay catastrophically wrong until the
  radius covers the full feature shift: the adversarial pair (by
  construction) -- **and the paper's own Fig. 6 fall workload**, whose
  errors exceed 10,000% at every radius below the fall offset.  This
  quantifies the paper's aside that it "did not test to see if
  FastDTW_40 actually aligns the two falls": at the measured
  break-even it does not, so even in Case D the speed win buys a
  wrong answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

#: Families whose approximation error decays quickly with the radius.
BENIGN_FAMILIES = ("random_walk", "gesture")

#: Families needing the radius to cover a long-range feature shift.
LONG_RANGE_FAMILIES = ("fall", "adversarial")

from ..core.dtw import dtw
from ..core.error import approximation_error_percent
from ..core.fastdtw import fastdtw
from ..datasets.adversarial import adversarial_pair
from ..datasets.falls import fall_pair
from ..datasets.gestures import gesture_dataset
from ..datasets.random_walk import random_walk
from .report import format_table


@dataclass(frozen=True)
class ApproxQualityConfig:
    """Sweep shape."""

    radii: Tuple[int, ...] = (0, 1, 2, 5, 10, 20, 32)
    pairs_per_family: int = 4
    length: int = 256
    seed: int = 0


DEFAULT = ApproxQualityConfig()
PAPER_SCALE = ApproxQualityConfig(pairs_per_family=50)


@dataclass(frozen=True)
class FamilyErrors:
    """Error statistics for one family at one radius (percent)."""

    family: str
    radius: int
    mean: float
    worst: float


@dataclass(frozen=True)
class ApproxQualityResult:
    """Full error grid plus the derived safety statements."""

    config: ApproxQualityConfig
    errors: Tuple[FamilyErrors, ...]

    def at(self, family: str, radius: int) -> FamilyErrors:
        for e in self.errors:
            if e.family == family and e.radius == radius:
                return e
        raise KeyError((family, radius))

    def families(self) -> List[str]:
        seen: List[str] = []
        for e in self.errors:
            if e.family not in seen:
                seen.append(e.family)
        return seen

    def benign_families_converge(self, radius: int = 10,
                                 tolerance: float = 5.0) -> bool:
        """Mean error of the :data:`BENIGN_FAMILIES` below
        ``tolerance`` percent at the given radius."""
        return all(
            self.at(f, radius).mean <= tolerance
            for f in self.families() if f in BENIGN_FAMILIES
        )

    def long_range_families_stay_broken(self, radius: int = 10,
                                        floor: float = 1000.0) -> bool:
        """Worst error of every :data:`LONG_RANGE_FAMILIES` member
        still above ``floor`` percent at a radius where the benign
        families have long converged.

        The default probe radius is 10 -- the radius the original
        FastDTW paper presents as giving good accuracy.  (At larger
        radii the fall family starts to align for some seeds once the
        corridor covers the fall offset, which is the mechanism, not a
        contradiction.)
        """
        return all(
            self.at(f, radius).worst >= floor
            for f in self.families() if f in LONG_RANGE_FAMILIES
        )


def _family_pairs(
    config: ApproxQualityConfig,
) -> Dict[str, List[Tuple[Sequence[float], Sequence[float]]]]:
    n_pairs = config.pairs_per_family
    length = config.length
    seed = config.seed

    walks = [
        (random_walk(length, seed=seed + 2 * i),
         random_walk(length, seed=seed + 2 * i + 1))
        for i in range(n_pairs)
    ]

    data = gesture_dataset(
        n_classes=2, per_class=n_pairs, length=length,
        warp_fraction=0.05, seed=seed, name="aq",
    )
    gestures = [
        (list(data.series[2 * i]), list(data.series[2 * i + 1]))
        for i in range(n_pairs)
    ]

    falls = []
    for i in range(n_pairs):
        pair = fall_pair(length / 100.0, seed=seed + i)
        falls.append((pair.early, pair.late))

    adversarial = []
    for i in range(n_pairs):
        t = adversarial_pair(length=max(length, 128), seed=seed + i)
        adversarial.append((t.a, t.b))

    return {
        "random_walk": walks,
        "gesture": gestures,
        "fall": falls,
        "adversarial": adversarial,
    }


def run(config: ApproxQualityConfig = DEFAULT) -> ApproxQualityResult:
    """Measure the error grid."""
    families = _family_pairs(config)
    rows: List[FamilyErrors] = []
    for family, pairs in families.items():
        exacts = [dtw(x, y).distance for x, y in pairs]
        for radius in config.radii:
            errs = []
            for (x, y), exact in zip(pairs, exacts):
                approx = fastdtw(x, y, radius=radius).distance
                errs.append(approximation_error_percent(approx, exact))
            rows.append(FamilyErrors(
                family=family,
                radius=radius,
                mean=sum(errs) / len(errs),
                worst=max(errs),
            ))
    return ApproxQualityResult(config=config, errors=tuple(rows))


def format_report(result: ApproxQualityResult) -> str:
    """The error grid, one row per (family, radius)."""
    rows = [
        (e.family, e.radius, f"{e.mean:,.1f}%", f"{e.worst:,.1f}%")
        for e in result.errors
    ]
    table = format_table(
        ("family", "radius", "mean error", "worst error"), rows
    )
    return (
        "Approximation quality (extension of Section 4)\n" + table + "\n"
        "benign families (random walk, gesture) converge by r=10: "
        f"{'YES' if result.benign_families_converge() else 'NO'}; "
        "long-range-warp families (fall, adversarial) still broken "
        "at r=10: "
        f"{'YES' if result.long_range_families_stay_broken() else 'NO'}"
    )


def main() -> None:  # pragma: no cover
    print(format_report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
