"""Fig. 1: FastDTW vs cDTW on a UWave-scale gesture dataset (Case A).

The paper computes all 400,960 pairwise distances among the 896
training exemplars of ``UWaveGestureLibraryAll`` (length 945), sweeping
FastDTW's radius 0..20 against cDTW's window 0..20%, and finds the
*coarsest* FastDTW slower than cDTW at the archive-optimal ``w = 4``.

Here the same sweep runs on a synthetic UWave-like dataset (see
DESIGN.md §2); per-pair times are measured on a sample of pairs and
extrapolated to the paper's full 400,960 comparisons, which is valid
because comparisons are independent and identically sized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from ..core.cdtw import cdtw
from ..core.variants import resolve_fastdtw
from ..datasets.gestures import uwave_like
from ..timing.runner import SweepPoint, sweep
from .report import format_table, ms


@dataclass(frozen=True)
class Fig1Config:
    """Parameters of the Fig. 1 experiment."""

    per_class: int = 2           # 8 classes -> 16 exemplars
    max_pairs: int = 6           # timed comparisons per setting
    windows: Tuple[float, ...] = tuple(w / 100 for w in range(0, 21, 4))
    radii: Tuple[int, ...] = (0, 1, 2, 5, 10, 20)
    full_scale_pairs: int = 400_960  # the paper's (896 * 895) / 2
    fastdtw_variant: str = "reference"  # what the paper (and users) ran
    seed: int = 0


#: Laptop-sized defaults (minutes, not days).
DEFAULT = Fig1Config()

#: The paper's exact scale: 896 exemplars, every pair, every setting.
PAPER_SCALE = Fig1Config(
    per_class=112,
    max_pairs=0,
    windows=tuple(w / 100 for w in range(0, 21)),
    radii=tuple(range(0, 21)),
)


@dataclass(frozen=True)
class Fig1Result:
    """Both sweeps plus the comparisons the paper's text highlights."""

    config: Fig1Config
    series_length: int
    cdtw_points: Tuple[SweepPoint, ...]
    fastdtw_points: Tuple[SweepPoint, ...]

    def cdtw_at(self, window: float) -> SweepPoint:
        """The sweep point for a given window fraction."""
        for p in self.cdtw_points:
            if abs(p.param - window) < 1e-9:
                return p
        raise KeyError(f"window {window} not in sweep")

    def fastdtw_at(self, radius: int) -> SweepPoint:
        """The sweep point for a given radius."""
        for p in self.fastdtw_points:
            if p.param == radius:
                return p
        raise KeyError(f"radius {radius} not in sweep")

    def headline_holds(self) -> bool:
        """The paper's literal Fig. 1 claim on this run's measurements:

        cDTW at the archive-optimal ``w = 4%`` is faster than the
        *coarsest* FastDTW in the sweep (radius 0).  On our hardware
        this specific point is borderline (within ~1.3x either way);
        see :meth:`dominates_from_radius` for the robust form.
        """
        return (
            self.cdtw_at(0.04).per_pair_seconds
            < self.fastdtw_at(min(p.param for p in self.fastdtw_points))
            .per_pair_seconds
        )

    def dominates_from_radius(self) -> int:
        """Smallest swept radius from which cDTW_4 wins every setting.

        The paper's robust shape: FastDTW needs ``r >= 10`` for a
        serviceable approximation (per its own authors), and cDTW_4
        beats those decisively.  Returns the smallest radius whose
        FastDTW -- and every larger one -- is slower than cDTW_4.
        """
        cdtw4 = self.cdtw_at(0.04).per_pair_seconds
        radii = sorted(p.param for p in self.fastdtw_points)
        for idx, r in enumerate(radii):
            if all(
                self.fastdtw_at(rr).per_pair_seconds > cdtw4
                for rr in radii[idx:]
            ):
                return int(r)
        raise ValueError("cDTW_4 beat no suffix of the radius sweep")

    def serviceable_claim_holds(self) -> bool:
        """The paper's second claim: exact cDTW_20 is at least as fast
        as FastDTW_10, the coarsest *serviceable* approximation."""
        return (
            self.cdtw_at(0.20).per_pair_seconds
            <= self.fastdtw_at(10).per_pair_seconds
        )


def run(config: Fig1Config = DEFAULT) -> Fig1Result:
    """Execute the sweep and return measured points."""
    dataset = uwave_like(per_class=config.per_class, seed=config.seed)
    series = [list(s) for s in dataset.series]
    fastdtw_fn = resolve_fastdtw(config.fastdtw_variant)

    cdtw_points = sweep(
        series,
        "cDTW",
        list(config.windows),
        lambda w: (lambda x, y: cdtw(x, y, window=w)),
        max_pairs=config.max_pairs,
    )
    fastdtw_points = sweep(
        series,
        "FastDTW",
        [float(r) for r in config.radii],
        lambda r: (lambda x, y: fastdtw_fn(x, y, radius=int(r))),
        max_pairs=config.max_pairs,
    )
    return Fig1Result(
        config=config,
        series_length=dataset.length,
        cdtw_points=tuple(cdtw_points),
        fastdtw_points=tuple(fastdtw_points),
    )


def format_report(result: Fig1Result) -> str:
    """Paper-style rows: per-setting times and full-scale projections."""
    cfg = result.config
    rows: List[Sequence[object]] = []
    for p in result.fastdtw_points:
        rows.append((
            f"FastDTW_{int(p.param)}",
            ms(p.per_pair_seconds),
            f"{p.per_pair_cells:.0f}",
            f"{p.total_seconds(cfg.full_scale_pairs) / 3600:.2f} h",
        ))
    for p in result.cdtw_points:
        rows.append((
            f"cDTW_{round(p.param * 100)}",
            ms(p.per_pair_seconds),
            f"{p.per_pair_cells:.0f}",
            f"{p.total_seconds(cfg.full_scale_pairs) / 3600:.2f} h",
        ))
    table = format_table(
        ("algorithm", "per pair", "cells/pair",
         f"all {cfg.full_scale_pairs} pairs"),
        rows,
    )
    verdicts = [
        "cDTW_4 faster than coarsest FastDTW (paper's literal claim): "
        f"{'YES' if result.headline_holds() else 'NO (borderline point)'}",
        "cDTW_4 beats every FastDTW from radius "
        f"{result.dominates_from_radius()} up",
    ]
    if 0.20 in [p.param for p in result.cdtw_points] and any(
        p.param == 10 for p in result.fastdtw_points
    ):
        verdicts.append(
            "exact cDTW_20 at least as fast as FastDTW_10: "
            f"{'YES (paper agrees)' if result.serviceable_claim_holds() else 'NO'}"
        )
    return (
        f"Fig. 1 -- UWave-like, N={result.series_length}, "
        f"FastDTW variant: {result.config.fastdtw_variant}\n"
        + table + "\n" + "\n".join(verdicts)
    )


def main() -> None:  # pragma: no cover - exercised via examples
    print(format_report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
