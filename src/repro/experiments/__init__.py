"""One module per table/figure of the paper (see DESIGN.md §3).

Every experiment module follows the same contract:

* a frozen ``*Config`` dataclass with laptop defaults in ``DEFAULT``
  and the paper's full-scale parameters in ``PAPER_SCALE``;
* ``run(config) -> *Result`` performing the measurement;
* ``format_report(result) -> str`` printing paper-style rows;
* ``main()`` wiring the two together.

``EXPERIMENTS`` maps experiment ids (table/figure numbers) to modules
so the benchmark harness and the examples can enumerate them.
"""

from . import (
    appendix_b,
    approx_quality,
    case_b_music,
    fig1_uwave,
    fig2_ucr_histograms,
    fig3_power,
    fig4_case_c,
    fig6_fall_crossover,
    fig7_adversarial,
    fig8_wrong_way,
    footnote2_trillion,
    repeated_use,
    table1_cases,
)

#: Experiment id -> implementing module.
EXPERIMENTS = {
    "table1": table1_cases,
    "fig1": fig1_uwave,
    "fig2": fig2_ucr_histograms,
    "case_b": case_b_music,
    "fig3": fig3_power,
    "fig4": fig4_case_c,
    "fig5_fig6": fig6_fall_crossover,
    "table2_fig7": fig7_adversarial,
    "fig8": fig8_wrong_way,
    "appendix_b": appendix_b,
    "footnote2": footnote2_trillion,
    "repeated_use": repeated_use,
    # extension (not a paper artefact): systematic Section 4 study
    "approx_quality": approx_quality,
}

__all__ = ["EXPERIMENTS"] + sorted(
    m.__name__.rsplit(".", 1)[-1] for m in EXPERIMENTS.values()
)
