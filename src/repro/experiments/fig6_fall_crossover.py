"""Figs. 5-6: the fall model and the Case D crossover.

Fig. 5 defines the workload: an early fall vs a late fall inside an
``L``-second window at 100 Hz, requiring ``cDTW_100`` (Full DTW) to
align.  Fig. 6 sweeps ``L`` and finds the first length where
``FastDTW_40`` becomes faster than Full DTW -- the paper measures the
break-even at ``L = 4`` (``N = 400``).  The cell model
(:func:`repro.timing.cells.crossover_length`) predicts N ~ 333 for
``r = 40``; wall-clock lands nearby.

Also verified here (Fig. 5's premise): Full DTW's alignment really
does map the early fall onto the late fall, i.e. its path deviation
approaches ``N``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..core.dtw import dtw
from ..core.variants import resolve_fastdtw
from ..datasets.falls import fall_pair
from ..timing.timer import Timing, time_callable
from .report import format_table, ms


@dataclass(frozen=True)
class Fig6Config:
    """Sweep of window lengths ``L`` (seconds at 100 Hz)."""

    lengths_seconds: Tuple[float, ...] = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0)
    rate_hz: int = 100
    radius: int = 40
    repeats: int = 1  # paper: 1000
    # Fig. 6 grants FastDTW its best case: our optimised variant shares
    # the DP engine with cDTW, so the crossover is about cell counts,
    # not data structures.  With the reference layout the crossover
    # moves out to N ~ 2700 (see the ablation benchmarks), which only
    # strengthens the paper's point.
    fastdtw_variant: str = "optimized"
    seed: int = 0
    #: Timing summary for the comparisons and table; ``"mean"`` matches
    #: the paper's "reporting the average" convention.
    statistic: str = "mean"


DEFAULT = Fig6Config()
PAPER_SCALE = Fig6Config(
    lengths_seconds=tuple(float(l) for l in range(1, 11)),
    repeats=1000,
)


@dataclass(frozen=True)
class CrossoverPoint:
    """Measurements for one window length ``L``."""

    seconds: float
    n: int
    full_dtw: Timing
    fastdtw: Timing
    alignment_deviation_fraction: float
    statistic: str = "mean"

    @property
    def fastdtw_faster(self) -> bool:
        return (
            self.fastdtw.value(self.statistic)
            < self.full_dtw.value(self.statistic)
        )


@dataclass(frozen=True)
class Fig6Result:
    """The sweep plus the measured break-even length."""

    config: Fig6Config
    points: Tuple[CrossoverPoint, ...]

    def breakeven(self) -> CrossoverPoint:
        """First point where FastDTW is faster (the paper's L = 4)."""
        for p in self.points:
            if p.fastdtw_faster:
                return p
        raise ValueError("no crossover within the swept lengths")


def run(config: Fig6Config = DEFAULT) -> Fig6Result:
    """Sweep ``L``, timing Full DTW vs FastDTW on each fall pair."""
    fastdtw_fn = resolve_fastdtw(config.fastdtw_variant)
    points: List[CrossoverPoint] = []
    for L in config.lengths_seconds:
        pair = fall_pair(L, rate_hz=config.rate_hz, seed=config.seed)
        x, y = pair.early, pair.late

        full_t = time_callable(lambda: dtw(x, y),
                               repeats=config.repeats, warmup=0)
        fast_t = time_callable(
            lambda: fastdtw_fn(x, y, radius=config.radius),
            repeats=config.repeats, warmup=0,
        )
        path = dtw(x, y, return_path=True).path
        points.append(CrossoverPoint(
            seconds=L,
            n=pair.length,
            full_dtw=full_t,
            fastdtw=fast_t,
            alignment_deviation_fraction=path.warp_fraction(),
            statistic=config.statistic,
        ))
    return Fig6Result(config=config, points=tuple(points))


def format_report(result: Fig6Result) -> str:
    """Per-L timings and the break-even verdict."""
    rows = [
        (
            f"{p.seconds:g}", p.n, ms(p.full_dtw.value(p.statistic)),
            ms(p.fastdtw.value(p.statistic)),
            "FastDTW" if p.fastdtw_faster else "cDTW_100",
            f"{p.alignment_deviation_fraction:.0%}",
        )
        for p in result.points
    ]
    table = format_table(
        ("L (s)", "N", "cDTW_100", f"FastDTW_{result.config.radius}",
         "faster", "W used"),
        rows,
    )
    try:
        be = result.breakeven()
        verdict = (
            f"break-even at L = {be.seconds:g} (N = {be.n}); paper: L = 4 "
            "(N = 400)"
        )
    except ValueError:
        verdict = "no crossover in range (paper: L = 4)"
    return f"Fig. 6 -- fall alignment crossover\n{table}\n{verdict}"


def main() -> None:  # pragma: no cover
    print(format_report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
