"""Table 1: the four-case taxonomy, populated and verified.

Runs the case advisor over (a) the paper's canonical example of each
quadrant and (b) the whole UCR archive metadata, reporting the census
that backs the paper's "at least 99% of all uses fall into Case A"
argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..advisor.cases import Case, CaseAnalysis, analyze
from ..datasets import ucr_meta
from .report import format_table

#: The paper's anchor examples: (label, N, W).
CANONICAL = (
    ("UWave gesture", 945, 0.04),
    ("music performance", 24_000, 0.0083),
    ("power demand", 450, 0.40),
    ("contrived falls", 2_000, 1.00),
)


@dataclass(frozen=True)
class Table1Config:
    """Quadrant thresholds (the paper's soft boundaries)."""

    long_threshold: int = 1000
    wide_threshold: int = 20  # percent, for the archive census


DEFAULT = Table1Config()
PAPER_SCALE = DEFAULT


@dataclass(frozen=True)
class Table1Result:
    """Per-example classifications and the archive census."""

    examples: Tuple[Tuple[str, CaseAnalysis], ...]
    census: Dict[str, int]
    case_a_fraction: float


def run(config: Table1Config = DEFAULT) -> Table1Result:
    """Classify the anchors and census the archive."""
    examples = tuple(
        (label, analyze(n=n, warping=w)) for label, n, w in CANONICAL
    )
    census = ucr_meta.case_census(
        config.long_threshold, config.wide_threshold
    )
    total = sum(census.values())
    return Table1Result(
        examples=examples,
        census=census,
        case_a_fraction=census["A"] / total,
    )


def format_report(result: Table1Result) -> str:
    """The taxonomy with measured classifications and the census."""
    rows = [
        (label, a.n, f"{a.warping:.2%}", a.case.value,
         a.recommendation.value.split(" ")[0])
        for label, a in result.examples
    ]
    table = format_table(("example", "N", "W", "case", "use"), rows)
    census = ", ".join(
        f"{k}: {v}" for k, v in sorted(result.census.items())
    )
    return (
        f"Table 1 -- four cases\n{table}\n"
        f"UCR archive census ({sum(result.census.values())} datasets): "
        f"{census}\n"
        f"Case A share: {result.case_a_fraction:.0%} "
        "(paper: 'at least 99% of all uses')"
    )


def main() -> None:  # pragma: no cover
    print(format_report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
