"""Every paper claim, checked in one sweep.

Each experiment module regenerates numbers; this module distils them
into the paper's *claims* -- one boolean per headline statement --
so ``python -m repro verdicts`` (or the final integration test) can
answer the only question a reader ultimately has: does the
reproduction agree with the paper?

Claims are evaluated on freshly-run experiments; pass a config
override map to control scale (the CLI uses each experiment's
defaults).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from . import (
    appendix_b,
    approx_quality,
    case_b_music,
    fig1_uwave,
    fig2_ucr_histograms,
    fig3_power,
    fig4_case_c,
    fig6_fall_crossover,
    fig7_adversarial,
    fig8_wrong_way,
    footnote2_trillion,
    repeated_use,
    table1_cases,
)


@dataclass(frozen=True)
class Verdict:
    """One paper claim and whether this run reproduced it."""

    experiment: str
    claim: str
    holds: bool
    note: str = ""


def _run(module, overrides: Optional[Dict] = None):
    config = (overrides or {}).get(module, module.DEFAULT)
    return module.run(config)


def collect_verdicts(
    overrides: Optional[Dict] = None,
) -> List[Verdict]:
    """Run every experiment and evaluate the paper's claims.

    ``overrides`` maps experiment *modules* to config instances
    (used by tests to shrink the heavy experiments).
    """
    verdicts: List[Verdict] = []

    r = _run(table1_cases, overrides)
    verdicts.append(Verdict(
        "table1", "canonical examples classify as Cases A/B/C/D",
        [a.case.value for _l, a in r.examples] == ["A", "B", "C", "D"],
    ))
    verdicts.append(Verdict(
        "table1", "Case A dominates the archive",
        r.case_a_fraction > 0.75,
        f"{r.case_a_fraction:.0%}",
    ))

    r = _run(fig1_uwave, overrides)
    verdicts.append(Verdict(
        "fig1", "exact cDTW_20 at least as fast as FastDTW_10",
        r.serviceable_claim_holds(),
    ))
    verdicts.append(Verdict(
        "fig1", "cDTW_4 beats every FastDTW with r >= 1",
        r.dominates_from_radius() <= 1,
    ))
    verdicts.append(Verdict(
        "fig1", "cDTW_4 faster than FastDTW_0 (literal; borderline here)",
        r.headline_holds(),
        "known borderline point, see EXPERIMENTS.md",
    ))

    r = _run(fig2_ucr_histograms, overrides)
    verdicts.append(Verdict(
        "fig2", "most archive series shorter than 1,000",
        r.fraction_shorter_than_1000 > 0.75,
        f"{r.fraction_shorter_than_1000:.0%}",
    ))
    verdicts.append(Verdict(
        "fig2", "optimal w rarely above 10%",
        r.fraction_w_at_most_10 > 0.80,
        f"{r.fraction_w_at_most_10:.0%}",
    ))

    r = _run(case_b_music, overrides)
    verdicts.append(Verdict(
        "case_b", "cDTW fastest at N long, w = 0.83%", r.cdtw_wins(),
    ))
    verdicts.append(Verdict(
        "case_b", "larger radius makes FastDTW slower", r.radius_hurts(),
    ))

    r = _run(fig3_power, overrides)
    verdicts.append(Verdict(
        "fig3", "power pair's W estimate is 34% (Case C)",
        abs(r.warping_estimate - 0.34) < 0.02 and r.case.value == "C",
        f"{r.warping_estimate:.0%}",
    ))

    r = _run(fig4_case_c, overrides)
    verdicts.append(Verdict(
        "fig4", "at N=450 even cDTW_40 beats FastDTW_40",
        r.cdtw_points[-1].per_pair_seconds
        < r.fastdtw_points[-1].per_pair_seconds,
    ))

    r = _run(fig6_fall_crossover, overrides)
    try:
        be = r.breakeven()
        holds = 100 <= be.n <= 800
        note = f"N = {be.n} (paper: 400)"
    except ValueError:
        holds, note = False, "no crossover in range"
    verdicts.append(Verdict(
        "fig5_fig6", "FastDTW_40 first beats Full DTW near N ~ 400",
        holds, note,
    ))

    r = _run(fig7_adversarial, overrides)
    verdicts.append(Verdict(
        "table2_fig7", "adversarial error exceeds 100,000%",
        r.ab_error_percent > 100_000,
        f"{r.ab_error_percent:,.0f}%",
    ))
    verdicts.append(Verdict(
        "table2_fig7", "dendrograms disagree", r.topologies_differ(),
    ))

    r = _run(fig8_wrong_way, overrides)
    verdicts.append(Verdict(
        "fig8", "coarse levels warp the wrong way", r.wrong_way(),
    ))
    verdicts.append(Verdict(
        "fig8", "radius-20 window cannot recover the feature",
        not r.final_window_reaches_feature,
    ))

    r = _run(appendix_b, overrides)
    verdicts.append(Verdict(
        "appendix_b", "exact cDTW at least as accurate and faster",
        r.claims_hold(), f"{r.speedup:.1f}x faster",
    ))

    r = _run(footnote2_trillion, overrides)
    verdicts.append(Verdict(
        "footnote2", "FastDTW_10 many times slower per call at N=128",
        r.gap_factor() > 10.0, f"{r.gap_factor():.0f}x",
    ))

    r = _run(repeated_use, overrides)
    verdicts.append(Verdict(
        "repeated_use", "LB cascade is lossless",
        r.exact_strategies_agree(),
    ))
    verdicts.append(Verdict(
        "repeated_use", "cascade evaluates a fraction of the cells",
        r.cascade_cell_fraction() < 0.5,
        f"{r.cascade_cell_fraction():.0%}",
    ))

    r = _run(approx_quality, overrides)
    verdicts.append(Verdict(
        "approx_quality", "benign families converge by r=10",
        r.benign_families_converge(radius=10, tolerance=15.0),
    ))
    verdicts.append(Verdict(
        "approx_quality", "long-range families broken at r=10",
        r.long_range_families_stay_broken(radius=10),
    ))

    return verdicts


def format_verdicts(verdicts: List[Verdict]) -> str:
    """One line per claim, check-marked."""
    width = max(len(v.claim) for v in verdicts)
    lines = []
    for v in verdicts:
        mark = "YES" if v.holds else " NO"
        note = f"  ({v.note})" if v.note else ""
        lines.append(f"[{mark}] {v.claim.ljust(width)}  "
                     f"<{v.experiment}>{note}")
    held = sum(1 for v in verdicts if v.holds)
    lines.append(f"\n{held}/{len(verdicts)} claims reproduced")
    return "\n".join(lines)
