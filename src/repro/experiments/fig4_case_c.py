"""Fig. 4 (Case C): the Fig. 1 sweep at N = 450 with windows up to 40%.

The paper repeats the pairwise-timing experiment on random walks
("the timing for both algorithms does not depend on the data itself"),
length 450, 1,000 examples (499,500 comparisons), sweeping ``w`` and
``r`` from 0 to 40.  Even at a wide 40% window, cDTW remains
competitive because N is short -- FastDTW's overhead exceeds direct
computation (the smart-glove study's conclusion, [23]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..core.cdtw import cdtw
from ..core.variants import resolve_fastdtw
from ..datasets.random_walk import random_walks
from ..timing.runner import SweepPoint, sweep
from .report import format_table, ms


@dataclass(frozen=True)
class Fig4Config:
    """Sweep parameters; the paper's scale kept in :data:`PAPER_SCALE`."""

    length: int = 450
    examples: int = 12
    max_pairs: int = 10
    windows: Tuple[float, ...] = tuple(w / 100 for w in range(0, 41, 8))
    radii: Tuple[int, ...] = (0, 2, 5, 10, 20, 40)
    full_scale_pairs: int = 499_500  # the paper's (1000 * 999) / 2
    fastdtw_variant: str = "reference"
    seed: int = 0


DEFAULT = Fig4Config()
PAPER_SCALE = Fig4Config(
    examples=1000,
    max_pairs=0,
    windows=tuple(w / 100 for w in range(0, 41)),
    radii=tuple(range(0, 41)),
)


@dataclass(frozen=True)
class Fig4Result:
    """Both sweeps at Case C scale."""

    config: Fig4Config
    cdtw_points: Tuple[SweepPoint, ...]
    fastdtw_points: Tuple[SweepPoint, ...]

    def max_cdtw_seconds(self) -> float:
        """Slowest cDTW setting (the widest window)."""
        return max(p.per_pair_seconds for p in self.cdtw_points)

    def min_fastdtw_seconds(self) -> float:
        """Fastest FastDTW setting (the smallest radius)."""
        return min(p.per_pair_seconds for p in self.fastdtw_points)

    def comparable_at_matched_params(self) -> List[Tuple[float, float, float]]:
        """(param, cdtw_s, fastdtw_s) where the sweeps share a value.

        The paper plots both on a shared 0..40 axis; these are the
        directly comparable points.
        """
        fast_by_param = {p.param: p.per_pair_seconds
                         for p in self.fastdtw_points}
        out = []
        for p in self.cdtw_points:
            key = round(p.param * 100)
            if float(key) in fast_by_param:
                out.append(
                    (float(key), p.per_pair_seconds, fast_by_param[float(key)])
                )
        return out


def run(config: Fig4Config = DEFAULT) -> Fig4Result:
    """Generate random walks and run both sweeps."""
    series = random_walks(config.examples, config.length, seed=config.seed)
    fastdtw_fn = resolve_fastdtw(config.fastdtw_variant)
    cdtw_points = sweep(
        series, "cDTW", list(config.windows),
        lambda w: (lambda x, y: cdtw(x, y, window=w)),
        max_pairs=config.max_pairs,
    )
    fastdtw_points = sweep(
        series, "FastDTW", [float(r) for r in config.radii],
        lambda r: (lambda x, y: fastdtw_fn(x, y, radius=int(r))),
        max_pairs=config.max_pairs,
    )
    return Fig4Result(
        config=config,
        cdtw_points=tuple(cdtw_points),
        fastdtw_points=tuple(fastdtw_points),
    )


def format_report(result: Fig4Result) -> str:
    """Per-setting times plus full-scale projections."""
    cfg = result.config
    rows: List[Sequence[object]] = []
    for p in result.fastdtw_points:
        rows.append((
            f"FastDTW_{int(p.param)}", ms(p.per_pair_seconds),
            f"{p.total_seconds(cfg.full_scale_pairs) / 3600:.2f} h",
        ))
    for p in result.cdtw_points:
        rows.append((
            f"cDTW_{round(p.param * 100)}", ms(p.per_pair_seconds),
            f"{p.total_seconds(cfg.full_scale_pairs) / 3600:.2f} h",
        ))
    table = format_table(
        ("algorithm", "per pair", f"all {cfg.full_scale_pairs} pairs"), rows
    )
    return (
        f"Fig. 4 -- random walks, N={cfg.length}, w/r up to 40\n{table}\n"
        "slowest cDTW vs fastest FastDTW: "
        f"{ms(result.max_cdtw_seconds())} vs "
        f"{ms(result.min_fastdtw_seconds())}"
    )


def main() -> None:  # pragma: no cover
    print(format_report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
