"""Appendix B: the third-party gesture-classification confirmation.

Schneider et al. re-ran their gesture classifier with cDTW in place of
FastDTW (radius 30) and reported: accuracy up ~5 points (77.38% ->
82.14%) and the exact implementation ~24x faster on average.

This experiment reproduces the *relative* claims on a synthetic
gesture task (see DESIGN.md §2): 1-NN classification of held-out
gestures under FastDTW_30 vs cDTW, comparing accuracy and wall-clock.
The shape that must hold: exact cDTW is at least as accurate and
several-fold faster.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..classify.knn import DistanceSpec, OneNearestNeighbor
from ..datasets.gestures import gesture_dataset
from .report import format_table, ratio


@dataclass(frozen=True)
class AppendixBConfig:
    """Synthetic task shape (paper's third party: 5,851 DTW runs)."""

    n_classes: int = 6
    per_class: int = 8
    length: int = 120
    warp_fraction: float = 0.05
    noise_sigma: float = 0.25
    train_fraction: float = 0.6
    radius: int = 30            # the third party's radius
    # two exemplars warped independently by +-warp_fraction can differ
    # by twice that, so the window must cover 2 * warp_fraction
    window: float = 0.12
    seed: int = 7


DEFAULT = AppendixBConfig()
PAPER_SCALE = AppendixBConfig(per_class=40, length=315)


@dataclass(frozen=True)
class AppendixBResult:
    """Accuracy and time for both classifiers on the same split."""

    config: AppendixBConfig
    fastdtw_accuracy: float
    cdtw_accuracy: float
    fastdtw_seconds: float
    cdtw_seconds: float
    test_size: int

    @property
    def speedup(self) -> float:
        """How many times faster exact cDTW classified the test set."""
        return (
            self.fastdtw_seconds / self.cdtw_seconds
            if self.cdtw_seconds else float("inf")
        )

    def claims_hold(self) -> bool:
        """cDTW at least as accurate AND faster (the reply's verdict)."""
        return (
            self.cdtw_accuracy >= self.fastdtw_accuracy
            and self.cdtw_seconds < self.fastdtw_seconds
        )


def run(config: AppendixBConfig = DEFAULT) -> AppendixBResult:
    """Build the task, classify the test split under both measures."""
    data = gesture_dataset(
        n_classes=config.n_classes,
        per_class=config.per_class,
        length=config.length,
        warp_fraction=config.warp_fraction,
        noise_sigma=config.noise_sigma,
        seed=config.seed,
        name="AppendixB",
    )
    train, test = data.split(config.train_fraction, seed=config.seed)

    def evaluate(spec: DistanceSpec):
        clf = OneNearestNeighbor(spec).fit(
            [list(s) for s in train.series], list(train.labels)
        )
        start = time.perf_counter()
        accuracy = 1.0 - clf.error_rate(
            [list(s) for s in test.series], list(test.labels)
        )
        return accuracy, time.perf_counter() - start

    fast_acc, fast_s = evaluate(
        DistanceSpec("fastdtw", radius=config.radius)
    )
    cdtw_acc, cdtw_s = evaluate(
        DistanceSpec("cdtw", window=config.window, use_lower_bounds=True)
    )
    return AppendixBResult(
        config=config,
        fastdtw_accuracy=fast_acc,
        cdtw_accuracy=cdtw_acc,
        fastdtw_seconds=fast_s,
        cdtw_seconds=cdtw_s,
        test_size=len(test),
    )


def format_report(result: AppendixBResult) -> str:
    """The reply's two bullet points, measured."""
    rows = (
        (f"FastDTW_{result.config.radius}",
         f"{result.fastdtw_accuracy:.2%}", f"{result.fastdtw_seconds:.2f} s"),
        (f"cDTW_{round(result.config.window * 100)} (+LB)",
         f"{result.cdtw_accuracy:.2%}", f"{result.cdtw_seconds:.2f} s"),
    )
    table = format_table(("classifier", "accuracy", "time"), rows)
    return (
        f"Appendix B -- gesture classification, {result.test_size} test "
        "gestures\n" + table + "\n"
        f"exact implementation {ratio(result.fastdtw_seconds, result.cdtw_seconds)}"
        " faster (paper's third party: ~24x); "
        f"accuracy delta {result.cdtw_accuracy - result.fastdtw_accuracy:+.2%} "
        "(paper: +4.8 points)\n"
        f"claims hold: {'YES' if result.claims_hold() else 'NO'}"
    )


def main() -> None:  # pragma: no cover
    print(format_report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
