"""Fig. 3: the power-demand pair and the paper's ``W`` estimate.

The paper's only natural Case C example.  This experiment generates the
midnight-hour pair, recovers the warping estimate from detected peak
offsets (the paper's procedure: third peak pair differs by 153 of 450
samples, ``W = 34%``, rounded up to 40%), cross-checks it against the
warping an actual Full-DTW alignment uses, and classifies the setting
with the case advisor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..advisor.cases import Case, analyze
from ..core.dtw import dtw
from ..datasets.power import PowerPair, estimate_warping, midnight_hour_pair


@dataclass(frozen=True)
class Fig3Config:
    """Generator parameters (defaults reproduce the paper's numbers)."""

    length: int = 450
    seed: int = 0


DEFAULT = Fig3Config()
PAPER_SCALE = DEFAULT  # the paper's own experiment is this size


@dataclass(frozen=True)
class Fig3Result:
    """The pair plus every quantity the paper derives from it."""

    pair: PowerPair
    peak_offset: int
    warping_estimate: float
    rounded_w: float
    measured_alignment_w: float
    case: Case


def run(config: Fig3Config = DEFAULT) -> Fig3Result:
    """Generate the pair and derive the paper's quantities."""
    pair = midnight_hour_pair(length=config.length, seed=config.seed)
    w_est = estimate_warping(pair)
    # the paper rounds the 34% estimate up to a conservative 40%
    rounded = min(1.0, math.ceil(w_est * 10) / 10)

    path = dtw(pair.night_a, pair.night_b, return_path=True).path
    measured = path.warp_fraction()

    case = analyze(n=pair.length, warping=rounded).case
    return Fig3Result(
        pair=pair,
        peak_offset=pair.max_peak_offset(),
        warping_estimate=w_est,
        rounded_w=rounded,
        measured_alignment_w=measured,
        case=case,
    )


def format_report(result: Fig3Result) -> str:
    """The Fig. 3 caption quantities, measured."""
    return (
        f"Fig. 3 -- power demand, N={result.pair.length}\n"
        f"max peak offset: {result.peak_offset} samples\n"
        f"W estimate: {result.warping_estimate:.0%} "
        f"(paper: 34%), rounded up to {result.rounded_w:.0%}\n"
        f"W used by an actual Full-DTW alignment: "
        f"{result.measured_alignment_w:.0%}\n"
        f"Table 1 classification: Case {result.case.value} "
        "(paper: Case C)"
    )


def main() -> None:  # pragma: no cover
    print(format_report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
