"""Section 3.4's repeated-use argument: cDTW-only optimisations.

When DTW is evaluated many times, exact cDTW can be accelerated by
lower bounding and early abandoning -- lossless tricks with no FastDTW
analogue.  This experiment runs the same 1-NN queries under four
strategies (plain cDTW, cDTW with the LB cascade, FastDTW, Euclidean)
and reports time, DP cells, and pruning statistics.  The shape: the
cascade answers identically to plain cDTW while evaluating a small
fraction of the cells, and FastDTW trails both.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..datasets.gestures import gesture_dataset
from ..lowerbounds.cascade import CascadeStats
from ..runtime import Runtime
from ..search.nn_search import nearest_neighbor
from .report import format_table


@dataclass(frozen=True)
class RepeatedUseConfig:
    """Search workload shape."""

    n_classes: int = 4
    per_class: int = 10
    length: int = 128
    queries: int = 8
    window: float = 0.10
    radius: int = 10
    seed: int = 3


DEFAULT = RepeatedUseConfig()
PAPER_SCALE = RepeatedUseConfig(per_class=200, queries=100, length=315)


@dataclass(frozen=True)
class StrategyOutcome:
    """Aggregate result of one strategy over all queries."""

    strategy: str
    seconds: float
    cells: int
    neighbor_indices: Tuple[int, ...]
    stats: Optional[CascadeStats] = None


@dataclass(frozen=True)
class RepeatedUseResult:
    """All strategies, same queries, same candidates."""

    config: RepeatedUseConfig
    outcomes: Dict[str, StrategyOutcome]

    def exact_strategies_agree(self) -> bool:
        """Plain cDTW and the LB cascade return identical neighbours."""
        return (
            self.outcomes["cdtw"].neighbor_indices
            == self.outcomes["cdtw+lb"].neighbor_indices
        )

    def cascade_cell_fraction(self) -> float:
        """Cells the cascade evaluated relative to plain cDTW."""
        plain = self.outcomes["cdtw"].cells
        return self.outcomes["cdtw+lb"].cells / plain if plain else 0.0


def run(config: RepeatedUseConfig = DEFAULT) -> RepeatedUseResult:
    """Run every strategy over the same query/candidate workload."""
    data = gesture_dataset(
        n_classes=config.n_classes,
        per_class=config.per_class,
        length=config.length,
        seed=config.seed,
        name="RepeatedUse",
    )
    series = [list(s) for s in data.series]
    queries, candidates = series[:config.queries], series[config.queries:]
    if not candidates:
        raise ValueError("config leaves no candidates")

    outcomes: Dict[str, StrategyOutcome] = {}
    for strategy in ("cdtw", "cdtw+lb", "fastdtw", "euclidean"):
        kwargs = {}
        if strategy in ("cdtw", "cdtw+lb"):
            kwargs["window"] = config.window
        if strategy == "fastdtw":
            kwargs["radius"] = config.radius
        start = time.perf_counter()
        neighbors = []
        cells = 0
        stats = None
        for q in queries:
            # pinned: paper comparisons must stay on the pure-Python
            # engine even if the process default runtime is changed;
            # an explicit Runtime ignores the process default entirely
            res = nearest_neighbor(
                q, candidates, strategy=strategy,
                runtime=Runtime(backend="python"),
                **kwargs,
            )
            neighbors.append(res.index)
            cells += res.cells
            stats = res.stats or stats
        seconds = time.perf_counter() - start
        outcomes[strategy] = StrategyOutcome(
            strategy=strategy,
            seconds=seconds,
            cells=cells,
            neighbor_indices=tuple(neighbors),
            stats=stats,
        )
    return RepeatedUseResult(config=config, outcomes=outcomes)


def format_report(result: RepeatedUseResult) -> str:
    """Per-strategy time/cells and the pruning summary."""
    rows = []
    for name in ("euclidean", "cdtw+lb", "cdtw", "fastdtw"):
        o = result.outcomes[name]
        rows.append((name, f"{o.seconds:.3f} s", o.cells))
    table = format_table(("strategy", "time", "DP cells"), rows)
    stats = result.outcomes["cdtw+lb"].stats
    prune = f"{stats.prune_rate():.0%}" if stats else "n/a"
    return (
        "Repeated use -- 1-NN search, "
        f"{result.config.queries} queries x "
        f"{result.config.n_classes * result.config.per_class - result.config.queries}"
        " candidates\n" + table + "\n"
        f"exact strategies agree: "
        f"{'YES' if result.exact_strategies_agree() else 'NO'}; "
        f"cascade evaluated {result.cascade_cell_fraction():.0%} of plain "
        f"cDTW's cells (prune rate {prune})"
    )


def main() -> None:  # pragma: no cover
    print(format_report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
