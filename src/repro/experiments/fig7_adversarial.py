"""Table 2 and Fig. 7: the adversarial triple and the dendrogram flip.

Three series: A and B (nearly identical under Full DTW -- paper
distance 0.020 -- but far apart under FastDTW_20 -- paper 31.24, an
error of 156,100% under Salvador & Chan's own metric) and C, a
genuinely different series both measures agree on (6.822 / 6.848).
Clustering the two distance matrices yields different dendrograms:
under Full DTW, {A, B} fuse first; under FastDTW_20 they do not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..cluster.dendrogram import ClusterNode, render_ascii
from ..cluster.linkage import linkage, merge_order_signature
from ..core.dtw import dtw
from ..core.error import approximation_error_percent
from ..core.fastdtw import fastdtw
from ..datasets.adversarial import AdversarialTriple, adversarial_pair
from .report import format_table

LABELS = ("A", "B", "C")


@dataclass(frozen=True)
class Fig7Config:
    """Adversarial-pair generator parameters (paper radius: 20)."""

    radius: int = 20
    seed: int = 0


DEFAULT = Fig7Config()
PAPER_SCALE = DEFAULT


@dataclass(frozen=True)
class Fig7Result:
    """Both distance matrices, both dendrograms, and the error."""

    triple: AdversarialTriple
    full_matrix: Tuple[Tuple[float, ...], ...]
    fast_matrix: Tuple[Tuple[float, ...], ...]
    ab_error_percent: float
    full_first_merge: frozenset
    fast_first_merge: frozenset

    def topologies_differ(self) -> bool:
        """The Fig. 7 claim: the two dendrograms disagree."""
        return self.full_first_merge != self.fast_first_merge

    def full_pairs_ab(self) -> Tuple[float, float]:
        """(full A-B, fast A-B) distances."""
        return self.full_matrix[0][1], self.fast_matrix[0][1]


def _matrix(series: List[List[float]], fn) -> Tuple[Tuple[float, ...], ...]:
    k = len(series)
    out = [[0.0] * k for _ in range(k)]
    for i in range(k):
        for j in range(i + 1, k):
            d = fn(series[i], series[j])
            out[i][j] = out[j][i] = d
    return tuple(tuple(row) for row in out)


def run(config: Fig7Config = DEFAULT) -> Fig7Result:
    """Build the triple, both matrices, and both clusterings."""
    triple = adversarial_pair(seed=config.seed)
    series = triple.series()

    full = _matrix(series, lambda a, b: dtw(a, b).distance)
    fast = _matrix(
        series, lambda a, b: fastdtw(a, b, radius=config.radius).distance
    )
    err = approximation_error_percent(fast[0][1], full[0][1])

    full_sig = merge_order_signature(linkage([list(r) for r in full]))
    fast_sig = merge_order_signature(linkage([list(r) for r in fast]))
    return Fig7Result(
        triple=triple,
        full_matrix=full,
        fast_matrix=fast,
        ab_error_percent=err,
        full_first_merge=full_sig[0],
        fast_first_merge=fast_sig[0],
    )


def dendrograms(result: Fig7Result) -> Tuple[str, str]:
    """ASCII dendrograms under Full DTW and FastDTW (Fig. 7a/7b)."""
    full_tree = ClusterNode.from_merges(
        linkage([list(r) for r in result.full_matrix])
    )
    fast_tree = ClusterNode.from_merges(
        linkage([list(r) for r in result.fast_matrix])
    )
    return (
        render_ascii(full_tree, labels=LABELS),
        render_ascii(fast_tree, labels=LABELS),
    )


def format_report(result: Fig7Result) -> str:
    """Table 2 layout plus the clustering verdict."""
    def matrix_rows(matrix):
        rows = []
        for i, label in enumerate(LABELS):
            rows.append((label,) + tuple(
                f"{matrix[i][j]:.3f}" if j > i else ""
                for j in range(len(LABELS))
            ))
        return rows

    full_tbl = format_table(("", *LABELS), matrix_rows(result.full_matrix))
    fast_tbl = format_table(("", *LABELS), matrix_rows(result.fast_matrix))
    full_dgm, fast_dgm = dendrograms(result)
    first = lambda s: "{" + ", ".join(LABELS[i] for i in sorted(s)) + "}"
    return (
        "Table 2 -- Full DTW:\n" + full_tbl + "\n"
        "Table 2 -- FastDTW_20:\n" + fast_tbl + "\n"
        f"A-B approximation error: {result.ab_error_percent:,.0f}% "
        "(paper: 156,100%)\n"
        "Fig. 7a (Full DTW):\n" + full_dgm + "\n"
        "Fig. 7b (FastDTW_20):\n" + fast_dgm + "\n"
        f"first merge: {first(result.full_first_merge)} vs "
        f"{first(result.fast_first_merge)} -- "
        f"{'DIFFERENT (paper agrees)' if result.topologies_differ() else 'same'}"
    )


def main() -> None:  # pragma: no cover
    print(format_report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
