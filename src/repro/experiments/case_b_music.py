"""Section 3.2 (Case B): aligning a studio song with a live rendition.

The paper's long-N/narrow-W probe: a four-minute song at 100 Hz chroma
rate (``N = 24,000``) with at most +-2 s of performance drift
(``w = 0.83%``).  Measured there:

* cDTW_0.83   --  45.6 ms
* FastDTW_10  -- 238.2 ms
* FastDTW_40  -- 350.9 ms

The shape to reproduce: cDTW wins by several-fold, and a larger radius
makes FastDTW *slower* still.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..core.cdtw import cdtw
from ..core.variants import resolve_fastdtw
from ..datasets.music import MusicPair, studio_and_live
from ..timing.timer import Timing, time_callable
from .report import format_table, ms, ratio


@dataclass(frozen=True)
class CaseBConfig:
    """Parameters; defaults are a laptop-scale rendition of the paper's."""

    seconds: float = 60.0       # paper: 240 s ("Let It Be")
    rate_hz: int = 100
    max_drift_seconds: float = 0.5  # keeps w = 0.83% at the scaled length
    radii: Tuple[int, ...] = (10, 40)
    repeats: int = 1            # paper: 1000
    fastdtw_variant: str = "reference"
    seed: int = 0
    #: Timing summary for the table and verdicts; ``"mean"`` matches
    #: the paper's "reporting the average" convention.
    statistic: str = "mean"

    @property
    def window_fraction(self) -> float:
        return self.max_drift_seconds * self.rate_hz / (
            self.seconds * self.rate_hz
        )


DEFAULT = CaseBConfig()
PAPER_SCALE = CaseBConfig(
    seconds=240.0, max_drift_seconds=2.0, repeats=1000,
)


@dataclass(frozen=True)
class CaseBResult:
    """Timings for cDTW and each FastDTW radius."""

    config: CaseBConfig
    length: int
    window_fraction: float
    cdtw_timing: Timing
    fastdtw_timings: Tuple[Tuple[int, Timing], ...]
    cdtw_distance: float
    fastdtw_distances: Tuple[Tuple[int, float], ...]

    def cdtw_wins(self) -> bool:
        """The paper's claim: cDTW beats every FastDTW radius tried."""
        stat = self.config.statistic
        return all(
            self.cdtw_timing.value(stat) < t.value(stat)
            for _, t in self.fastdtw_timings
        )

    def radius_hurts(self) -> bool:
        """Larger radius -> slower FastDTW (monotone in the sweep)."""
        stat = self.config.statistic
        values = [t.value(stat) for _, t in self.fastdtw_timings]
        return all(a <= b for a, b in zip(values, values[1:]))


def run(config: CaseBConfig = DEFAULT) -> CaseBResult:
    """Generate the pair and time all contenders."""
    pair: MusicPair = studio_and_live(
        seconds=config.seconds,
        rate_hz=config.rate_hz,
        max_drift_seconds=config.max_drift_seconds,
        seed=config.seed,
    )
    w = pair.window_fraction
    fastdtw_fn = resolve_fastdtw(config.fastdtw_variant)

    cdtw_timing = time_callable(
        lambda: cdtw(pair.studio, pair.live, window=w),
        repeats=config.repeats, warmup=0,
    )
    cdtw_distance = cdtw(pair.studio, pair.live, window=w).distance

    fast_timings = []
    fast_distances = []
    for r in config.radii:
        t = time_callable(
            lambda r=r: fastdtw_fn(pair.studio, pair.live, radius=r),
            repeats=config.repeats, warmup=0,
        )
        fast_timings.append((r, t))
        fast_distances.append(
            (r, fastdtw_fn(pair.studio, pair.live, radius=r).distance)
        )
    return CaseBResult(
        config=config,
        length=pair.length,
        window_fraction=w,
        cdtw_timing=cdtw_timing,
        fastdtw_timings=tuple(fast_timings),
        cdtw_distance=cdtw_distance,
        fastdtw_distances=tuple(fast_distances),
    )


def format_report(result: CaseBResult) -> str:
    """The paper's three bullet lines, with measured values."""
    stat = result.config.statistic
    cdtw_s = result.cdtw_timing.value(stat)
    rows = [(
        f"cDTW_{result.window_fraction * 100:.2f}",
        ms(cdtw_s),
        "exact",
    )]
    for (r, t), (_, d) in zip(result.fastdtw_timings,
                              result.fastdtw_distances):
        rows.append((
            f"FastDTW_{r}",
            ms(t.value(stat)),
            f"{ratio(t.value(stat), cdtw_s)} slower",
        ))
    table = format_table(("algorithm", "time", "vs cDTW"), rows)
    return (
        f"Case B -- music alignment, N={result.length}, "
        f"w={result.window_fraction:.2%}\n{table}\n"
        f"cDTW fastest: {'YES' if result.cdtw_wins() else 'NO'}; "
        f"radius monotone: {'YES' if result.radius_hurts() else 'NO'}"
    )


def main() -> None:  # pragma: no cover
    print(format_report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
