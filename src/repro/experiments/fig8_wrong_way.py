"""Fig. 8 / Appendix A: *why* FastDTW fails -- wrong-way warping.

The paper's mechanism, demonstrated quantitatively:

1. the raw pair's optimal path deviates **rightwards** (positive) at
   the dominant feature (the doublet), by the full feature shift;
2. the 8-to-1 PAA coarsening depresses the dominant feature and
   (relatively) magnifies the decoy bump, so the coarse optimal path
   deviates **leftwards** (negative) at the same location;
3. FastDTW's own coarsest level inherits that wrong direction, and the
   radius-``r`` refinement window can never reach back to the correct
   alignment, because the needed deviation exceeds ``r``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.dtw import dtw
from ..core.fastdtw import fastdtw
from ..core.paa import paa_factor
from ..datasets.adversarial import (
    AdversarialTriple,
    adversarial_pair,
    deviation_at_row,
)


@dataclass(frozen=True)
class Fig8Config:
    """Coarsening factor and FastDTW radius (paper: 8-to-1, r = 20)."""

    paa_factor: int = 8
    radius: int = 20
    seed: int = 0


DEFAULT = Fig8Config()
PAPER_SCALE = DEFAULT


@dataclass(frozen=True)
class Fig8Result:
    """Deviations at the dominant-feature row, per resolution."""

    triple: AdversarialTriple
    raw_deviation: float
    paa_deviation: float
    coarsest_level_deviation: float
    final_window_reaches_feature: bool
    radius: int

    def wrong_way(self) -> bool:
        """The Fig. 8 claim: coarse warping opposes raw warping."""
        return (
            self.raw_deviation > 0
            and self.paa_deviation <= 0
            and self.coarsest_level_deviation <= 0
        )


def run(config: Fig8Config = DEFAULT) -> Fig8Result:
    """Measure warp directions at raw, PAA and FastDTW-coarse scales."""
    triple = adversarial_pair(seed=config.seed)
    row = triple.doublet_a

    raw_path = dtw(triple.a, triple.b, return_path=True).path
    raw_dev = deviation_at_row(raw_path, row)

    pa = paa_factor(triple.a, config.paa_factor)
    pb = paa_factor(triple.b, config.paa_factor)
    paa_path = dtw(pa, pb, return_path=True).path
    paa_dev = deviation_at_row(paa_path, row // config.paa_factor)

    fast = fastdtw(
        triple.a, triple.b, radius=config.radius, keep_levels=True
    )
    coarsest = fast.levels[0]
    scale = triple.length // coarsest.n
    coarse_dev = deviation_at_row(coarsest.path, row // scale)

    # can the final refinement window reach the correct match?  The
    # correct cell is (doublet_a, doublet_b); FastDTW's final path
    # stands in for the window's centre line.
    final_path = fast.path
    final_dev = deviation_at_row(final_path, row)
    reaches = abs(final_dev - triple.doublet_shift) <= config.radius

    return Fig8Result(
        triple=triple,
        raw_deviation=raw_dev,
        paa_deviation=paa_dev,
        coarsest_level_deviation=coarse_dev,
        final_window_reaches_feature=reaches,
        radius=config.radius,
    )


def format_report(result: Fig8Result) -> str:
    """The mechanism, one measured line per step."""
    t = result.triple
    return (
        "Fig. 8 -- wrong-way warping mechanism\n"
        f"dominant feature shift (A->B): +{t.doublet_shift} samples; "
        f"decoy bump shift: {t.bump_shift}\n"
        f"raw optimal path deviation at feature: "
        f"{result.raw_deviation:+.1f} (follows the feature)\n"
        f"8-to-1 PAA path deviation there:       "
        f"{result.paa_deviation:+.1f} (follows the decoy)\n"
        f"FastDTW coarsest-level deviation:      "
        f"{result.coarsest_level_deviation:+.1f}\n"
        f"radius {result.radius} window recovers the feature: "
        f"{'yes' if result.final_window_reaches_feature else 'NO'} "
        "(paper: cannot recover)\n"
        f"wrong-way warping confirmed: "
        f"{'YES' if result.wrong_way() else 'no'}"
    )


def main() -> None:  # pragma: no cover
    print(format_report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
