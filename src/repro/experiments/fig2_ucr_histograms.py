"""Fig. 2: UCR-archive histograms of optimal ``w`` and series length.

Establishes the paper's Case A argument statistically: across the 128
datasets of the UCR 2018 archive, most series are shorter than 1,000
samples and the LOOCV-optimal warping window rarely exceeds 10%.
Data source and provenance: :mod:`repro.datasets.ucr_meta`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..datasets import ucr_meta
from .report import format_bar_chart


@dataclass(frozen=True)
class Fig2Config:
    """Histogram binning (the paper bins w by 5% and length by 250)."""

    w_bin: int = 5
    w_max: int = 100
    length_bin: int = 250
    length_max: int = 3000


DEFAULT = Fig2Config()
PAPER_SCALE = DEFAULT  # metadata experiment; no scaling needed


@dataclass(frozen=True)
class Fig2Result:
    """Both histograms plus the headline fractions."""

    w_edges: Tuple[int, ...]
    w_counts: Tuple[int, ...]
    length_edges: Tuple[int, ...]
    length_counts: Tuple[int, ...]
    fraction_shorter_than_1000: float
    fraction_w_at_most_10: float
    datasets: int


def run(config: Fig2Config = DEFAULT) -> Fig2Result:
    """Compute both Fig. 2 histograms from the archive metadata."""
    w_edges = tuple(range(0, config.w_max + config.w_bin, config.w_bin))
    length_edges = tuple(
        range(0, config.length_max + config.length_bin, config.length_bin)
    )
    return Fig2Result(
        w_edges=w_edges,
        w_counts=tuple(ucr_meta.best_w_histogram(w_edges)),
        length_edges=length_edges,
        length_counts=tuple(ucr_meta.length_histogram(length_edges)),
        fraction_shorter_than_1000=ucr_meta.fraction_shorter_than(1000),
        fraction_w_at_most_10=ucr_meta.fraction_best_w_at_most(10),
        datasets=len(ucr_meta.UCR_2018),
    )


def format_report(result: Fig2Result) -> str:
    """Both histograms as ASCII bar charts plus headline fractions."""
    w_labels = [
        f"{a}-{b}%" for a, b in zip(result.w_edges, result.w_edges[1:])
    ]
    l_labels = [
        f"{a}-{b}" for a, b in zip(result.length_edges,
                                   result.length_edges[1:])
    ]
    return (
        f"Fig. 2 -- {result.datasets} UCR datasets\n"
        "(a) optimal warping window w:\n"
        f"{format_bar_chart(w_labels, list(result.w_counts))}\n"
        "(b) series lengths:\n"
        f"{format_bar_chart(l_labels, list(result.length_counts))}\n"
        f"shorter than 1000: {result.fraction_shorter_than_1000:.0%}   "
        f"best w <= 10%: {result.fraction_w_at_most_10:.0%}"
    )


def main() -> None:  # pragma: no cover
    print(format_report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
