"""Lower bounds for constrained DTW.

These cheap bounds never exceed the true cDTW distance, so a 1-NN
search can discard most candidates without running the O(n*w) dynamic
program at all.  The paper's Section 3.4 leans on exactly this: lower
bounding (plus early abandoning) applies *only* to exact cDTW -- not to
FastDTW -- and buys "a further two to five orders of magnitude".
"""

from .cascade import BatchNearest, CascadeBatch, CascadeStats, LowerBoundCascade
from .envelope import Envelope, envelope
from .lb_improved import clip_to_envelope, lb_improved
from .lb_keogh import lb_keogh, lb_keogh_reversed
from .lb_kim import lb_kim
from .nd import (
    envelopes_nd,
    lb_improved_nd,
    lb_keogh_nd,
    lb_keogh_reversed_nd,
    lb_kim_nd,
)

__all__ = [
    "BatchNearest",
    "CascadeBatch",
    "CascadeStats",
    "Envelope",
    "LowerBoundCascade",
    "clip_to_envelope",
    "envelope",
    "envelopes_nd",
    "lb_improved",
    "lb_improved_nd",
    "lb_keogh",
    "lb_keogh_nd",
    "lb_keogh_reversed",
    "lb_keogh_reversed_nd",
    "lb_kim",
    "lb_kim_nd",
]
