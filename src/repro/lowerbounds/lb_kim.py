"""LB_Kim: the O(1) first/last-point lower bound.

Every warping path must include the corner cells ``(0, 0)`` and
``(n-1, m-1)``, so the local costs of the first pair and the last pair
of samples are unavoidable.  The two-tier variant (after the UCR
suite's ``lb_kim_hierarchy``) additionally charges the cheapest way any
path can traverse the second/penultimate rows, which remains a valid
lower bound for any band width.
"""

from __future__ import annotations

from typing import Sequence

from ..core.cost import CostLike, resolve_cost


def lb_kim(
    x: Sequence[float],
    y: Sequence[float],
    cost: CostLike = "squared",
    tiers: int = 2,
) -> float:
    """Constant-time lower bound on DTW(x, y) (any band width).

    Parameters
    ----------
    x, y:
        Non-empty series of equal length (the classification setting).
    cost:
        Local cost, matching the DTW call being bounded.
    tiers:
        ``1`` charges only the corner cells; ``2`` (default) adds the
        cheapest traversal of the second and penultimate anti-diagonal
        neighbourhoods, tightening the bound at negligible cost.

    Notes
    -----
    Validity: a path from ``(0,0)`` to ``(n-1,n-1)`` with ``n >= 2``
    contains both corners, so ``d(x0,y0) + d(x_last,y_last)`` is a
    lower bound.  For tier 2 with ``n >= 4``: after ``(0, 0)`` the
    path's next cell is one of ``(0,1), (1,0), (1,1)``, so the minimum
    of those three local costs is also unavoidable (and disjoint from
    the cells already counted); symmetrically at the end.
    """
    if len(x) != len(y):
        raise ValueError("lb_kim requires equal-length series")
    n = len(x)
    if n == 0:
        raise ValueError("cannot bound empty series")
    if tiers not in (1, 2):
        raise ValueError("tiers must be 1 or 2")
    fn = resolve_cost(cost)

    if n == 1:
        return fn(x[0], y[0])
    bound = fn(x[0], y[0]) + fn(x[-1], y[-1])
    if tiers == 2 and n >= 4:
        bound += min(fn(x[1], y[0]), fn(x[0], y[1]), fn(x[1], y[1]))
        bound += min(fn(x[-2], y[-1]), fn(x[-1], y[-2]), fn(x[-2], y[-2]))
    return bound
