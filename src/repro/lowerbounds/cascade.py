"""The cascading lower-bound pruner used by 1-NN search.

Bounds are applied cheapest-first against a best-so-far threshold:

1. ``LB_Kim``          -- O(1);
2. ``LB_Keogh``        -- O(n), query envelope precomputed once;
3. ``LB_Improved``     -- optional second Lemire pass, reusing the
   LB_Keogh value (off by default; the indexed search enables it);
4. ``LB_Keogh`` reversed -- O(n) plus an envelope build (or a
   precomputed one, via ``_candidate_envelope``);
5. early-abandoning cDTW -- the full DP, only for survivors.

Every stage is provably ``<=`` the true cDTW distance, so pruning is
lossless: the search returns exactly the nearest neighbour, just
faster.  :class:`CascadeStats` records where each candidate was pruned,
which the repeated-use benchmark reports alongside the timings.

:class:`CascadeBatch` drives many queries against one fixed candidate
set: candidate envelopes are built (or accepted precomputed, e.g. from
a :class:`repro.index.DatasetIndex`) once for the whole batch,
candidates are ordered best-first by their cheapest bound so the
best-so-far tightens early, and -- for self-join batches -- exact
distances computed for earlier queries seed later queries' thresholds
through a symmetric cache.  All three tricks are lossless: the
reported neighbour and distance are bit-identical to the plain serial
scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import inf
from typing import Dict, Optional, Sequence, Tuple

from ..core.cdtw import cdtw
from ..obs import trace as _obs
from ..runtime import Runtime, _resolve_legacy
from .envelope import Envelope, envelope
from .lb_improved import lb_improved
from .lb_keogh import lb_keogh, lb_keogh_reversed
from .lb_kim import lb_kim


@dataclass
class CascadeStats:
    """Per-stage pruning counters accumulated over a search."""

    candidates: int = 0
    pruned_kim: int = 0
    pruned_keogh: int = 0
    pruned_keogh_reversed: int = 0
    abandoned_dtw: int = 0
    full_dtw: int = 0
    cells: int = 0  # DP lattice cells actually evaluated
    pruned_improved: int = 0  # LB_Improved stage (when enabled)
    reused_exact: int = 0  # answered from a shared exact-distance cache

    def pruned_total(self) -> int:
        """Candidates rejected before a complete DTW computation."""
        return (
            self.pruned_kim
            + self.pruned_keogh
            + self.pruned_improved
            + self.pruned_keogh_reversed
            + self.abandoned_dtw
        )

    def prune_rate(self) -> float:
        """Fraction of candidates that never finished a full DTW."""
        if not self.candidates:
            return 0.0
        return self.pruned_total() / self.candidates


class LowerBoundCascade:
    """Lossless cDTW pruner for one query against many candidates.

    Parameters
    ----------
    query:
        The (typically z-normalised) query series.
    band:
        Sakoe-Chiba half-width in cells; must match the cDTW calls the
        cascade stands in for.
    squared:
        Local cost convention (squared by default, as in the engine).
    use_reversed:
        Whether to run the reversed LB_Keogh stage (costs an envelope
        build per surviving candidate; usually worth it).
    runtime:
        Execution context, per :mod:`repro.runtime` (``None`` = the
        process default).  Only its backend matters: the cascade's
        best-so-far pruning threads a threshold through the scan, so
        it is inherently sequential and ignores worker/executor
        settings.  The cascade stays lossless on every backend --
        each stage remains a valid lower bound -- and the exact DP
        stage is bit-identical.  The Kim and forward Keogh stages are
        bit-identical too (the forward Keogh runs through the
        sequential-order ``lb_keogh_chunk`` kernel), so with
        ``use_reversed=False`` the prune counters match the pure
        backend exactly; the reversed stage's batched reduction may
        still differ in final ulps, shifting counters on boundary
        cases.
    backend:
        Deprecated override of the runtime's backend; passing it
        emits a :class:`DeprecationWarning`.

    Notes
    -----
    On a vectorised backend, :meth:`nearest` first computes *full*
    (no-abandon) Kim and Keogh bounds for every candidate in stacked
    chunk-kernel calls (:meth:`prefilter_bounds`), then replays the
    sequential best-so-far scan against the precomputed values.  The
    decisions are identical to the candidate-at-a-time scan: gap
    costs are non-negative, so a bound's prefix sums are monotone and
    "abandoned above the threshold" holds exactly when the full bound
    exceeds it.  ``lb.invocations`` counts *logical stage
    evaluations* in replay order (one per stage reached per
    candidate, exactly as the scalar scan charges them); the batched
    kernel calls themselves are recorded under ``lb.chunk_prefilter``.
    """

    def __init__(
        self,
        query: Sequence[float],
        band: int,
        squared: bool = True,
        use_reversed: bool = True,
        use_cumulative: bool = True,
        backend: Optional[str] = None,
        runtime: Optional[Runtime] = None,
        use_improved: bool = False,
        query_envelope: Optional[Envelope] = None,
    ):
        if band < 0:
            raise ValueError("band must be non-negative")
        rt = _resolve_legacy(
            "LowerBoundCascade", runtime, backend=backend
        ).serial()
        # pin the backend now: the whole scan must use the backend in
        # effect at construction, even if the process default changes
        rt = rt.replace(backend=rt.backend_name)
        self.runtime = rt
        self.query = list(query)
        self.band = band
        self.squared = squared
        self.use_reversed = use_reversed
        self.use_cumulative = use_cumulative
        self.use_improved = use_improved
        self.backend = rt.backend_name
        kernel_set = rt.kernels()
        self._kernels = (
            kernel_set if kernel_set.name != "python" else None
        )
        # multivariate queries take the summed per-channel bound
        # stages of :mod:`repro.lowerbounds.nd` (admissible for both
        # DTW_I and DTW_D) and the dependent DP as the exact stage
        self.dims = (
            len(self.query[0])
            if self.query and hasattr(self.query[0], "__len__")
            else None
        )
        # precomputed artifacts served instead of recomputation, for
        # the ``index.artifacts_reused`` accounting of indexed search
        self.artifacts_reused = 0
        if self.dims is not None:
            from .nd import envelopes_nd

            if query_envelope is not None:
                envs = tuple(query_envelope)
                if len(envs) != self.dims or any(
                    e.band != band or len(e) != len(self.query)
                    for e in envs
                ):
                    raise ValueError(
                        "query_envelope does not match query and band"
                    )
                self.envelopes_nd = envs
                self.artifacts_reused += 1
            else:
                self.envelopes_nd = envelopes_nd(self.query, band)
            self.envelope = None
            self._env_upper = self._env_lower = None
            self.stats = CascadeStats()
            return
        if query_envelope is not None:
            if (
                query_envelope.band != band
                or len(query_envelope) != len(self.query)
            ):
                raise ValueError(
                    "query_envelope does not match query and band"
                )
            self.envelope: Envelope = query_envelope
            self.artifacts_reused += 1
        else:
            self.envelope = envelope(self.query, band)
        if self._kernels is not None:
            # array views of the envelope, converted once: every
            # chunk-kernel call over the scan reuses them
            import numpy as np

            self._env_upper = np.asarray(
                self.envelope.upper, dtype=np.float64
            )
            self._env_lower = np.asarray(
                self.envelope.lower, dtype=np.float64
            )
        else:
            self._env_upper = self._env_lower = None
        self.stats = CascadeStats()

    def distance(
        self,
        candidate: Sequence[float],
        best_so_far: float = inf,
        _kim: Optional[float] = None,
        _keogh: Optional[float] = None,
        _candidate_envelope=None,
    ) -> float:
        """cDTW(query, candidate) or ``inf`` if provably > best_so_far.

        The returned value is exact whenever it is finite; ``inf``
        means the candidate was pruned (its true distance exceeds
        ``best_so_far``).

        ``_kim``/``_keogh`` let :meth:`nearest` replay precomputed
        chunk-prefilter bounds; stage counters and decisions are
        identical either way (see the class notes).
        ``_candidate_envelope`` (an ``(upper, lower)`` pair with the
        cascade's band) serves the reversed stage from a precomputed
        artifact instead of building an envelope per call.
        """
        if len(candidate) != len(self.query):
            raise ValueError("cascade requires equal-length candidates")
        trace = _obs.active_trace()
        if trace is None:
            return self._distance_impl(
                candidate, best_so_far, _kim, _keogh,
                _candidate_envelope,
            )
        with _obs.span("lb_cascade"):
            return self._distance_impl(
                candidate, best_so_far, _kim, _keogh,
                _candidate_envelope,
            )

    def _distance_impl(
        self,
        candidate: Sequence[float],
        best_so_far: float,
        kim: Optional[float] = None,
        keogh: Optional[float] = None,
        cand_env=None,
    ) -> float:
        if self.dims is not None:
            return self._distance_impl_nd(
                candidate, best_so_far, kim, keogh, cand_env
            )
        stats = self.stats
        stats.candidates += 1
        _obs.incr("lb.candidates")
        cost = "squared" if self.squared else "abs"
        k = self._kernels

        _obs.incr("lb.invocations")
        if kim is None:
            if k is not None:
                kim = k.lb_kim(self.query, (candidate,), cost=cost)[0]
            else:
                kim = lb_kim(self.query, candidate, cost=cost)
        if kim > best_so_far:
            stats.pruned_kim += 1
            _obs.incr("lb.pruned_kim")
            return inf
        _obs.incr("lb.invocations")
        if keogh is not None:
            # a full bound prunes iff the abandoning scan would have:
            # gap costs are non-negative, so total > threshold exactly
            # when some prefix crossed it
            lb = keogh
        elif k is not None:
            lb = float(k.lb_keogh_chunk(
                self._env_upper, self._env_lower, (candidate,),
                squared=self.squared, abandon_above=best_so_far,
            )[0])
        else:
            lb = lb_keogh(
                self.envelope, candidate,
                squared=self.squared, abandon_above=best_so_far,
            )
        if lb > best_so_far:
            stats.pruned_keogh += 1
            _obs.incr("lb.pruned_keogh")
            return inf
        if self.use_improved:
            # Lemire's second pass on top of the forward-Keogh value
            # (``lb`` is the full bound here: the abandoning scan only
            # returns a finite value when it summed every gap)
            _obs.incr("lb.invocations")
            if k is not None:
                imp = float(k.lb_improved_chunk(
                    self._env_upper, self._env_lower, (candidate,),
                    self.query, self.band, squared=self.squared,
                    keogh=(lb,), abandon_above=best_so_far,
                )[0])
            else:
                imp = lb_improved(
                    self.query, candidate, self.band,
                    squared=self.squared, abandon_above=best_so_far,
                    query_envelope=self.envelope, keogh=lb,
                )
            if imp > best_so_far:
                stats.pruned_improved += 1
                _obs.incr("lb.pruned_improved")
                return inf
        if self.use_reversed:
            _obs.incr("lb.invocations")
            if cand_env is not None:
                # precomputed candidate envelope: the reversed bound
                # is a plain forward LB_Keogh of the query against it,
                # through the bit-identical chunk kernel on vectorised
                # backends
                self.artifacts_reused += 1
                up, lo = cand_env
                if k is not None:
                    lb = float(k.lb_keogh_chunk(
                        up, lo, (self.query,),
                        squared=self.squared, abandon_above=best_so_far,
                    )[0])
                else:
                    lb = lb_keogh(
                        Envelope(self.band, up, lo), self.query,
                        squared=self.squared, abandon_above=best_so_far,
                    )
            elif k is not None:
                lb = k.lb_keogh_reversed(
                    self.query, (candidate,), self.band,
                    squared=self.squared, abandon_above=best_so_far,
                )[0]
            else:
                lb = lb_keogh_reversed(
                    self.query, candidate, self.band,
                    squared=self.squared, abandon_above=best_so_far,
                )
            if lb > best_so_far:
                stats.pruned_keogh_reversed += 1
                _obs.incr("lb.pruned_keogh_reversed")
                return inf

        if self.use_cumulative and best_so_far != inf:
            # final exact stage with the UCR-suite cumulative suffix
            # bound: DTW over the candidate against the query, charged
            # up-front for what its remaining rows must at least cost
            from ..search.cumulative import cdtw_cumulative_abandon

            result = cdtw_cumulative_abandon(
                candidate, self.query, self.band,
                threshold=best_so_far,
                y_envelope=self.envelope,
                squared=self.squared,
                runtime=self.runtime,
            )
        elif k is not None:
            from ..core.kernels import banded_window
            from ..core.validate import validate_pair

            validate_pair(self.query, candidate)
            result = k.dtw(
                self.query, candidate,
                banded_window(len(self.query), len(candidate), self.band),
                cost=cost,
                abandon_above=best_so_far if best_so_far != inf else None,
            )
        else:
            result = cdtw(
                self.query, candidate, band=self.band, cost=cost,
                abandon_above=best_so_far if best_so_far != inf else None,
            )
        stats.cells += result.cells
        if result.abandoned:
            stats.abandoned_dtw += 1
            _obs.incr("lb.abandoned_dtw")
            return inf
        stats.full_dtw += 1
        _obs.incr("lb.full_dtw")
        return result.distance

    def _distance_impl_nd(
        self,
        candidate: Sequence[Sequence[float]],
        best_so_far: float,
        kim: Optional[float] = None,
        keogh: Optional[float] = None,
        cand_env=None,
    ) -> float:
        """The multivariate stage sequence (same structure, same
        counters, same lossless guarantees as the scalar path).

        Each bound is a summed per-channel scalar bound, admissible
        for both DTW_I and DTW_D (see :mod:`repro.lowerbounds.nd`);
        the exact stage runs the dependent DP.  The cumulative-suffix
        stage is scalar-only and does not apply to vector samples, so
        the exact stage falls back to plain early abandoning.
        ``cand_env`` here is the candidate's per-channel
        :class:`Envelope` tuple (as built by
        :func:`repro.lowerbounds.nd.envelopes_nd`).
        """
        from .nd import (
            lb_improved_nd,
            lb_keogh_nd,
            lb_keogh_reversed_nd,
            lb_kim_nd,
        )

        stats = self.stats
        stats.candidates += 1
        _obs.incr("lb.candidates")
        cost = "squared" if self.squared else "abs"

        _obs.incr("lb.invocations")
        if kim is None:
            kim = lb_kim_nd(self.query, candidate, cost=cost)
        if kim > best_so_far:
            stats.pruned_kim += 1
            _obs.incr("lb.pruned_kim")
            return inf
        _obs.incr("lb.invocations")
        if keogh is not None:
            lb = keogh
        else:
            lb = lb_keogh_nd(
                self.envelopes_nd, candidate,
                squared=self.squared, abandon_above=best_so_far,
            )
        if lb > best_so_far:
            stats.pruned_keogh += 1
            _obs.incr("lb.pruned_keogh")
            return inf
        if self.use_improved:
            _obs.incr("lb.invocations")
            imp = lb_improved_nd(
                self.query, candidate, self.band,
                squared=self.squared, abandon_above=best_so_far,
                query_envelopes=self.envelopes_nd,
            )
            if imp > best_so_far:
                stats.pruned_improved += 1
                _obs.incr("lb.pruned_improved")
                return inf
        if self.use_reversed:
            _obs.incr("lb.invocations")
            if cand_env is not None:
                self.artifacts_reused += 1
                lb = lb_keogh_nd(
                    cand_env, self.query,
                    squared=self.squared, abandon_above=best_so_far,
                )
            else:
                lb = lb_keogh_reversed_nd(
                    self.query, candidate, self.band,
                    squared=self.squared, abandon_above=best_so_far,
                )
            if lb > best_so_far:
                stats.pruned_keogh_reversed += 1
                _obs.incr("lb.pruned_keogh_reversed")
                return inf

        threshold = best_so_far if best_so_far != inf else None
        k = self._kernels
        if k is not None:
            from ..core.kernels import banded_window

            result = k.dtw_nd(
                self.query, candidate,
                banded_window(
                    len(self.query), len(candidate), self.band
                ),
                cost=cost, abandon_above=threshold,
            )
        else:
            from ..core.multivariate import cdtw_nd

            result = cdtw_nd(
                self.query, candidate, band=self.band, cost=cost,
                abandon_above=threshold,
            )
        stats.cells += result.cells
        if result.abandoned:
            stats.abandoned_dtw += 1
            _obs.incr("lb.abandoned_dtw")
            return inf
        stats.full_dtw += 1
        _obs.incr("lb.full_dtw")
        return result.distance

    def prefilter_bounds(self, candidates: Sequence[Sequence[float]]):
        """Full (no-abandon) Kim and Keogh bounds for every candidate.

        Returns ``(kims, keoghs)``, two sequences of floats aligned
        with ``candidates``.  On a vectorised backend both come from
        one stacked kernel call each (recorded under
        ``lb.chunk_prefilter``); the pure backend loops the scalar
        bounds.  Either way each value is bit-identical to what the
        corresponding cascade stage would compute without a
        threshold, so :meth:`distance` can replay them with unchanged
        decisions.
        """
        n = len(self.query)
        for cand in candidates:
            if len(cand) != n:
                raise ValueError(
                    "cascade requires equal-length candidates"
                )
        cost = "squared" if self.squared else "abs"
        if self.dims is not None:
            # the summed per-channel bounds are pure-python on every
            # backend; full (no-abandon) values replay identically
            from .nd import lb_keogh_nd, lb_kim_nd

            kims = [
                lb_kim_nd(self.query, c, cost=cost) for c in candidates
            ]
            keoghs = [
                lb_keogh_nd(self.envelopes_nd, c, squared=self.squared)
                for c in candidates
            ]
            return kims, keoghs
        k = self._kernels
        if k is None:
            kims = [
                lb_kim(self.query, c, cost=cost) for c in candidates
            ]
            keoghs = [
                lb_keogh(self.envelope, c, squared=self.squared)
                for c in candidates
            ]
            return kims, keoghs
        _obs.incr("lb.chunk_prefilter")
        kims = k.lb_kim(self.query, candidates, cost=cost)
        _obs.incr("lb.chunk_prefilter")
        keoghs = k.lb_keogh_chunk(
            self._env_upper, self._env_lower, candidates,
            squared=self.squared,
        )
        return [float(v) for v in kims], [float(v) for v in keoghs]

    def nearest(self, candidates: Sequence[Sequence[float]]) -> tuple:
        """Index and distance of the nearest candidate to the query.

        Returns ``(index, distance)``; raises ``ValueError`` on an
        empty candidate list.  Exactness follows from the bounds being
        lower bounds: a pruned candidate cannot beat ``best_so_far``.

        On a vectorised backend the Kim/Keogh bounds for the whole
        scan come from :meth:`prefilter_bounds` up front; the
        sequential best-so-far replay then makes decisions identical
        to the candidate-at-a-time scan (see the class notes).
        """
        if not candidates:
            raise ValueError("no candidates to search")
        pre_kim = pre_keogh = None
        if self._kernels is not None:
            pre_kim, pre_keogh = self.prefilter_bounds(candidates)
        best_idx = -1
        best = inf
        for idx, cand in enumerate(candidates):
            if pre_kim is None:
                d = self.distance(cand, best_so_far=best)
            else:
                d = self.distance(
                    cand, best_so_far=best,
                    _kim=pre_kim[idx], _keogh=pre_keogh[idx],
                )
            if d < best:
                best, best_idx = d, idx
        if best_idx < 0:
            # all infinite distances (possible only with inf inputs);
            # fall back to the first candidate for determinism.
            best_idx = 0
            best = self._exact_unpruned(candidates[0])
        return best_idx, best

    def _exact_unpruned(self, candidate) -> float:
        """The exact distance with no threshold (fallback path)."""
        cost = "squared" if self.squared else "abs"
        if self.dims is not None:
            from ..core.multivariate import cdtw_nd

            return cdtw_nd(
                self.query, candidate, band=self.band, cost=cost,
            ).distance
        return cdtw(
            self.query, candidate, band=self.band, cost=cost,
        ).distance


@dataclass(frozen=True)
class BatchNearest:
    """One query's outcome from a :class:`CascadeBatch` scan.

    ``index`` addresses the *original* candidate list (exclusions and
    best-first reordering notwithstanding); ``stats`` are the query's
    own cascade counters; ``artifacts_reused`` counts precomputed
    artifacts served instead of recomputed (query envelope plus every
    candidate envelope the reversed stage consumed).
    """

    index: int
    distance: float
    stats: CascadeStats
    artifacts_reused: int


class CascadeBatch:
    """Many-query cascade driver over one fixed candidate set.

    Shares the per-candidate work a query-at-a-time scan repeats:

    * **precomputed artifacts** -- candidate envelopes are built once
      for the whole batch (or accepted ready-made via
      ``candidate_envelopes``, e.g. from a
      :class:`repro.index.DatasetIndex`) and served to every query's
      reversed stage;
    * **best-first ordering** -- each query scans candidates in
      ascending order of their cheapest bound (full LB_Kim, O(1) per
      candidate), so the best-so-far threshold tightens as early as
      possible and the later, expensive stages prune more;
    * **best-so-far sharing** -- for *self-join* batches (each query
      is itself a member of the candidate set, declared via
      ``query_index``), every exact distance computed for an earlier
      query seeds the later query's threshold through a symmetric
      cache: cDTW is symmetric, so ``d(q_i, c_j)`` is an exact upper
      bound on query ``j``'s nearest-neighbour distance.

    All three are lossless.  Pruning only ever discards candidates
    whose true distance provably exceeds a valid threshold, and the
    winner tie-break is explicit -- smallest original index among the
    equally-nearest -- which is exactly the first-wins winner of the
    serial in-order scan, so :meth:`nearest` returns a bit-identical
    ``(index, distance)`` for any ordering, seeding or backend.

    Parameters mirror :class:`LowerBoundCascade`; ``use_improved``
    defaults to ``True`` here because the batch's precomputed
    envelopes make the second Lemire pass cheap relative to the DPs
    it prunes.
    """

    def __init__(
        self,
        candidates: Sequence[Sequence[float]],
        band: int,
        squared: bool = True,
        use_reversed: bool = True,
        use_cumulative: bool = True,
        use_improved: bool = True,
        best_first: bool = True,
        share_exact: bool = False,
        runtime: Optional[Runtime] = None,
        candidate_envelopes: Optional[Tuple[Sequence, Sequence]] = None,
    ):
        if band < 0:
            raise ValueError("band must be non-negative")
        if not candidates:
            raise ValueError("no candidates to search")
        rt = Runtime.resolve(runtime).serial()
        rt = rt.replace(backend=rt.backend_name)
        self.runtime = rt
        self.band = band
        self.squared = squared
        self.use_reversed = use_reversed
        self.use_cumulative = use_cumulative
        self.use_improved = use_improved
        self.best_first = best_first
        self.candidates = [list(c) for c in candidates]
        n = len(self.candidates[0])
        if any(len(c) != n for c in self.candidates):
            raise ValueError("cascade requires equal-length candidates")
        self.dims = (
            len(self.candidates[0][0])
            if self.candidates[0]
            and hasattr(self.candidates[0][0], "__len__")
            else None
        )
        kernel_set = rt.kernels()
        self._vectorised = kernel_set.name != "python"
        self._kernel_set = kernel_set
        self._cache: Optional[Dict[int, Dict[int, float]]] = (
            {} if share_exact else None
        )
        self._env_upper = self._env_lower = None
        self._envelopes_nd = None
        self._provided_envelopes = candidate_envelopes is not None
        if use_reversed and self.dims is not None:
            # per-candidate tuples of per-channel envelopes (the form
            # envelopes_nd produces and the nd index persists)
            from .nd import envelopes_nd

            if candidate_envelopes is not None:
                envs = tuple(tuple(e) for e in candidate_envelopes)
                if len(envs) != len(self.candidates):
                    raise ValueError(
                        "candidate_envelopes must cover every candidate"
                    )
            else:
                envs = tuple(
                    envelopes_nd(c, band) for c in self.candidates
                )
            self._envelopes_nd = envs
        elif use_reversed:
            if candidate_envelopes is not None:
                up, lo = candidate_envelopes
                if len(up) != len(self.candidates) or len(lo) != len(up):
                    raise ValueError(
                        "candidate_envelopes must cover every candidate"
                    )
            else:
                up, lo = kernel_set.envelope_chunk(self.candidates, band)
            if self._vectorised:
                import numpy as np

                up = np.ascontiguousarray(up, dtype=np.float64)
                lo = np.ascontiguousarray(lo, dtype=np.float64)
            self._env_upper, self._env_lower = up, lo

    def cascade_for(
        self,
        query: Sequence[float],
        query_envelope: Optional[Envelope] = None,
    ) -> LowerBoundCascade:
        """A cascade over this batch's configuration for one query."""
        return LowerBoundCascade(
            query, self.band, squared=self.squared,
            use_reversed=self.use_reversed,
            use_cumulative=self.use_cumulative,
            use_improved=self.use_improved,
            runtime=self.runtime, query_envelope=query_envelope,
        )

    def candidate_envelope(self, index: int):
        """The ``(upper, lower)`` envelope of one candidate -- or its
        per-channel :class:`Envelope` tuple for multivariate batches
        -- or ``None`` when the reversed stage is off (no envelopes
        kept)."""
        if self._envelopes_nd is not None:
            return self._envelopes_nd[index]
        if self._env_upper is None:
            return None
        return self._env_upper[index], self._env_lower[index]

    def nearest(
        self,
        query: Sequence[float],
        query_envelope: Optional[Envelope] = None,
        query_index: Optional[int] = None,
        exclude: Optional[int] = None,
    ) -> BatchNearest:
        """Exact nearest candidate to ``query`` (see the class notes).

        ``query_index`` declares a self-join membership (``query`` is
        ``candidates[query_index]``), enabling the symmetric
        exact-distance cache when the batch was built with
        ``share_exact=True``.  ``exclude`` skips one candidate index
        (leave-one-out).
        """
        cascade = self.cascade_for(query, query_envelope=query_envelope)
        admissible = [
            j for j in range(len(self.candidates)) if j != exclude
        ]
        if not admissible:
            raise ValueError("no candidates to search")
        cost = "squared" if self.squared else "abs"
        subset = [self.candidates[j] for j in admissible]
        if self._vectorised:
            pre_kim, pre_keogh = cascade.prefilter_bounds(subset)
        elif self.dims is not None:
            from .nd import lb_kim_nd

            pre_kim = [
                lb_kim_nd(cascade.query, c, cost=cost) for c in subset
            ]
            pre_keogh = None
        else:
            pre_kim = [
                lb_kim(cascade.query, c, cost=cost) for c in subset
            ]
            pre_keogh = None
        if self.best_first:
            # cheapest bound first; ties by original position keep the
            # scan deterministic
            order = sorted(
                range(len(admissible)),
                key=lambda t: (pre_kim[t], admissible[t]),
            )
        else:
            order = range(len(admissible))

        best, best_idx = inf, -1
        known: Optional[Dict[int, float]] = None
        if self._cache is not None and query_index is not None:
            known = self._cache.setdefault(query_index, {})
            for j, d in known.items():
                # every cached value is an exact distance, hence a
                # valid threshold; seeding cannot change the winner
                # because the seeded candidate is rescanned below
                if j == exclude:
                    continue
                if d < best or (d == best and (best_idx < 0 or j < best_idx)):
                    best, best_idx = d, j

        stats = cascade.stats
        for t in order:
            j = admissible[t]
            cached = known.get(j) if known is not None else None
            if cached is not None:
                d = cached
                stats.candidates += 1
                stats.reused_exact += 1
                _obs.incr("lb.candidates")
                _obs.incr("lb.reused_exact")
            else:
                d = cascade.distance(
                    self.candidates[j], best_so_far=best,
                    _kim=pre_kim[t],
                    _keogh=None if pre_keogh is None else pre_keogh[t],
                    _candidate_envelope=self.candidate_envelope(j),
                )
                if (
                    d != inf
                    and known is not None
                ):
                    known[j] = d
                    self._cache.setdefault(j, {})[query_index] = d
            # smallest original index among the equally nearest: the
            # first-wins winner of the in-order serial scan
            if d < best or (d == best and (best_idx < 0 or j < best_idx)):
                best, best_idx = d, j
        if best_idx < 0:
            # all infinite distances (possible only with inf inputs);
            # mirror :meth:`LowerBoundCascade.nearest`'s fallback on
            # the first admissible candidate
            best_idx = admissible[0]
            best = cascade._exact_unpruned(self.candidates[best_idx])
        return BatchNearest(
            index=best_idx, distance=best, stats=stats,
            artifacts_reused=cascade.artifacts_reused,
        )
