"""Multivariate lower bounds: per-channel scalar bounds, summed.

For the independent measure the decomposition is immediate:
``cDTW_I(x, y) = sum_k cdtw(x_k, y_k)``, so summing any admissible
per-channel bound stays below it.  For the dependent measure, fix the
optimal DTW_D path: its total cost is the sum over channels of that
*same* path's per-channel cost, and each channel's cost along any
admitted path is at least that channel's own ``cdtw``.  Hence

    sum_k bound_k(x_k, y_k)  <=  sum_k cdtw(x_k, y_k)
                             =   cDTW_I(x, y)  <=  cDTW_D(x, y),

so one summed bound is admissible for *both* multivariate measures
(property-tested in ``tests/lowerbounds/test_nd_bounds.py``).

Channels are summed in channel order with plain sequential float
addition -- the exact fold the numpy chunk kernel
(:func:`repro.core.numpy_backend.lb_keogh_nd_chunk`) replicates, so
the two backends agree bit for bit.
"""

from __future__ import annotations

from math import inf
from typing import List, Optional, Sequence, Tuple

from ..core.cost import CostLike
from .envelope import Envelope, envelope
from .lb_improved import lb_improved
from .lb_keogh import lb_keogh
from .lb_kim import lb_kim

__all__ = [
    "channels",
    "envelopes_nd",
    "lb_kim_nd",
    "lb_keogh_nd",
    "lb_keogh_reversed_nd",
    "lb_improved_nd",
]


def channels(x: Sequence[Sequence[float]]) -> List[List[float]]:
    """Split a ``(length, dims)`` series into per-channel float lists.

    >>> channels([(1.0, 4.0), (2.0, 5.0), (3.0, 6.0)])
    [[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]]
    """
    if not x:
        raise ValueError("cannot split an empty series")
    first = x[0]
    if not hasattr(first, "__len__"):
        raise ValueError(
            "expected (length, dims) samples; got a flat scalar series"
        )
    dims = len(first)
    if dims == 0:
        raise ValueError("samples must have at least one component")
    out: List[List[float]] = [[] for _ in range(dims)]
    for i, v in enumerate(x):
        if len(v) != dims:
            raise ValueError(
                f"sample {i} has {len(v)} components, expected {dims}"
            )
        for k in range(dims):
            out[k].append(float(v[k]))
    return out


def envelopes_nd(
    x: Sequence[Sequence[float]], band: int
) -> Tuple[Envelope, ...]:
    """Per-channel band-``band`` envelopes of a multivariate series.

    Returns one :class:`~repro.lowerbounds.envelope.Envelope` per
    channel, in channel order -- the precomputable artefact the summed
    bounds below consume (and the dataset index persists).
    """
    return tuple(envelope(c, band) for c in channels(x))


def lb_kim_nd(
    x: Sequence[Sequence[float]],
    y: Sequence[Sequence[float]],
    cost: CostLike = "squared",
    tiers: int = 2,
) -> float:
    """Summed per-channel LB_Kim: an O(dims) bound on DTW_I and DTW_D.

    Note the per-channel tier-2 minima may pick *different* corner
    neighbours per channel, which only loosens each channel's bound --
    admissibility per channel is untouched, and the sum inherits it.
    """
    cx, cy = channels(x), channels(y)
    if len(cx) != len(cy):
        raise ValueError(
            f"dimension mismatch: {len(cx)} vs {len(cy)}"
        )
    total = 0.0
    for qx, qy in zip(cx, cy):
        total += lb_kim(qx, qy, cost=cost, tiers=tiers)
    return total


def lb_keogh_nd(
    query_envelopes: Sequence[Envelope],
    candidate: Sequence[Sequence[float]],
    squared: bool = True,
    abandon_above: Optional[float] = None,
) -> float:
    """Summed per-channel LB_Keogh against precomputed envelopes.

    ``abandon_above`` threads the *remaining* threshold into each
    channel's scalar bound, so the abandon decision is identical to
    accumulating every gap cost sequentially and comparing at each
    step (gap costs are non-negative; returns ``inf`` on abandon).
    """
    cand = channels(candidate)
    if len(cand) != len(query_envelopes):
        raise ValueError(
            f"candidate has {len(cand)} channels, envelopes have "
            f"{len(query_envelopes)}"
        )
    total = 0.0
    for env, c in zip(query_envelopes, cand):
        remaining = (
            None if abandon_above is None else abandon_above - total
        )
        part = lb_keogh(env, c, squared=squared, abandon_above=remaining)
        if part == inf:
            return inf
        total += part
    return total


def lb_keogh_reversed_nd(
    query: Sequence[Sequence[float]],
    candidate: Sequence[Sequence[float]],
    band: int,
    squared: bool = True,
    abandon_above: Optional[float] = None,
) -> float:
    """Summed per-channel reversed LB_Keogh (envelope over the
    candidate's channels, scored against the query's)."""
    return lb_keogh_nd(
        envelopes_nd(candidate, band), query,
        squared=squared, abandon_above=abandon_above,
    )


def lb_improved_nd(
    query: Sequence[Sequence[float]],
    candidate: Sequence[Sequence[float]],
    band: int,
    squared: bool = True,
    abandon_above: Optional[float] = None,
    query_envelopes: Optional[Sequence[Envelope]] = None,
) -> float:
    """Summed per-channel LB_Improved (Lemire's two-pass bound).

    Dominates :func:`lb_keogh_nd` channel by channel, hence in sum.
    ``query_envelopes`` accepts the same per-channel tuple
    :func:`envelopes_nd` produces (built here when ``None``).
    """
    cq, cc = channels(query), channels(candidate)
    if len(cq) != len(cc):
        raise ValueError(
            f"dimension mismatch: {len(cq)} vs {len(cc)}"
        )
    if query_envelopes is not None and len(query_envelopes) != len(cq):
        raise ValueError(
            f"query has {len(cq)} channels, envelopes have "
            f"{len(query_envelopes)}"
        )
    total = 0.0
    for k, (q, c) in enumerate(zip(cq, cc)):
        remaining = (
            None if abandon_above is None else abandon_above - total
        )
        part = lb_improved(
            q, c, band, squared=squared, abandon_above=remaining,
            query_envelope=(
                None if query_envelopes is None else query_envelopes[k]
            ),
        )
        if part == inf:
            return inf
        total += part
    return total
