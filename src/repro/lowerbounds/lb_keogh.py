"""LB_Keogh: the envelope lower bound for banded DTW.

For equal-length series and a Sakoe-Chiba band of half-width ``r``,
any admitted warping path matches ``y[i]`` only against samples
``x[i-r .. i+r]``.  Hence the cost of matching ``y[i]`` is at least the
cost of the nearest point of the band-``r`` envelope of ``x``, and

    LB_Keogh(x, y) = sum_i  cost-to-envelope(y[i])  <=  cDTW_r(x, y).

This is the workhorse bound of DTW similarity search; the "reversed"
variant swaps the roles of query and candidate (also valid, often
complementary), and the max of the two is a tighter bound still.
"""

from __future__ import annotations

from math import inf
from typing import Optional, Sequence

from .envelope import Envelope, envelope


def _gap_cost(value: float, lo: float, hi: float, squared: bool) -> float:
    if value > hi:
        d = value - hi
    elif value < lo:
        d = lo - value
    else:
        return 0.0
    return d * d if squared else d


def lb_keogh(
    query_envelope: Envelope,
    candidate: Sequence[float],
    squared: bool = True,
    abandon_above: Optional[float] = None,
) -> float:
    """LB_Keogh of ``candidate`` against a precomputed query envelope.

    Parameters
    ----------
    query_envelope:
        :func:`repro.lowerbounds.envelope.envelope` of the *query* with
        the same band as the cDTW being bounded.
    candidate:
        Equal-length series to bound.
    squared:
        Use squared (default) or absolute per-point gap cost, matching
        the DTW local cost.
    abandon_above:
        Early-abandon the summation once it exceeds this threshold
        (returns ``inf``).

    Returns
    -------
    float
        A value ``<= cdtw(query, candidate, band=query_envelope.band)``.
    """
    if len(candidate) != len(query_envelope):
        raise ValueError(
            f"candidate length {len(candidate)} != envelope length "
            f"{len(query_envelope)}"
        )
    upper = query_envelope.upper
    lower = query_envelope.lower
    total = 0.0
    for i, v in enumerate(candidate):
        total += _gap_cost(v, lower[i], upper[i], squared)
        if abandon_above is not None and total > abandon_above:
            return inf
    return total


def lb_keogh_reversed(
    query: Sequence[float],
    candidate: Sequence[float],
    band: int,
    squared: bool = True,
    abandon_above: Optional[float] = None,
) -> float:
    """LB_Keogh with the envelope built over the *candidate*.

    Costs an envelope construction per call (the UCR suite computes it
    lazily only for candidates that survive the cheaper bounds), but
    frequently prunes candidates the forward bound misses.
    """
    env = envelope(candidate, band)
    return lb_keogh(env, query, squared=squared, abandon_above=abandon_above)
