"""LB_Improved: Lemire's two-pass envelope lower bound.

LB_Keogh charges each candidate sample its gap to the query envelope
and nothing more.  Lemire (2009, "Faster retrieval with a two-pass
dynamic-time-warping lower bound") observed that after paying those
gaps, the candidate may as well have been *projected onto* the
envelope -- and the projection's own DTW distance to the query is
still unpaid.  Bounding that remainder with a second LB_Keogh pass
(envelope built over the projection) gives

    LB_Improved(q, c) = LB_Keogh(env(q), c) + LB_Keogh(env(h), q),

where ``h`` clips ``c`` into the query envelope.  The bound dominates
LB_Keogh (the second term is non-negative) and stays admissible.

Admissibility sketch (squared or absolute cost, band ``r``): fix any
warping path of ``cDTW_r(q, c)`` and a matched pair ``(i, j)`` (so
``|i - j| <= r``).  If ``c_j`` lies inside the query envelope then
``h_j = c_j`` and the pair's cost is at least ``d(q_i, h_j)``.
Otherwise ``c_j`` is, say, above: ``c_j > U_j >= q_i`` and
``h_j = U_j`` sits between them, so

    |q_i - c_j| = (c_j - U_j) + (U_j - q_i) = gap_j(c) + |q_i - h_j|

exactly, and squaring only adds a non-negative cross term.  Summing a
per-``j`` selection (each ``j``'s cheapest matched pair) yields the
first pass; summing a per-``i`` selection of the ``d(q_i, h_j)``
remainders -- each at least ``q_i``'s gap to the band-``r`` envelope
of ``h`` -- yields the second.  The two selections charge disjoint
cost components of the same path, so their sum is a lower bound
(property-tested against the exact DP in
``tests/lowerbounds/test_lb_improved.py``).
"""

from __future__ import annotations

from math import inf
from typing import List, Optional, Sequence

from .envelope import Envelope, envelope
from .lb_keogh import _gap_cost, lb_keogh

__all__ = ["clip_to_envelope", "lb_improved"]


def clip_to_envelope(
    candidate: Sequence[float], env: Envelope
) -> List[float]:
    """Project ``candidate`` onto ``env``: clip each sample into
    ``[lower[i], upper[i]]``.

    The projection is a pure per-sample selection (no arithmetic), so
    it is bit-identical to ``numpy.clip`` on the same inputs.
    """
    if len(candidate) != len(env):
        raise ValueError(
            f"candidate length {len(candidate)} != envelope length "
            f"{len(env)}"
        )
    upper = env.upper
    lower = env.lower
    out: List[float] = []
    for i, v in enumerate(candidate):
        hi = upper[i]
        lo = lower[i]
        out.append(hi if v > hi else (lo if v < lo else v))
    return out


def lb_improved(
    query: Sequence[float],
    candidate: Sequence[float],
    band: int,
    squared: bool = True,
    abandon_above: Optional[float] = None,
    query_envelope: Optional[Envelope] = None,
    keogh: Optional[float] = None,
) -> float:
    """Two-pass lower bound on ``cdtw(query, candidate, band=band)``.

    Parameters
    ----------
    query, candidate:
        Equal-length series.
    band:
        Sakoe-Chiba half-width of the cDTW being bounded (both passes
        use it for their envelopes).
    squared:
        Squared (default) or absolute per-point gap cost, matching the
        DTW local cost.
    abandon_above:
        Early-abandon once the running total provably exceeds this
        threshold (returns ``inf``).  Gap costs are non-negative and
        IEEE addition is monotone, so the decision is identical to
        comparing the full bound against the threshold.
    query_envelope:
        Precomputed band-``band`` envelope of ``query`` (e.g. from a
        :class:`repro.index.DatasetIndex`); built here when ``None``.
    keogh:
        The already-known first pass ``LB_Keogh(env(query),
        candidate)`` -- the cascade reuses its forward-Keogh stage
        value.  Must be the *full* (non-abandoned) bound.

    Returns
    -------
    float
        ``LB_Keogh + second pass``, or ``inf`` if abandoned.  Always
        ``>= LB_Keogh`` and ``<= cDTW``.
    """
    if len(candidate) != len(query):
        raise ValueError("lb_improved requires equal-length series")
    if query_envelope is None:
        query_envelope = envelope(query, band)
    elif query_envelope.band != band or len(query_envelope) != len(query):
        raise ValueError("query_envelope does not match query and band")

    if keogh is None:
        keogh = lb_keogh(
            query_envelope, candidate,
            squared=squared, abandon_above=abandon_above,
        )
    if keogh == inf:
        return inf
    if abandon_above is not None and keogh > abandon_above:
        return inf

    h = clip_to_envelope(candidate, query_envelope)
    env_h = envelope(h, band)
    upper = env_h.upper
    lower = env_h.lower
    second = 0.0
    for i, v in enumerate(query):
        second += _gap_cost(v, lower[i], upper[i], squared)
        if abandon_above is not None and keogh + second > abandon_above:
            return inf
    return keogh + second
