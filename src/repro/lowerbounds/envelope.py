"""Warping envelopes: per-point min/max over a sliding band.

The LB_Keogh lower bound compares a candidate series against the
*envelope* of the query: ``upper[i] = max(q[i-r : i+r+1])`` and
``lower[i] = min(...)`` for band half-width ``r``.  Computing each
entry naively costs O(r); the monotonic-deque algorithm (Lemire) used
here computes the whole envelope in O(n) regardless of ``r``, which is
what production DTW search code does.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class Envelope:
    """Upper and lower warping envelopes of a series.

    Satisfies ``lower[i] <= x[i] <= upper[i]`` for every ``i`` and,
    pointwise, widens monotonically with the band.
    """

    band: int
    upper: List[float]
    lower: List[float]

    def __len__(self) -> int:
        return len(self.upper)


def envelope(x: Sequence[float], band: int) -> Envelope:
    """O(n) sliding min/max envelope of ``x`` with half-width ``band``.

    >>> e = envelope([1.0, 3.0, 2.0], 1)
    >>> e.upper
    [3.0, 3.0, 3.0]
    >>> e.lower
    [1.0, 1.0, 2.0]
    """
    if band < 0:
        raise ValueError("band must be non-negative")
    n = len(x)
    if n == 0:
        raise ValueError("cannot compute envelope of an empty series")

    upper = [0.0] * n
    lower = [0.0] * n
    maxq: deque = deque()  # indices, values decreasing
    minq: deque = deque()  # indices, values increasing

    # window for position i is [i - band, i + band]; stream index j
    for j in range(n + band):
        if j < n:
            v = x[j]
            while maxq and x[maxq[-1]] <= v:
                maxq.pop()
            maxq.append(j)
            while minq and x[minq[-1]] >= v:
                minq.pop()
            minq.append(j)
        i = j - band
        if i >= 0:
            while maxq and maxq[0] < i - band:
                maxq.popleft()
            while minq and minq[0] < i - band:
                minq.popleft()
            upper[i] = x[maxq[0]]
            lower[i] = x[minq[0]]
    return Envelope(band, upper, lower)


def envelope_naive(x: Sequence[float], band: int) -> Envelope:
    """O(n*r) reference implementation used by the test-suite."""
    if band < 0:
        raise ValueError("band must be non-negative")
    n = len(x)
    if n == 0:
        raise ValueError("cannot compute envelope of an empty series")
    upper = []
    lower = []
    for i in range(n):
        window = x[max(0, i - band):min(n, i + band + 1)]
        upper.append(max(window))
        lower.append(min(window))
    return Envelope(band, upper, lower)
