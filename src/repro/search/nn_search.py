"""1-nearest-neighbour search under several DTW strategies.

Strategies, from the paper's comparison space:

* ``"cdtw"``          -- exact banded DTW per candidate, no tricks;
* ``"cdtw+lb"``       -- exact, with the lossless lower-bound cascade
  and early abandoning (the UCR-suite style, cDTW-only optimisation);
* ``"fastdtw"``       -- the approximation, which must run in full for
  every candidate (no valid lower bounds exist for it);
* ``"euclidean"``     -- the ``w = 0`` baseline.

The exact strategies return identical neighbours by construction; the
repeated-use benchmark contrasts their work (cells, wall-clock) with
FastDTW's.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import inf
from typing import Optional, Sequence

from ..core.cdtw import cdtw
from ..core.euclidean import euclidean
from ..core.fastdtw import fastdtw
from ..lowerbounds.cascade import CascadeStats, LowerBoundCascade
from ..obs import trace as _obs
from ..runtime import Runtime, _resolve_legacy

STRATEGIES = ("cdtw", "cdtw+lb", "fastdtw", "euclidean")


@dataclass(frozen=True)
class NnResult:
    """Outcome of a 1-NN search.

    ``cells`` is the total number of DP lattice cells evaluated across
    all candidates (0 for pure Euclidean); ``stats`` is populated only
    by the ``"cdtw+lb"`` strategy.
    """

    index: int
    distance: float
    strategy: str
    cells: int
    stats: Optional[CascadeStats] = None


def nearest_neighbor(
    query: Sequence[float],
    candidates: Sequence[Sequence[float]],
    strategy: str = "cdtw+lb",
    band: Optional[int] = None,
    window: Optional[float] = None,
    radius: int = 1,
    runtime: Optional[Runtime] = None,
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    executor=None,
    index=None,
) -> NnResult:
    """Find the candidate nearest to ``query``.

    Parameters
    ----------
    query:
        The query series.
    candidates:
        Non-empty list of candidate series (equal length to the query
        for the banded / lower-bounded strategies).
    strategy:
        One of :data:`STRATEGIES`.
    band, window:
        Band half-width (cells) or fraction-of-length for the cDTW
        strategies; exactly one must be given for those strategies.
    radius:
        FastDTW radius for the ``"fastdtw"`` strategy.
    runtime:
        Execution context, per :mod:`repro.runtime` (``None`` = the
        process default).  A parallel context fans the candidate scan
        out over the :mod:`repro.batch` engine; the full-compute
        strategies return identical results -- same index, distance
        and cell total -- for every context.  ``"cdtw+lb"`` always
        runs serially: its best-so-far pruning threads a threshold
        through the scan and is inherently order-dependent (the
        runtime's backend still applies to its DP stages).
    workers, backend, executor:
        Deprecated per-knob overrides of the corresponding ``runtime``
        fields (each call emits a :class:`DeprecationWarning`).
    index:
        Optional ahead-of-time index of ``candidates`` (built by
        ``repro.index``); ``"cdtw+lb"`` only.  The index must prove --
        by content fingerprint -- that it was built from exactly
        these candidates with this band, and the search then reuses
        its precomputed envelopes, scans best-first and runs the
        LB_Improved stage.  All of that is lossless: the returned
        neighbour and distance are bit-identical to the index-free
        path.  The resolved ``runtime`` still governs the backend
        (``index=`` rides on, not around, ``Runtime.resolve``).

    Returns
    -------
    NnResult
    """
    rt = _resolve_legacy(
        "nearest_neighbor", runtime, workers=workers, backend=backend,
        executor=executor,
    )
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; pick from {STRATEGIES}")
    if not candidates:
        raise ValueError("no candidates to search")
    if index is not None and strategy != "cdtw+lb":
        raise ValueError(
            "index= applies only to the 'cdtw+lb' strategy"
        )

    trace = _obs.active_trace()
    if trace is None:
        return _nearest_neighbor_impl(
            query, candidates, strategy, band, window, radius, rt, index,
        )
    trace.incr("nn.queries")
    trace.incr("nn.candidates", len(candidates))
    with _obs.span("nn_search"):
        return _nearest_neighbor_impl(
            query, candidates, strategy, band, window, radius, rt, index,
        )


def _nearest_neighbor_impl(
    query, candidates, strategy, band, window, radius, rt, index=None,
) -> NnResult:
    """The strategy dispatch behind :func:`nearest_neighbor`.

    Split out so the public entry point's observability hook costs one
    module-global read when no :class:`repro.obs.RunTrace` is active.

    Multivariate ``(length, dims)`` queries route the exact
    strategies to the *dependent* measure (one DP over vector
    samples, ``cdtw_d`` semantics) and ``"fastdtw"`` to
    :func:`repro.core.multivariate.fastdtw_nd`, so ``"cdtw"`` and
    ``"cdtw+lb"`` still return identical neighbours on vector data.
    """
    nd = bool(query) and hasattr(query[0], "__len__")
    if nd and strategy == "euclidean":
        raise ValueError(
            "strategy 'euclidean' is univariate; multivariate "
            "(length, dims) series need a DTW strategy (cdtw, "
            "cdtw+lb, fastdtw)"
        )
    if rt.parallel and strategy != "cdtw+lb" and not (
        nd and strategy == "fastdtw"
    ):
        return _nearest_neighbor_batched(
            query, candidates, strategy, band, window, radius, rt, nd,
        )

    if strategy == "euclidean":
        best_idx, best = 0, inf
        for idx, cand in enumerate(candidates):
            d = euclidean(query, cand, abandon_above=best)
            if d < best:
                best, best_idx = d, idx
        return NnResult(best_idx, best, strategy, cells=0)

    if strategy == "fastdtw":
        if nd:
            from ..core.multivariate import fastdtw_nd as fast_fn
        else:
            fast_fn = fastdtw
        best_idx, best, cells = 0, inf, 0
        for idx, cand in enumerate(candidates):
            result = fast_fn(query, cand, radius=radius)
            cells += result.cells
            if result.distance < best:
                best, best_idx = result.distance, idx
        return NnResult(best_idx, best, strategy, cells=cells)

    band_cells_ = _resolve_band(len(query), band, window)

    if strategy == "cdtw":
        if nd or rt.backend_name != "python":
            from ..core.measures import measure_fn

            fn = measure_fn(
                "cdtw_d" if nd else "cdtw",
                band=band_cells_, backend=rt.backend_name,
            )
        else:
            fn = None
        best_idx, best, cells = 0, inf, 0
        for idx, cand in enumerate(candidates):
            if fn is not None:
                result = fn(query, cand)
            else:
                result = cdtw(query, cand, band=band_cells_)
            cells += result.cells
            if result.distance < best:
                best, best_idx = result.distance, idx
        return NnResult(best_idx, best, strategy, cells=cells)

    # strategy == "cdtw+lb"
    if index is not None:
        index.require(
            kind="collection", band=band_cells_, normalize=False,
            length=len(query), count=len(candidates),
            dims=len(query[0]) if nd else 1,
        )
        index.verify_collection(candidates)
        hit = index.searcher(runtime=rt).nearest(query)
        return NnResult(
            hit.index, hit.distance, strategy,
            cells=hit.stats.cells, stats=hit.stats,
        )
    cascade = LowerBoundCascade(query, band_cells_, runtime=rt)
    best_idx, best = cascade.nearest(candidates)
    return NnResult(
        best_idx, best, strategy,
        cells=cascade.stats.cells, stats=cascade.stats,
    )


def _nearest_neighbor_batched(
    query, candidates, strategy, band, window, radius, rt, nd=False,
) -> NnResult:
    """Fan the candidate scan out over the batch engine.

    Computes every candidate's distance in full (exactly what the
    serial loops of the non-pruned strategies do) and applies the same
    first-wins tie-break, so the result is identical to the serial
    context.  Multivariate scans swap ``"cdtw"`` for the batch
    engine's ``"cdtw_d"`` measure (there is no batched nd fastdtw;
    that combination stays serial).
    """
    from ..batch.engine import argmin_first, batch_distances

    kwargs: dict = {"measure": "cdtw_d" if nd else strategy}
    if strategy == "cdtw":
        kwargs["band"] = _resolve_band(len(query), band, window)
    elif strategy == "fastdtw":
        kwargs["radius"] = radius
    series = [list(query)] + [list(c) for c in candidates]
    pairs = [(0, i + 1) for i in range(len(candidates))]
    result = batch_distances(series, pairs=pairs, runtime=rt, **kwargs)
    best_idx, best = argmin_first(result.distances)
    return NnResult(best_idx, best, strategy, cells=result.cells)


def _resolve_band(n: int, band: Optional[int], window: Optional[float]) -> int:
    import math

    if (band is None) == (window is None):
        raise ValueError("specify exactly one of band= or window=")
    if band is not None:
        if band < 0:
            raise ValueError("band must be non-negative")
        return band
    if not 0.0 <= window <= 1.0:
        raise ValueError("window fraction must be in [0, 1]")
    return math.ceil(window * n)
