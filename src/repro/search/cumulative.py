"""Cumulative-bound early abandoning for cDTW (UCR-suite style).

Plain early abandoning stops a DTW once the current row's *accumulated*
minimum exceeds the threshold.  The UCR suite (the paper's [3]) stops
far earlier by also charging what the *remaining* rows must at least
cost: row ``i'`` of ``x`` can only match ``y`` samples within the
band, so it contributes at least its LB_Keogh gap cost against the
band envelope of ``y``.  Summing those per-row gaps from the tail
gives a suffix bound; the DP abandons as soon as

    min(accumulated row i) + suffix_bound[i] > best_so_far.

The result is still exact whenever it completes -- the bound only ever
justifies *discarding* candidates that provably cannot win.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.cost import resolve_cost
from ..core.engine import DtwResult, dp_over_window
from ..core.validate import validate_pair
from ..core.window import Window
from ..lowerbounds.envelope import Envelope, envelope
from ..obs import trace as _obs
from ..runtime import Runtime, _resolve_legacy


def suffix_gap_bounds(
    x: Sequence[float],
    y_envelope: Envelope,
    squared: bool = True,
) -> List[float]:
    """Per-row suffix lower bounds of ``x`` against ``y``'s envelope.

    ``result[i]`` is the summed gap cost of samples ``x[i+1:]`` against
    the envelope -- a valid lower bound on what any banded path must
    still pay after finishing row ``i``, provided the envelope band is
    at least the DTW band.
    """
    if len(x) != len(y_envelope):
        raise ValueError(
            f"series length {len(x)} != envelope length {len(y_envelope)}"
        )
    upper, lower = y_envelope.upper, y_envelope.lower
    gaps = []
    for i, v in enumerate(x):
        if v > upper[i]:
            d = v - upper[i]
        elif v < lower[i]:
            d = lower[i] - v
        else:
            d = 0.0
        gaps.append(d * d if squared else d)
    out = [0.0] * len(x)
    acc = 0.0
    for i in range(len(x) - 1, -1, -1):
        out[i] = acc
        acc += gaps[i]
    return out


def cdtw_cumulative_abandon(
    x: Sequence[float],
    y: Sequence[float],
    band: int,
    threshold: float,
    y_envelope: Optional[Envelope] = None,
    squared: bool = True,
    backend: Optional[str] = None,
    runtime: Optional[Runtime] = None,
) -> DtwResult:
    """Banded DTW with cumulative-suffix-bound early abandoning.

    Exact when it completes (``abandoned=False``); abandons -- usually
    after touching far fewer cells than plain early abandoning -- when
    the distance provably exceeds ``threshold``.

    Parameters
    ----------
    x, y:
        Equal-length series.
    band:
        Sakoe-Chiba half-width in cells.
    threshold:
        The best-so-far to beat.
    y_envelope:
        Precomputed band-``band`` envelope of ``y`` (built if absent;
        pass it when scanning many ``x`` against one ``y``).
    squared:
        Local cost convention.
    runtime:
        Execution context, per :mod:`repro.runtime` (``None`` = the
        process default); only its backend applies here.  Distances,
        cells and abandon decisions are bit-identical on every
        backend: the suffix bounds themselves are computed in the
        same accumulation order.
    backend:
        Deprecated override of the runtime's backend (emits a
        :class:`DeprecationWarning`).
    """
    rt = _resolve_legacy(
        "cdtw_cumulative_abandon", runtime, backend=backend
    )
    validate_pair(x, y)
    if len(x) != len(y):
        raise ValueError("cumulative abandoning requires equal lengths")
    if band < 0:
        raise ValueError("band must be non-negative")
    _obs.incr("cumulative.calls")
    env = y_envelope if y_envelope is not None else envelope(y, band)
    if env.band < band:
        raise ValueError(
            f"envelope band {env.band} narrower than DTW band {band}; "
            "the suffix bound would be invalid"
        )
    kernels = rt.kernels()
    if kernels.name == "python":
        _obs.incr("lb.suffix_builds")
        suffix = suffix_gap_bounds(x, env, squared=squared)
        window = Window.band(len(x), len(y), band)
        return dp_over_window(
            x, y, window,
            cost="squared" if squared else "abs",
            abandon_above=threshold,
            suffix_bound=suffix,
        )
    from ..core.kernels import banded_window

    _obs.incr("lb.suffix_builds")
    suffix = kernels.suffix_gap_bounds(x, env, squared=squared)
    window = banded_window(len(x), len(y), band)
    return kernels.dtw(
        x, y, window,
        cost="squared" if squared else "abs",
        abandon_above=threshold,
        suffix_bound=suffix,
    )
