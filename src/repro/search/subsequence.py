"""Subsequence similarity search over a long stream (UCR-suite style).

Given a z-normalised query of length ``m`` and a long stream, find the
stream offset whose z-normalised window of length ``m`` is nearest to
the query under banded DTW.  The implementation composes the package's
substrates exactly the way Rakthanmanon et al. (the paper's [3]) do:

* just-in-time normalisation of each window via running statistics,
* the LB_Kim / LB_Keogh cascade against the best-so-far,
* early-abandoning cDTW for survivors.

This is the machinery behind the paper's "one trillion subsequences in
1.4 days" contrast (footnote 2): an *approximation-free* search that
prunes nearly every window, something FastDTW cannot participate in.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import inf
from typing import List, Optional, Sequence, Tuple

from ..core.validate import validate_series
from ..lowerbounds.cascade import CascadeStats, LowerBoundCascade
from ..preprocess.normalize import znorm


@dataclass(frozen=True)
class SubsequenceMatch:
    """Best match of a subsequence search.

    Attributes
    ----------
    start:
        Offset of the best window in the stream.
    distance:
        Exact cDTW distance of the (z-normalised) best window.
    windows:
        Number of windows examined.
    stats:
        Cascade pruning counters over the whole search.
    """

    start: int
    distance: float
    windows: int
    stats: CascadeStats


def subsequence_search(
    query: Sequence[float],
    stream: Sequence[float],
    band: int,
    step: int = 1,
    normalize: bool = True,
) -> SubsequenceMatch:
    """Exact banded-DTW subsequence search of ``query`` in ``stream``.

    Parameters
    ----------
    query:
        Query series (z-normalised internally when ``normalize``).
    stream:
        The long series to scan; must be at least as long as the query.
    band:
        Sakoe-Chiba half-width in cells.
    step:
        Stride between window starts (1 = every offset).
    normalize:
        Z-normalise the query and every window (the meaningful setting;
        disable only for raw-space experiments).

    Returns
    -------
    SubsequenceMatch
        The provably nearest window under cDTW with this band.
    """
    m = len(query)
    if m == 0:
        raise ValueError("empty query")
    if len(stream) < m:
        raise ValueError("stream shorter than query")
    if step < 1:
        raise ValueError("step must be positive")
    validate_series(query, "query")
    validate_series(stream, "stream")

    q = znorm(query) if normalize else list(query)
    cascade = LowerBoundCascade(q, band)

    best_start = 0
    best = inf
    windows = 0
    for start in range(0, len(stream) - m + 1, step):
        window = stream[start:start + m]
        w = znorm(window) if normalize else list(window)
        windows += 1
        d = cascade.distance(w, best_so_far=best)
        if d < best:
            best, best_start = d, start
    return SubsequenceMatch(best_start, best, windows, cascade.stats)


def subsequence_search_topk(
    query: Sequence[float],
    stream: Sequence[float],
    band: int,
    k: int,
    step: int = 1,
    exclusion: Optional[int] = None,
    normalize: bool = True,
) -> List["SubsequenceMatch"]:
    """The ``k`` best *non-overlapping* matches of ``query`` in ``stream``.

    The natural monitoring query ("every occurrence of this pattern"):
    exact distances are computed for every window (pruned against the
    current k-th best), then matches are selected greedily
    best-first with an ``exclusion``-radius overlap ban (default: the
    query length), the standard top-k convention.

    Returns at most ``k`` matches, best first; fewer if the exclusion
    zone exhausts the stream.
    """
    m = len(query)
    if m == 0:
        raise ValueError("empty query")
    if len(stream) < m:
        raise ValueError("stream shorter than query")
    if k < 1:
        raise ValueError("k must be positive")
    if step < 1:
        raise ValueError("step must be positive")
    exclusion = m if exclusion is None else exclusion
    if exclusion < 1:
        raise ValueError("exclusion must be positive")
    validate_series(query, "query")
    validate_series(stream, "stream")

    q = znorm(query) if normalize else list(query)
    cascade = LowerBoundCascade(q, band)

    # exact distance for every window, pruned against a conservative
    # threshold: each of the final k matches suppresses at most
    # 2*(exclusion/step) overlapping windows, so any window ranked
    # worse than the heap bound below provably cannot reach the final
    # top-k and may be pruned
    import heapq

    heap_bound = k * (2 * (exclusion // step) + 2)
    kth_best = inf
    worst_heap: List[float] = []  # max-heap via negatives
    scored: List[Tuple[float, int]] = []
    windows = 0
    for start in range(0, len(stream) - m + 1, step):
        w = stream[start:start + m]
        w = znorm(w) if normalize else list(w)
        windows += 1
        d = cascade.distance(w, best_so_far=kth_best)
        if d == inf:
            continue
        scored.append((d, start))
        heapq.heappush(worst_heap, -d)
        if len(worst_heap) > heap_bound:
            heapq.heappop(worst_heap)
            kth_best = -worst_heap[0]

    scored.sort()
    chosen: List[SubsequenceMatch] = []
    taken: List[int] = []
    for d, start in scored:
        if len(chosen) >= k:
            break
        if any(abs(start - t) < exclusion for t in taken):
            continue
        taken.append(start)
        chosen.append(
            SubsequenceMatch(start, d, windows, cascade.stats)
        )
    return chosen
