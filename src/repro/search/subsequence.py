"""Subsequence similarity search over a long stream (UCR-suite style).

Given a z-normalised query of length ``m`` and a long stream, find the
stream offset whose z-normalised window of length ``m`` is nearest to
the query under banded DTW.  The implementation composes the package's
substrates exactly the way Rakthanmanon et al. (the paper's [3]) do:

* just-in-time normalisation of each window via running statistics,
* the LB_Kim / LB_Keogh cascade against the best-so-far,
* early-abandoning cDTW for survivors.

This is the machinery behind the paper's "one trillion subsequences in
1.4 days" contrast (footnote 2): an *approximation-free* search that
prunes nearly every window, something FastDTW cannot participate in.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import inf
from typing import List, Optional, Sequence, Tuple

from ..core.validate import validate_series
from ..lowerbounds.cascade import CascadeStats, LowerBoundCascade
from ..preprocess.normalize import znorm, znorm_nd
from ..runtime import Runtime


def _check_nd(query, stream) -> bool:
    """Whether this is a multivariate search; both sides must agree.

    Multivariate queries scan under the dependent measure (``cdtw_d``
    semantics via the nd cascade), windows z-normalised per channel.
    """
    query_nd = bool(query) and hasattr(query[0], "__len__")
    stream_nd = bool(stream) and hasattr(stream[0], "__len__")
    if query_nd != stream_nd:
        raise ValueError(
            "query and stream must both be univariate or both "
            "multivariate (length, dims) series"
        )
    return query_nd


@dataclass(frozen=True)
class SubsequenceMatch:
    """Best match of a subsequence search.

    Attributes
    ----------
    start:
        Offset of the best window in the stream.
    distance:
        Exact cDTW distance of the (z-normalised) best window.
    windows:
        Number of windows examined.
    stats:
        Cascade pruning counters over the whole search.
    """

    start: int
    distance: float
    windows: int
    stats: CascadeStats


def subsequence_search(
    query: Sequence[float],
    stream: Sequence[float],
    band: int,
    step: int = 1,
    normalize: bool = True,
    runtime: Optional[Runtime] = None,
    index=None,
) -> SubsequenceMatch:
    """Exact banded-DTW subsequence search of ``query`` in ``stream``.

    Parameters
    ----------
    query:
        Query series (z-normalised internally when ``normalize``).
    stream:
        The long series to scan; must be at least as long as the query.
    band:
        Sakoe-Chiba half-width in cells.
    step:
        Stride between window starts (1 = every offset).
    normalize:
        Z-normalise the query and every window (the meaningful setting;
        disable only for raw-space experiments).
    runtime:
        Execution context, per :mod:`repro.runtime` (``None`` = the
        process default).  The serial context runs the LB-cascade
        scan; a parallel context computes every window's exact
        distance as one :mod:`repro.batch` job (warm executor and
        vectorised kernels apply) and re-derives the same winner --
        pruning is lossless, so ``start`` and ``distance`` are
        bit-identical either way.  Only the ``stats`` provenance
        differs: the batched path never prunes, so it reports every
        window as a full DP.
    index:
        Optional ahead-of-time index of this stream's windows (built
        by ``repro.index`` with the same ``band``/``step``/
        ``normalize``); must prove by content fingerprint that it
        describes exactly this stream.  The indexed scan serves the
        precomputed z-normalised windows and envelopes, orders them
        best-first and runs the LB_Improved stage -- all lossless, so
        ``start`` and ``distance`` are bit-identical to the serial
        index-free scan.  The indexed path is sequential (it *is* the
        pruned cascade), so a parallel runtime contributes only its
        backend.

    Returns
    -------
    SubsequenceMatch
        The provably nearest window under cDTW with this band.
    """
    rt = Runtime.resolve(runtime)
    m = len(query)
    if m == 0:
        raise ValueError("empty query")
    if len(stream) < m:
        raise ValueError("stream shorter than query")
    if step < 1:
        raise ValueError("step must be positive")
    validate_series(query, "query")
    validate_series(stream, "stream")
    nd = _check_nd(query, stream)

    if nd:
        q = znorm_nd(query) if normalize else list(query)
    else:
        q = znorm(query) if normalize else list(query)

    if index is not None:
        index.require(
            kind="windows", band=band, window=m, step=step,
            normalize=normalize,
            dims=len(query[0]) if nd else 1,
        )
        index.verify_stream(stream)
        hit = index.searcher(runtime=rt).nearest(q)
        return SubsequenceMatch(
            index.starts[hit.index], hit.distance, len(index), hit.stats,
        )

    if rt.parallel:
        starts, distances, cells = _batched_window_distances(
            q, stream, band, step, normalize, rt, nd
        )
        from ..batch.engine import argmin_first

        best_idx, best = argmin_first(distances)
        stats = _full_compute_stats(len(starts), cells)
        return SubsequenceMatch(starts[best_idx], best, len(starts), stats)

    cascade = LowerBoundCascade(q, band, runtime=rt)

    best_start = 0
    best = inf
    windows = 0
    for start in range(0, len(stream) - m + 1, step):
        window = stream[start:start + m]
        if nd:
            w = znorm_nd(window) if normalize else list(window)
        else:
            w = znorm(window) if normalize else list(window)
        windows += 1
        d = cascade.distance(w, best_so_far=best)
        if d < best:
            best, best_start = d, start
    return SubsequenceMatch(best_start, best, windows, cascade.stats)


def subsequence_search_topk(
    query: Sequence[float],
    stream: Sequence[float],
    band: int,
    k: int,
    step: int = 1,
    exclusion: Optional[int] = None,
    normalize: bool = True,
    runtime: Optional[Runtime] = None,
    index=None,
) -> List["SubsequenceMatch"]:
    """The ``k`` best *non-overlapping* matches of ``query`` in ``stream``.

    The natural monitoring query ("every occurrence of this pattern"):
    exact distances are computed for every window (pruned against the
    current k-th best), then matches are selected greedily
    best-first with an ``exclusion``-radius overlap ban (default: the
    query length), the standard top-k convention.

    A parallel ``runtime`` computes every window's exact distance on
    the batch engine and feeds the same greedy selection, so the
    chosen offsets and distances are identical to the serial scan
    (the heap prune is lossless: it only drops windows that provably
    cannot reach the final top-k).

    ``index`` accepts an ahead-of-time index of this stream's windows
    (as in :func:`subsequence_search`): the scan then reuses the
    stored windows and envelopes and adds the LB_Improved stage.  Any
    bound only ever drops windows whose exact distance exceeds the
    current heap threshold -- windows the selection below could never
    choose -- so the returned offsets and distances are identical.

    Returns at most ``k`` matches, best first; fewer if the exclusion
    zone exhausts the stream.
    """
    rt = Runtime.resolve(runtime)
    m = len(query)
    if m == 0:
        raise ValueError("empty query")
    if len(stream) < m:
        raise ValueError("stream shorter than query")
    if k < 1:
        raise ValueError("k must be positive")
    if step < 1:
        raise ValueError("step must be positive")
    exclusion = m if exclusion is None else exclusion
    if exclusion < 1:
        raise ValueError("exclusion must be positive")
    validate_series(query, "query")
    validate_series(stream, "stream")
    nd = _check_nd(query, stream)

    if nd:
        q = znorm_nd(query) if normalize else list(query)
    else:
        q = znorm(query) if normalize else list(query)

    if index is not None:
        index.require(
            kind="windows", band=band, window=m, step=step,
            normalize=normalize,
            dims=len(query[0]) if nd else 1,
        )
        index.verify_stream(stream)
        with index.searcher(runtime=rt).scan(q) as scan:
            return _topk_select(
                lambda j, bound: scan.distance(j, best_so_far=bound),
                index.starts, k, step, exclusion, scan.stats,
            )

    if rt.parallel:
        starts, distances, cells = _batched_window_distances(
            q, stream, band, step, normalize, rt, nd
        )
        windows = len(starts)
        stats = _full_compute_stats(windows, cells)
        scored = sorted(zip(distances, starts))
        chosen: List[SubsequenceMatch] = []
        taken: List[int] = []
        for d, start in scored:
            if len(chosen) >= k:
                break
            if any(abs(start - t) < exclusion for t in taken):
                continue
            taken.append(start)
            chosen.append(SubsequenceMatch(start, d, windows, stats))
        return chosen

    cascade = LowerBoundCascade(q, band, runtime=rt)
    starts = list(range(0, len(stream) - m + 1, step))

    def window_distance(j: int, bound: float) -> float:
        w = stream[starts[j]:starts[j] + m]
        if nd:
            w = znorm_nd(w) if normalize else list(w)
        else:
            w = znorm(w) if normalize else list(w)
        return cascade.distance(w, best_so_far=bound)

    return _topk_select(
        window_distance, starts, k, step, exclusion, cascade.stats,
    )


def _topk_select(
    distance_fn,
    starts: Sequence[int],
    k: int,
    step: int,
    exclusion: int,
    stats: CascadeStats,
) -> List[SubsequenceMatch]:
    """The pruned scoring + greedy selection behind top-k search.

    ``distance_fn(j, bound)`` must return window ``j``'s exact
    distance, or ``inf`` exactly when it provably exceeds ``bound``
    (the cascade contract).  Exact distance for every window, pruned
    against a conservative threshold: each of the final k matches
    suppresses at most 2*(exclusion/step) overlapping windows, so any
    window ranked worse than the heap bound below provably cannot
    reach the final top-k and may be pruned.
    """
    import heapq

    heap_bound = k * (2 * (exclusion // step) + 2)
    kth_best = inf
    worst_heap: List[float] = []  # max-heap via negatives
    scored: List[Tuple[float, int]] = []
    for j, start in enumerate(starts):
        d = distance_fn(j, kth_best)
        if d == inf:
            continue
        scored.append((d, start))
        heapq.heappush(worst_heap, -d)
        if len(worst_heap) > heap_bound:
            heapq.heappop(worst_heap)
            kth_best = -worst_heap[0]

    scored.sort()
    chosen: List[SubsequenceMatch] = []
    taken: List[int] = []
    for d, start in scored:
        if len(chosen) >= k:
            break
        if any(abs(start - t) < exclusion for t in taken):
            continue
        taken.append(start)
        chosen.append(
            SubsequenceMatch(start, d, len(starts), stats)
        )
    return chosen


def _batched_window_distances(
    q: Sequence[float],
    stream: Sequence[float],
    band: int,
    step: int,
    normalize: bool,
    rt: Runtime,
    nd: bool = False,
) -> Tuple[List[int], List[float], int]:
    """Exact cDTW of ``q`` against every stream window, batched.

    Materialises the (z-normalised) windows and computes each exact
    distance as one batch-engine job (the ``cdtw_d`` measure for
    multivariate streams).  Returns the window start offsets, their
    distances in offset order, and the DP cell total.
    """
    from ..batch.engine import batch_distances

    m = len(q)
    starts = list(range(0, len(stream) - m + 1, step))
    if nd:
        windows = [
            znorm_nd(stream[s:s + m]) if normalize
            else list(stream[s:s + m])
            for s in starts
        ]
    else:
        windows = [
            znorm(stream[s:s + m]) if normalize
            else list(stream[s:s + m])
            for s in starts
        ]
    result = batch_distances(
        [list(q)] + windows,
        pairs=[(0, i + 1) for i in range(len(windows))],
        measure="cdtw_d" if nd else "cdtw",
        band=band,
        runtime=rt,
    )
    return starts, list(result.distances), result.cells


def _full_compute_stats(windows: int, cells: int) -> CascadeStats:
    """Cascade counters for a batched (never-pruning) scan."""
    return CascadeStats(candidates=windows, full_dtw=windows, cells=cells)
