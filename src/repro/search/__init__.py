"""Similarity search: 1-NN and subsequence search under DTW.

Implements the "repeated use" setting of the paper's Section 3.4: when
DTW is evaluated many times (classification, nearest-neighbour search,
monitoring), exact cDTW admits lower bounding and early abandoning that
FastDTW cannot use, widening cDTW's lead by orders of magnitude.
"""

from .cumulative import cdtw_cumulative_abandon, suffix_gap_bounds
from .early_abandon import early_abandoning_cdtw, early_abandoning_euclidean
from .nn_search import NnResult, nearest_neighbor
from .subsequence import (
    SubsequenceMatch,
    subsequence_search,
    subsequence_search_topk,
)

__all__ = [
    "NnResult",
    "SubsequenceMatch",
    "cdtw_cumulative_abandon",
    "early_abandoning_cdtw",
    "early_abandoning_euclidean",
    "nearest_neighbor",
    "subsequence_search",
    "subsequence_search_topk",
    "suffix_gap_bounds",
]
