"""Early-abandoning distance computations.

Early abandoning stops a distance computation as soon as its running
value provably exceeds a threshold (the best-so-far in a search).  It
applies to Euclidean distance (running sum) and to cDTW (row minima of
the DP are monotone lower bounds) -- but *not* to FastDTW, whose
coarse-level distances are not bounds on its final answer.  This
asymmetry is one of the paper's Section 3.4 arguments.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.cdtw import cdtw
from ..core.engine import DtwResult
from ..core.euclidean import euclidean


def early_abandoning_euclidean(
    x: Sequence[float], y: Sequence[float], threshold: float,
) -> float:
    """Squared Euclidean distance, or ``inf`` once it exceeds ``threshold``."""
    return euclidean(x, y, abandon_above=threshold)


def early_abandoning_cdtw(
    x: Sequence[float],
    y: Sequence[float],
    threshold: float,
    window: Optional[float] = None,
    band: Optional[int] = None,
) -> DtwResult:
    """Banded DTW that abandons once every path is provably > ``threshold``.

    The result's ``abandoned`` flag distinguishes "pruned" from an
    exact (finite) distance; ``cells`` shows how much of the lattice
    was actually evaluated, which the benchmarks report as the saving.
    """
    return cdtw(x, y, window=window, band=band, abandon_above=threshold)
