"""repro.obs: the unified observability layer.

The paper's whole argument is an *accounting* argument -- cDTW wins
because its DP touches fewer cells and carries less structural overhead
than FastDTW's coarsen/project/dilate recursion -- so the package needs
one instrumentation substrate that every engine reports through, not
per-module ad-hoc timers.  This package provides it:

* :class:`RunTrace` -- a context manager that activates collection.
  While a trace is active, the hot paths (the windowed DP engine, the
  FastDTW recursion, the vectorised kernels, the lower-bound cascade,
  nearest-neighbour search, classification and the batch engine)
  report **counters** (DP cells, LB invocations, early abandons, cache
  hits, pool chunks) and **span timers** (nestable wall-clock phases
  such as ``fastdtw/coarsen``, ``fastdtw/window``, ``fastdtw/dp``).
* :func:`span` / :func:`incr` -- the hook primitives modules call.
  With no active trace they are near-free (one global read), so
  instrumentation costs nothing unless somebody asks for it; the CI
  overhead guard (:mod:`repro.obs.bench`) enforces this.
* :class:`TraceSnapshot` -- the picklable delta a worker process ships
  back; :meth:`RunTrace.merge` folds snapshots into the parent trace,
  which is how the batch engine aggregates across its pool.

The paper-reproduction harness (:mod:`repro.timing.runner` and the
:mod:`repro.experiments` figures) never activates a trace: the paper's
wall-clocks are measured on un-instrumented runs, enforced by a
source-scan test exactly like PR 2's backend pin (the one deliberate
exception is :mod:`repro.timing.profile_fastdtw`, which *is* the
consumer of the span hooks).

Example::

    from repro import fastdtw
    from repro.obs import RunTrace

    with RunTrace() as trace:
        result = fastdtw(x, y, radius=10)
    assert trace.counter("dp.cells") == result.cells
    print(trace.to_json())
"""

from .trace import (
    RunTrace,
    SpanStat,
    TraceSnapshot,
    active_trace,
    incr,
    record_dp,
    reset,
    span,
)

__all__ = [
    "RunTrace",
    "SpanStat",
    "TraceSnapshot",
    "active_trace",
    "incr",
    "record_dp",
    "reset",
    "span",
]
