"""Traced reference workloads behind ``python -m repro trace``.

Each workload runs a representative computation under a
:class:`~repro.obs.RunTrace` and returns one JSON-serialisable
document: the trace (schema ``repro.obs/trace/v1``) plus a
``workload`` block naming the configuration and a ``reconciliation``
block that cross-checks the trace against the computation's own
provenance numbers.  The reconciliation is the point: the counters are
only trustworthy if they agree *exactly* with what the results report
(``DtwResult.cells``, ``FastDtwResult.levels``, candidate counts), so
every document states both sides and whether they match.

Workloads
---------
``fastdtw``
    One FastDTW run with ``keep_levels=True``.  Reconciles the
    ``dp.cells`` counter against ``FastDtwResult.cells``, the
    ``fastdtw.levels`` counter against ``len(result.levels)``, and the
    per-level window cells against their sum.
``batch``
    An all-pairs cDTW batch over the :mod:`repro.batch` engine (any
    worker count / kernel backend).  Reconciles ``dp.cells`` against
    ``BatchResult.cells`` and ``batch.pairs`` against the pair count.
``nn``
    A lower-bound-cascade 1-NN search.  Reconciles ``dp.cells``
    against ``NnResult.cells`` and the cascade's pruning counters
    against its :class:`~repro.lowerbounds.cascade.CascadeStats`.

The random-walk inputs come from :mod:`repro.datasets.random_walk`
(the paper's own data-independent timing workload), so documents are
deterministic given ``seed``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .trace import RunTrace

WORKLOADS = ("fastdtw", "batch", "nn")


def run_traced_workload(
    workload: str,
    length: int = 256,
    count: int = 8,
    radius: int = 1,
    window: float = 0.1,
    workers: int = 1,
    backend: Optional[str] = None,
    seed: int = 0,
) -> Dict:
    """Run ``workload`` under a fresh trace; return the JSON document.

    Parameters
    ----------
    workload:
        One of :data:`WORKLOADS`.
    length:
        Series length.
    count:
        Series count (``batch``) or candidate count (``nn``).
    radius:
        FastDTW radius (``fastdtw`` workload).
    window:
        cDTW band fraction (``batch`` and ``nn`` workloads).
    workers:
        Batch-engine worker processes (``batch`` workload).
    backend:
        Kernel backend (``None`` = process default).
    seed:
        Random-walk seed; fixes the document bit-for-bit.
    """
    if workload not in WORKLOADS:
        raise ValueError(
            f"unknown workload {workload!r}; pick from {WORKLOADS}"
        )
    if length < 2:
        raise ValueError("length must be >= 2")
    if count < 2:
        raise ValueError("count must be >= 2")
    runner = {
        "fastdtw": _run_fastdtw,
        "batch": _run_batch,
        "nn": _run_nn,
    }[workload]
    with RunTrace(label=f"trace:{workload}") as trace:
        config, reconciliation = runner(
            trace, length, count, radius, window, workers, backend, seed
        )
    document = trace.to_dict()
    document["workload"] = dict(config, name=workload, seed=seed)
    document["reconciliation"] = reconciliation
    document["ok"] = all(
        check["match"] for check in reconciliation.values()
    )
    return document


def _check(expected, actual) -> Dict:
    return {
        "expected": expected,
        "actual": actual,
        "match": expected == actual,
    }


def _run_fastdtw(
    trace, length, count, radius, window, workers, backend, seed
) -> Tuple[Dict, Dict]:
    from ..core.fastdtw import fastdtw
    from ..datasets.random_walk import random_walk

    x = random_walk(length, seed=seed)
    y = random_walk(length, seed=seed + 1)
    result = fastdtw(x, y, radius=radius, keep_levels=True)
    levels: List[Dict] = [
        {"n": lvl.n, "m": lvl.m, "window_cells": lvl.window_cells}
        for lvl in result.levels
    ]
    config = {
        "length": length,
        "radius": radius,
        "distance": result.distance,
        "levels": levels,
    }
    reconciliation = {
        "dp_cells": _check(result.cells, trace.counter("dp.cells")),
        "dp_calls": _check(len(result.levels), trace.counter("dp.calls")),
        "levels": _check(
            len(result.levels), trace.counter("fastdtw.levels")
        ),
        "level_cells_sum": _check(
            result.cells, sum(lvl.window_cells for lvl in result.levels)
        ),
    }
    return config, reconciliation


def _run_batch(
    trace, length, count, radius, window, workers, backend, seed
) -> Tuple[Dict, Dict]:
    from ..batch.engine import batch_distances
    from ..datasets.random_walk import random_walks
    from ..runtime import Runtime

    series = random_walks(count, length, seed=seed)
    result = batch_distances(
        series, measure="cdtw", window=window,
        runtime=Runtime.resolve(workers=workers, backend=backend),
    )
    config = {
        "length": length,
        "count": count,
        "window": window,
        "workers": workers,
        "backend": backend or "default",
        "pairs": len(result.pairs),
    }
    reconciliation = {
        "dp_cells": _check(result.cells, trace.counter("dp.cells")),
        "dp_calls": _check(len(result.pairs), trace.counter("dp.calls")),
        "batch_pairs": _check(
            len(result.pairs), trace.counter("batch.pairs")
        ),
        "batch_jobs": _check(1, trace.counter("batch.jobs")),
    }
    return config, reconciliation


def _run_nn(
    trace, length, count, radius, window, workers, backend, seed
) -> Tuple[Dict, Dict]:
    from ..datasets.random_walk import random_walk, random_walks
    from ..runtime import Runtime
    from ..search.nn_search import nearest_neighbor

    query = random_walk(length, seed=seed + 999_331)
    candidates = random_walks(count, length, seed=seed)
    result = nearest_neighbor(
        query, candidates, strategy="cdtw+lb", window=window,
        runtime=Runtime.resolve(backend=backend),
    )
    stats = result.stats
    config = {
        "length": length,
        "count": count,
        "window": window,
        "nearest_index": result.index,
        "nearest_distance": result.distance,
    }
    reconciliation = {
        "dp_cells": _check(result.cells, trace.counter("dp.cells")),
        "nn_candidates": _check(count, trace.counter("nn.candidates")),
        "lb_candidates": _check(
            stats.candidates, trace.counter("lb.candidates")
        ),
        "lb_pruned": _check(
            stats.pruned_total(),
            trace.counter("lb.pruned_kim")
            + trace.counter("lb.pruned_keogh")
            + trace.counter("lb.pruned_keogh_reversed")
            + trace.counter("lb.abandoned_dtw"),
        ),
        "lb_full_dtw": _check(
            stats.full_dtw, trace.counter("lb.full_dtw")
        ),
    }
    return config, reconciliation
