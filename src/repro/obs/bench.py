"""The instrumentation-overhead guard behind ``repro trace --overhead-check``.

The observability hooks must be effectively free when no trace is
active -- the paper-reproduction harness runs with tracing disabled,
and a hook that slowed the hot loop would corrupt the very timings
this repository exists to reproduce.  The hooks are therefore written
as one module-global read plus one ``is None`` comparison per DP call,
and this module *measures* that claim instead of trusting it:

* the **baseline** times a loop over the private, hook-free
  :func:`repro.core.engine._dp_over_window` -- the exact DP body that
  existed before the observability layer;
* the **hooked** run times the same loop over the public
  :func:`repro.core.engine.dp_over_window` wrapper with no active
  trace.

Both sides take the best of ``repeats`` timed loops (the standard
defence against scheduler noise), on identical inputs.  The check
passes when the hooked path costs at most ``tolerance`` (default 2%)
more than the baseline, or when the absolute difference is under a
small floor -- sub-millisecond deltas on a fast loop are timer noise,
not overhead.
"""

from __future__ import annotations

import time
from typing import Dict

DEFAULT_TOLERANCE = 0.02
#: Absolute per-loop slack (seconds) under which a delta is noise.
ABSOLUTE_FLOOR = 0.002


def trace_overhead_check(
    length: int = 96,
    band: int = 8,
    pairs: int = 12,
    loops: int = 3,
    repeats: int = 5,
    tolerance: float = DEFAULT_TOLERANCE,
) -> Dict:
    """Measure disabled-instrumentation overhead on the DP hot path.

    Parameters
    ----------
    length:
        Series length per pair.
    band:
        Sakoe-Chiba half-width of the timed window.
    pairs:
        Random-walk pairs evaluated per timed loop.
    loops:
        Timed loop iterations per sample.
    repeats:
        Samples per side; the *best* of each side is compared.
    tolerance:
        Maximum allowed relative overhead (0.02 = 2%).

    Returns
    -------
    dict
        ``baseline_s``/``hooked_s`` (best-of sample times),
        ``overhead`` (relative), ``ok`` and the configuration -- ready
        to serialise into the trace CLI's JSON output.
    """
    if min(length, pairs, loops, repeats) < 1 or band < 0:
        raise ValueError("need positive sizes and band >= 0")
    from ..core.engine import _dp_over_window, dp_over_window
    from ..core.window import Window
    from ..datasets.random_walk import random_walk

    inputs = [
        (
            random_walk(length, seed=2 * k),
            random_walk(length, seed=2 * k + 1),
        )
        for k in range(pairs)
    ]
    window = Window.band(length, length, band)

    def baseline_fn(x, y, win):
        # the private impl takes every argument positionally
        return _dp_over_window(x, y, win, "squared", False, None, None)

    def sample(fn) -> float:
        start = time.perf_counter()
        for _ in range(loops):
            for x, y in inputs:
                fn(x, y, window)
        return time.perf_counter() - start

    # warm both paths once so neither side pays first-call costs
    x0, y0 = inputs[0]
    baseline_fn(x0, y0, window)
    dp_over_window(x0, y0, window)

    # interleave the samples so systematic drift (CPU frequency
    # ramping, cache warming) biases both sides equally; best-of
    # discards the scheduler's bad draws
    baseline = hooked = float("inf")
    for _ in range(repeats):
        baseline = min(baseline, sample(baseline_fn))
        hooked = min(hooked, sample(dp_over_window))
    overhead = (hooked - baseline) / baseline if baseline > 0 else 0.0
    ok = hooked <= baseline * (1.0 + tolerance) or (
        hooked - baseline
    ) <= ABSOLUTE_FLOOR
    return {
        "check": "trace-overhead",
        "length": length,
        "band": band,
        "pairs": pairs,
        "loops": loops,
        "repeats": repeats,
        "baseline_s": baseline,
        "hooked_s": hooked,
        "overhead": overhead,
        "tolerance": tolerance,
        "absolute_floor_s": ABSOLUTE_FLOOR,
        "ok": ok,
    }
