"""Run traces: counters, nestable span timers, mergeable snapshots.

This module is deliberately zero-dependency (stdlib only) and import-
light: the hot paths of :mod:`repro.core` import it at module load, so
it must never import back into the package.

Design
------
One process-wide *active trace* (``_ACTIVE``).  Hooks are written as::

    t = _ACTIVE
    if t is not None:
        t.incr("dp.cells", result.cells)

so an inactive trace costs one global read and one comparison.  Span
timers nest through a per-thread name stack: a span opened while
``fastdtw`` is on the stack records under the path ``fastdtw/<name>``,
which is how one ``dp`` hook in the engine yields both a bare ``dp``
span for direct calls and a ``fastdtw/dp`` span for FastDTW's
refinement steps.

Counter and span aggregation is guarded by a per-trace lock, so
threads may report concurrently; worker *processes* instead run their
chunks under a private :class:`RunTrace` and ship a picklable
:class:`TraceSnapshot` back for :meth:`RunTrace.merge` (see
:mod:`repro.batch.engine`).

Counter schema (the names the built-in hooks emit):

===========================  ============================================
counter                      incremented by
===========================  ============================================
``dp.calls``                 one windowed-DP evaluation (any backend)
``dp.cells``                 lattice cells that DP evaluated
``dp.abandons``              DP runs cut short by early abandoning
``lb.invocations``           one lower-bound evaluation (Kim/Keogh/rev)
``lb.candidates``            candidates entering the LB cascade
``lb.pruned_kim``            candidates pruned by LB_Kim
``lb.pruned_keogh``          candidates pruned by LB_Keogh
``lb.pruned_keogh_reversed`` candidates pruned by reversed LB_Keogh
``lb.abandoned_dtw``         candidates abandoned inside the final DP
``lb.full_dtw``              candidates that ran a complete DP
``lb.suffix_builds``         cumulative-bound suffix arrays built
``lb.chunk_prefilter``       stacked bound-kernel calls by the
                             cascade's chunk prefilter
``cumulative.calls``         cumulative-abandon cDTW invocations
``chunk.groups``             shape-homogeneous groups formed from
                             scheduled chunks
``chunk.calls``              stacked chunk-kernel invocations
``chunk.pairs``              real pairs computed through chunk kernels
``chunk.pad_rows``           scratch padding rows alongside them
                             (never read; see the padding contract)
``fastdtw.calls``            top-level FastDTW invocations
``fastdtw.levels``           FastDTW recursion levels executed
``rle.runs``                 total input runs (k + l) seen by the
                             compressed-domain DP
``rle.block_cells``          boundary cells the RLE block DP evaluated
                             (also folded into ``dp.cells``)
``nn.queries``               1-NN searches started
``nn.candidates``            candidates scanned by 1-NN searches
``knn.predictions``          classifier predictions issued
``batch.jobs``               batch-engine jobs run
``batch.pairs``              pairs computed by batch jobs
``pool.chunks``              chunks fanned out to worker processes
``pool.created``             executor jobs that had to build a pool
``pool.reused``              executor jobs served by a warm pool
``shm.datasets``             datasets shipped by executors (new
                             fingerprints seen)
``shm.bytes``                payload bytes shipped to shared memory
``sched.chunks``             chunks submitted to the dynamic scheduler
``sched.steals``             chunks completing ahead of earlier
                             submissions (dynamic rebalancing; the one
                             counter that legitimately varies run to
                             run)
``cache.envelope_hits``      per-series envelope cache hits (merged)
``cache.envelope_misses``    per-series envelope cache misses
``cache.znorm_hits``         z-normalisation cache hits
``cache.znorm_misses``       z-normalisation cache misses
===========================  ============================================

Span schema: a flat map of slash-joined paths to ``(count, seconds)``
pairs.  The built-in hooks emit ``dp`` (every windowed DP), ``fastdtw``
with children ``coarsen``/``window``/``dp``, ``lb_cascade``, ``nn_search``
and ``knn``; nesting under caller spans composes naturally.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

__all__ = [
    "RunTrace",
    "SpanStat",
    "TraceSnapshot",
    "active_trace",
    "incr",
    "record_dp",
    "reset",
    "span",
]

#: JSON schema identifier emitted by :meth:`RunTrace.to_dict`.
SCHEMA = "repro.obs/trace/v1"

_ACTIVE: Optional["RunTrace"] = None
_local = threading.local()


def _stack() -> list:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


@dataclass(frozen=True)
class SpanStat:
    """Aggregate of one span path: entry count and total seconds."""

    count: int = 0
    seconds: float = 0.0


@dataclass(frozen=True)
class TraceSnapshot:
    """Picklable, mergeable view of a trace's counters and spans.

    This is what a pool worker ships back to the parent process: plain
    dicts of plain values, safe to pickle across any start method.
    """

    counters: Dict[str, int] = field(default_factory=dict)
    spans: Dict[str, Tuple[int, float]] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return bool(self.counters) or bool(self.spans)


class RunTrace:
    """Collection context for one observed run.

    Entering the context makes this trace the process-wide active
    trace (stacking over any previously active one, which is restored
    on exit); every instrumented code path then reports counters and
    spans here until the context exits.

    Thread-safe: concurrent :meth:`incr`/span records from multiple
    threads serialise on an internal lock.  Process-safe by snapshot:
    workers collect into their own trace and the parent merges the
    shipped :class:`TraceSnapshot` (see :meth:`merge`).
    """

    def __init__(self, label: str = ""):
        self.label = label
        self._counters: Dict[str, int] = {}
        self._spans: Dict[str, list] = {}  # path -> [count, seconds]
        self._lock = threading.Lock()
        self._previous: Optional[RunTrace] = None
        self._saved_stack: Optional[list] = None
        self._started: Optional[float] = None
        self.seconds: float = 0.0

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "RunTrace":
        global _ACTIVE
        self._previous = _ACTIVE
        self._saved_stack = getattr(_local, "stack", None)
        _local.stack = []
        _ACTIVE = self
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        global _ACTIVE
        if self._started is not None:
            self.seconds = time.perf_counter() - self._started
        _ACTIVE = self._previous
        _local.stack = self._saved_stack if self._saved_stack is not None else []
        self._previous = None
        self._saved_stack = None
        return False

    # -- recording ---------------------------------------------------------

    def incr(self, counter: str, n: int = 1) -> None:
        """Add ``n`` to ``counter`` (created at 0 on first use)."""
        with self._lock:
            self._counters[counter] = self._counters.get(counter, 0) + n

    def _record_span(self, path: str, seconds: float) -> None:
        with self._lock:
            entry = self._spans.get(path)
            if entry is None:
                self._spans[path] = [1, seconds]
            else:
                entry[0] += 1
                entry[1] += seconds

    def merge(self, snapshot: TraceSnapshot) -> None:
        """Fold a worker's :class:`TraceSnapshot` into this trace."""
        with self._lock:
            for name, value in snapshot.counters.items():
                self._counters[name] = self._counters.get(name, 0) + value
            for path, (count, seconds) in snapshot.spans.items():
                entry = self._spans.get(path)
                if entry is None:
                    self._spans[path] = [count, seconds]
                else:
                    entry[0] += count
                    entry[1] += seconds

    # -- queries -----------------------------------------------------------

    def counter(self, name: str, default: int = 0) -> int:
        """Current value of ``name`` (``default`` if never incremented)."""
        with self._lock:
            return self._counters.get(name, default)

    def counters(self) -> Dict[str, int]:
        """Copy of all counters, sorted by name."""
        with self._lock:
            return dict(sorted(self._counters.items()))

    def span_stat(self, path: str) -> SpanStat:
        """Aggregate of one span path (zeros if never entered)."""
        with self._lock:
            entry = self._spans.get(path)
            if entry is None:
                return SpanStat()
            return SpanStat(count=entry[0], seconds=entry[1])

    def span_seconds(self, path: str) -> float:
        """Total seconds recorded under ``path`` (0.0 if absent)."""
        return self.span_stat(path).seconds

    def span_count(self, path: str) -> int:
        """Times the span at ``path`` was entered (0 if absent)."""
        return self.span_stat(path).count

    def spans(self) -> Dict[str, SpanStat]:
        """Copy of all span aggregates, sorted by path."""
        with self._lock:
            return {
                path: SpanStat(count=entry[0], seconds=entry[1])
                for path, entry in sorted(self._spans.items())
            }

    def span_paths(self) -> Iterator[str]:
        """The recorded span paths, sorted."""
        with self._lock:
            return iter(sorted(self._spans))

    def snapshot(self) -> TraceSnapshot:
        """Picklable copy of the current counters and spans."""
        with self._lock:
            return TraceSnapshot(
                counters=dict(self._counters),
                spans={
                    path: (entry[0], entry[1])
                    for path, entry in self._spans.items()
                },
            )

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-serialisable view (schema ``repro.obs/trace/v1``)."""
        elapsed = self.seconds
        if self._started is not None and elapsed == 0.0:
            elapsed = time.perf_counter() - self._started
        return {
            "schema": SCHEMA,
            "label": self.label,
            "seconds": elapsed,
            "counters": self.counters(),
            "spans": {
                path: {"count": stat.count, "seconds": stat.seconds}
                for path, stat in self.spans().items()
            },
        }

    def to_json(self, indent: int = 2) -> str:
        """``to_dict`` rendered as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RunTrace(label={self.label!r}, "
            f"counters={len(self._counters)}, spans={len(self._spans)})"
        )


class _NoopSpan:
    """Shared do-nothing span handed out when no trace is active."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NOOP = _NoopSpan()


class _Span:
    __slots__ = ("trace", "name", "path", "start")

    def __init__(self, trace: RunTrace, name: str):
        self.trace = trace
        self.name = name

    def __enter__(self) -> "_Span":
        stack = _stack()
        stack.append(self.name)
        self.path = "/".join(stack)
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        elapsed = time.perf_counter() - self.start
        stack = _stack()
        if stack and stack[-1] == self.name:
            stack.pop()
        self.trace._record_span(self.path, elapsed)
        return False


# -- module-level hook API -------------------------------------------------


def active_trace() -> Optional[RunTrace]:
    """The currently active :class:`RunTrace`, or ``None``."""
    return _ACTIVE


def span(name: str):
    """Context manager timing a nested phase under the active trace.

    With no active trace this returns a shared no-op object, so hooks
    may use ``with span("..."):`` unconditionally on warm paths.
    ``name`` must not contain ``"/"`` (reserved for nesting paths).
    """
    trace = _ACTIVE
    if trace is None:
        return _NOOP
    return _Span(trace, name)


def incr(counter: str, n: int = 1) -> None:
    """Increment ``counter`` on the active trace (no-op when inactive)."""
    trace = _ACTIVE
    if trace is not None:
        trace.incr(counter, n)


def record_dp(trace: RunTrace, result) -> None:
    """Record one windowed-DP outcome: calls, cells, abandons.

    Shared by every DP entry point (pure engine, vectorised kernels,
    stacked batch kernels) so the ``dp.*`` counters mean the same
    thing on every backend.
    """
    trace.incr("dp.calls")
    trace.incr("dp.cells", result.cells)
    if getattr(result, "abandoned", False):
        trace.incr("dp.abandons")


def reset() -> None:
    """Deactivate any active trace and clear this thread's span stack.

    Called by pool-worker initializers: under the ``fork`` start
    method a worker inherits the parent's active trace object, which
    must not silently swallow the worker's counters.
    """
    global _ACTIVE
    _ACTIVE = None
    _local.stack = []
