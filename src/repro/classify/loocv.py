"""Leave-one-out cross-validation and brute-force best-window search.

The UCR archive's per-dataset "optimal w" (the paper's proxy for the
natural warping amount ``W``, Fig. 2a) is found by running 1-NN
leave-one-out cross-validation on the train split for every candidate
window 0%..100% and keeping the window with the lowest error -- Dau et
al. computed cDTW 61 trillion times doing this.  These functions are
that procedure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .knn import DistanceSpec, OneNearestNeighbor


def loocv_error(
    series: Sequence[Sequence[float]],
    labels: Sequence[object],
    spec: DistanceSpec,
    workers: int = 1,
    executor=None,
) -> float:
    """Leave-one-out 1-NN error of ``spec`` on a labelled dataset.

    Each series is classified against all the others; the returned
    value is the fraction misclassified.  ``workers`` parallelises
    each leave-one-out scan via the :mod:`repro.batch` engine (the
    error is identical for any worker count).  ``executor=`` runs
    those scans on a persistent warm pool -- LOOCV issues one scan
    per series over the same dataset, the textbook repeated-use
    shape, so a shared executor amortises pool startup and dataset
    shipping across all of them.
    """
    if len(series) != len(labels):
        raise ValueError("series and labels must have equal length")
    if len(series) < 2:
        raise ValueError("need at least two series for LOOCV")
    clf = OneNearestNeighbor(
        spec, workers=workers, executor=executor
    ).fit(series, labels)
    wrong = 0
    for i, (s, lab) in enumerate(zip(series, labels)):
        if clf.predict_one(s, exclude=i) != lab:
            wrong += 1
    return wrong / len(series)


@dataclass(frozen=True)
class WindowSearchResult:
    """Outcome of a best-window search.

    ``errors`` maps each candidate window fraction to its LOOCV error,
    in the order searched; ``best_window`` is the smallest window
    achieving the minimum error (ties break towards less warping, the
    archive's convention).
    """

    best_window: float
    best_error: float
    errors: Tuple[Tuple[float, float], ...]


def best_window_search(
    series: Sequence[Sequence[float]],
    labels: Sequence[object],
    windows: Sequence[float] = tuple(w / 100 for w in range(0, 21)),
    use_lower_bounds: bool = True,
    workers: int = 1,
    executor=None,
) -> WindowSearchResult:
    """Brute-force the LOOCV-optimal cDTW window.

    Parameters
    ----------
    series, labels:
        The labelled training set.
    windows:
        Candidate window fractions (default 0%..20% in 1% steps, the
        range Fig. 2a shows almost all optima fall in).
    use_lower_bounds:
        Accelerate each LOOCV with the lossless LB cascade (the
        cascade is sequential, so it ignores ``workers``).
    workers:
        Worker processes per LOOCV scan (see :func:`loocv_error`).
    executor:
        Persistent :class:`repro.batch.BatchExecutor` shared across
        every window's LOOCV (the dataset ships once for the whole
        search; ignored when ``use_lower_bounds`` forces the serial
        cascade).

    Returns
    -------
    WindowSearchResult
    """
    if not windows:
        raise ValueError("no candidate windows")
    errors: List[Tuple[float, float]] = []
    best_w, best_e = None, None
    for w in windows:
        spec = DistanceSpec(
            "cdtw", window=w, use_lower_bounds=use_lower_bounds
        )
        e = loocv_error(
            series, labels, spec, workers=workers, executor=executor
        )
        errors.append((w, e))
        if best_e is None or e < best_e or (e == best_e and w < best_w):
            best_w, best_e = w, e
    return WindowSearchResult(best_w, best_e, tuple(errors))
