"""Leave-one-out cross-validation and brute-force best-window search.

The UCR archive's per-dataset "optimal w" (the paper's proxy for the
natural warping amount ``W``, Fig. 2a) is found by running 1-NN
leave-one-out cross-validation on the train split for every candidate
window 0%..100% and keeping the window with the lowest error -- Dau et
al. computed cDTW 61 trillion times doing this.  These functions are
that procedure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..runtime import Runtime, _resolve_legacy
from .knn import DistanceSpec, OneNearestNeighbor


def loocv_error(
    series: Sequence[Sequence[float]],
    labels: Sequence[object],
    spec: DistanceSpec,
    workers: Optional[int] = None,
    executor=None,
    runtime: Optional[Runtime] = None,
    index=None,
) -> float:
    """Leave-one-out 1-NN error of ``spec`` on a labelled dataset.

    Each series is classified against all the others; the returned
    value is the fraction misclassified.  A parallel ``runtime``
    fans each leave-one-out scan out over the :mod:`repro.batch`
    engine (the error is identical for any execution context); a
    runtime carrying a persistent executor runs those scans on a warm
    pool -- LOOCV issues one scan per series over the same dataset,
    the textbook repeated-use shape, so a shared executor amortises
    pool startup and dataset shipping across all of them.
    ``workers=``/``executor=`` are deprecated per-knob overrides of
    the corresponding runtime fields.

    ``index`` accepts an ahead-of-time index of ``series`` (see
    :class:`~repro.classify.knn.OneNearestNeighbor`); LOOCV is the
    index's best case -- every scan hits the same collection, each
    query reuses its own stored envelope, and the shared
    exact-distance cache feeds later queries' thresholds.  The error
    is identical with or without it.
    """
    rt = _resolve_legacy(
        "loocv_error", runtime, workers=workers, executor=executor
    )
    if len(series) != len(labels):
        raise ValueError("series and labels must have equal length")
    if len(series) < 2:
        raise ValueError("need at least two series for LOOCV")
    clf = OneNearestNeighbor(spec, runtime=rt, index=index).fit(series, labels)
    wrong = 0
    for i, (s, lab) in enumerate(zip(series, labels)):
        if clf.predict_one(s, exclude=i) != lab:
            wrong += 1
    return wrong / len(series)


@dataclass(frozen=True)
class WindowSearchResult:
    """Outcome of a best-window search.

    ``errors`` maps each candidate window fraction to its LOOCV error,
    in the order searched; ``best_window`` is the smallest window
    achieving the minimum error (ties break towards less warping, the
    archive's convention).
    """

    best_window: float
    best_error: float
    errors: Tuple[Tuple[float, float], ...]


def best_window_search(
    series: Sequence[Sequence[float]],
    labels: Sequence[object],
    windows: Sequence[float] = tuple(w / 100 for w in range(0, 21)),
    use_lower_bounds: bool = True,
    workers: Optional[int] = None,
    executor=None,
    runtime: Optional[Runtime] = None,
) -> WindowSearchResult:
    """Brute-force the LOOCV-optimal cDTW window.

    Parameters
    ----------
    series, labels:
        The labelled training set.
    windows:
        Candidate window fractions (default 0%..20% in 1% steps, the
        range Fig. 2a shows almost all optima fall in).
    use_lower_bounds:
        Accelerate each LOOCV with the lossless LB cascade (the
        cascade is sequential, so it ignores the runtime's workers).
    runtime:
        Execution context shared by every window's LOOCV, per
        :mod:`repro.runtime` (``None`` = the process default).  A
        runtime carrying a persistent executor ships the dataset once
        for the whole search; parallelism is ignored when
        ``use_lower_bounds`` forces the serial cascade.
    workers, executor:
        Deprecated per-knob overrides of the corresponding ``runtime``
        fields (each emits a :class:`DeprecationWarning`).

    Returns
    -------
    WindowSearchResult
    """
    rt = _resolve_legacy(
        "best_window_search", runtime, workers=workers,
        executor=executor,
    )
    if not windows:
        raise ValueError("no candidate windows")
    errors: List[Tuple[float, float]] = []
    best_w, best_e = None, None
    for w in windows:
        spec = DistanceSpec(
            "cdtw", window=w, use_lower_bounds=use_lower_bounds
        )
        e = loocv_error(series, labels, spec, runtime=rt)
        errors.append((w, e))
        if best_e is None or e < best_e or (e == best_e and w < best_w):
            best_w, best_e = w, e
    return WindowSearchResult(best_w, best_e, tuple(errors))
