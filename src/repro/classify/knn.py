"""1-nearest-neighbour classification under a pluggable distance.

:class:`DistanceSpec` names the measures the paper compares --
Euclidean, banded cDTW (optionally lower-bound accelerated), Full DTW
and FastDTW -- and :class:`OneNearestNeighbor` runs the standard 1-NN
rule with any of them, tracking total DP cells so experiments can
report work as well as accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil, inf
from typing import List, Optional, Sequence

from ..core.cdtw import cdtw
from ..core.dtw import dtw
from ..core.euclidean import euclidean
from ..core.fastdtw import fastdtw
from ..search.nn_search import nearest_neighbor

MEASURES = ("euclidean", "cdtw", "dtw", "fastdtw")


@dataclass(frozen=True)
class DistanceSpec:
    """A named distance configuration for classification.

    Attributes
    ----------
    measure:
        One of :data:`MEASURES`.
    window:
        cDTW band as a fraction of length (``measure="cdtw"`` only).
    radius:
        FastDTW radius (``measure="fastdtw"`` only).
    use_lower_bounds:
        For ``"cdtw"``: route through the lossless LB cascade (exact,
        faster); meaningless for the other measures.
    """

    measure: str
    window: Optional[float] = None
    radius: Optional[int] = None
    use_lower_bounds: bool = False

    def __post_init__(self) -> None:
        if self.measure not in MEASURES:
            raise ValueError(
                f"unknown measure {self.measure!r}; pick from {MEASURES}"
            )
        if self.measure == "cdtw":
            if self.window is None or not 0.0 <= self.window <= 1.0:
                raise ValueError("cdtw needs window= in [0, 1]")
        elif self.window is not None:
            raise ValueError("window= only applies to measure='cdtw'")
        if self.measure == "fastdtw":
            if self.radius is None or self.radius < 0:
                raise ValueError("fastdtw needs radius >= 0")
        elif self.radius is not None:
            raise ValueError("radius= only applies to measure='fastdtw'")

    def describe(self) -> str:
        """Paper-style name, e.g. ``cDTW_10`` or ``FastDTW_20``."""
        if self.measure == "euclidean":
            return "Euclidean"
        if self.measure == "dtw":
            return "Full DTW"
        if self.measure == "cdtw":
            return f"cDTW_{round(self.window * 100)}"
        return f"FastDTW_{self.radius}"


class OneNearestNeighbor:
    """1-NN classifier over labelled series.

    Parameters
    ----------
    spec:
        The distance configuration.

    Notes
    -----
    ``fit`` stores the training series; ``predict`` performs a linear
    scan per query (the setting of all the paper's experiments -- no
    indexing, both measures get the same scan).
    """

    def __init__(self, spec: DistanceSpec):
        self.spec = spec
        self._train: List[List[float]] = []
        self._labels: List[object] = []
        self.cells_evaluated = 0

    def fit(
        self, series: Sequence[Sequence[float]], labels: Sequence[object]
    ) -> "OneNearestNeighbor":
        """Store the training set (series and labels, same length)."""
        if len(series) != len(labels):
            raise ValueError("series and labels must have equal length")
        if not series:
            raise ValueError("training set is empty")
        self._train = [list(s) for s in series]
        self._labels = list(labels)
        return self

    def predict_one(self, query: Sequence[float], exclude: Optional[int] = None):
        """Label of the training series nearest to ``query``.

        ``exclude`` skips one training index (leave-one-out CV).
        """
        if not self._train:
            raise ValueError("classifier is not fitted")
        indices = [
            i for i in range(len(self._train)) if i != exclude
        ]
        if not indices:
            raise ValueError("no training candidates after exclusion")
        candidates = [self._train[i] for i in indices]
        idx, _dist, cells = self._nearest(query, candidates)
        self.cells_evaluated += cells
        return self._labels[indices[idx]]

    def predict(self, queries: Sequence[Sequence[float]]) -> List[object]:
        """Labels for a batch of query series."""
        return [self.predict_one(q) for q in queries]

    def error_rate(
        self,
        queries: Sequence[Sequence[float]],
        labels: Sequence[object],
    ) -> float:
        """Fraction of ``queries`` misclassified against ``labels``."""
        if len(queries) != len(labels):
            raise ValueError("queries and labels must have equal length")
        if not queries:
            raise ValueError("no queries")
        wrong = sum(
            1 for q, lab in zip(queries, labels) if self.predict_one(q) != lab
        )
        return wrong / len(queries)

    # -- internal ---------------------------------------------------------

    def _nearest(self, query, candidates):
        idx, dist, cells = _nearest_impl(self.spec, query, candidates)
        return idx, dist, cells


class KNearestNeighbors:
    """k-NN majority-vote classifier under a pluggable distance.

    Generalises :class:`OneNearestNeighbor` (``k = 1`` is identical).
    Vote ties break towards the label of the nearest neighbour among
    the tied labels, the standard convention.

    Note: with ``k > 1`` every candidate's distance is needed, so the
    lossless best-so-far pruning of the 1-NN cascade does not apply;
    ``use_lower_bounds`` is therefore ignored for ``k > 1``.
    """

    def __init__(self, spec: DistanceSpec, k: int = 3):
        if k < 1:
            raise ValueError("k must be positive")
        self.spec = spec
        self.k = k
        self._train: List[List[float]] = []
        self._labels: List[object] = []

    def fit(
        self, series: Sequence[Sequence[float]], labels: Sequence[object]
    ) -> "KNearestNeighbors":
        """Store the training set."""
        if len(series) != len(labels):
            raise ValueError("series and labels must have equal length")
        if len(series) < self.k:
            raise ValueError(
                f"need at least k={self.k} training series, got {len(series)}"
            )
        self._train = [list(s) for s in series]
        self._labels = list(labels)
        return self

    def predict_one(self, query: Sequence[float]):
        """Majority label among the ``k`` nearest training series."""
        if not self._train:
            raise ValueError("classifier is not fitted")
        distances = [
            (_distance(self.spec, query, cand), i)
            for i, cand in enumerate(self._train)
        ]
        distances.sort()
        top = distances[: self.k]
        votes: dict = {}
        for d, i in top:
            votes.setdefault(self._labels[i], []).append(d)
        best_count = max(len(ds) for ds in votes.values())
        tied = [
            (min(ds), label)
            for label, ds in votes.items()
            if len(ds) == best_count
        ]
        return min(tied)[1]

    def predict(self, queries: Sequence[Sequence[float]]) -> List[object]:
        """Labels for a batch of queries."""
        return [self.predict_one(q) for q in queries]

    def error_rate(
        self,
        queries: Sequence[Sequence[float]],
        labels: Sequence[object],
    ) -> float:
        """Fraction of ``queries`` misclassified."""
        if len(queries) != len(labels):
            raise ValueError("queries and labels must have equal length")
        if not queries:
            raise ValueError("no queries")
        wrong = sum(
            1 for q, lab in zip(queries, labels) if self.predict_one(q) != lab
        )
        return wrong / len(queries)


def _distance(spec: DistanceSpec, x, y) -> float:
    if spec.measure == "euclidean":
        return euclidean(x, y)
    if spec.measure == "dtw":
        return dtw(x, y).distance
    if spec.measure == "cdtw":
        return cdtw(x, y, window=spec.window).distance
    return fastdtw(x, y, radius=spec.radius).distance


def _nearest_impl(spec: DistanceSpec, query, candidates):
    """Index, distance and DP cells of the nearest candidate."""
    if spec.measure == "cdtw" and spec.use_lower_bounds:
        res = nearest_neighbor(
            query, candidates, strategy="cdtw+lb", window=spec.window
        )
        return res.index, res.distance, res.cells
    best_idx, best, cells = 0, inf, 0
    for i, cand in enumerate(candidates):
        if spec.measure == "euclidean":
            d = euclidean(query, cand, abandon_above=best)
        elif spec.measure == "dtw":
            r = dtw(query, cand)
            d, cells = r.distance, cells + r.cells
        elif spec.measure == "cdtw":
            r = cdtw(query, cand, window=spec.window)
            d, cells = r.distance, cells + r.cells
        else:  # fastdtw
            r = fastdtw(query, cand, radius=spec.radius)
            d, cells = r.distance, cells + r.cells
        if d < best:
            best, best_idx = d, i
    return best_idx, best, cells
