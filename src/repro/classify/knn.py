"""1-nearest-neighbour classification under a pluggable distance.

:class:`DistanceSpec` names the measures the paper compares --
Euclidean, banded cDTW (optionally lower-bound accelerated), Full DTW
and the FastDTW variants -- and :class:`OneNearestNeighbor` runs the
standard 1-NN rule with any of them, tracking total DP cells so
experiments can report work as well as accuracy.

The measure registry is the canonical
:data:`repro.core.measures.MEASURES` tuple (shared with
:func:`repro.core.matrix.distance_matrix`), so the two can never
drift again.  Classifiers take their execution context -- kernel
backend, worker count, executor -- from a single
:class:`repro.runtime.Runtime` (``runtime=`` at construction, else
the process default); a parallel context fans the per-candidate
distance calls out over the :mod:`repro.batch` engine and returns
identical labels, distances and cell counts (the serial tie-break --
first candidate wins on equal distances -- is preserved).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import inf
from typing import List, Optional, Sequence

from ..core.cdtw import cdtw
from ..core.dtw import dtw
from ..core.euclidean import euclidean
from ..core.fastdtw import fastdtw
from ..core.fastdtw_reference import fastdtw_reference
from ..core.measures import MEASURES
from ..obs import trace as _obs
from ..runtime import Runtime, _resolve_legacy
from ..search.nn_search import nearest_neighbor

_FASTDTW_MEASURES = ("fastdtw", "fastdtw_reference")
_BANDED_MEASURES = ("cdtw", "rle_cdtw", "cdtw_d", "cdtw_i")


@dataclass(frozen=True)
class DistanceSpec:
    """A named distance configuration for classification.

    Attributes
    ----------
    measure:
        One of :data:`repro.core.measures.MEASURES`.
    window:
        Band as a fraction of length (``measure="cdtw"`` and
        ``measure="rle_cdtw"``).
    radius:
        FastDTW radius (the fastdtw measures only).
    use_lower_bounds:
        For ``"cdtw"``: route through the lossless LB cascade (exact,
        faster); meaningless for the other measures.
    backend:
        Kernel backend for the exact DP measures, per
        :mod:`repro.core.kernels` (``None`` = process default).
        ``"numpy"`` returns identical labels, distances and cells;
        the fastdtw measures and Euclidean ignore it.
    """

    measure: str
    window: Optional[float] = None
    radius: Optional[int] = None
    use_lower_bounds: bool = False
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.measure not in MEASURES:
            raise ValueError(
                f"unknown measure {self.measure!r}; pick from {MEASURES}"
            )
        if self.backend is not None:
            Runtime(backend=self.backend)  # validates the name
        if self.measure in _BANDED_MEASURES:
            if self.window is None or not 0.0 <= self.window <= 1.0:
                raise ValueError(
                    f"{self.measure} needs window= in [0, 1]"
                )
        elif self.window is not None:
            raise ValueError(
                "window= only applies to the banded measures "
                f"{_BANDED_MEASURES}"
            )
        if self.measure in _FASTDTW_MEASURES:
            if self.radius is None or self.radius < 0:
                raise ValueError(f"{self.measure} needs radius >= 0")
        elif self.radius is not None:
            raise ValueError(
                "radius= only applies to the fastdtw measures"
            )

    def describe(self) -> str:
        """Paper-style name, e.g. ``cDTW_10`` or ``FastDTW_20``."""
        if self.measure == "euclidean":
            return "Euclidean"
        if self.measure == "dtw":
            return "Full DTW"
        if self.measure == "cdtw":
            return f"cDTW_{round(self.window * 100)}"
        if self.measure == "rle_dtw":
            return "RLE-DTW"
        if self.measure == "rle_cdtw":
            return f"RLE-cDTW_{round(self.window * 100)}"
        if self.measure == "dtw_d":
            return "DTW-D"
        if self.measure == "dtw_i":
            return "DTW-I"
        if self.measure == "cdtw_d":
            return f"cDTW-D_{round(self.window * 100)}"
        if self.measure == "cdtw_i":
            return f"cDTW-I_{round(self.window * 100)}"
        if self.measure == "fastdtw_reference":
            return f"FastDTW-ref_{self.radius}"
        return f"FastDTW_{self.radius}"


class OneNearestNeighbor:
    """1-NN classifier over labelled series.

    Parameters
    ----------
    spec:
        The distance configuration.
    runtime:
        Execution context, per :mod:`repro.runtime`, captured at
        construction (``None`` = the process default at construction
        time).  A parallel context -- ``workers > 1`` or a persistent
        executor -- fans the per-candidate distance scans out over the
        :mod:`repro.batch` engine with identical results; an executor
        is the right choice when one classifier answers many queries
        over one training set (pool startup and dataset shipping
        amortise across calls).  ``spec.backend`` overrides the
        runtime's backend when set.  The ``use_lower_bounds`` cascade
        is inherently sequential (its pruning threads a best-so-far
        through the scan) and always runs serially.
    workers, executor:
        Deprecated per-knob overrides of the corresponding ``runtime``
        fields (each emits a :class:`DeprecationWarning`).
    index:
        Optional ahead-of-time index of the training set (built by
        ``repro.index`` over exactly the series later passed to
        :meth:`fit`, with the band ``spec.window`` implies).  Only
        valid for ``measure="cdtw"`` with ``use_lower_bounds``; the
        indexed scans reuse precomputed envelopes, run best-first
        with the LB_Improved stage, and share exact distances across
        leave-one-out queries -- all lossless, so predictions are
        identical.  Verified by content fingerprint at :meth:`fit`.

    Notes
    -----
    ``fit`` stores the training series; ``predict`` performs a linear
    scan per query (the setting of all the paper's experiments -- no
    indexing, both measures get the same scan, unless an ``index`` is
    explicitly supplied).
    """

    def __init__(self, spec: DistanceSpec, workers: Optional[int] = None,
                 executor=None, runtime: Optional[Runtime] = None,
                 index=None):
        rt = _resolve_legacy(
            type(self).__name__, runtime, workers=workers,
            executor=executor,
        )
        if index is not None and not (
            spec.measure in ("cdtw", "cdtw_d") and spec.use_lower_bounds
        ):
            raise ValueError(
                "index= requires measure='cdtw' (or 'cdtw_d') with "
                "use_lower_bounds=True (the index serves the "
                "lower-bound cascade)"
            )
        self.spec = spec
        self.runtime = rt.with_backend(spec.backend)
        self.workers = rt.workers
        self.executor = rt.executor
        self._train: List[List[float]] = []
        self._labels: List[object] = []
        self._index = index
        self._searcher = None
        self.cells_evaluated = 0

    def fit(
        self, series: Sequence[Sequence[float]], labels: Sequence[object]
    ) -> "OneNearestNeighbor":
        """Store the training set (series and labels, same length)."""
        if len(series) != len(labels):
            raise ValueError("series and labels must have equal length")
        if not series:
            raise ValueError("training set is empty")
        if self._index is not None:
            from math import ceil

            n = len(series[0])
            self._index.require(
                kind="collection", count=len(series), length=n,
                band=ceil(self.spec.window * n), normalize=False,
            )
            self._index.verify_collection(series)
            self._searcher = self._index.searcher(
                runtime=self.runtime, share_exact=True,
            )
        self._train = [list(s) for s in series]
        self._labels = list(labels)
        return self

    def predict_one(self, query: Sequence[float], exclude: Optional[int] = None):
        """Label of the training series nearest to ``query``.

        ``exclude`` skips one training index (leave-one-out CV).
        """
        if not self._train:
            raise ValueError("classifier is not fitted")
        if self._searcher is not None:
            _obs.incr("knn.predictions")
            with _obs.span("knn"):
                idx, cells = self._nearest_indexed(query, exclude)
            self.cells_evaluated += cells
            return self._labels[idx]
        indices = [
            i for i in range(len(self._train)) if i != exclude
        ]
        if not indices:
            raise ValueError("no training candidates after exclusion")
        candidates = [self._train[i] for i in indices]
        _obs.incr("knn.predictions")
        with _obs.span("knn"):
            idx, _dist, cells = self._nearest(query, candidates)
        self.cells_evaluated += cells
        return self._labels[indices[idx]]

    def predict(self, queries: Sequence[Sequence[float]]) -> List[object]:
        """Labels for a batch of query series.

        With ``workers > 1`` every (query, candidate) distance of the
        whole batch is computed in one :mod:`repro.batch` job.
        """
        if self._use_batch_engine() and len(queries) > 1:
            return self._predict_batched(queries)
        return [self.predict_one(q) for q in queries]

    def error_rate(
        self,
        queries: Sequence[Sequence[float]],
        labels: Sequence[object],
    ) -> float:
        """Fraction of ``queries`` misclassified against ``labels``."""
        if len(queries) != len(labels):
            raise ValueError("queries and labels must have equal length")
        if not queries:
            raise ValueError("no queries")
        predicted = self.predict(queries)
        wrong = sum(1 for p, lab in zip(predicted, labels) if p != lab)
        return wrong / len(queries)

    # -- internal ---------------------------------------------------------

    def _use_batch_engine(self) -> bool:
        return self.runtime.parallel and not (
            self.spec.measure in ("cdtw", "cdtw_d")
            and self.spec.use_lower_bounds
        )

    def _nearest_indexed(self, query, exclude):
        """(train index, cells) of the nearest series via the index.

        Exclusion happens *inside* the indexed scan, so no candidate
        subset is materialised and the winner's index addresses the
        training set directly.  When the query provably *is* the
        excluded training series (leave-one-out), its stored envelope
        is reused and its exact distances feed the shared cache --
        both lossless, see :mod:`repro.lowerbounds.cascade`.
        """
        if len(self._train) < 2 and exclude is not None:
            raise ValueError("no training candidates after exclusion")
        query_index = None
        if exclude is not None:
            # index rows are flat sample-major floats; flatten a
            # multivariate query the same way before comparing
            if query and hasattr(query[0], "__len__"):
                probe = [float(c) for v in query for c in v]
            else:
                probe = [float(v) for v in query]
            if probe == list(self._index.series[exclude]):
                query_index = exclude
        hit = self._searcher.nearest(
            query, exclude=exclude, query_index=query_index,
        )
        return hit.index, hit.stats.cells

    def _nearest(self, query, candidates):
        if self._use_batch_engine():
            idx, dist, cells = _nearest_batched(
                self.spec, query, candidates, self.runtime,
            )
        else:
            idx, dist, cells = _nearest_impl(
                self.spec, query, candidates, self.runtime,
            )
        return idx, dist, cells

    def _predict_batched(self, queries) -> List[object]:
        from ..batch.engine import argmin_first, batch_distances

        _obs.incr("knn.predictions", len(queries))
        q = len(queries)
        series = [list(s) for s in queries] + self._train
        pairs = [
            (qi, q + ti)
            for qi in range(q)
            for ti in range(len(self._train))
        ]
        result = batch_distances(
            series, pairs=pairs, runtime=self.runtime,
            **_spec_kwargs(self.spec),
        )
        self.cells_evaluated += result.cells
        t = len(self._train)
        labels = []
        for qi in range(q):
            row = result.distances[qi * t:(qi + 1) * t]
            idx, _ = argmin_first(row)
            labels.append(self._labels[idx])
        return labels


class KNearestNeighbors:
    """k-NN majority-vote classifier under a pluggable distance.

    Generalises :class:`OneNearestNeighbor` (``k = 1`` is identical).
    Vote ties break towards the label of the nearest neighbour among
    the tied labels, the standard convention.

    Note: with ``k > 1`` every candidate's distance is needed, so the
    lossless best-so-far pruning of the 1-NN cascade does not apply;
    ``use_lower_bounds`` is therefore ignored for ``k > 1``.  The
    full scans parallelise cleanly: pass a parallel ``runtime=``
    (workers and/or a persistent executor for a warm pool across
    queries).  ``workers=``/``executor=`` remain as deprecated
    per-knob overrides.
    """

    def __init__(self, spec: DistanceSpec, k: int = 3,
                 workers: Optional[int] = None, executor=None,
                 runtime: Optional[Runtime] = None):
        if k < 1:
            raise ValueError("k must be positive")
        rt = _resolve_legacy(
            type(self).__name__, runtime, workers=workers,
            executor=executor,
        )
        self.spec = spec
        self.k = k
        self.runtime = rt.with_backend(spec.backend)
        self.workers = rt.workers
        self.executor = rt.executor
        self._train: List[List[float]] = []
        self._labels: List[object] = []

    def fit(
        self, series: Sequence[Sequence[float]], labels: Sequence[object]
    ) -> "KNearestNeighbors":
        """Store the training set."""
        if len(series) != len(labels):
            raise ValueError("series and labels must have equal length")
        if len(series) < self.k:
            raise ValueError(
                f"need at least k={self.k} training series, got {len(series)}"
            )
        self._train = [list(s) for s in series]
        self._labels = list(labels)
        return self

    def predict_one(self, query: Sequence[float]):
        """Majority label among the ``k`` nearest training series."""
        if not self._train:
            raise ValueError("classifier is not fitted")
        _obs.incr("knn.predictions")
        if self.runtime.parallel:
            from ..batch.engine import batch_distances

            series = [list(query)] + self._train
            pairs = [(0, i + 1) for i in range(len(self._train))]
            result = batch_distances(
                series, pairs=pairs, runtime=self.runtime,
                **_spec_kwargs(self.spec),
            )
            distances = [
                (d, i) for i, d in enumerate(result.distances)
            ]
        else:
            distances = [
                (_distance(self.spec, query, cand, self.runtime), i)
                for i, cand in enumerate(self._train)
            ]
        distances.sort()
        top = distances[: self.k]
        votes: dict = {}
        for d, i in top:
            votes.setdefault(self._labels[i], []).append(d)
        best_count = max(len(ds) for ds in votes.values())
        tied = [
            (min(ds), label)
            for label, ds in votes.items()
            if len(ds) == best_count
        ]
        return min(tied)[1]

    def predict(self, queries: Sequence[Sequence[float]]) -> List[object]:
        """Labels for a batch of queries."""
        return [self.predict_one(q) for q in queries]

    def error_rate(
        self,
        queries: Sequence[Sequence[float]],
        labels: Sequence[object],
    ) -> float:
        """Fraction of ``queries`` misclassified."""
        if len(queries) != len(labels):
            raise ValueError("queries and labels must have equal length")
        if not queries:
            raise ValueError("no queries")
        wrong = sum(
            1 for q, lab in zip(queries, labels) if self.predict_one(q) != lab
        )
        return wrong / len(queries)


def _spec_kwargs(spec: DistanceSpec) -> dict:
    """Batch-engine keyword arguments equivalent to ``spec``.

    The backend is *not* included: it rides on the classifier's
    :class:`~repro.runtime.Runtime` (where ``spec.backend``, when
    set, was folded in at construction).
    """
    kwargs: dict = {"measure": spec.measure}
    if spec.measure in _BANDED_MEASURES:
        kwargs["window"] = spec.window
    if spec.measure in _FASTDTW_MEASURES:
        kwargs["radius"] = spec.radius
    return kwargs


def _kernel_fn(spec: DistanceSpec, rt: Runtime):
    """Non-default kernel dispatch for ``spec`` under ``rt``, or ``None``.

    ``None`` means "use the serial reference implementations below",
    which is the pure-Python path every spec took before the kernel
    registry existed; only the exact DP measures on a non-python
    backend divert through :func:`repro.core.measures.measure_fn`.
    """
    from ..core.measures import ND_MEASURES, RLE_MEASURES

    if spec.measure in RLE_MEASURES or spec.measure in ND_MEASURES:
        # always dispatched through the registry: neither the
        # compressed-domain DP nor the multivariate measures have a
        # reference twin among the serial branches below
        from ..core.measures import measure_fn

        rt = rt.with_backend(spec.backend)
        return measure_fn(
            spec.measure, window=spec.window, backend=rt.backend_name
        )
    if spec.measure not in ("dtw", "cdtw"):
        return None
    rt = rt.with_backend(spec.backend)
    name = rt.backend_name
    if name == "python":
        return None
    from ..core.measures import measure_fn

    return measure_fn(spec.measure, window=spec.window, backend=name)


def _distance(spec: DistanceSpec, x, y, rt: Runtime) -> float:
    fn = _kernel_fn(spec, rt)
    if fn is not None:
        return fn(x, y).distance
    if spec.measure == "euclidean":
        return euclidean(x, y)
    if spec.measure == "dtw":
        return dtw(x, y).distance
    if spec.measure == "cdtw":
        return cdtw(x, y, window=spec.window).distance
    if spec.measure == "fastdtw_reference":
        return fastdtw_reference(x, y, radius=spec.radius).distance
    return fastdtw(x, y, radius=spec.radius).distance


def _nearest_batched(spec: DistanceSpec, query, candidates, rt: Runtime):
    """Batched equivalent of :func:`_nearest_impl` (same tie-break)."""
    from ..batch.engine import argmin_first, batch_distances

    series = [list(query)] + [list(c) for c in candidates]
    pairs = [(0, i + 1) for i in range(len(candidates))]
    result = batch_distances(
        series, pairs=pairs, runtime=rt.with_backend(spec.backend),
        **_spec_kwargs(spec)
    )
    idx, best = argmin_first(result.distances)
    return idx, best, result.cells


def _nearest_impl(spec: DistanceSpec, query, candidates, rt: Runtime):
    """Index, distance and DP cells of the nearest candidate."""
    if spec.measure in ("cdtw", "cdtw_d") and spec.use_lower_bounds:
        res = nearest_neighbor(
            query, candidates, strategy="cdtw+lb", window=spec.window,
            runtime=rt.with_backend(spec.backend),
        )
        return res.index, res.distance, res.cells
    kernel_fn = _kernel_fn(spec, rt)
    best_idx, best, cells = 0, inf, 0
    for i, cand in enumerate(candidates):
        if kernel_fn is not None:
            r = kernel_fn(query, cand)
            d, cells = r.distance, cells + r.cells
        elif spec.measure == "euclidean":
            d = euclidean(query, cand, abandon_above=best)
        elif spec.measure == "dtw":
            r = dtw(query, cand)
            d, cells = r.distance, cells + r.cells
        elif spec.measure == "cdtw":
            r = cdtw(query, cand, window=spec.window)
            d, cells = r.distance, cells + r.cells
        elif spec.measure == "fastdtw_reference":
            r = fastdtw_reference(query, cand, radius=spec.radius)
            d, cells = r.distance, cells + r.cells
        else:  # fastdtw
            r = fastdtw(query, cand, radius=spec.radius)
            d, cells = r.distance, cells + r.cells
        if d < best:
            best, best_idx = d, i
    return best_idx, best, cells
