"""Learned (R-K style) warping bands from training alignments.

The paper's reference [2] (Ratanamahatana & Keogh, "Everything you
know about DTW is wrong") introduced bands of *arbitrary shape*
learned from the data, subsuming the uniform Sakoe-Chiba band.  The
construction here is the practical core of that idea:

1. align same-class training pairs with Full DTW;
2. record, per lattice row, the largest deviation any alignment used;
3. smooth and pad the per-row radii, and build a feasible
   :class:`~repro.core.window.Window` from them.

The learned window is exactly wide enough for the warping the data
actually exhibits -- usually far narrower than the uniform band with
the same worst-case deviation, which means fewer DP cells at equal
accuracy: the paper's "a little warping is a good thing" made
adaptive.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.dtw import dtw
from ..core.engine import DtwResult, dp_over_window
from ..core.validate import validate_series
from ..core.window import Window


def learn_band_radii(
    series: Sequence[Sequence[float]],
    labels: Optional[Sequence[object]] = None,
    slack: int = 1,
    smooth: int = 2,
    max_pairs_per_class: int = 20,
) -> List[int]:
    """Per-row band radii learned from same-class Full-DTW alignments.

    Parameters
    ----------
    series:
        Equal-length training series.
    labels:
        Optional class labels; when given, only same-class pairs are
        aligned (cross-class warping is noise for classification).
        Without labels, all pairs are used.
    slack:
        Cells added to every learned radius (safety margin).
    smooth:
        Half-width of a sliding-maximum smoothing over rows, so single
        noisy alignments cannot pinch the band.
    max_pairs_per_class:
        Cap on alignments per class (deterministic: first pairs in
        order), bounding the O(N^2)-per-alignment training cost.

    Returns
    -------
    list[int]
        One radius per row, ``>= slack``.
    """
    if len(series) < 2:
        raise ValueError("need at least two training series")
    lengths = {len(s) for s in series}
    if len(lengths) != 1:
        raise ValueError(f"series lengths differ: {sorted(lengths)}")
    for i, s in enumerate(series):
        validate_series(s, f"series {i}")
    if labels is not None and len(labels) != len(series):
        raise ValueError("labels must match series")
    if slack < 0 or smooth < 0:
        raise ValueError("slack and smooth must be non-negative")
    n = lengths.pop()

    # group indices by class (or one group for unlabelled data)
    groups: dict = {}
    for idx in range(len(series)):
        key = labels[idx] if labels is not None else None
        groups.setdefault(key, []).append(idx)

    radii = [0] * n
    aligned_any = False
    for members in groups.values():
        pairs = 0
        for a in range(len(members)):
            for b in range(a + 1, len(members)):
                if pairs >= max_pairs_per_class:
                    break
                x = series[members[a]]
                y = series[members[b]]
                path = dtw(x, y, return_path=True).path
                for i, j in path:
                    dev = abs(j - i)
                    if dev > radii[i]:
                        radii[i] = dev
                pairs += 1
            if pairs >= max_pairs_per_class:
                break
        aligned_any = aligned_any or pairs > 0
    if not aligned_any:
        raise ValueError(
            "no same-class pairs to align; provide more series per class"
        )

    # sliding-maximum smoothing plus slack
    if smooth:
        smoothed = [
            max(radii[max(0, i - smooth):min(n, i + smooth + 1)])
            for i in range(n)
        ]
    else:
        smoothed = list(radii)
    return [r + slack for r in smoothed]


def window_from_radii(radii: Sequence[int], m: Optional[int] = None) -> Window:
    """Build a feasible window from per-row radii.

    ``m`` defaults to ``len(radii)`` (the equal-length classification
    setting).
    """
    n = len(radii)
    if n < 1:
        raise ValueError("need at least one radius")
    if any(r < 0 for r in radii):
        raise ValueError("radii must be non-negative")
    m = n if m is None else m
    slope = (m - 1) / (n - 1) if n > 1 else 0.0
    cells = []
    for i, r in enumerate(radii):
        centre = i * slope
        lo = max(0, int(centre - r))
        hi = min(m - 1, int(centre + r + 0.5))
        cells.append((i, lo))
        cells.append((i, hi))
    return Window.from_cells(n, m, cells)


def learned_band_dtw(
    x: Sequence[float],
    y: Sequence[float],
    radii: Sequence[int],
    cost: str = "squared",
    return_path: bool = False,
    abandon_above: Optional[float] = None,
) -> DtwResult:
    """Exact DTW constrained to a learned band.

    ``radii`` must have been learned for series of ``len(x)`` rows.
    """
    if len(x) != len(radii):
        raise ValueError(
            f"learned radii are for length {len(radii)}, got {len(x)}"
        )
    window = window_from_radii(radii, len(y))
    return dp_over_window(
        x, y, window, cost=cost, return_path=return_path,
        abandon_above=abandon_above,
    )
